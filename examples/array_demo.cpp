// array_demo — store a bit pattern in the paper's FEFET array (Fig. 7,
// Table 1 biasing), read it back through the virtual-ground sense lines,
// and report the disturb/sneak health of every operation.
//
//   $ ./array_demo [rows cols]          (default 2x3, the paper's figure)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bias_scheme.h"
#include "core/memory_array.h"

using namespace fefet;

int main(int argc, char** argv) {
  core::ArrayConfig cfg;
  if (argc > 2) {
    cfg.rows = std::atoi(argv[1]);
    cfg.cols = std::atoi(argv[2]);
  }
  std::printf("FEFET 2T array: %d x %d cells\n\n", cfg.rows, cfg.cols);
  std::printf("%s\n", core::describeBiasTable(cfg.levels).c_str());

  core::MemoryArray array(cfg);

  // A diagonal-stripe pattern, written one bit at a time.
  std::vector<std::vector<bool>> pattern(
      cfg.rows, std::vector<bool>(cfg.cols, false));
  double worstDisturb = 0.0;
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      pattern[r][c] = ((r + c) % 2) == 0;
      const auto res = array.writeBit(r, c, pattern[r][c]);
      worstDisturb = std::max(worstDisturb, res.maxUnaccessedDisturb);
      if (!res.ok) std::printf("  write (%d,%d) FAILED\n", r, c);
    }
  }
  std::printf("pattern written; worst unaccessed-cell disturb %.2g C/m^2 "
              "(state separation ~0.22)\n\n",
              worstDisturb);

  // Read back everything; print stored bits and read currents.
  std::printf("read-back (bit / current):\n");
  bool allCorrect = true;
  for (int r = 0; r < cfg.rows; ++r) {
    std::printf("  row %d: ", r);
    for (int c = 0; c < cfg.cols; ++c) {
      const auto res = array.readBit(r, c);
      allCorrect = allCorrect && (res.bitRead == pattern[r][c]);
      if (res.bitRead) {
        std::printf("[1 %6.1fuA] ", res.readCurrent * 1e6);
      } else {
        std::printf("[0 %6.1fpA] ", res.readCurrent * 1e12);
      }
    }
    std::printf("\n");
  }
  std::printf("\nread-back %s; reads are non-destructive (pattern intact: "
              "%s)\n",
              allCorrect ? "CORRECT" : "WRONG",
              [&] {
                for (int r = 0; r < cfg.rows; ++r)
                  for (int c = 0; c < cfg.cols; ++c)
                    if (array.bitAt(r, c) != pattern[r][c]) return "no";
                return "yes";
              }());

  const auto hold = array.hold(10e-9);
  std::printf("hold mode: all lines grounded, %.3g aJ consumed in 10 ns\n",
              hold.totalEnergy * 1e18);
  return allCorrect ? 0 : 1;
}
