// netlist_sim — a tiny command-line circuit simulator on top of the
// fefet::spice substrate: read a SPICE-flavoured deck, run a DC solve or a
// transient, and print node voltages / waveform CSV.
//
//   $ ./netlist_sim deck.sp                 # DC operating point
//   $ ./netlist_sim deck.sp 5n node1 node2  # 5 ns transient, CSV of nodes
//
// A ready-made deck for the paper's FEFET write path is embedded and used
// when no file is given:
//   $ ./netlist_sim
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "spice/deck_parser.h"
#include "spice/simulator.h"

using namespace fefet;

namespace {
const char* kBuiltinDeck = R"(* FEFET 2T-cell write path (paper Fig. 5a)
Vws ws 0 PULSE(0 1.36 20p 20p 900p 20p)
Vwbl wbl 0 PULSE(0 0.68 60p 20p 700p 20p)
Macc wbl ws g NMOS W=65n
XFE g int FECAP T=2.25n P0=0 W=65n L=45n RHO=0.885
Mfet rs int sl NMOS W=65n
Vrs rs 0 DC 0
Vsl sl 0 DC 0
.end
)";
}  // namespace

int main(int argc, char** argv) {
  spice::Netlist netlist;
  std::string source = "builtin FEFET write-path deck";
  try {
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::fprintf(stderr, "cannot open deck '%s'\n", argv[1]);
        return 1;
      }
      source = argv[1];
      spice::parseDeck(file, netlist);
    } else {
      spice::parseDeckString(kBuiltinDeck, netlist);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "parsed %s: %d nodes, %zu devices\n", source.c_str(),
               netlist.nodeCount(), netlist.devices().size());

  spice::Simulator sim(netlist);
  if (argc <= 2) {
    // Transient for the builtin deck (it is all about dynamics); DC for
    // user decks without a duration argument.
    if (argc == 1) {
      sim.initializeUic();
      spice::TransientOptions options;
      options.duration = 1.5e-9;
      const auto r = sim.runTransient(
          options, {spice::Probe::v("g"), spice::Probe::v("int"),
                    spice::Probe::deviceState("XFE", "P")});
      r.waveform.writeCsv(std::cout);
      std::fprintf(stderr, "final polarization: %.4f C/m^2\n",
                   r.waveform.finalValue("P(XFE)"));
      return 0;
    }
    try {
      sim.solveDc();
    } catch (const Error& e) {
      std::fprintf(stderr, "DC solve failed: %s\n", e.what());
      return 1;
    }
    std::printf("node,voltage\n");
    for (int id = 1; id <= netlist.nodeCount(); ++id) {
      std::printf("%s,%.9g\n", netlist.nodeName(id).c_str(),
                  sim.nodeVoltage(netlist.nodeName(id)));
    }
    return 0;
  }

  // Transient: duration plus probe node names.
  spice::TransientOptions options;
  try {
    options.duration = spice::parseEngineeringValue(argv[2]);
  } catch (const Error& e) {
    std::fprintf(stderr, "bad duration '%s': %s\n", argv[2], e.what());
    return 1;
  }
  std::vector<spice::Probe> probes;
  for (int i = 3; i < argc; ++i) probes.push_back(spice::Probe::v(argv[i]));
  if (probes.empty()) {
    for (int id = 1; id <= netlist.nodeCount(); ++id) {
      probes.push_back(spice::Probe::v(netlist.nodeName(id)));
    }
  }
  sim.initializeUic();
  try {
    const auto r = sim.runTransient(options, probes);
    r.waveform.writeCsv(std::cout);
    std::fprintf(stderr, "%d steps, %d newton iterations\n", r.stats.steps,
                 r.stats.newtonIterations);
  } catch (const Error& e) {
    std::fprintf(stderr, "transient failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
