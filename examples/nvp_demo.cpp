// nvp_demo — run the battery-free processor scenario of paper §7: an ODAB
// nonvolatile processor powered by a bursty Wi-Fi energy harvester,
// checkpointing into either the FEFET macro or the FERAM baseline.
//
//   $ ./nvp_demo [mean_power_uW]          (default 14 uW, the paper point)
#include <cstdio>
#include <cstdlib>

#include "nvp/nv_processor.h"

using namespace fefet::nvp;

int main(int argc, char** argv) {
  const double meanPower = (argc > 1 ? std::atof(argv[1]) : 14.0) * 1e-6;

  WifiTraceParams traceParams;
  traceParams.meanPower = meanPower;
  traceParams.duration = 1.0;
  const auto trace = makeWifiTrace(traceParams);
  std::printf("Wi-Fi harvester trace: %.1f uW mean, %.0f outages/s, duty "
              "%.0f%%\n\n",
              trace.meanPower() * 1e6, trace.interruptionRate(),
              trace.dutyCycle() * 100.0);

  const auto fefet = fefetNvm();
  const auto feram = feramNvm();
  std::printf("%-14s %9s %9s %8s | per power cycle: backup/restore\n",
              "benchmark", "FP(FERAM)", "FP(FEFET)", "gain");
  double sum = 0.0;
  int n = 0;
  for (const auto& w : mibenchSuite()) {
    const auto a = simulateNvp(trace, w, fefet);
    const auto b = simulateNvp(trace, w, feram);
    const double gain = a.forwardProgress / b.forwardProgress - 1.0;
    sum += gain;
    ++n;
    std::printf("%-14s %9.4f %9.4f %7.1f%% | FEFET %5.0f pJ / %4.0f pJ, "
                "FERAM %5.0f pJ / %5.0f pJ\n",
                w.name.c_str(), b.forwardProgress, a.forwardProgress,
                gain * 100.0,
                a.backupEnergy / std::max(a.powerCycles, 1) * 1e12,
                a.restoreEnergy / std::max(a.powerCycles, 1) * 1e12,
                b.backupEnergy / std::max(b.powerCycles, 1) * 1e12,
                b.restoreEnergy / std::max(b.powerCycles, 1) * 1e12);
  }
  std::printf("\naverage forward-progress gain of FEFET over FERAM: %.1f%%"
              " (paper: 27%% at its operating point)\n",
              sum / n * 100.0);
  std::printf("FERAM pays twice per cycle: expensive writes AND expensive "
              "destructive-read restores; the FEFET macro's non-destructive "
              "0.28 pJ reads make restores nearly free.\n");
  return 0;
}
