// quickstart — the 60-second tour: build the paper's 2T FEFET memory cell,
// write a bit at 0.68 V / 550 ps, read it non-destructively, hold it with
// zero standby power, and print what happened.
//
//   $ ./quickstart
#include <cstdio>

#include "core/cell2t.h"
#include "core/fefet.h"
#include "core/materials.h"

using namespace fefet;

int main() {
  // The paper's design point: T_FE = 2.25 nm on a 45 nm / 65 nm transistor,
  // Table 2 Landau coefficients, kinetics calibrated to the 550 ps anchor.
  core::Cell2TConfig config;
  config.fefet.lk = core::fefetMaterial();

  // Device-level sanity: the FEFET is bistable at V_GS = 0 with a ~0.5 V
  // hysteresis window and ~1e6 on/off ratio.
  const auto window = core::analyzeHysteresis(config.fefet);
  std::printf("FEFET @ %.2f nm: window [%+.3f, %+.3f] V, on/off = %.2g\n",
              config.fefet.feThickness * 1e9, window.downSwitchVoltage,
              window.upSwitchVoltage,
              core::distinguishability(config.fefet, 0.4));

  core::Cell2T cell(config);

  // Write '1': boosted write-select, +0.68 V on the write bit line.
  const auto write = cell.write(true, 550e-12);
  std::printf("write '1' @ 0.68 V, 550 ps: stored=%d, P=%.3f C/m^2, "
              "energy=%.2f fJ\n",
              write.bitAfter, write.finalPolarization,
              write.totalEnergy * 1e15);

  // Current-sensed read: 0.4 V on the drain, gate pinned to 0 V.
  const auto read = cell.read();
  std::printf("read: I = %.1f uA -> bit %d (polarization unchanged: %.3f)\n",
              read.readCurrent * 1e6, read.bitAfter,
              read.finalPolarization);

  // Hold: every line at 0 V; the ferroelectric keeps the bit.
  const auto hold = cell.hold(50e-9);
  std::printf("hold 50 ns at zero bias: bit=%d, standby energy=%.3g aJ\n",
              hold.bitAfter, hold.totalEnergy * 1e18);

  // Overwrite with '0' (negative bit-line pulse) and read again.
  cell.write(false, 550e-12);
  const auto read0 = cell.read();
  std::printf("after write '0': I = %.1f pA -> bit %d\n",
              read0.readCurrent * 1e12, read0.bitAfter);
  return 0;
}
