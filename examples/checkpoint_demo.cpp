// checkpoint_demo — the adoptable API in action: use the word-addressable
// NVM macro (core/nvm_macro.h) as a checkpoint store for a toy computation
// and compare the energy bill of FEFET vs FERAM technology for the same
// checkpoint stream.
//
//   $ ./checkpoint_demo [checkpoints]     (default 200)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/nvm_macro.h"

using namespace fefet::core;

namespace {
/// A toy "processor state": PC + 32 registers.
struct CpuState {
  std::uint32_t pc = 0;
  std::uint32_t regs[32] = {};

  void step() {
    pc += 4;
    regs[pc % 32] = regs[(pc + 7) % 32] * 1664525u + 1013904223u;
  }
};

void checkpoint(NvmMacro& macro, const CpuState& s, int base) {
  macro.writeWord(base, s.pc);
  for (int i = 0; i < 32; ++i) macro.writeWord(base + 1 + i, s.regs[i]);
}

CpuState restore(NvmMacro& macro, int base) {
  CpuState s;
  s.pc = macro.readWord(base).value;
  for (int i = 0; i < 32; ++i) s.regs[i] = macro.readWord(base + 1 + i).value;
  return s;
}
}  // namespace

int main(int argc, char** argv) {
  const int checkpoints = argc > 1 ? std::atoi(argv[1]) : 200;

  NvmMacro fefet(MacroTechnology::kFefet);
  NvmMacro feram(MacroTechnology::kFeram);
  std::printf("macro capacity: %d words of %d bits; FEFET array %.1f um^2, "
              "FERAM %.1f um^2\n",
              fefet.wordCount(), fefet.wordBits(), fefet.arrayArea() * 1e12,
              feram.arrayArea() * 1e12);

  CpuState cpu;
  for (int k = 0; k < checkpoints; ++k) {
    for (int i = 0; i < 1000; ++i) cpu.step();
    checkpoint(fefet, cpu, 0);
    checkpoint(feram, cpu, 0);
    // Simulate the power-loss/restore round trip.
    const CpuState backF = restore(fefet, 0);
    const CpuState backR = restore(feram, 0);
    if (backF.pc != cpu.pc || backR.pc != cpu.pc) {
      std::printf("RESTORE MISMATCH at checkpoint %d\n", k);
      return 1;
    }
  }

  std::printf("\n%d checkpoint+restore cycles of a 33-word CPU state:\n",
              checkpoints);
  std::printf("  FEFET: %6.2f nJ total (%d writes, %d reads), endurance "
              "margin %.6f\n",
              fefet.totalEnergy() * 1e9, fefet.writeAccesses(),
              fefet.readAccesses(), fefet.enduranceMarginRemaining());
  std::printf("  FERAM: %6.2f nJ total (%d writes, %d reads), endurance "
              "margin %.6f\n",
              feram.totalEnergy() * 1e9, feram.writeAccesses(),
              feram.readAccesses(), feram.enduranceMarginRemaining());
  std::printf("  checkpoint energy ratio: %.1fx in favour of FEFET\n",
              feram.totalEnergy() / fefet.totalEnergy());
  std::printf("\nThe asymmetry is the paper's system story: FERAM pays pJ-"
              "class energy on BOTH directions (destructive reads), FEFET "
              "only on writes.\n");
  return 0;
}
