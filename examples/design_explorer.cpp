// design_explorer — the paper's §3 device co-design loop as a tool: sweep
// the ferroelectric thickness, classify each design (no memory / volatile /
// nonvolatile), pick an operating point for a target write voltage, and
// report the resulting cell metrics and retention trade-off.
//
//   $ ./design_explorer [vwrite]          (default 0.68 V)
#include <cstdio>
#include <cstdlib>

#include "core/cell2t.h"
#include "core/design_space.h"
#include "core/materials.h"

using namespace fefet;

int main(int argc, char** argv) {
  const double vWrite = argc > 1 ? std::atof(argv[1]) : 0.68;
  std::printf("FEFET design exploration for V_write = %.2f V\n\n", vWrite);

  core::FefetParams base;
  base.lk = core::fefetMaterial();

  // 1. Thickness sweep: where does memory behaviour appear?
  std::printf("%-6s %-10s %-12s %-22s %s\n", "T_FE", "regime", "window",
              "switching voltages", "on/off");
  for (double t = 1.0e-9; t <= 2.6e-9; t += 0.15e-9) {
    core::FefetParams p = base;
    p.feThickness = t;
    const auto w = core::analyzeHysteresis(p);
    const char* regime = !w.hysteretic ? "logic"
                         : (w.nonvolatile ? "NONVOLATILE" : "volatile");
    if (w.hysteretic) {
      std::printf("%.2fnm %-10s %6.0f mV   [%+6.3f, %+6.3f] V      %s\n",
                  t * 1e9, regime, w.width() * 1e3, w.downSwitchVoltage,
                  w.upSwitchVoltage,
                  w.nonvolatile
                      ? std::to_string(core::distinguishability(p, 0.4))
                            .substr(0, 9)
                            .c_str()
                      : "-");
    } else {
      std::printf("%.2fnm %-10s %6s      %22s -\n", t * 1e9, regime, "-", "");
    }
  }

  // 2. The smallest thickness that is writable at vWrite with margin.
  const double tNv = core::minimumNonvolatileThickness(base, 1.0e-9, 2.5e-9);
  std::printf("\nnon-volatility onset: %.3f nm\n", tNv * 1e9);
  double tPick;
  try {
    tPick = core::recommendThickness(base, vWrite, 0.1);
  } catch (const Error& e) {
    std::printf("no workable thickness for %.2f V: %s\n", vWrite, e.what());
    return 1;
  }
  std::printf("recommended design point: T_FE = %.2f nm\n", tPick * 1e9);

  // 3. Cell metrics at the chosen point.
  core::Cell2TConfig cfg;
  cfg.fefet = base;
  cfg.fefet.feThickness = tPick;
  cfg.levels.vWrite = vWrite;
  core::Cell2T cell(cfg);
  const double t1 = cell.minimumWritePulse(true, vWrite);
  const double t0 = cell.minimumWritePulse(false, vWrite);
  std::printf("write access time at %.2f V: %.0f ps ('1') / %.0f ps ('0')\n",
              vWrite, t1 * 1e12, t0 * 1e12);
  cell.setStoredBit(true);
  const double iOn = cell.read().readCurrent;
  cell.setStoredBit(false);
  const double iOff = cell.read().readCurrent;
  std::printf("read currents: %.4g uA ('1') vs %.4g pA ('0')\n", iOn * 1e6,
              iOff * 1e12);

  // 4. Retention trade-off (paper §6.2.4).
  const auto ret = core::compareRetention(cfg.fefet, 1.244, 65e-9 * 45e-9);
  std::printf("\nretention: log10(t) = %.1f (FEFET) vs %.1f (FERAM ref); "
              "width for parity = %.0f nm\n",
              ret.fefetLog10Seconds, ret.feramLog10Seconds,
              ret.fefetWidthForParity * 1e9);
  return 0;
}
