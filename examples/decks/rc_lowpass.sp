* First-order RC low-pass driven by a 1 GHz sine.  Run with:
*   ./netlist_sim decks/rc_lowpass.sp 5n in out
Vin in 0 SIN(0 1 1g)
R1 in out 1k
C1 out 0 1p
.end
