* FERAM 1T-1C destructive read (paper Fig. 9): plate pulse with a floating
* bit line develops the charge-sharing signal.  Run with:
*   ./netlist_sim decks/feram_read.sp 3n bl x
Vwl wl 0 PULSE(0 2.4 20p 20p 2.5n 20p)
Vpl pl 0 PULSE(0 1.64 100p 20p 1.5n 20p)
Macc bld wl x NMOS W=65n
XFE x pl FECAP T=1n P0=0.4636 W=65n L=45n RHO=0.816
Cbl bl 0 5f
Rconn bld bl 50
.end
