* The paper's Fig. 7 array as a hierarchical deck: six 2T FEFET cells
* built from one subcircuit.  Writes a '1' into cell (0,0) with the
* Table 1 biasing (accessed WS boosted, unaccessed WS at -VDD).
*   ./netlist_sim decks/fefet_array_2x3.sp 1.5n Xc00:int Xc10:int
.subckt fecell wbl ws rs sl
Macc wbl ws g NMOS W=65n
XFE g int FECAP T=2.25n P0=0 W=65n L=45n RHO=0.885
Mfet rs int sl NMOS W=65n
.ends

* row lines
Vws0 ws0 0 PULSE(0 1.36 20p 20p 900p 20p)
Vws1 ws1 0 PULSE(0 -0.68 20p 20p 900p 20p)
Vrs0 rs0 0 DC 0
Vrs1 rs1 0 DC 0
* column lines
Vwbl0 wbl0 0 PULSE(0 0.68 60p 20p 700p 20p)
Vwbl1 wbl1 0 DC 0
Vwbl2 wbl2 0 DC 0
Vsl0 sl0 0 DC 0
Vsl1 sl1 0 DC 0
Vsl2 sl2 0 DC 0

Xc00 wbl0 ws0 rs0 sl0 fecell
Xc01 wbl1 ws0 rs0 sl1 fecell
Xc02 wbl2 ws0 rs0 sl2 fecell
Xc10 wbl0 ws1 rs1 sl0 fecell
Xc11 wbl1 ws1 rs1 sl1 fecell
Xc12 wbl2 ws1 rs1 sl2 fecell
.end
