// Ablation of the Table 1 bias scheme (paper §4.1): what happens if the
// unaccessed write-select lines are grounded instead of driven to -VDD?
//
// With WBL at -V_write and an unaccessed gate at 0 V, the unaccessed
// access transistor sees V_GS = +V_write — it turns on and couples the
// negative bit-line level into the unaccessed cell's gate, disturbing (or
// outright erasing) its stored '1'.  The paper's negative select level
// keeps V_GS <= 0 at all times.  This bench quantifies both schemes.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/memory_array.h"

using namespace fefet;

namespace {
struct StressResult {
  bool victimSurvived = true;
  double worstDisturb = 0.0;
};

StressResult stressColumn(bool negativeSelect, int cycles) {
  core::ArrayConfig cfg;  // 2x3
  cfg.negativeUnaccessedSelect = negativeSelect;
  core::MemoryArray arr(cfg);
  // Victim: cell (1,0) stores '1'; aggressor writes hammer (0,0) with '0'
  // (negative bit line on the shared column).
  arr.setPattern({{true, false, false}, {true, false, false}});
  StressResult out;
  for (int k = 0; k < cycles; ++k) {
    const auto res = arr.writeBit(0, 0, k % 2 == 0 ? false : true);
    out.worstDisturb = std::max(out.worstDisturb, res.maxUnaccessedDisturb);
  }
  out.victimSurvived = arr.bitAt(1, 0);
  return out;
}
}  // namespace

int main() {
  bench::banner("bias-scheme ablation: unaccessed WS = -VDD vs grounded");
  constexpr int kCycles = 6;

  const auto withNeg = stressColumn(true, kCycles);
  const auto withGnd = stressColumn(false, kCycles);

  std::printf("column-hammer stress: %d alternating writes to the cell "
              "above a '1'-storing victim\n\n", kCycles);
  std::printf("%-34s %-18s %s\n", "scheme", "victim survived?",
              "worst unaccessed dP (C/m^2)");
  std::printf("%-34s %-18s %.4f\n", "Table 1 (WS_unacc = -0.68 V)",
              withNeg.victimSurvived ? "yes" : "NO", withNeg.worstDisturb);
  std::printf("%-34s %-18s %.4f\n", "ablated (WS_unacc = 0 V)",
              withGnd.victimSurvived ? "yes" : "NO", withGnd.worstDisturb);

  bench::Comparison cmp;
  cmp.addText("victim survives with the paper's scheme", "yes",
              withNeg.victimSurvived ? "yes" : "no", "");
  cmp.addText("grounded scheme disturbs the victim", "yes",
              (withGnd.worstDisturb > 4.0 * withNeg.worstDisturb ||
               !withGnd.victimSurvived)
                  ? "yes"
                  : "no",
              "");
  cmp.add("disturb ratio (grounded / Table 1)", 0.0,
          withGnd.worstDisturb / std::max(withNeg.worstDisturb, 1e-12),
          "x");
  cmp.print();
  return 0;
}
