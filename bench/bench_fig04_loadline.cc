// Reproduces paper Fig. 4:
//  (a) load-line analysis — charge vs voltage of the FE film against the
//      MOSFET gate: one intersection at T_FE = 1 nm (no hysteresis), three
//      at 2.25 nm (hysteresis);
//  (b) coercive-voltage reduction — the FEFET's switching voltages vs the
//      standalone FE capacitor's coercive voltage across thickness (at
//      2.5 nm the capacitor needs > 2 V while the FEFET loop stays inside
//      +/- 1 V).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/design_space.h"
#include "core/fefet.h"
#include "core/materials.h"
#include "ferro/load_line.h"
#include "xtor/mosfet_model.h"

using namespace fefet;

int main() {
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  const ferro::LandauKhalatnikov lk(params.lk);
  auto mosModel =
      std::make_shared<xtor::MosfetModel>(params.mos, params.width);
  const ferro::MosChargeVoltage mosCurve = [mosModel](double q) {
    return mosModel->gateVoltageForCharge(q);
  };

  bench::banner("Fig. 4(a): load line at V_G = 0 (intersection count)");
  std::cout << "thickness_nm,equilibria,bistable\n";
  for (double t : {1.0e-9, 1.5e-9, 1.9e-9, 2.25e-9, 2.5e-9}) {
    const auto result = ferro::analyzeLoadLine(lk, t, mosCurve, 0.0);
    std::printf("%.2f,%zu,%s\n", t * 1e9, result.equilibria.size(),
                result.bistable() ? "yes" : "no");
  }

  std::cout << "\ncharge-voltage branches at T_FE = 2.25 nm "
               "(Q, V_MOS, V_G - V_FE):\n";
  const auto ll = ferro::analyzeLoadLine(lk, 2.25e-9, mosCurve, 0.0);
  std::cout << "q_C_per_m2,mos_branch_V,fe_branch_V\n";
  const std::size_t stride = ll.chargeGrid.size() / 40 + 1;
  for (std::size_t i = 0; i < ll.chargeGrid.size(); i += stride) {
    std::printf("%.4f,%.4f,%.4f\n", ll.chargeGrid[i], ll.mosBranch[i],
                ll.feBranch[i]);
  }
  std::cout << "equilibrium charges:";
  for (const auto& eq : ll.equilibria) {
    std::printf(" %.4f(%s)", eq.charge, eq.stable ? "stable" : "unstable");
  }
  std::cout << "\n";

  bench::banner("Fig. 4(b): FEFET vs standalone-capacitor switching voltage");
  const auto points = core::sweepThickness(
      params, {1.0e-9, 1.5e-9, 1.9e-9, 2.0e-9, 2.25e-9, 2.5e-9});
  std::cout << "thickness_nm,cap_Vc_V,fefet_up_V,fefet_down_V,nonvolatile\n";
  for (const auto& p : points) {
    std::printf("%.2f,%.3f,%.3f,%.3f,%s\n", p.feThickness * 1e9,
                p.standaloneCoerciveVoltage, p.upSwitchVoltage,
                p.downSwitchVoltage, p.nonvolatile ? "yes" : "no");
  }

  bench::Comparison cmp;
  cmp.add("intersections @ 1 nm (monostable)", 1.0,
          static_cast<double>(
              ferro::analyzeLoadLine(lk, 1e-9, mosCurve, 0.0)
                  .equilibria.size()),
          "count");
  cmp.add("intersections @ 2.25 nm (bistable, >= 3)", 3.0,
          static_cast<double>(ll.equilibria.size()), "count");
  cmp.add("standalone cap V_c @ 2.5 nm (paper: outside +/-2 V)", 3.11,
          points.back().standaloneCoerciveVoltage, "V");
  cmp.add("FEFET loop upper edge @ 2.5 nm (inside +/-1 V)", 1.0,
          points.back().upSwitchVoltage, "V (must be < 1)");
  cmp.add("FEFET loop lower edge @ 2.5 nm (inside +/-1 V)", -1.0,
          points.back().downSwitchVoltage, "V (must be > -1)");
  cmp.print();
  return 0;
}
