// Reproduces paper Figs. 5-6: 2T FEFET cell write/read transient waveforms
// — write '1', read, write '0', read — with the Table 1 bias levels.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/cell2t.h"
#include "core/materials.h"

using namespace fefet;

int main() {
  core::Cell2TConfig cfg;
  cfg.fefet.lk = core::fefetMaterial();
  core::Cell2T cell(cfg);

  bench::banner("Fig. 6: write '1' (WBL=+0.68 V, WS boosted to 1.36 V)");
  cell.setStoredBit(false);
  const auto w1 = cell.write(true, 550e-12);
  bench::dumpWaveform(w1.waveform,
                      {"v(wbl)", "v(ws)", "v(g)", "P(cell:fe)"}, 30);
  std::printf("-> bit=%d, write latency %.0f ps, energy %.3g fJ\n",
              w1.bitAfter, w1.writeLatency * 1e12, w1.totalEnergy * 1e15);

  bench::banner("Fig. 6: read (RS=0.4 V on drain, gate pinned to 0 V)");
  const auto r1 = cell.read();
  bench::dumpWaveform(r1.waveform,
                      {"v(rs)", "v(ws)", "P(cell:fe)", "id(cell:mos)"}, 30);
  std::printf("-> read current %.4g uA (bit %d), P before/after unchanged\n",
              r1.readCurrent * 1e6, r1.bitAfter);

  bench::banner("Fig. 6: write '0' (WBL=-0.68 V)");
  const auto w0 = cell.write(false, 550e-12);
  bench::dumpWaveform(w0.waveform,
                      {"v(wbl)", "v(ws)", "v(g)", "P(cell:fe)"}, 30);
  std::printf("-> bit=%d, energy %.3g fJ\n", w0.bitAfter,
              w0.totalEnergy * 1e15);

  bench::banner("Fig. 6: read of the '0'");
  const auto r0 = cell.read();
  std::printf("-> read current %.4g pA (bit %d)\n", r0.readCurrent * 1e12,
              r0.bitAfter);

  bench::banner("Hold: zero standby");
  const auto h = cell.hold(10e-9);
  std::printf("-> all lines 0 V for 10 ns: bit retained = %d, energy %.3g aJ\n",
              h.bitAfter == false, h.totalEnergy * 1e18);

  bench::Comparison cmp;
  cmp.add("write pulse (Table 3 anchor)", 550.0, 550.0, "ps");
  cmp.addText("write '1' then read back", "1", w1.bitAfter && r1.bitAfter
                                                   ? "1"
                                                   : "0", "");
  cmp.addText("write '0' then read back", "0",
              (!w0.bitAfter && !r0.bitAfter) ? "0" : "1", "");
  cmp.add("read current ratio", 1e6,
          r1.readCurrent / std::max(r0.readCurrent, 1e-15), "x");
  cmp.print();
  return 0;
}
