// Reproduces paper Fig. 3: the FEFET at T_FE = 1.90 nm — hysteresis lies
// entirely at positive V_GS, so removing the gate bias lets the
// polarization collapse: no non-volatility.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/fefet.h"
#include "core/materials.h"
#include "spice/simulator.h"
#include "spice/sources.h"

using namespace fefet;
using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pwl;

int main() {
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  params.feThickness = 1.90e-9;

  bench::banner("Fig. 3(a): I_DS-V_GS hysteresis, T_FE = 1.90 nm (volatile)");
  const auto window = core::analyzeHysteresis(params);
  const auto up = core::sweepTransfer(params, -1.0, 1.0, 100, 0.05, 0.0);
  const auto down = core::sweepTransfer(params, 1.0, -1.0, 100, 0.05,
                                        up.back().internalVoltage);
  std::cout << "branch,vgs_V,ids_A,P_C_per_m2\n";
  for (const auto& p : up) {
    std::printf("up,%.3f,%.6g,%.5f\n", p.vgs, p.drainCurrent, p.polarization);
  }
  for (const auto& p : down) {
    std::printf("down,%.3f,%.6g,%.5f\n", p.vgs, p.drainCurrent,
                p.polarization);
  }

  {
    plot::Series upSeries, downSeries;
    upSeries.label = "sweep up";
    downSeries.label = "sweep down";
    for (const auto& p : up) {
      upSeries.x.push_back(p.vgs);
      upSeries.y.push_back(std::max(p.drainCurrent, 1e-16));
    }
    for (const auto& p : down) {
      downSeries.x.push_back(p.vgs);
      downSeries.y.push_back(std::max(p.drainCurrent, 1e-16));
    }
    plot::ChartOptions chart;
    chart.title = "I_DS-V_GS, T_FE = 1.90 nm: positive-only loop (Fig. 3a)";
    chart.xLabel = "V_GS [V]";
    chart.yLabel = "I_DS [A] (log, 0.1 fA floor)";
    chart.logY = true;
    plot::renderChart(std::cout, {upSeries, downSeries}, chart);
  }

  bench::banner("Fig. 3(b): polarization collapses when the bias is removed");
  spice::Netlist n;
  auto* vg = n.add<spice::VoltageSource>("Vg", n.node("g"), n.ground(),
                                         dc(0.0));
  n.add<spice::VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.0));
  n.add<spice::VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  core::attachFefet(n, "x", "g", "d", "s", params, 0.0);
  spice::Simulator sim(n);
  sim.initializeUic();
  vg->setShape(pwl({{0.0, 0.0}, {1e-9, 0.0}, {1.2e-9, 0.68},
                    {3.2e-9, 0.68}, {3.4e-9, 0.0}}));
  spice::TransientOptions options;
  options.duration = 12e-9;
  options.dtMax = 20e-12;
  const auto r = sim.runTransient(
      options, {Probe::v("g"), Probe::deviceState("x:fe", "P")});
  bench::dumpWaveform(r.waveform, {"v(g)", "P(x:fe)"}, 40);

  bench::Comparison cmp;
  cmp.addText("hysteretic", "yes", window.hysteretic ? "yes" : "no", "");
  cmp.addText("nonvolatile (window spans 0 V)", "no",
              window.nonvolatile ? "yes" : "no", "");
  cmp.add("window lower edge (positive only)", 0.1,
          window.downSwitchVoltage, "V");
  cmp.add("window upper edge", 0.4, window.upSwitchVoltage, "V");
  cmp.add("P while biased at 0.68 V", 0.2, r.waveform.valueAt("P(x:fe)", 3e-9),
          "C/m^2");
  cmp.add("P after bias removal (falls back)", 0.0,
          r.waveform.finalValue("P(x:fe)"), "C/m^2");
  cmp.print();
  return 0;
}
