// Sense-margin study (extension of paper §5-§6.2.1): where is the read
// chain's digitization boundary between the two states, and how robust is
// the correct decision to bias perturbations in the sensing circuit?  The
// paper's "enormous distinguishability" claim predicts a huge margin —
// this quantifies it at transistor level.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/materials.h"
#include "core/sense_amp.h"

using namespace fefet;

int main() {
  core::SenseAmpConfig base;
  base.fefet.lk = core::fefetMaterial();
  core::SenseAmpCircuit circuit(base);

  bench::banner("digitization boundary vs stored polarization");
  const double pOn = circuit.onPolarization();
  const double pOff = circuit.offPolarization();
  std::cout << "P_C_per_m2,fraction_of_on_state,read_as\n";
  double boundary = pOn;
  for (double f : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0}) {
    const double p = pOff + f * (pOn - pOff);
    const auto r = circuit.simulateReadAtPolarization(p);
    std::printf("%.4f,%.2f,%d\n", p, f, r.bitRead);
    if (r.bitRead && p < boundary) boundary = p;
  }
  std::printf("-> the chain digitizes '1' once P exceeds ~%.0f%% of the ON "
              "state: everything above is margin\n",
              100.0 * (boundary - pOff) / (pOn - pOff));

  bench::banner("bias-perturbation robustness matrix");
  std::cout << "perturbation,read1_ok,read0_ok\n";
  struct Case {
    const char* name;
    core::SenseAmpConfig cfg;
  };
  std::vector<Case> cases;
  {
    Case c{"nominal", base};
    cases.push_back(c);
  }
  {
    Case c{"vpre +50 mV", base};
    c.cfg.vPre += 0.05;
    cases.push_back(c);
  }
  {
    Case c{"vpre -50 mV", base};
    c.cfg.vPre -= 0.05;
    cases.push_back(c);
  }
  {
    Case c{"ref bias +40 mV (stronger sink)", base};
    c.cfg.refGateBias += 0.04;
    cases.push_back(c);
  }
  {
    Case c{"ref bias -40 mV (weaker sink)", base};
    c.cfg.refGateBias -= 0.04;
    cases.push_back(c);
  }
  {
    Case c{"clamp 30% narrower", base};
    c.cfg.conveyorWidth *= 0.7;
    cases.push_back(c);
  }
  {
    Case c{"mirrors 30% narrower", base};
    c.cfg.mirrorWidth *= 0.7;
    cases.push_back(c);
  }
  {
    Case c{"half pre-charge time", base};
    c.cfg.tPre *= 0.5;
    cases.push_back(c);
  }
  int failures = 0;
  for (auto& c : cases) {
    core::SenseAmpCircuit perturbed(c.cfg);
    const bool ok1 = perturbed.simulateRead(true).bitRead;
    const bool ok0 = !perturbed.simulateRead(false).bitRead;
    if (!(ok1 && ok0)) ++failures;
    std::printf("%s,%s,%s\n", c.name, ok1 ? "yes" : "NO",
                ok0 ? "yes" : "NO");
  }

  bench::Comparison cmp;
  cmp.add("margin to the boundary (fraction of state separation)", 0.9,
          1.0 - (boundary - pOff) / (pOn - pOff), "");
  cmp.add("perturbation cases passing", static_cast<double>(cases.size()),
          static_cast<double>(cases.size() - failures), "count");
  cmp.print();
  return failures == 0 ? 0 : 1;
}
