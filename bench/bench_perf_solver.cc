// Solver performance characterization (google-benchmark): MNA assembly and
// solve scaling on RC ladders and on the actual memory circuits.  Not a
// paper figure — this documents the cost of the hand-rolled substrate.
#include <benchmark/benchmark.h>

#include "core/cell2t.h"
#include "core/fefet.h"
#include "core/memory_array.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

using namespace fefet;
using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

static void BM_DcLadder(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  spice::Netlist n;
  n.add<spice::VoltageSource>("V1", n.node("n0"), n.ground(), dc(1.0));
  for (int i = 0; i < stages; ++i) {
    n.add<spice::Resistor>("R" + std::to_string(i),
                           n.node("n" + std::to_string(i)),
                           n.node("n" + std::to_string(i + 1)), 100.0);
  }
  n.add<spice::Resistor>("Rend", n.node("n" + std::to_string(stages)),
                         n.ground(), 100.0);
  spice::Simulator sim(n);
  for (auto _ : state) {
    sim.solveDc();
    benchmark::DoNotOptimize(sim.solution());
  }
  state.SetComplexityN(stages);
}
BENCHMARK(BM_DcLadder)->Arg(16)->Arg(64)->Arg(256)->Arg(512)->Complexity();

static void BM_RcTransient(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  spice::Netlist n;
  n.add<spice::VoltageSource>("V1", n.node("n0"), n.ground(),
                              pulse(0.0, 1.0, 0.0, 10e-12, 1.0, 10e-12));
  for (int i = 0; i < stages; ++i) {
    n.add<spice::Resistor>("R" + std::to_string(i),
                           n.node("n" + std::to_string(i)),
                           n.node("n" + std::to_string(i + 1)), 1000.0);
    n.add<spice::Capacitor>("C" + std::to_string(i),
                            n.node("n" + std::to_string(i + 1)), n.ground(),
                            1e-15);
  }
  spice::Simulator sim(n);
  spice::TransientOptions options;
  options.duration = 2e-9;
  for (auto _ : state) {
    sim.initializeUic();
    auto r = sim.runTransient(options, {Probe::v("n1")});
    benchmark::DoNotOptimize(r.stats.steps);
  }
  state.SetComplexityN(stages);
}
BENCHMARK(BM_RcTransient)->Arg(8)->Arg(32)->Arg(128)->Complexity();

static void BM_CellWrite(benchmark::State& state) {
  core::Cell2TConfig cfg;
  core::Cell2T cell(cfg);
  bool bit = false;
  for (auto _ : state) {
    bit = !bit;
    auto r = cell.write(bit, 700e-12);
    benchmark::DoNotOptimize(r.finalPolarization);
  }
}
BENCHMARK(BM_CellWrite);

static void BM_CellRead(benchmark::State& state) {
  core::Cell2TConfig cfg;
  core::Cell2T cell(cfg);
  cell.setStoredBit(true);
  for (auto _ : state) {
    auto r = cell.read();
    benchmark::DoNotOptimize(r.readCurrent);
  }
}
BENCHMARK(BM_CellRead);

static void BM_ArrayWrite(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  core::ArrayConfig cfg;
  cfg.rows = size;
  cfg.cols = size;
  core::MemoryArray arr(cfg);
  bool bit = false;
  for (auto _ : state) {
    bit = !bit;
    auto r = arr.writeBit(0, 0, bit);
    benchmark::DoNotOptimize(r.totalEnergy);
  }
  state.SetComplexityN(size * size);
}
BENCHMARK(BM_ArrayWrite)->Arg(2)->Arg(4)->Arg(6)->Complexity();

BENCHMARK_MAIN();
