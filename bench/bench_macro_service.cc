// bench_macro_service — chaos/throughput bench of the serving layer
// (src/serve, DESIGN.md §6.6).
//
// Traffic generators reuse the NVP study's vocabulary: each submitter
// thread runs one MiBench-named workload profile (nvp/workload.h) — its
// backupWords sets the checkpoint cadence — and, with --trace-windows,
// power-fail storm windows follow the outages of a synthetic Wi-Fi
// harvester trace (nvp/power_trace.h) through setStormProbability().
//
// The bench verifies the serving layer's crash-consistency contract
// end-to-end and exits non-zero on any violation:
//   * acked_lost   — a durably acknowledged write that does not read back
//                    with its exact value after the storm (must be 0);
//   * torn_served  — a read returning a value never written to that key
//                    (a torn word leaking through replay+scrub; must be 0);
//   * every submission completes exactly once.
//
// Output: one PERF JSON line with sustained IOPS, p50/p99/p999 latency
// per op class (read/write/checkpoint), shed/retry/replay counters, plus
// the TelemetrySession REPORT line (fefet.serve.* metrics).
//
// The scripts/check.sh chaos gate runs: --storm-p=0.2 --ops=6000 and
// asserts exit 0 (no acked loss, no torn read) and a bounded shed rate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "nvp/power_trace.h"
#include "nvp/workload.h"
#include "serve/request.h"
#include "serve/service.h"

namespace fefet {
namespace {

struct ServiceCli {
  int shards = 4;
  int ops = 20000;
  int threads = 2;           ///< submitter threads
  int qdepth = 64;           ///< queue capacity per shard
  int dataWords = 256;       ///< slots per shard
  double stormP = 0.0;       ///< per-op power-fail probability
  double readFrac = 0.5;
  double deadlineMs = 0.0;   ///< per-op budget (0 = unlimited)
  std::uint64_t seed = 1;
  bool traceWindows = false; ///< drive storms from power-trace outages
};

ServiceCli parseCli(int argc, char** argv) {
  ServiceCli cli;
  const auto valueOf = [](const char* arg, const char* flag) -> const char* {
    const std::size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = valueOf(arg, "--shards=")) {
      cli.shards = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--ops=")) {
      cli.ops = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--threads=")) {
      cli.threads = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--qdepth=")) {
      cli.qdepth = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--data-words=")) {
      cli.dataWords = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--storm-p=")) {
      cli.stormP = std::atof(v);
    } else if (const char* v = valueOf(arg, "--read-frac=")) {
      cli.readFrac = std::atof(v);
    } else if (const char* v = valueOf(arg, "--deadline-ms=")) {
      cli.deadlineMs = std::atof(v);
    } else if (const char* v = valueOf(arg, "--seed=")) {
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--trace-windows") == 0) {
      cli.traceWindows = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--shards=N] [--ops=N] "
                   "[--threads=N] [--qdepth=N] [--data-words=N] "
                   "[--storm-p=P] [--read-frac=F] [--deadline-ms=M] "
                   "[--seed=S] [--trace-windows]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return cli;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

/// Storm windows from a power trace: outage segments carry the full storm
/// probability, powered segments none.  Thread 0 walks the trace as the
/// run progresses (submitted fraction -> trace time).
class StormWindows {
 public:
  StormWindows(const nvp::PowerTrace& trace, double stormP)
      : stormP_(stormP) {
    double t = 0.0;
    for (std::size_t i = 0; i < trace.segmentCount(); ++i) {
      starts_.push_back(t);
      outage_.push_back(trace.segmentPower(i) <= 0.0);
      t += trace.segmentDuration(i);
    }
    total_ = t;
  }

  double probabilityAt(double fraction) const {
    if (starts_.empty()) return stormP_;
    const double t = fraction * total_;
    auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
    const std::size_t seg =
        it == starts_.begin() ? 0 : static_cast<std::size_t>(it - starts_.begin() - 1);
    return outage_[seg] ? stormP_ : 0.0;
  }

 private:
  double stormP_;
  double total_ = 0.0;
  std::vector<double> starts_;
  std::vector<bool> outage_;
};

std::uint64_t mix64(std::uint64_t x) { return serve::chaosMix(x); }

}  // namespace

int run(const ServiceCli& cli) {
  bench::banner("macro service: sharded serving under power-fail storms");
  bench::TelemetrySession telemetry("bench_macro_service");

  serve::ServiceConfig cfg;
  cfg.shards = cli.shards;
  cfg.store.dataWords = cli.dataWords;
  cfg.store.ringSlots = 32;
  cfg.store.macro.rows = 128;
  cfg.store.macro.cols = 128;
  cfg.admission.queueCapacityPerShard = cli.qdepth;
  cfg.storm.opFailProbability = cli.traceWindows ? 0.0 : cli.stormP;
  cfg.storm.seed = cli.seed;
  cfg.maxAttempts = 8;
  cfg.retryBackoffSeconds = 20e-6;
  cfg.retryBackoffMaxSeconds = 500e-6;
  serve::MacroService service(cfg);

  const auto suite = nvp::mibenchSuite();
  const std::int64_t keyCount =
      std::min<std::int64_t>(service.capacityKeys(), 4096);
  // Each submitter owns a disjoint key range (single-writer histories).
  const int threads = static_cast<int>(
      std::min<std::int64_t>(std::max(1, cli.threads), keyCount));
  const int opsPerThread = std::max(1, cli.ops / threads);
  const int totalOps = opsPerThread * threads;
  const std::int64_t keysPerThread = keyCount / threads;

  // Per-key write history (owner submitter thread only) and last-acked
  // value (owning shard worker only): single-writer slots, joined/drained
  // before the verification pass reads them.
  std::vector<std::vector<std::uint32_t>> written(
      static_cast<std::size_t>(keyCount));
  // Index into written[key] of the newest ACKED write (-1 = none).  A
  // later unacked write may legally overwrite an acked one (its redo-ring
  // entry committed before the crash), so the loss check is "the stored
  // value appears in the history at or after the last ack", not equality.
  std::vector<std::int32_t> ackedIdx(static_cast<std::size_t>(keyCount), -1);
  // Per-op completion slots (worker threads write distinct indices).
  std::vector<double> latency(static_cast<std::size_t>(totalOps), -1.0);
  std::vector<unsigned char> opOf(static_cast<std::size_t>(totalOps), 0);
  std::vector<unsigned char> statusOf(static_cast<std::size_t>(totalOps), 255);
  std::atomic<std::uint64_t> completions{0};
  std::atomic<std::uint64_t> submittedSoFar{0};
  std::atomic<std::uint64_t> clientRetries{0};
  std::atomic<std::uint64_t> gaveUp{0};

  nvp::WifiTraceParams traceParams;
  traceParams.seed = cli.seed;
  const nvp::PowerTrace trace = nvp::makeWifiTrace(traceParams);
  const StormWindows windows(trace, cli.stormP);

  bench::WallTimer timer;
  std::vector<std::thread> submitters;
  submitters.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      const nvp::Workload workload =
          suite[static_cast<std::size_t>(t) % suite.size()];
      const std::int64_t keyBase = t * keysPerThread;
      int writesSinceCheckpoint = 0;
      for (int i = 0; i < opsPerThread; ++i) {
        const int index = t * opsPerThread + i;
        const std::uint64_t soFar =
            submittedSoFar.fetch_add(1, std::memory_order_relaxed);
        if (cli.traceWindows && t == 0 && (i & 63) == 0) {
          const double fraction = static_cast<double>(soFar) /
                                  static_cast<double>(totalOps);
          service.setStormProbability(windows.probabilityAt(fraction));
        }
        const std::uint64_t h = mix64(cli.seed ^ (0x9E37u + static_cast<std::uint64_t>(index)));
        const std::int64_t key =
            keyBase + static_cast<std::int64_t>(
                          h % static_cast<std::uint64_t>(keysPerThread));
        serve::Request req;
        req.cls = (t & 1) ? serve::TrafficClass::kStorageMode
                          : serve::TrafficClass::kCacheMode;
        req.budgetSeconds = cli.deadlineMs * 1e-3;
        // The workload's backup footprint sets the checkpoint cadence:
        // one checkpoint per backupWords written words (ODAB-style).
        if (writesSinceCheckpoint >= workload.backupWords) {
          writesSinceCheckpoint = 0;
          req.op = serve::OpType::kCheckpoint;
          req.address = static_cast<std::uint64_t>(index % cli.shards);
        } else if ((mix64(h) >> 8) % 1000 <
                   static_cast<std::uint64_t>(cli.readFrac * 1000)) {
          req.op = serve::OpType::kRead;
          req.address = static_cast<std::uint64_t>(key);
        } else {
          req.op = serve::OpType::kWrite;
          req.address = static_cast<std::uint64_t>(key);
          req.value = static_cast<std::uint32_t>(mix64(h ^ 0xF00Du)) | 1u;
          written[static_cast<std::size_t>(key)].push_back(req.value);
          ++writesSinceCheckpoint;
        }
        opOf[static_cast<std::size_t>(index)] =
            static_cast<unsigned char>(req.op);
        const bool isWrite = req.op == serve::OpType::kWrite;
        const std::int32_t historyIdx =
            isWrite ? static_cast<std::int32_t>(
                          written[static_cast<std::size_t>(key)].size()) -
                          1
                    : -1;
        // Closed-loop client: a shed completes synchronously with a
        // retry-after hint; honor the backpressure and resubmit (bounded).
        // `rejected`/`retryAfter` are written only on the synchronous
        // rejection path, so the submitter may read them after a false
        // return; async (worker-thread) completions never touch them.
        bool rejected = false;
        double retryAfter = 0.0;
        const auto done = [&, index, key, historyIdx, isWrite](
                              const serve::Response& r) {
          statusOf[static_cast<std::size_t>(index)] =
              static_cast<unsigned char>(r.status);
          latency[static_cast<std::size_t>(index)] =
              r.queueSeconds + r.serviceSeconds;
          if (r.status == serve::Status::kRejectedOverload ||
              r.status == serve::Status::kRejectedReadOnly) {
            rejected = true;
            retryAfter = r.retryAfterSeconds;
          }
          if (isWrite && r.ok()) {
            // Shard workers execute one key's writes in admission order,
            // so the last callback carries the newest acked index.
            ackedIdx[static_cast<std::size_t>(key)] = historyIdx;
          }
          completions.fetch_add(1, std::memory_order_relaxed);
        };
        for (int attempt = 0; attempt < 100; ++attempt) {
          rejected = false;
          const bool admitted = service.submit(req, done);
          if (admitted || !rejected) break;
          if (attempt == 99) {
            gaveUp.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          clientRetries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(retryAfter, 2e-3)));
        }
      }
    });
  }
  for (auto& th : submitters) th.join();
  service.drain();
  const double wallSeconds = timer.seconds();
  service.setStormProbability(0.0);

  // --- verification pass: replay the oracle against the stores ---------
  std::uint64_t ackedLost = 0;
  std::uint64_t tornServed = 0;
  std::uint64_t verifiedKeys = 0;
  for (std::int64_t key = 0; key < keyCount; ++key) {
    const auto& history = written[static_cast<std::size_t>(key)];
    if (history.empty()) continue;
    ++verifiedKeys;
    serve::Request read;
    read.op = serve::OpType::kRead;
    read.address = static_cast<std::uint64_t>(key);
    std::uint32_t got = 0;
    bool ok = false;
    service.submit(read, [&](const serve::Response& r) {
      got = r.value;
      ok = r.ok();
    });
    service.drain();
    if (!ok) continue;
    const std::int32_t lastAck = ackedIdx[static_cast<std::size_t>(key)];
    if (lastAck >= 0 &&
        std::find(history.begin() + lastAck, history.end(), got) ==
            history.end()) {
      ++ackedLost;
      std::fprintf(stderr,
                   "ACKED WRITE LOST key=%lld got=%08x last acked=%08x\n",
                   static_cast<long long>(key), got,
                   history[static_cast<std::size_t>(lastAck)]);
    }
    if (got != 0 &&
        std::find(history.begin(), history.end(), got) == history.end()) {
      ++tornServed;
      std::fprintf(stderr, "TORN WORD SERVED key=%lld got=%08x\n",
                   static_cast<long long>(key), got);
    }
  }

  // --- aggregate ------------------------------------------------------
  const auto stats = service.stats();
  const std::uint64_t completed = completions.load();
  std::vector<double> lat[3];
  std::uint64_t okCount[3] = {0, 0, 0};
  for (int i = 0; i < totalOps; ++i) {
    const auto s = static_cast<std::size_t>(i);
    if (statusOf[s] != static_cast<unsigned char>(serve::Status::kOk)) continue;
    const int op = std::min<int>(opOf[s], 2);
    ++okCount[op];
    if (latency[s] >= 0.0) lat[op].push_back(latency[s]);
  }
  const double iops =
      wallSeconds > 0.0 ? static_cast<double>(stats.completedOk) / wallSeconds
                        : 0.0;
  const std::uint64_t shed = stats.shedOverload + stats.shedReadOnly;
  const std::uint64_t attempts =
      static_cast<std::uint64_t>(totalOps) + clientRetries.load();
  const double shedRate =
      static_cast<double>(shed) / static_cast<double>(attempts);

  std::printf("workload suite: %zu profiles, %d submitters, %lld keys\n",
              suite.size(), threads, static_cast<long long>(keyCount));
  std::printf("storm: p=%.3f%s  power fails=%llu  recoveries=%llu  "
              "replayed=%llu  scrubbed=%llu\n",
              cli.stormP, cli.traceWindows ? " (trace windows)" : "",
              static_cast<unsigned long long>(stats.powerFails),
              static_cast<unsigned long long>(stats.recoveries),
              static_cast<unsigned long long>(stats.ringReplayed),
              static_cast<unsigned long long>(stats.scrubbedWords));
  std::printf("verified %llu written keys: acked_lost=%llu torn_served=%llu\n",
              static_cast<unsigned long long>(verifiedKeys),
              static_cast<unsigned long long>(ackedLost),
              static_cast<unsigned long long>(tornServed));

  const char* opNames[3] = {"read", "write", "checkpoint"};
  std::string classJson;
  for (int op = 0; op < 3; ++op) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"ok\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f,"
                  "\"p999_us\":%.1f}",
                  op == 0 ? "" : ",", opNames[op],
                  static_cast<unsigned long long>(okCount[op]),
                  percentile(lat[op], 0.50) * 1e6,
                  percentile(lat[op], 0.99) * 1e6,
                  percentile(lat[op], 0.999) * 1e6);
    classJson += buf;
  }
  std::printf(
      "PERF {\"bench\":\"macro_service\",\"shards\":%d,\"ops\":%d,"
      "\"threads\":%d,\"storm_p\":%.3f,\"wall_s\":%.3f,\"iops\":%.0f,"
      "\"acked\":%llu,\"retries\":%llu,\"power_fails\":%llu,"
      "\"recoveries\":%llu,\"replayed\":%llu,\"scrubbed\":%llu,"
      "\"checkpoints\":%llu,\"shed\":%llu,\"client_retries\":%llu,"
      "\"gave_up\":%llu,\"shed_rate\":%.4f,"
      "\"deadline_expired\":%llu,\"dropped\":%llu,\"completions\":%llu,"
      "\"acked_lost\":%llu,\"torn_served\":%llu,\"classes\":{%s}}\n",
      cli.shards, totalOps, threads, cli.stormP, wallSeconds, iops,
      static_cast<unsigned long long>(stats.ackedWrites),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.powerFails),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.ringReplayed),
      static_cast<unsigned long long>(stats.scrubbedWords),
      static_cast<unsigned long long>(stats.checkpoints),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(clientRetries.load()),
      static_cast<unsigned long long>(gaveUp.load()), shedRate,
      static_cast<unsigned long long>(stats.deadlineExpired),
      static_cast<unsigned long long>(stats.powerFailDropped),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(ackedLost),
      static_cast<unsigned long long>(tornServed), classJson.c_str());

  telemetry.report().addCount("acked", stats.ackedWrites);
  telemetry.report().addCount("power_fails", stats.powerFails);
  telemetry.report().addCount("recoveries", stats.recoveries);
  telemetry.report().addCount("shed", shed);
  telemetry.report().addCount("acked_lost", ackedLost);
  telemetry.report().addCount("torn_served", tornServed);
  service.stop();
  telemetry.finish();

  // Every submission attempt (first try + honored-backpressure retries)
  // completes exactly once.
  const std::uint64_t expected = attempts;
  const bool exactlyOnce = completed == expected;
  if (!exactlyOnce) {
    std::fprintf(stderr, "completions %llu != expected %llu\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(expected));
  }
  return (ackedLost == 0 && tornServed == 0 && exactlyOnce) ? 0 : 1;
}

}  // namespace fefet

int main(int argc, char** argv) {
  return fefet::run(fefet::parseCli(argc, argv));
}
