// bench_assembly — microbenchmark of the compiled stamp pipeline against
// the legacy virtual-dispatch MnaSystem on an array-scale netlist (above
// the dense->sparse crossover, i.e. the configuration where assembly cost
// used to rival the LU itself).
//
// Measures the assemble and solve phases separately for three engines —
// legacy virtual dispatch, compiled scalar slot replay, and compiled with
// SoA batched device kernels — over identical iterates, checks residual
// parity between them (a wrong-answer speedup is worthless), and emits
// one machine-readable PERF line:
//
//   PERF {"bench":"bench_assembly","unknowns":...,"reps":...,
//         "legacy_assemble_s":...,"compiled_assemble_s":...,
//         "batched_assemble_s":...,"assembly_speedup":...,
//         "batched_speedup":...,"batched_vs_compiled":...,
//         "legacy_solve_s":...,"compiled_solve_s":...,
//         "stamps_per_sec":...}
//
// scripts/check.sh runs this as its perf smoke and asserts
// assembly_speedup >= 1.5 and batched_speedup >= 1.5 on an optimized
// build.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "spice/assembler.h"
#include "spice/extras.h"
#include "spice/mna.h"
#include "spice/netlist.h"
#include "spice/newton.h"
#include "spice/passives.h"
#include "spice/sources.h"
#include "spice/stamp_pattern.h"

namespace fefet {
namespace {

using namespace spice;

// RC ladder with periodic diodes: the same mixed linear/nonlinear row
// structure a bit-line column presents, sized past the sparse crossover.
void buildArrayNetlist(Netlist& n, int stages) {
  n.add<VoltageSource>("V1", n.node("s0"), n.ground(),
                       shapes::pulse(0.0, 1.0, 0.0, 50e-12, 1.0, 50e-12));
  for (int i = 0; i < stages; ++i) {
    const auto a = n.node("s" + std::to_string(i));
    const auto b = n.node("s" + std::to_string(i + 1));
    n.add<Resistor>("R" + std::to_string(i), a, b, 100.0);
    n.add<Capacitor>("C" + std::to_string(i), b, n.ground(), 1e-15);
    if (i % 7 == 0) n.add<Diode>("D" + std::to_string(i), b, n.ground());
  }
}

int run() {
  bench::TelemetrySession telemetry("bench_assembly");
  constexpr int kStages = 240;
  constexpr int kReps = 2000;
  constexpr double kGmin = 1e-12;
  constexpr double kTime = 0.3e-9;
  constexpr double kDt = 1e-12;
  constexpr auto kMethod = IntegrationMethod::kBackwardEuler;

  Netlist n;
  buildArrayNetlist(n, kStages);
  const int unknowns = n.freeze();
  const int nodes = n.nodeCount();
  const bool sparse = unknowns > kDenseToSparseCrossover;
  bench::banner("assembly: compiled stamp pipeline vs legacy dispatch (" +
                std::to_string(unknowns) + " unknowns, " +
                (sparse ? "sparse" : "dense") + " storage)");

  std::vector<double> x(static_cast<std::size_t>(unknowns), 0.05);
  for (const auto& device : n.devices()) device->seedUnknowns(x);
  const SystemView view(x, nodes);

  MnaSystem legacy(unknowns, sparse);
  Assembler compiled(n.stampPattern(), sparse);
  std::vector<double> dx;

  const auto legacyAssemble = [&] {
    legacy.clear();
    EvalContext ctx{view,    /*dc=*/false, kTime,   kDt,
                    kMethod, kGmin,        nullptr, &legacy};
    for (const auto& device : n.devices()) device->stamp(ctx);
    legacy.addGmin(kGmin, view, nodes);
  };
  const auto compiledAssemble = [&] {
    compiled.assemble(n, view, /*dc=*/false, kTime, kDt, kMethod, kGmin);
  };
  const auto batchedAssemble = [&] {
    compiled.assemble(n, view, /*dc=*/false, kTime, kDt, kMethod, kGmin,
                      /*useBatchedKernels=*/true);
  };

  // Parity sanity before timing: a fast wrong answer is not a result.
  legacyAssemble();
  compiledAssemble();
  for (int i = 0; i < unknowns; ++i) {
    const auto u = static_cast<std::size_t>(i);
    if (legacy.residual()[u] != compiled.residual()[u]) {
      std::fprintf(stderr, "FAIL: residual parity broke at row %d\n", i);
      return 1;
    }
  }
  batchedAssemble();
  for (int i = 0; i < unknowns; ++i) {
    const auto u = static_cast<std::size_t>(i);
    if (legacy.residual()[u] != compiled.residual()[u]) {
      std::fprintf(stderr, "FAIL: batched residual parity broke at row %d\n",
                   i);
      return 1;
    }
  }

  // Warm both solvers (first solve pays the one-time symbolic LU).
  legacy.solveForUpdate(dx);
  compiled.solveForUpdate(dx, /*reuseLuStructure=*/true);

  bench::WallTimer tLegacyAsm;
  for (int r = 0; r < kReps; ++r) legacyAssemble();
  const double legacyAssembleS = tLegacyAsm.seconds();

  bench::WallTimer tCompiledAsm;
  for (int r = 0; r < kReps; ++r) compiledAssemble();
  const double compiledAssembleS = tCompiledAsm.seconds();

  bench::WallTimer tBatchedAsm;
  for (int r = 0; r < kReps; ++r) batchedAssemble();
  const double batchedAssembleS = tBatchedAsm.seconds();

  bench::WallTimer tLegacySolve;
  for (int r = 0; r < kReps; ++r) legacy.solveForUpdate(dx);
  const double legacySolveS = tLegacySolve.seconds();

  bench::WallTimer tCompiledSolve;
  for (int r = 0; r < kReps; ++r) {
    compiled.solveForUpdate(dx, /*reuseLuStructure=*/true);
  }
  const double compiledSolveS = tCompiledSolve.seconds();

  const double speedup =
      compiledAssembleS > 0.0 ? legacyAssembleS / compiledAssembleS : 0.0;
  const double batchedSpeedup =
      batchedAssembleS > 0.0 ? legacyAssembleS / batchedAssembleS : 0.0;
  const double batchedVsCompiled =
      batchedAssembleS > 0.0 ? compiledAssembleS / batchedAssembleS : 0.0;
  const auto mode = stampModeFor(/*dc=*/false, kMethod);
  const std::size_t stampsPerAssembly =
      n.stampPattern().jacobianCalls(mode).size();
  const double stampsPerSec =
      compiledAssembleS > 0.0
          ? static_cast<double>(stampsPerAssembly) * kReps / compiledAssembleS
          : 0.0;

  std::printf("assemble: legacy %.1f us/iter, compiled %.1f us/iter "
              "(%.2fx), batched %.1f us/iter (%.2fx)\n",
              legacyAssembleS / kReps * 1e6, compiledAssembleS / kReps * 1e6,
              speedup, batchedAssembleS / kReps * 1e6, batchedSpeedup);
  std::printf("solve:    legacy %.1f us/iter, compiled %.1f us/iter\n",
              legacySolveS / kReps * 1e6, compiledSolveS / kReps * 1e6);
  std::printf(
      "PERF {\"bench\":\"bench_assembly\",\"unknowns\":%d,\"reps\":%d,"
      "\"legacy_assemble_s\":%.4f,\"compiled_assemble_s\":%.4f,"
      "\"batched_assemble_s\":%.4f,\"assembly_speedup\":%.2f,"
      "\"batched_speedup\":%.2f,\"batched_vs_compiled\":%.2f,"
      "\"legacy_solve_s\":%.4f,"
      "\"compiled_solve_s\":%.4f,\"stamps_per_sec\":%.3g}\n",
      unknowns, kReps, legacyAssembleS, compiledAssembleS, batchedAssembleS,
      speedup, batchedSpeedup, batchedVsCompiled, legacySolveS,
      compiledSolveS, stampsPerSec);

  telemetry.report().addCount("unknowns", static_cast<std::uint64_t>(unknowns));
  telemetry.report().addCount("reps", static_cast<std::uint64_t>(kReps));
  telemetry.report().addNumber("assembly_speedup", speedup);
  telemetry.report().addNumber("batched_speedup", batchedSpeedup);
  telemetry.report().addNumber("batched_vs_compiled", batchedVsCompiled);
  telemetry.report().addNumber("stamps_per_sec", stampsPerSec);
  telemetry.finish();
  return 0;
}

}  // namespace
}  // namespace fefet

int main() { return fefet::run(); }
