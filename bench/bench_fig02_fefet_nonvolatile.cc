// Reproduces paper Fig. 2: the nonvolatile FEFET at T_FE = 2.25 nm.
//  (a) hysteretic I_DS-V_GS transfer characteristic spanning V_GS = 0,
//      with the A (high-R, bit 0) and B (low-R, bit 1) states;
//  (b) polarization retention: +/-0.68 V gate pulses switch the stored
//      polarization, which is retained during long zero-bias holds.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/fefet.h"
#include "core/materials.h"
#include "spice/simulator.h"
#include "spice/sources.h"

using namespace fefet;
using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

int main() {
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  params.feThickness = 2.25e-9;

  bench::banner("Fig. 2(a): I_DS-V_GS hysteresis, T_FE = 2.25 nm, VDS=50mV");
  const auto window = core::analyzeHysteresis(params);
  const auto up = core::sweepTransfer(params, -1.0, 1.0, 100, 0.05,
                                      /*startPsi=*/0.0);
  const auto down = core::sweepTransfer(params, 1.0, -1.0, 100, 0.05,
                                        up.back().internalVoltage);
  std::cout << "branch,vgs_V,ids_A,P_C_per_m2\n";
  for (const auto& p : up) {
    std::printf("up,%.3f,%.6g,%.5f\n", p.vgs, p.drainCurrent, p.polarization);
  }
  for (const auto& p : down) {
    std::printf("down,%.3f,%.6g,%.5f\n", p.vgs, p.drainCurrent,
                p.polarization);
  }

  {
    plot::Series upSeries, downSeries;
    upSeries.label = "sweep up";
    downSeries.label = "sweep down";
    // Clamp to a 0.1 fA junction-leakage floor: the compact model's
    // subthreshold exponential keeps falling forever, real devices do not.
    for (const auto& p : up) {
      upSeries.x.push_back(p.vgs);
      upSeries.y.push_back(std::max(p.drainCurrent, 1e-16));
    }
    for (const auto& p : down) {
      downSeries.x.push_back(p.vgs);
      downSeries.y.push_back(std::max(p.drainCurrent, 1e-16));
    }
    plot::ChartOptions chart;
    chart.title = "I_DS-V_GS hysteresis, T_FE = 2.25 nm (Fig. 2a)";
    chart.xLabel = "V_GS [V]";
    chart.yLabel = "I_DS [A] (log)";
    chart.logY = true;
    plot::renderChart(std::cout, {upSeries, downSeries}, chart);
  }

  // Point A (bit 0) and point B (bit 1) at V_GS = 0.
  const double iA = core::stateCurrent(params, 0.0, 0.4, 0.0);
  const double iB = core::stateCurrent(params, 0.0, 0.4, 3.0);

  bench::banner("Fig. 2(b): polarization retention under write pulses");
  spice::Netlist n;
  auto* vg = n.add<spice::VoltageSource>("Vg", n.node("g"), n.ground(),
                                         dc(0.0));
  n.add<spice::VoltageSource>("Vd", n.node("d"), n.ground(), dc(0.0));
  n.add<spice::VoltageSource>("Vs", n.node("s"), n.ground(), dc(0.0));
  core::attachFefet(n, "x", "g", "d", "s", params, 0.0);
  spice::Simulator sim(n);
  sim.initializeUic();
  // +0.68 V write, 20 ns hold, -0.68 V write, 20 ns hold.
  vg->setShape(
      spice::shapes::pwl({{0.0, 0.0},
                          {1e-9, 0.0}, {1.2e-9, 0.68}, {2.2e-9, 0.68},
                          {2.4e-9, 0.0},
                          {22e-9, 0.0}, {22.2e-9, -0.68}, {23.4e-9, -0.68},
                          {23.6e-9, 0.0}}));
  spice::TransientOptions options;
  options.duration = 45e-9;
  options.dtMax = 50e-12;
  const auto r = sim.runTransient(
      options, {Probe::v("g"), Probe::deviceState("x:fe", "P")});
  bench::dumpWaveform(r.waveform, {"v(g)", "P(x:fe)"}, 45);

  bench::Comparison cmp;
  cmp.addText("hysteresis spans V_GS = 0 (nonvolatile)", "yes",
              window.nonvolatile ? "yes" : "no", "");
  cmp.add("hysteresis window width (~0.5 V)", 0.5, window.width(), "V");
  cmp.add("up-switch voltage", 0.5, window.upSwitchVoltage, "V");
  cmp.add("down-switch voltage", -0.1, window.downSwitchVoltage, "V");
  cmp.add("I(B)/I(A) distinguishability", 1e6, iB / iA, "x", 3);
  cmp.add("P retained after +write & hold", 0.2,
          r.waveform.valueAt("P(x:fe)", 20e-9), "C/m^2");
  cmp.add("P after -write & hold (depolarized OFF)", 0.0,
          r.waveform.finalValue("P(x:fe)"), "C/m^2");
  cmp.print();
  return 0;
}
