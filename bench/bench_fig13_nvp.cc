// Reproduces paper Fig. 13: forward progress of the ODAB nonvolatile
// processor on MiBench workloads under a Wi-Fi harvester supply, FEFET vs
// FERAM backup memory (Table 3 parameters).  Paper: 22-38% more forward
// progress (average 27%), with the largest gains at the lowest power.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "nvp/nv_processor.h"

using namespace fefet;
using namespace fefet::nvp;

int main() {
  const auto traces = standardTraceSet();
  const auto suite = mibenchSuite();
  const auto fefet = fefetNvm();
  const auto feram = feramNvm();
  const auto& paperTrace = traces[2];  // the paper's operating point

  bench::banner("Fig. 13: forward progress per benchmark (" +
                paperTrace.name + ", " +
                std::to_string(paperTrace.trace.meanPower() * 1e6).substr(0, 4) +
                " uW mean)");
  std::cout << "benchmark,fp_feram,fp_fefet,gain_percent\n";
  double sumGain = 0.0, minGain = 1e9, maxGain = -1e9;
  for (const auto& w : suite) {
    const auto a = simulateNvp(paperTrace.trace, w, fefet);
    const auto b = simulateNvp(paperTrace.trace, w, feram);
    const double gain = a.forwardProgress / b.forwardProgress - 1.0;
    sumGain += gain;
    minGain = std::min(minGain, gain);
    maxGain = std::max(maxGain, gain);
    std::printf("%s,%.4f,%.4f,%.1f\n", w.name.c_str(), b.forwardProgress,
                a.forwardProgress, gain * 100.0);
  }

  {
    std::vector<plot::Bar> bars;
    for (const auto& w : suite) {
      const auto a = simulateNvp(paperTrace.trace, w, fefet);
      const auto b = simulateNvp(paperTrace.trace, w, feram);
      bars.push_back({w.name + " FERAM", b.forwardProgress});
      bars.push_back({w.name + " FEFET", a.forwardProgress});
    }
    plot::renderBars(std::cout, bars,
                     "forward progress per benchmark (Fig. 13)");
  }

  bench::banner("gain vs harvested power (lowest power = most interrupted)");
  std::cout << "trace,mean_uW,interruptions_per_s,avg_gain_percent\n";
  for (const auto& nt : traces) {
    double sum = 0.0;
    for (const auto& w : suite) {
      sum += forwardProgressGain(nt.trace, w, fefet, feram);
    }
    std::printf("%s,%.1f,%.0f,%.1f\n", nt.name.c_str(),
                nt.trace.meanPower() * 1e6, nt.trace.interruptionRate(),
                sum / suite.size() * 100.0);
  }

  bench::banner("backup/restore energy budget at the paper point (bitcount)");
  const auto fA = simulateNvp(paperTrace.trace, suite[0], fefet);
  const auto fB = simulateNvp(paperTrace.trace, suite[0], feram);
  std::printf("FEFET: %d cycles, backup %.3g uJ, restore %.3g uJ\n",
              fA.powerCycles, fA.backupEnergy * 1e6, fA.restoreEnergy * 1e6);
  std::printf("FERAM: %d cycles, backup %.3g uJ, restore %.3g uJ\n",
              fB.powerCycles, fB.backupEnergy * 1e6, fB.restoreEnergy * 1e6);

  bench::Comparison cmp;
  cmp.add("min gain (paper: 22%)", 22.0, minGain * 100.0, "%");
  cmp.add("max gain (paper: 38%)", 38.0, maxGain * 100.0, "%");
  cmp.add("average gain (paper: 27%)", 27.0, sumGain / suite.size() * 100.0,
          "%");
  cmp.print();
  return 0;
}
