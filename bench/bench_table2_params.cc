// Reproduces paper Table 2: the simulation parameter card, plus the
// quantities this reproduction derives/reconstructs from it.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/materials.h"
#include "ferro/lk_model.h"
#include "xtor/technology.h"

using namespace fefet;

int main() {
  bench::banner("Table 2: simulation parameters");
  const auto& tech = xtor::defaultTechnology();
  const auto fefetMat = core::fefetMaterial();
  const auto feramMat = core::feramMaterial();

  TextTable table({"parameter", "value", "source"});
  table.addRow({"technology node", "45 nm", "Table 2"});
  table.addRow({"width of the transistors", "65 nm", "Table 2"});
  table.addRow({"alpha", "-7e9 m/F", "Table 2"});
  table.addRow({"beta", "3.3e10 m^5/F/C^2", "Table 2"});
  table.addRow({"gamma", "-0.2e10 m^9/F/C^4", "Table 2"});
  table.addRow({"metal capacitance", "0.2 fF/um", "Table 2"});
  table.addRow({"write voltage", "0.68 V", "Table 2"});
  table.addRow({"read voltage", "0.40 V", "Table 2"});
  table.addRow({"rho (FEFET gate stack)",
                strings::generalFormat(fefetMat.rho, 4) + " ohm*m",
                "reconstructed (550 ps @ 0.68 V)"});
  table.addRow({"rho (FERAM capacitor)",
                strings::generalFormat(feramMat.rho, 4) + " ohm*m",
                "reconstructed (550 ps @ 1.64 V)"});
  table.addRow({"write-select boost", "1.36 V (2x VDD)", "this work (§4.1)"});
  table.print(std::cout);

  bench::banner("derived ferroelectric statics (test oracles)");
  const ferro::LandauKhalatnikov lk(fefetMat);
  bench::Comparison cmp;
  cmp.add("remnant polarization", 0.4636, lk.remnantPolarization(), "C/m^2");
  cmp.add("coercive field", 1.2435, lk.coerciveField() * 1e-9, "GV/m");
  cmp.add("coercive voltage @1nm (paper: 1.26 V)", 1.26,
          lk.coerciveField() * 1e-9, "V");
  cmp.add("double-well barrier", 3.745e8, lk.wellBarrier(), "J/m^3");
  cmp.print();

  bench::banner("transistor card");
  std::cout << tech.describe();
  return 0;
}
