// Reproduces paper Fig. 11: lambda-rule 2x2 layouts of the 2T FEFET cell
// and the minimum-area 1T-1C FERAM cell; the paper reports a 2.4x area
// penalty for the FEFET cell.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "layout/layout.h"

using namespace fefet;

int main() {
  layout::DesignRules rules;

  bench::banner("Fig. 11: cell footprints at W = 65 nm");
  const auto fefet = layout::fefet2TCell(rules, 65e-9);
  const auto feram = layout::feram1T1CCell(rules, 65e-9);
  std::printf("FEFET 2T cell : %.0f x %.0f nm = %.4f um^2\n  %s\n",
              fefet.width * 1e9, fefet.height * 1e9, fefet.area() * 1e12,
              fefet.breakdown.c_str());
  std::printf("FERAM 1T-1C   : %.0f x %.0f nm = %.4f um^2\n  %s\n",
              feram.width * 1e9, feram.height * 1e9, feram.area() * 1e12,
              feram.breakdown.c_str());

  bench::banner("2x2 arrays (as drawn in the figure)");
  const auto fefetArr = layout::tileArray(fefet, 2, 2);
  const auto feramArr = layout::tileArray(feram, 2, 2);
  std::printf("FEFET 2x2 : %.0f x %.0f nm = %.4f um^2\n", fefetArr.width * 1e9,
              fefetArr.height * 1e9, fefetArr.area() * 1e12);
  std::printf("FERAM 2x2 : %.0f x %.0f nm = %.4f um^2\n", feramArr.width * 1e9,
              feramArr.height * 1e9, feramArr.area() * 1e12);

  bench::banner("area ratio across transistor widths");
  std::cout << "width_nm,ratio\n";
  for (double w : {50e-9, 65e-9, 90e-9, 112.5e-9, 130e-9}) {
    std::printf("%.1f,%.3f\n", w * 1e9, layout::cellAreaRatio(rules, w));
  }

  bench::Comparison cmp;
  cmp.add("FEFET/FERAM cell area ratio", 2.4,
          layout::cellAreaRatio(rules, 65e-9), "x");
  cmp.add("2x2 array area ratio", 2.4, fefetArr.area() / feramArr.area(),
          "x");
  cmp.print();
  return 0;
}
