// Reproduces paper Fig. 1(c): the P-E hysteresis loop of the ferroelectric
// capacitor described by the time-dependent LK equation with the Table 2
// coefficients.  Prints the traced loop (E vs P) and the extracted
// remnant polarization / coercive field against the analytic values.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/materials.h"
#include "ferro/fe_capacitor.h"
#include "ferro/pe_loop.h"

using namespace fefet;

int main() {
  bench::banner("Fig. 1(c): P-E loop of the ferroelectric capacitor");

  const ferro::LkCoefficients material = core::feramMaterial();
  const ferro::FeGeometry geometry{1e-9, 65e-9 * 45e-9};
  const ferro::FeCapacitor cap(material, geometry);

  ferro::PeLoopOptions options;
  options.amplitude = 2.2 * cap.coerciveVoltage();
  options.period = 400e-9;
  const auto loop = ferro::tracePeLoop(cap, options);

  std::cout << "field_GV_per_m,polarization_C_per_m2\n";
  const std::size_t stride = loop.field.size() / 60 + 1;
  for (std::size_t i = 0; i < loop.field.size(); i += stride) {
    std::printf("%.4f,%.4f\n", loop.field[i] * 1e-9, loop.polarization[i]);
  }

  plot::Series loopSeries;
  loopSeries.label = "P(E)";
  loopSeries.x = loop.field;
  loopSeries.y = loop.polarization;
  plot::ChartOptions chart;
  chart.title = "P-E hysteresis loop (Fig. 1c)";
  chart.xLabel = "E [V/m]";
  chart.yLabel = "P [C/m^2]";
  plot::renderChart(std::cout, {loopSeries}, chart);

  const ferro::LandauKhalatnikov lk(material);
  bench::Comparison cmp;
  cmp.add("remnant polarization P_r", 0.4636, loop.remnantDown, "C/m^2");
  cmp.add("remnant polarization (analytic)", 0.4636,
          lk.remnantPolarization(), "C/m^2");
  cmp.add("coercive field E_c", 1.2435, lk.coerciveField() * 1e-9, "GV/m");
  cmp.add("coercive voltage @ 1 nm (paper: 1.26 V)", 1.26,
          loop.coerciveVoltageUp, "V");
  cmp.add("loop area", 0.0, loop.area(), "V*C/m^2 (hysteresis > 0)");
  cmp.print();
  return 0;
}
