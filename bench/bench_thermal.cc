// Thermal study (extension): the paper's design point across temperature.
// Heating softens the ferroelectric well (Curie–Weiss) and raises kT —
// the memory window, write wall and retention all degrade together.  The
// bench finds the maximum temperature at which the 2.25 nm / 0.68 V design
// still works and shows the margins' temperature slopes.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/design_space.h"
#include "core/materials.h"
#include "ferro/retention.h"
#include "ferro/thermal.h"

using namespace fefet;

namespace {
core::FefetParams deviceAt(double temperature) {
  core::FefetParams p;
  p.lk = ferro::atTemperature(core::fefetMaterial(), temperature);
  p.mos.temperature = temperature;
  // First-order transistor temperature effects: VT -1 mV/K, mobility
  // ~ (T/300)^-1.5.
  p.mos.vt0 += -1e-3 * (temperature - 300.0);
  p.mos.mobility *= std::pow(temperature / 300.0, -1.5);
  return p;
}
}  // namespace

int main() {
  bench::banner("FEFET design point vs temperature (T_C = 700 K)");
  std::cout << "T_K,Pr_fraction,window_mV,up_V,down_V,nonvolatile,"
               "log10_retention_s\n";
  ferro::RetentionModel retention;
  const double kArea = 65e-9 * 45e-9;
  // Calibrate the retention reference at 300 K as usual.
  retention.calibrateToReference(1.244, 0.4636, kArea,
                                 10.0 * 365.25 * 24 * 3600.0);
  double maxOperatingT = 0.0;
  for (double T : {250.0, 300.0, 350.0, 400.0, 450.0, 500.0}) {
    const auto device = deviceAt(T);
    const auto window = core::analyzeHysteresis(device);
    const ferro::LandauKhalatnikov lk(device.lk);
    double log10Ret = 0.0;
    if (window.nonvolatile) {
      // Device-level coercive voltage shrinks AND kT grows.
      ferro::RetentionParams rp = retention.params();
      rp.temperature = T;
      ferro::RetentionModel hot(rp);
      log10Ret = hot.log10RetentionSeconds(0.5 * window.width(),
                                           lk.remnantPolarization(), kArea);
      if (window.upSwitchVoltage < 0.58 &&
          window.downSwitchVoltage > -0.58) {
        maxOperatingT = T;  // still writable at +/-0.68 V with margin
      }
    }
    std::printf("%.0f,%.3f,%.0f,%.3f,%.3f,%d,%.1f\n", T,
                ferro::remnantFractionAt(T), window.width() * 1e3,
                window.upSwitchVoltage, window.downSwitchVoltage,
                window.nonvolatile, log10Ret);
  }

  bench::banner("compensating by thickness at high temperature");
  // At 400 K the 2.25 nm design has a slimmer window; a thicker film buys
  // it back — the design knob works across temperature.
  std::cout << "T_K,t_nm,window_mV,nonvolatile\n";
  for (double t : {2.25e-9, 2.5e-9, 2.8e-9}) {
    auto device = deviceAt(400.0);
    device.feThickness = t;
    const auto window = core::analyzeHysteresis(device);
    std::printf("400,%.2f,%.0f,%d\n", t * 1e9, window.width() * 1e3,
                window.nonvolatile);
  }

  const auto w300 = core::analyzeHysteresis(deviceAt(300.0));
  const auto w400 = core::analyzeHysteresis(deviceAt(400.0));
  bench::Comparison cmp;
  cmp.add("window at 300 K", 575.0, w300.width() * 1e3, "mV");
  cmp.add("window at 400 K (shrinks)", 0.0, w400.width() * 1e3, "mV");
  cmp.addText("still nonvolatile at 400 K", "-",
              w400.nonvolatile ? "yes" : "no", "");
  cmp.add("max T with 0.68 V write margin", 0.0, maxOperatingT, "K");
  cmp.print();
  return 0;
}
