// Reproduces paper Fig. 10: write access time (a) and write energy (b)
// versus write voltage for the 2T FEFET cell and the 1T-1C FERAM baseline,
// including the write-failure walls (~0.5 V FEFET / ~1.5 V FERAM) and the
// iso-write crossover used in Table 3.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/materials.h"
#include "core/write_explorer.h"

using namespace fefet;

int main() {
  core::Cell2TConfig fefetCfg;
  fefetCfg.fefet.lk = core::fefetMaterial();
  core::FeRamConfig feramCfg;
  feramCfg.lk = core::feramMaterial();

  bench::banner("Fig. 10(a,b): FEFET write time/energy vs bit-line voltage");
  const std::vector<double> fefetVolts = {0.45, 0.50, 0.55, 0.60, 0.68,
                                          0.80, 0.95, 1.10};
  const auto fefetPoints = core::sweepFefetWrite(fefetCfg, fefetVolts);
  std::cout << "voltage_V,write_time_ps,write_energy_fJ,status\n";
  for (const auto& p : fefetPoints) {
    if (p.failed) {
      std::printf("%.2f,-,-,WRITE FAILURE\n", p.voltage);
    } else {
      std::printf("%.2f,%.0f,%.3g,ok\n", p.voltage, p.writeTime * 1e12,
                  p.writeEnergy * 1e15);
    }
  }

  bench::banner("Fig. 10(a,b): FERAM write time/energy vs write voltage");
  const std::vector<double> feramVolts = {1.30, 1.40, 1.50, 1.64,
                                          1.80, 2.00, 2.20};
  const auto feramPoints = core::sweepFeramWrite(feramCfg, feramVolts);
  std::cout << "voltage_V,write_time_ps,write_energy_fJ,status\n";
  for (const auto& p : feramPoints) {
    if (p.failed) {
      std::printf("%.2f,-,-,WRITE FAILURE\n", p.voltage);
    } else {
      std::printf("%.2f,%.0f,%.3g,ok\n", p.voltage, p.writeTime * 1e12,
                  p.writeEnergy * 1e15);
    }
  }

  {
    plot::Series fefetSeries, feramSeries;
    fefetSeries.label = "FEFET";
    feramSeries.label = "FERAM";
    for (const auto& p : fefetPoints) {
      if (p.failed) continue;
      fefetSeries.x.push_back(p.voltage);
      fefetSeries.y.push_back(p.writeTime * 1e12);
    }
    for (const auto& p : feramPoints) {
      if (p.failed) continue;
      feramSeries.x.push_back(p.voltage);
      feramSeries.y.push_back(p.writeTime * 1e12);
    }
    plot::ChartOptions chart;
    chart.title = "write access time vs voltage (Fig. 10a)";
    chart.xLabel = "write voltage [V]";
    chart.yLabel = "t_write [ps]";
    plot::renderChart(std::cout, {fefetSeries, feramSeries}, chart);
  }

  bench::banner("write-failure walls and the iso-write (550 ps) solve");
  const double fefetWall = core::fefetWriteWall(fefetCfg, 0.2, 0.8);
  const double feramWall = core::feramWriteWall(feramCfg, 1.1, 1.8);
  const auto isoFefet = core::isoWriteFefet(fefetCfg, 550e-12);
  const auto isoFeram = core::isoWriteFeram(feramCfg, 550e-12);

  bench::Comparison cmp;
  cmp.add("FEFET write wall (paper: <0.5 V fails)", 0.5, fefetWall, "V");
  cmp.add("FERAM write wall (paper: <1.5 V fails)", 1.5, feramWall, "V");
  cmp.add("iso-write FEFET voltage", 0.68, isoFefet.voltage, "V");
  cmp.add("iso-write FERAM voltage", 1.64, isoFeram.voltage, "V");
  cmp.add("iso-write FEFET cell energy", 0.0, isoFefet.writeEnergy * 1e15,
          "fJ");
  cmp.add("iso-write FERAM cell energy", 0.0, isoFeram.writeEnergy * 1e15,
          "fJ");
  cmp.add("cell-level energy ratio (paper macro: 3.1x)", 3.1,
          isoFeram.writeEnergy / isoFefet.writeEnergy, "x");
  cmp.print();
  return 0;
}
