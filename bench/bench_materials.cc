// Material study (extension): why the FEFET needs a hafnia-class
// ferroelectric.  For each material in the database, derive the critical
// film thickness for FEFET memory behaviour against the same 45 nm
// transistor, the device window at a practical thickness, and the
// endurance budget.  Classic perovskites (PZT/SBT) have coercive fields a
// hundred times weaker — their critical thickness is a hundred times
// larger, which is why perovskite FEFETs never scaled and the paper's
// strong-E_c film (and later HfO2) changed the game.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/fefet.h"
#include "ferro/material_db.h"

using namespace fefet;

int main() {
  bench::banner("ferroelectric material database");
  std::cout << "material,Pr_C_per_m2,Ec_V_per_m,endurance_cycles,notes\n";
  for (const auto& m : ferro::materialDatabase()) {
    const ferro::LandauKhalatnikov lk(m.lk);
    const ferro::FatigueModel fatigue(m.fatigue);
    std::printf("%s,%.3f,%.3g,%.2g,%s\n", m.name.c_str(),
                lk.remnantPolarization(), lk.coerciveField(),
                fatigue.enduranceCycles(), m.notes.c_str());
  }

  bench::banner("FEFET feasibility per material (same 45 nm transistor)");
  std::cout << "material,t_crit_nonvolatile_nm,window_at_1.25x_tcrit_mV,"
               "practical_gate_stack\n";
  for (const auto& m : ferro::materialDatabase()) {
    core::FefetParams p;
    p.lk = m.lk;
    // Bracket the nonvolatility onset: scale from |alpha|.
    const double tScale = 9.2 / std::abs(p.lk.alpha);
    double tNv = 0.0;
    try {
      tNv = core::minimumNonvolatileThickness(p, 0.3 * tScale, 4.0 * tScale);
    } catch (const Error&) {
      std::printf("%s,-,-,no\n", m.name.c_str());
      continue;
    }
    p.feThickness = 1.25 * tNv;
    const auto window = core::analyzeHysteresis(p);
    const bool practical = tNv < 20e-9;  // a plausible gate-stack film
    std::printf("%s,%.2f,%.0f,%s\n", m.name.c_str(), tNv * 1e9,
                window.width() * 1e3, practical ? "yes" : "NO");
  }

  core::FefetParams paper;
  paper.lk = ferro::findMaterial("dac16-table2").lk;
  core::FefetParams pzt;
  pzt.lk = ferro::findMaterial("pzt").lk;
  const double tPaper =
      core::minimumNonvolatileThickness(paper, 1e-9, 4e-9);
  const double tPzt = core::minimumNonvolatileThickness(
      pzt, 0.3 * 9.2 / std::abs(pzt.lk.alpha),
      4.0 * 9.2 / std::abs(pzt.lk.alpha));

  bench::Comparison cmp;
  cmp.add("paper material: nonvolatile onset", 2.0, tPaper * 1e9, "nm");
  cmp.add("PZT: nonvolatile onset (impractical)", 0.0, tPzt * 1e9, "nm");
  cmp.add("thickness penalty of weak-Ec perovskite", 0.0, tPzt / tPaper,
          "x");
  cmp.print();
  return 0;
}
