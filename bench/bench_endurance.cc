// Endurance study (extension of the paper's §1 motivation): fatigue
// curves for the material database, and — the architectural point — how
// FERAM's destructive reads double-bill its endurance budget while the
// FEFET's non-destructive reads leave it untouched.
//
// The per-material fatigue characterization (retained-P_r curve +
// cycles-to-failure) runs as a sim::SweepEngine sweep over the material
// database, so it takes the shared resilient-execution flags (--journal /
// --resume / --deadline-seconds / watchdog knobs); the FEFET-vs-FERAM
// architectural sections stay serial.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/plot.h"
#include "common/stats.h"
#include "core/nvm_macro.h"
#include "ferro/material_db.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"

using namespace fefet;

namespace {

constexpr double kLgMin = 3.0;
constexpr double kLgMax = 16.0;
constexpr double kLgStep = 0.25;

/// One material's fatigue characterization: the sweep-point result.
struct MaterialCurve {
  std::string name;
  double enduranceCycles = 0.0;        ///< cycles to 50% window loss
  std::vector<double> retained;        ///< P_r(N)/P_r(0) on the lg grid
};

MaterialCurve characterize(const ferro::Material& m) {
  MaterialCurve out;
  out.name = m.name;
  const ferro::FatigueModel model(m.fatigue);
  out.enduranceCycles = model.enduranceCycles();
  for (double lg = kLgMin; lg <= kLgMax; lg += kLgStep) {
    out.retained.push_back(model.retainedFraction(std::pow(10.0, lg)));
  }
  return out;
}

// name|endurance,r0,r1,... — hexfloat for bit-exact journal round-trips.
sim::SweepCodec<MaterialCurve> makeCodec() {
  sim::SweepCodec<MaterialCurve> codec;
  codec.encode = [](const MaterialCurve& c) {
    std::ostringstream os;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", c.enduranceCycles);
    os << c.name << '|' << buf;
    for (double r : c.retained) {
      std::snprintf(buf, sizeof(buf), "%a", r);
      os << ',' << buf;
    }
    return os.str();
  };
  codec.decode = [](const std::string& s) {
    const auto bar = s.find('|');
    if (bar == std::string::npos) {
      throw SimulationError("bench_endurance: bad journal payload");
    }
    MaterialCurve c;
    c.name = s.substr(0, bar);
    const char* p = s.c_str() + bar + 1;
    char* end = nullptr;
    c.enduranceCycles = std::strtod(p, &end);
    if (end == p) {
      throw SimulationError("bench_endurance: bad journal payload");
    }
    p = end;
    while (*p == ',') {
      ++p;
      const double r = std::strtod(p, &end);
      if (end == p) {
        throw SimulationError("bench_endurance: bad journal payload");
      }
      c.retained.push_back(r);
      p = end;
    }
    return c;
  };
  return codec;
}

std::uint64_t configDigest(const std::vector<ferro::Material>& db) {
  std::uint64_t h = stats::splitmix64(0xFA7160E5u);
  for (const auto& m : db) {
    for (char ch : m.name) {
      h = stats::splitmix64(h ^ static_cast<std::uint64_t>(
                                    static_cast<unsigned char>(ch)));
    }
    h = stats::splitmix64(h ^ 0x7Cu);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parseSweepCli(argc, argv);
  bench::TelemetrySession telemetry("bench_endurance");
  const auto db = ferro::materialDatabase();
  const int threads =
      cli.threads > 0 ? cli.threads : sim::defaultThreadCount();
  auto codec = makeCodec();

  // Fatigue characterization as a sweep over the material database.
  sim::SweepOptions options;
  options.threads = threads;
  if (cli.resilient()) {
    bench::applySweepCli(cli, configDigest(db), &options);
  }
  sim::SweepEngine engine(options);
  bench::WallTimer timer;
  const auto curves = engine.run(
      db,
      [&](const ferro::Material& m, const sim::SweepContext&) {
        return characterize(m);
      },
      codec);
  const double seconds = timer.seconds();
  const auto outcomes = engine.outcomes();
  const auto hasResult = [&](std::size_t i) {
    return outcomes[i].status == sim::SweepPointStatus::kOk ||
           outcomes[i].status == sim::SweepPointStatus::kFromJournal;
  };

  bench::banner("polarization fatigue curves");
  std::vector<plot::Series> series;
  for (const char* name : {"pzt", "sbt", "hzo"}) {
    for (std::size_t i = 0; i < curves.size(); ++i) {
      if (!hasResult(i) || curves[i].name != name) continue;
      plot::Series s;
      s.label = name;
      double lg = kLgMin;
      for (double r : curves[i].retained) {
        s.x.push_back(lg);
        s.y.push_back(r);
        lg += kLgStep;
      }
      series.push_back(s);
    }
  }
  plot::ChartOptions chart;
  chart.title = "retained P_r fraction vs log10(cycles)";
  chart.xLabel = "log10(program/erase cycles)";
  chart.yLabel = "P_r(N) / P_r(0)";
  plot::renderChart(std::cout, series, chart);

  bench::banner("architectural endurance: destructive vs non-destructive reads");
  // A checkpoint workload: each power cycle writes the state once and
  // reads it back once.  FERAM's read is destructive, so every power
  // cycle costs it TWO polarization reversals; the FEFET pays one.
  core::NvmMacro fefet(core::MacroTechnology::kFefet);
  core::NvmMacro feram(core::MacroTechnology::kFeram);
  constexpr int kPowerCycles = 100000;
  for (int i = 0; i < kPowerCycles; ++i) {
    fefet.writeWord(0, static_cast<std::uint32_t>(i));
    fefet.readWord(0);
    feram.writeWord(0, static_cast<std::uint32_t>(i));
    feram.readWord(0);
  }
  std::printf("after %d checkpoint cycles on one hot word:\n", kPowerCycles);
  std::printf("  FEFET: %.0f polarization cycles, endurance margin %.4f\n",
              fefet.worstCaseCycles(), fefet.enduranceMarginRemaining());
  std::printf("  FERAM: %.0f polarization cycles, endurance margin %.4f\n",
              feram.worstCaseCycles(), feram.enduranceMarginRemaining());

  bench::banner("cycles to failure at a 50% window requirement");
  std::cout << "material,endurance_cycles\n";
  for (std::size_t i = 0; i < curves.size(); ++i) {
    if (!hasResult(i)) {
      std::printf("%s,%s\n", db[i].name.c_str(),
                  sim::toString(outcomes[i].status));
      continue;
    }
    std::printf("%s,%.3g\n", curves[i].name.c_str(),
                curves[i].enduranceCycles);
  }

  bench::banner("wear-out lifetime under the NVP checkpoint rate");
  // From the Fig. 13 operating point: ~1.3k power cycles per second of
  // wall time (bench_fig13 backup counts).  Each cycle writes the backup
  // region once; FERAM's restore read doubles its aging.
  const double cyclesPerSecond = 1300.0;
  const double secondsPerYear = 365.25 * 24 * 3600.0;
  const ferro::FatigueModel fefetFatigue(
      ferro::findMaterial("dac16-table2").fatigue);
  const ferro::FatigueModel feramFatigue(ferro::sbtFatigue());
  const double fefetYears = fefetFatigue.enduranceCycles() /
                            (cyclesPerSecond * secondsPerYear);
  const double feramYears = feramFatigue.enduranceCycles() /
                            (2.0 * cyclesPerSecond * secondsPerYear);
  std::printf("FEFET backup region: %.3g years to 50%% window loss\n",
              fefetYears);
  std::printf("FERAM backup region: %.3g years (reads count double)\n",
              feramYears);

  bench::Comparison cmp;
  cmp.add("FERAM aging rate vs FEFET (same workload)", 2.0,
          feram.worstCaseCycles() / fefet.worstCaseCycles(), "x");
  cmp.addText("FE-class endurance >= 1e12 (paper §1 motivation)", "yes",
              ferro::FatigueModel(ferro::sbtFatigue()).enduranceCycles() >=
                      1e12
                  ? "yes"
                  : "no",
              "");
  cmp.print();

  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    payloads.push_back(hasResult(i)
                           ? codec.encode(curves[i])
                           : std::string("!") +
                                 sim::toString(outcomes[i].status));
  }
  bench::banner("sweep-engine wall clock");
  bench::printSweepPerf("bench_endurance", threads, seconds, seconds,
                       /*identical=*/true, engine.summary(),
                       bench::resultsCrc32(payloads));
  telemetry.report().addCount("threads", static_cast<std::uint64_t>(threads));
  telemetry.addSummary(engine.summary());
  telemetry.finish();
  return 0;
}
