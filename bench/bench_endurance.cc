// Endurance study (extension of the paper's §1 motivation): fatigue
// curves for the material database, and — the architectural point — how
// FERAM's destructive reads double-bill its endurance budget while the
// FEFET's non-destructive reads leave it untouched.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/nvm_macro.h"
#include "ferro/material_db.h"

using namespace fefet;

int main() {
  bench::banner("polarization fatigue curves");
  std::vector<plot::Series> series;
  for (const char* name : {"pzt", "sbt", "hzo"}) {
    const auto& m = ferro::findMaterial(name);
    ferro::FatigueModel model(m.fatigue);
    plot::Series s;
    s.label = name;
    for (double lg = 3.0; lg <= 16.0; lg += 0.25) {
      s.x.push_back(lg);
      s.y.push_back(model.retainedFraction(std::pow(10.0, lg)));
    }
    series.push_back(s);
  }
  plot::ChartOptions chart;
  chart.title = "retained P_r fraction vs log10(cycles)";
  chart.xLabel = "log10(program/erase cycles)";
  chart.yLabel = "P_r(N) / P_r(0)";
  plot::renderChart(std::cout, series, chart);

  bench::banner("architectural endurance: destructive vs non-destructive reads");
  // A checkpoint workload: each power cycle writes the state once and
  // reads it back once.  FERAM's read is destructive, so every power
  // cycle costs it TWO polarization reversals; the FEFET pays one.
  core::NvmMacro fefet(core::MacroTechnology::kFefet);
  core::NvmMacro feram(core::MacroTechnology::kFeram);
  constexpr int kPowerCycles = 100000;
  for (int i = 0; i < kPowerCycles; ++i) {
    fefet.writeWord(0, static_cast<std::uint32_t>(i));
    fefet.readWord(0);
    feram.writeWord(0, static_cast<std::uint32_t>(i));
    feram.readWord(0);
  }
  std::printf("after %d checkpoint cycles on one hot word:\n", kPowerCycles);
  std::printf("  FEFET: %.0f polarization cycles, endurance margin %.4f\n",
              fefet.worstCaseCycles(), fefet.enduranceMarginRemaining());
  std::printf("  FERAM: %.0f polarization cycles, endurance margin %.4f\n",
              feram.worstCaseCycles(), feram.enduranceMarginRemaining());

  bench::banner("cycles to failure at a 50% window requirement");
  std::cout << "material,endurance_cycles\n";
  for (const auto& m : ferro::materialDatabase()) {
    std::printf("%s,%.3g\n", m.name.c_str(),
                ferro::FatigueModel(m.fatigue).enduranceCycles());
  }

  bench::banner("wear-out lifetime under the NVP checkpoint rate");
  // From the Fig. 13 operating point: ~1.3k power cycles per second of
  // wall time (bench_fig13 backup counts).  Each cycle writes the backup
  // region once; FERAM's restore read doubles its aging.
  const double cyclesPerSecond = 1300.0;
  const double secondsPerYear = 365.25 * 24 * 3600.0;
  const ferro::FatigueModel fefetFatigue(
      ferro::findMaterial("dac16-table2").fatigue);
  const ferro::FatigueModel feramFatigue(ferro::sbtFatigue());
  const double fefetYears = fefetFatigue.enduranceCycles() /
                            (cyclesPerSecond * secondsPerYear);
  const double feramYears = feramFatigue.enduranceCycles() /
                            (2.0 * cyclesPerSecond * secondsPerYear);
  std::printf("FEFET backup region: %.3g years to 50%% window loss\n",
              fefetYears);
  std::printf("FERAM backup region: %.3g years (reads count double)\n",
              feramYears);

  bench::Comparison cmp;
  cmp.add("FERAM aging rate vs FEFET (same workload)", 2.0,
          feram.worstCaseCycles() / fefet.worstCaseCycles(), "x");
  cmp.addText("FE-class endurance >= 1e12 (paper §1 motivation)", "yes",
              ferro::FatigueModel(ferro::sbtFatigue()).enduranceCycles() >=
                      1e12
                  ? "yes"
                  : "no",
              "");
  cmp.print();
  return 0;
}
