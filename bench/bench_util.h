// bench_util.h — shared helpers for the figure/table reproduction benches:
// banner printing, downsampled waveform dumps and paper-vs-measured rows.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "spice/waveform.h"

namespace fefet::bench {

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Wall-clock stopwatch for the sweep speedup measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One machine-readable perf record per sweep-engine migration: wall clock
/// for the same point set at 1 thread and at `threads` threads, plus whether
/// the two runs produced identical per-point results.
inline void printSweepPerf(const std::string& benchName, int threads,
                           double serialSeconds, double parallelSeconds,
                           bool identical) {
  const double speedup =
      parallelSeconds > 0.0 ? serialSeconds / parallelSeconds : 0.0;
  std::printf(
      "PERF {\"bench\":\"%s\",\"threads\":%d,\"serial_s\":%.3f,"
      "\"parallel_s\":%.3f,\"speedup\":%.2f,\"identical\":%s}\n",
      benchName.c_str(), threads, serialSeconds, parallelSeconds, speedup,
      identical ? "true" : "false");
}

/// One paper-vs-measured comparison row.
class Comparison {
 public:
  Comparison() : table_({"metric", "paper", "measured", "unit"}) {}

  void add(const std::string& metric, double paper, double measured,
           const std::string& unit, int digits = 3) {
    table_.addRow({metric, strings::generalFormat(paper, digits),
                   strings::generalFormat(measured, digits), unit});
  }
  void addText(const std::string& metric, const std::string& paper,
               const std::string& measured, const std::string& unit) {
    table_.addRow({metric, paper, measured, unit});
  }
  void print() const { table_.print(std::cout); }

 private:
  TextTable table_;
};

/// Print every Nth sample of selected waveform columns as CSV.
inline void dumpWaveform(const spice::Waveform& waveform,
                         const std::vector<std::string>& columns,
                         std::size_t maxRows = 40) {
  const auto t = waveform.time();
  if (t.empty()) return;
  std::cout << "time_ns";
  for (const auto& c : columns) std::cout << ',' << c;
  std::cout << '\n';
  const std::size_t stride = t.size() > maxRows ? t.size() / maxRows : 1;
  for (std::size_t i = 0; i < t.size(); i += stride) {
    std::printf("%.4f", t[i] * 1e9);
    for (const auto& c : columns) {
      std::printf(",%.6g", waveform.column(c)[i]);
    }
    std::printf("\n");
  }
}

}  // namespace fefet::bench
