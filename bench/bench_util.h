// bench_util.h — shared helpers for the figure/table reproduction benches:
// banner printing, downsampled waveform dumps, paper-vs-measured rows and
// the resilient-execution command line shared by the long-sweep benches
// (--journal / --resume / --deadline-seconds and the watchdog knobs).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/strings.h"
#include "common/table.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/shard_lease.h"
#include "sim/shard_supervisor.h"
#include "sim/sweep_engine.h"
#include "spice/waveform.h"

namespace fefet::bench {

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Wall-clock stopwatch for the sweep speedup measurements.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Resilient-execution flags shared by the long-sweep benches.
struct SweepCli {
  int threads = 0;                ///< --threads=N (0 = defaultThreadCount)
  std::string journalPath;        ///< --journal=PATH (crash-safe checkpoint)
  bool resume = false;            ///< --resume (replay a previous journal)
  double deadlineSeconds = 0.0;   ///< --deadline-seconds=S (whole-run budget)
  double softTimeoutSeconds = 0.0;  ///< --soft-timeout-s=S (straggler log)
  double hardTimeoutSeconds = 0.0;  ///< --hard-timeout-s=S (watchdog cancel)
  // Test hooks for the kill/resume and watchdog smoke tests:
  int stallPoint = -1;            ///< --stall-point=K: point K never converges
  double pointDelaySeconds = 0.0; ///< --point-delay-ms=M: pad every point
  // Multi-process sharding (sim/shard_lease.h).  --shards=N switches the
  // bench into supervisor mode: it re-execs itself with --shard-worker
  // once per worker slot and merges the shard journals into one PERF v3
  // line.  --chaos-kill-p makes each worker self-SIGKILL after random
  // durable appends — the kill-storm gate asserts the merged CRC still
  // matches the unsharded run.
  int shards = 0;                 ///< --shards=N (0 = in-process sweep)
  int shardWorkers = 2;           ///< --shard-workers=N (worker processes)
  std::string shardDir;           ///< --shard-lease=DIR (the board directory)
  double chaosKillP = 0.0;        ///< --chaos-kill-p=P (per-point SIGKILL)
  std::uint64_t chaosSeed = 0;    ///< --chaos-seed=S (chaos stream seed)
  double leaseTtlSeconds = 5.0;   ///< --lease-ttl-s=S (heartbeat deadline)
  int restartBudget = 16;         ///< --restart-budget=N (crash budget)
  bool shardWorker = false;       ///< --shard-worker (internal: worker mode)
  std::string shardOwner;         ///< --shard-owner=NAME (worker identity)

  /// Any resilience feature requested (switches benches to a single
  /// journaled run under kCollectAndContinue instead of the serial-vs-
  /// parallel identity pass).
  bool resilient() const {
    return !journalPath.empty() || deadlineSeconds > 0.0 ||
           softTimeoutSeconds > 0.0 || hardTimeoutSeconds > 0.0 ||
           stallPoint >= 0 || pointDelaySeconds > 0.0;
  }

  /// Multi-process execution requested (supervisor or worker side).
  bool sharded() const { return shards > 0 || shardWorker; }
};

inline SweepCli parseSweepCli(int argc, char** argv) {
  SweepCli cli;
  const auto valueOf = [](const char* arg, const char* flag) -> const char* {
    const std::size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = valueOf(arg, "--threads=")) {
      cli.threads = std::atoi(v);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (const char* v = valueOf(arg, "--journal=")) {
      cli.journalPath = v;
    } else if (std::strcmp(arg, "--resume") == 0) {
      cli.resume = true;
    } else if (const char* v = valueOf(arg, "--deadline-seconds=")) {
      cli.deadlineSeconds = std::atof(v);
    } else if (const char* v = valueOf(arg, "--soft-timeout-s=")) {
      cli.softTimeoutSeconds = std::atof(v);
    } else if (const char* v = valueOf(arg, "--hard-timeout-s=")) {
      cli.hardTimeoutSeconds = std::atof(v);
    } else if (const char* v = valueOf(arg, "--stall-point=")) {
      cli.stallPoint = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--point-delay-ms=")) {
      cli.pointDelaySeconds = std::atof(v) * 1e-3;
    } else if (const char* v = valueOf(arg, "--shards=")) {
      cli.shards = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--shard-workers=")) {
      cli.shardWorkers = std::atoi(v);
    } else if (const char* v = valueOf(arg, "--shard-lease=")) {
      cli.shardDir = v;
    } else if (const char* v = valueOf(arg, "--chaos-kill-p=")) {
      cli.chaosKillP = std::atof(v);
    } else if (const char* v = valueOf(arg, "--chaos-seed=")) {
      cli.chaosSeed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = valueOf(arg, "--lease-ttl-s=")) {
      cli.leaseTtlSeconds = std::atof(v);
    } else if (const char* v = valueOf(arg, "--restart-budget=")) {
      cli.restartBudget = std::atoi(v);
    } else if (std::strcmp(arg, "--shard-worker") == 0) {
      cli.shardWorker = true;
    } else if (const char* v = valueOf(arg, "--shard-owner=")) {
      cli.shardOwner = v;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--threads=N] "
                   "[--journal=PATH] [--resume] "
                   "[--deadline-seconds=S] [--soft-timeout-s=S] "
                   "[--hard-timeout-s=S] [--stall-point=K] "
                   "[--point-delay-ms=M] [--shards=N] [--shard-workers=N] "
                   "[--shard-lease=DIR] [--chaos-kill-p=P] [--chaos-seed=S] "
                   "[--lease-ttl-s=S] [--restart-budget=N]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  if (cli.resume && cli.journalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal=PATH\n");
    std::exit(2);
  }
  if (cli.shardWorker && cli.shardDir.empty()) {
    std::fprintf(stderr, "--shard-worker requires --shard-lease=DIR\n");
    std::exit(2);
  }
  return cli;
}

/// Wire the CLI into sweep options: journal, whole-run deadline, watchdog
/// limits, and CollectAndContinue so a resilient run reports partial
/// results instead of throwing.  `configDigest` must cover everything that
/// shapes the per-point work (see SweepJournalOptions::configDigest).
inline void applySweepCli(const SweepCli& cli, std::uint64_t configDigest,
                          sim::SweepOptions* options) {
  if (cli.threads > 0) options->threads = cli.threads;
  options->journal.path = cli.journalPath;
  options->journal.resume = cli.resume;
  options->journal.configDigest = configDigest;
  if (cli.deadlineSeconds > 0.0) {
    options->deadline = Deadline::after(cli.deadlineSeconds);
  }
  options->softPointTimeoutSeconds = cli.softTimeoutSeconds;
  options->hardPointTimeoutSeconds = cli.hardTimeoutSeconds;
  if (cli.resilient()) {
    options->failurePolicy = sim::SweepFailurePolicy::kCollectAndContinue;
  }
}

/// One machine-readable perf record per sweep-engine migration: wall clock
/// for the same point set at 1 thread and at `threads` threads, whether
/// the runs produced identical per-point results, the outcome tally of the
/// (final) run and a CRC32 over the encoded results.  "ok" counts points
/// with a valid result (simulated or journal-replayed); the smoke tests
/// compare everything except the wall-clock fields and "from_journal".
inline void printSweepPerf(const std::string& benchName, int threads,
                           double serialSeconds, double parallelSeconds,
                           bool identical, const sim::SweepSummary& summary,
                           std::uint32_t resultsCrc) {
  const double speedup =
      parallelSeconds > 0.0 ? serialSeconds / parallelSeconds : 0.0;
  std::printf(
      "PERF {\"bench\":\"%s\",\"threads\":%d,\"serial_s\":%.3f,"
      "\"parallel_s\":%.3f,\"speedup\":%.2f,\"identical\":%s,"
      "\"ok\":%zu,\"failed\":%zu,\"timed_out\":%zu,\"from_journal\":%zu,"
      "\"not_run\":%zu,\"results_crc\":\"%08x\"}\n",
      benchName.c_str(), threads, serialSeconds, parallelSeconds, speedup,
      identical ? "true" : "false", summary.completed(), summary.failed,
      summary.timedOut, summary.fromJournal, summary.notRun, resultsCrc);
}

/// CRC over per-point encoded results: the cheap bit-identity fingerprint
/// compared between a fresh run and a kill+resume run.
inline std::uint32_t resultsCrc32(const std::vector<std::string>& payloads) {
  std::string all;
  for (const auto& p : payloads) {
    all += p;
    all += '\n';
  }
  return sim::crc32(all);
}

/// PERF v3: the sharded-run counterpart of printSweepPerf.  One line with
/// the merged outcome (ok/missing/duplicates), the supervision tally
/// (spawns/restarts/crashes) and per-shard tallies; "results_crc" uses
/// the same payload+'\n' fingerprint as resultsCrc32, so a complete
/// sharded run must print the same CRC as the unsharded bench.
inline void printShardPerf(const std::string& benchName,
                           const sim::ShardBoardConfig& board, int workers,
                           const sim::ShardSupervisorReport& report) {
  std::string tally;
  for (const auto& t : report.merge.shards) {
    char tbuf[192];
    std::snprintf(tbuf, sizeof(tbuf),
                  "%s{\"shard\":%d,\"points\":%zu,\"duplicates\":%zu,"
                  "\"token\":%llu,\"complete\":%s}",
                  tally.empty() ? "" : ",", t.shard, t.points, t.duplicates,
                  static_cast<unsigned long long>(t.token),
                  t.complete ? "true" : "false");
    tally += tbuf;
  }
  std::printf(
      "PERF {\"bench\":\"%s\",\"v\":3,\"mode\":\"sharded\",\"points\":%zu,"
      "\"shards\":%d,\"workers\":%d,\"ok\":%zu,\"missing\":%zu,"
      "\"duplicates\":%zu,\"spawns\":%d,\"restarts\":%d,\"crashes\":%d,"
      "\"complete\":%s,\"results_crc\":\"%08x\",\"shard_tally\":[%s]}\n",
      benchName.c_str(), board.points, board.shards, workers,
      report.merge.records.size(), report.merge.missing,
      report.merge.duplicates, report.spawns, report.restarts,
      report.crashes, report.complete() ? "true" : "false",
      report.merge.resultsCrc, tally.c_str());
}

/// Run a bench's point space across worker processes (sim/shard_lease.h).
/// Worker side (--shard-worker): run the shard-lease loop against the
/// board and exit.  Supervisor side (--shards=N): re-exec argv0 with
/// --shard-worker once per slot (slot-stable owner names keep chaos
/// streams reproducible across restarts), supervise, merge, and print the
/// PERF v3 line.  `fn` must be the exact per-point payload the unsharded
/// bench journals — the merged CRC is only comparable if the payload is a
/// pure function of (index, baseSeed).
inline int runShardedBench(const SweepCli& cli, const std::string& benchName,
                           const char* argv0, std::size_t points,
                           std::uint64_t baseSeed, std::uint64_t configDigest,
                           const sim::ShardPointFn& fn) {
  sim::ShardBoardConfig board;
  board.dir = cli.shardDir.empty() ? benchName + ".board" : cli.shardDir;
  board.points = points;
  board.shards = cli.shards > 0 ? cli.shards : 1;
  board.baseSeed = baseSeed;
  board.configDigest = configDigest;

  if (cli.shardWorker) {
    sim::ShardWorkerOptions options;
    options.board = board;
    options.owner = cli.shardOwner;
    options.leaseTtlSeconds = cli.leaseTtlSeconds;
    options.chaosKillP = cli.chaosKillP;
    options.chaosSeed = cli.chaosSeed;
    if (cli.deadlineSeconds > 0.0) {
      options.deadline = Deadline::after(cli.deadlineSeconds);
    }
    sim::runShardWorker(options, fn);
    return 0;
  }

  sim::ShardSupervisorOptions options;
  options.board = board;
  options.workers = cli.shardWorkers;
  options.restartBudget = cli.restartBudget;
  options.leaseTtlSeconds = cli.leaseTtlSeconds;
  if (cli.deadlineSeconds > 0.0) {
    options.deadline = Deadline::after(cli.deadlineSeconds);
  }

  char buf[64];
  std::vector<std::string> workerArgv;
  workerArgv.push_back(argv0);
  workerArgv.push_back("--shard-worker");
  workerArgv.push_back("--shard-lease=" + board.dir);
  workerArgv.push_back("--shard-owner=w{slot}");
  std::snprintf(buf, sizeof(buf), "--shards=%d", board.shards);
  workerArgv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--lease-ttl-s=%g", cli.leaseTtlSeconds);
  workerArgv.push_back(buf);
  if (cli.chaosKillP > 0.0) {
    std::snprintf(buf, sizeof(buf), "--chaos-kill-p=%g", cli.chaosKillP);
    workerArgv.push_back(buf);
    std::snprintf(buf, sizeof(buf), "--chaos-seed=%llu",
                  static_cast<unsigned long long>(cli.chaosSeed));
    workerArgv.push_back(buf);
  }
  if (cli.deadlineSeconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "--deadline-seconds=%g",
                  cli.deadlineSeconds);
    workerArgv.push_back(buf);
  }

  sim::ShardSupervisor supervisor(options);
  const auto report = supervisor.run(workerArgv);
  printShardPerf(benchName, board, cli.shardWorkers, report);
  return report.complete() ? 0 : 1;
}

/// End-of-run telemetry for a bench: arms the trace collector from
/// FEFET_TRACE at construction, and at finish() emits the unified run
/// report (obs/report.h) as one "REPORT {...}" stdout line plus the
/// optional file outputs:
///
///   FEFET_TRACE=out.json    — Chrome trace_event JSON (chrome://tracing,
///                             https://ui.perfetto.dev)
///   FEFET_METRICS=out.json  — the report JSON (metrics snapshot + bench
///                             fields); FEFET_METRICS=0 still means
///                             "disable metrics" (obs/metrics.h)
///
/// finish() must run after all sweeps complete (ThreadPool joined) — the
/// trace exporter's quiescence contract.  The existing PERF lines are
/// unchanged; REPORT is additive.
class TelemetrySession {
 public:
  explicit TelemetrySession(std::string benchName)
      : report_(std::move(benchName)), tracePath_(obs::Trace::enableFromEnv()) {}

  obs::RunReport& report() { return report_; }

  /// Record a sweep outcome tally in the report (shared shape across
  /// benches so the failure story is machine-comparable).
  void addSummary(const sim::SweepSummary& summary) {
    report_.addCount("ok", summary.completed());
    report_.addCount("failed", summary.failed);
    report_.addCount("timed_out", summary.timedOut);
    report_.addCount("from_journal", summary.fromJournal);
    report_.addCount("not_run", summary.notRun);
  }

  void finish() {
    const obs::MetricsSnapshot snapshot = obs::Metrics::snapshot();
    std::printf("REPORT %s\n", report_.toJson(snapshot).c_str());
    if (const char* path = std::getenv("FEFET_METRICS")) {
      if (std::strcmp(path, "0") != 0 && std::strcmp(path, "1") != 0) {
        if (!report_.writeJson(path, snapshot)) {
          std::fprintf(stderr, "telemetry: cannot write metrics JSON to %s\n",
                       path);
        }
      }
    }
    if (!tracePath_.empty()) {
      if (!obs::Trace::writeChromeJson(tracePath_)) {
        std::fprintf(stderr, "telemetry: cannot write trace JSON to %s\n",
                     tracePath_.c_str());
      }
    }
  }

 private:
  obs::RunReport report_;
  std::string tracePath_;
};

/// One paper-vs-measured comparison row.
class Comparison {
 public:
  Comparison() : table_({"metric", "paper", "measured", "unit"}) {}

  void add(const std::string& metric, double paper, double measured,
           const std::string& unit, int digits = 3) {
    table_.addRow({metric, strings::generalFormat(paper, digits),
                   strings::generalFormat(measured, digits), unit});
  }
  void addText(const std::string& metric, const std::string& paper,
               const std::string& measured, const std::string& unit) {
    table_.addRow({metric, paper, measured, unit});
  }
  void print() const { table_.print(std::cout); }

 private:
  TextTable table_;
};

/// Print every Nth sample of selected waveform columns as CSV.
inline void dumpWaveform(const spice::Waveform& waveform,
                         const std::vector<std::string>& columns,
                         std::size_t maxRows = 40) {
  const auto t = waveform.time();
  if (t.empty()) return;
  std::cout << "time_ns";
  for (const auto& c : columns) std::cout << ',' << c;
  std::cout << '\n';
  const std::size_t stride = t.size() > maxRows ? t.size() / maxRows : 1;
  for (std::size_t i = 0; i < t.size(); i += stride) {
    std::printf("%.4f", t[i] * 1e9);
    for (const auto& c : columns) {
      std::printf(",%.6g", waveform.column(c)[i]);
    }
    std::printf("\n");
  }
}

}  // namespace fefet::bench
