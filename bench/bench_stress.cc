// Disturb-accumulation stress study (extension of the paper's "disturb-
// free" claims): hammer patterns against the 2x3 array under the Table 1
// bias scheme and track whether victim-cell polarization drifts toward
// the basin boundary as operations accumulate.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/materials.h"
#include "core/stress.h"

using namespace fefet;

int main() {
  core::ArrayConfig cfg;
  cfg.fefet.lk = core::fefetMaterial();

  bench::banner("stress patterns, 30 cycles each (2x3 array)");
  std::cout << "pattern,operations,states_intact,max_drift,mean_drift,"
               "max_drift_fraction\n";
  bool allIntact = true;
  double worstFraction = 0.0;
  for (const auto& report : core::runAllStressPatterns(cfg, 30)) {
    allIntact = allIntact && report.statesIntact;
    worstFraction = std::max(worstFraction, report.maxDriftFraction);
    std::printf("%s,%d,%s,%.5f,%.5f,%.4f\n",
                core::toString(report.pattern).c_str(), report.operations,
                report.statesIntact ? "yes" : "NO", report.maxDrift,
                report.meanDrift, report.maxDriftFraction);
  }

  bench::banner("drift accumulation vs cycle count (column-hammer)");
  std::cout << "cycles,max_drift_fraction\n";
  double prev = 0.0;
  bool saturates = true;
  for (int cycles : {5, 10, 20, 40}) {
    const auto r =
        core::runStress(cfg, core::StressPattern::kColumnHammer, cycles);
    std::printf("%d,%.4f\n", cycles, r.maxDriftFraction);
    if (cycles > 5 && r.maxDriftFraction > prev * 2.0 + 0.02) {
      saturates = false;  // runaway accumulation would be a disturb bug
    }
    prev = r.maxDriftFraction;
  }

  bench::Comparison cmp;
  cmp.addText("all victim states intact after hammering", "yes",
              allIntact ? "yes" : "no", "");
  cmp.add("worst victim drift (fraction of separation)", 0.0, worstFraction,
          "(1.0 would flip)");
  cmp.addText("drift saturates instead of accumulating", "yes",
              saturates ? "yes" : "no", "");
  cmp.print();
  return allIntact ? 0 : 1;
}
