// Cell-level design-choice ablations:
//  1. write-select boost level (the paper boosts to pass V_write fully;
//     how much does the boost buy?),
//  2. read voltage (current and disturb margin vs V_read = 0.4 V),
//  3. 2T vs 3T cell area (the array co-design that "eliminates the need
//     for read access transistors").
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/cell2t.h"
#include "core/materials.h"
#include "layout/layout.h"

using namespace fefet;

int main() {
  core::Cell2TConfig base;
  base.fefet.lk = core::fefetMaterial();

  bench::banner("ablation 1: write-select boost level (V_write = 0.68 V)");
  std::cout << "boost_V,min_write1_ps,min_write0_ps\n";
  double tAtVdd = 0.0, tAtBoost = 0.0;
  for (double boost : {0.68, 0.90, 1.10, 1.36, 1.60}) {
    core::Cell2TConfig cfg = base;
    cfg.levels.writeBoost = boost;
    core::Cell2T cell(cfg);
    const double t1 = cell.minimumWritePulse(true, 0.68);
    const double t0 = cell.minimumWritePulse(false, 0.68);
    if (boost == 0.68) tAtVdd = std::max(t1, t0);
    if (boost == 1.36) tAtBoost = std::max(t1, t0);
    std::printf("%.2f,%.0f,%.0f\n", boost, t1 * 1e12, t0 * 1e12);
  }
  std::printf("-> boosting the select to 2xVDD speeds the worst write by "
              "%.1fx vs an unboosted select\n",
              tAtVdd / tAtBoost);

  bench::banner("ablation 2: read voltage");
  std::cout << "vread_V,i_on_uA,i_off_pA,ratio,P_drift_after_5_reads\n";
  for (double vread : {0.20, 0.30, 0.40, 0.50, 0.60}) {
    core::Cell2TConfig cfg = base;
    cfg.levels.vRead = vread;
    core::Cell2T cell(cfg);
    cell.setStoredBit(true);
    const double p0 = cell.polarization();
    double iOn = 0.0;
    for (int k = 0; k < 5; ++k) iOn = cell.read().readCurrent;
    const double drift = std::abs(cell.polarization() - p0);
    cell.setStoredBit(false);
    const double iOff = cell.read().readCurrent;
    std::printf("%.2f,%.2f,%.1f,%.3g,%.4g\n", vread, iOn * 1e6, iOff * 1e12,
                iOn / std::max(iOff, 1e-15), drift);
  }
  std::printf("-> the read path is disturb-free across the sweep: the "
              "read current never couples back into the gate stack\n");

  bench::banner("ablation 3: 2T (paper) vs 3T (separate read access) area");
  layout::DesignRules rules;
  const auto cell2t = layout::fefet2TCell(rules, 65e-9);
  const auto cell3t = layout::fefet3TCell(rules, 65e-9);
  const auto feram = layout::feram1T1CCell(rules, 65e-9);
  std::printf("2T: %.4f um^2 (%s)\n", cell2t.area() * 1e12,
              cell2t.breakdown.c_str());
  std::printf("3T: %.4f um^2 (%s)\n", cell3t.area() * 1e12,
              cell3t.breakdown.c_str());

  bench::Comparison cmp;
  cmp.add("2T vs FERAM area (paper: 2.4x)", 2.4,
          cell2t.area() / feram.area(), "x");
  cmp.add("3T vs FERAM area (without the co-design)", 0.0,
          cell3t.area() / feram.area(), "x");
  cmp.add("area saved by the 2T co-design", 0.0,
          (cell3t.area() - cell2t.area()) / cell3t.area() * 100.0, "%");
  cmp.print();
  return 0;
}
