// Reproduces paper §3: the FE-thickness design space — hysteresis onset,
// the non-volatility threshold ("T_FE > 1.9 nm is required"), the window
// width at the 2.25 nm design point ("around 500 mV") and the recommended
// thickness for 0.68 V operation.
//
// By default the thickness grid runs on sim::SweepEngine at 1 thread and
// at the full pool; each point is a pure function of its thickness, so the
// two runs must match field-for-field (the PERF line records the speedup).
// With any resilient-execution flag (--journal / --resume /
// --deadline-seconds / watchdog knobs) the grid runs once, journaled,
// under kCollectAndContinue — killed runs resume bit-identically.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "core/design_space.h"
#include "core/materials.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"

using namespace fefet;

namespace {

constexpr double kVread = 0.40;

bool samePoint(const core::DesignPoint& a, const core::DesignPoint& b) {
  return a.feThickness == b.feThickness && a.hysteretic == b.hysteretic &&
         a.nonvolatile == b.nonvolatile &&
         a.upSwitchVoltage == b.upSwitchVoltage &&
         a.downSwitchVoltage == b.downSwitchVoltage &&
         a.windowWidth == b.windowWidth && a.onOffRatio == b.onOffRatio &&
         a.standaloneCoerciveVoltage == b.standaloneCoerciveVoltage;
}

// Hexfloat keeps the journal round-trip bit-exact (resume identity).
sim::SweepCodec<core::DesignPoint> makeCodec() {
  sim::SweepCodec<core::DesignPoint> codec;
  codec.encode = [](const core::DesignPoint& p) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%a,%d,%d,%a,%a,%a,%a,%a",
                  p.feThickness, p.hysteretic ? 1 : 0, p.nonvolatile ? 1 : 0,
                  p.upSwitchVoltage, p.downSwitchVoltage, p.windowWidth,
                  p.onOffRatio, p.standaloneCoerciveVoltage);
    return std::string(buf);
  };
  codec.decode = [](const std::string& s) {
    core::DesignPoint p;
    int hyst = 0;
    int nv = 0;
    if (std::sscanf(s.c_str(), "%la,%d,%d,%la,%la,%la,%la,%la",
                    &p.feThickness, &hyst, &nv, &p.upSwitchVoltage,
                    &p.downSwitchVoltage, &p.windowWidth, &p.onOffRatio,
                    &p.standaloneCoerciveVoltage) != 8) {
      throw SimulationError("bench_design_space: bad journal payload");
    }
    p.hysteretic = hyst != 0;
    p.nonvolatile = nv != 0;
    return p;
  };
  return codec;
}

std::uint64_t configDigest(const std::vector<double>& thicknesses) {
  std::uint64_t h = stats::splitmix64(0xDE519A1Eu);
  const auto fold = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = stats::splitmix64(h ^ bits);
  };
  fold(kVread);
  for (double t : thicknesses) fold(t);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parseSweepCli(argc, argv);
  bench::TelemetrySession telemetry("bench_design_space");
  core::FefetParams base;
  base.lk = core::fefetMaterial();
  const int threads =
      cli.threads > 0 ? cli.threads : sim::defaultThreadCount();

  bench::banner("§3: thickness sweep");
  std::vector<double> thicknesses;
  for (double t = 1.0e-9; t <= 2.6e-9; t += 0.1e-9) thicknesses.push_back(t);

  if (cli.sharded()) {
    // Multi-process sharding over the same thickness grid: each point is
    // a pure function of its thickness, so the merged results_crc equals
    // the in-process PERF fingerprint when the board completes.
    auto shardCodec = makeCodec();
    return bench::runShardedBench(
        cli, "bench_design_space", argv[0], thicknesses.size(),
        /*baseSeed=*/1, configDigest(thicknesses),
        [&](std::size_t i, const sim::SweepContext&) {
          return shardCodec.encode(
              core::characterizeThickness(base, thicknesses[i], kVread));
        });
  }

  std::vector<core::DesignPoint> points;
  double serialSeconds = 0.0;
  double parallelSeconds = 0.0;
  bool identical = true;
  sim::SweepSummary summary;
  auto codec = makeCodec();
  std::vector<sim::SweepOutcome> outcomes;

  if (cli.resilient()) {
    sim::SweepOptions options;
    options.threads = threads;
    bench::applySweepCli(cli, configDigest(thicknesses), &options);
    sim::SweepEngine engine(options);
    bench::WallTimer timer;
    points = engine.run(
        thicknesses,
        [&](double t, const sim::SweepContext&) {
          return core::characterizeThickness(base, t, kVread);
        },
        codec);
    serialSeconds = parallelSeconds = timer.seconds();
    summary = engine.summary();
    outcomes = engine.outcomes();
  } else {
    bench::WallTimer serialTimer;
    const auto serialPoints = core::sweepThicknessParallel(
        base, thicknesses, kVread, /*threads=*/1);
    serialSeconds = serialTimer.seconds();
    bench::WallTimer parallelTimer;
    points = core::sweepThicknessParallel(base, thicknesses, kVread, threads);
    parallelSeconds = parallelTimer.seconds();

    identical = serialPoints.size() == points.size();
    for (std::size_t i = 0; identical && i < points.size(); ++i) {
      identical = samePoint(serialPoints[i], points[i]);
    }
    summary.ok = points.size();
  }

  std::cout << "t_nm,hysteretic,nonvolatile,window_mV,up_V,down_V,"
               "cap_Vc_V,on_off_ratio\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i < outcomes.size() &&
        outcomes[i].status != sim::SweepPointStatus::kOk &&
        outcomes[i].status != sim::SweepPointStatus::kFromJournal) {
      std::printf("%.2f,%s\n", thicknesses[i] * 1e9,
                  sim::toString(outcomes[i].status));
      continue;
    }
    const auto& p = points[i];
    std::printf("%.2f,%d,%d,%.0f,%.3f,%.3f,%.3f,%.3g\n", p.feThickness * 1e9,
                p.hysteretic, p.nonvolatile, p.windowWidth * 1e3,
                p.upSwitchVoltage, p.downSwitchVoltage,
                p.standaloneCoerciveVoltage, p.onOffRatio);
  }

  const double tNv = core::minimumNonvolatileThickness(base, 1.0e-9, 2.5e-9);
  const double tRec = core::recommendThickness(base, 0.68, 0.1);
  core::FefetParams design = base;
  design.feThickness = 2.25e-9;
  const auto window = core::analyzeHysteresis(design);

  bench::Comparison cmp;
  cmp.add("non-volatility onset (paper: >1.9 nm)", 1.9, tNv * 1e9, "nm");
  cmp.add("window width at 2.25 nm (paper: ~500 mV)", 500.0,
          window.width() * 1e3, "mV");
  cmp.add("recommended thickness for 0.68 V writes", 2.25, tRec * 1e9, "nm");
  cmp.add("on/off ratio at the design point", 1e6,
          core::distinguishability(design, 0.4), "x");
  cmp.print();

  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto st = i < outcomes.size() ? outcomes[i].status
                                        : sim::SweepPointStatus::kOk;
    const bool hasResult = st == sim::SweepPointStatus::kOk ||
                           st == sim::SweepPointStatus::kFromJournal;
    payloads.push_back(hasResult ? codec.encode(points[i])
                                 : std::string("!") + sim::toString(st));
  }

  bench::banner("sweep-engine wall clock");
  bench::printSweepPerf("bench_design_space", threads, serialSeconds,
                        parallelSeconds, identical, summary,
                        bench::resultsCrc32(payloads));

  telemetry.report().addCount("threads", static_cast<std::uint64_t>(threads));
  telemetry.report().addBool("identical", identical);
  telemetry.addSummary(summary);
  telemetry.finish();
  return identical ? 0 : 1;
}
