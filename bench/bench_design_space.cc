// Reproduces paper §3: the FE-thickness design space — hysteresis onset,
// the non-volatility threshold ("T_FE > 1.9 nm is required"), the window
// width at the 2.25 nm design point ("around 500 mV") and the recommended
// thickness for 0.68 V operation.
//
// The thickness grid runs on sim::SweepEngine at 1 thread and at the full
// pool; each point is a pure function of its thickness, so the two runs
// must match field-for-field (the PERF line records the speedup).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/design_space.h"
#include "core/materials.h"
#include "sim/thread_pool.h"

using namespace fefet;

namespace {

bool samePoint(const core::DesignPoint& a, const core::DesignPoint& b) {
  return a.feThickness == b.feThickness && a.hysteretic == b.hysteretic &&
         a.nonvolatile == b.nonvolatile &&
         a.upSwitchVoltage == b.upSwitchVoltage &&
         a.downSwitchVoltage == b.downSwitchVoltage &&
         a.windowWidth == b.windowWidth && a.onOffRatio == b.onOffRatio &&
         a.standaloneCoerciveVoltage == b.standaloneCoerciveVoltage;
}

}  // namespace

int main() {
  core::FefetParams base;
  base.lk = core::fefetMaterial();
  const int threads = sim::defaultThreadCount();

  bench::banner("§3: thickness sweep");
  std::vector<double> thicknesses;
  for (double t = 1.0e-9; t <= 2.6e-9; t += 0.1e-9) thicknesses.push_back(t);

  bench::WallTimer serialTimer;
  const auto serialPoints = core::sweepThicknessParallel(base, thicknesses,
                                                         0.40, /*threads=*/1);
  const double serialSeconds = serialTimer.seconds();
  bench::WallTimer parallelTimer;
  const auto points =
      core::sweepThicknessParallel(base, thicknesses, 0.40, threads);
  const double parallelSeconds = parallelTimer.seconds();

  bool identical = serialPoints.size() == points.size();
  for (std::size_t i = 0; identical && i < points.size(); ++i) {
    identical = samePoint(serialPoints[i], points[i]);
  }

  std::cout << "t_nm,hysteretic,nonvolatile,window_mV,up_V,down_V,"
               "cap_Vc_V,on_off_ratio\n";
  for (const auto& p : points) {
    std::printf("%.2f,%d,%d,%.0f,%.3f,%.3f,%.3f,%.3g\n", p.feThickness * 1e9,
                p.hysteretic, p.nonvolatile, p.windowWidth * 1e3,
                p.upSwitchVoltage, p.downSwitchVoltage,
                p.standaloneCoerciveVoltage, p.onOffRatio);
  }

  const double tNv = core::minimumNonvolatileThickness(base, 1.0e-9, 2.5e-9);
  const double tRec = core::recommendThickness(base, 0.68, 0.1);
  core::FefetParams design = base;
  design.feThickness = 2.25e-9;
  const auto window = core::analyzeHysteresis(design);

  bench::Comparison cmp;
  cmp.add("non-volatility onset (paper: >1.9 nm)", 1.9, tNv * 1e9, "nm");
  cmp.add("window width at 2.25 nm (paper: ~500 mV)", 500.0,
          window.width() * 1e3, "mV");
  cmp.add("recommended thickness for 0.68 V writes", 2.25, tRec * 1e9, "nm");
  cmp.add("on/off ratio at the design point", 1e6,
          core::distinguishability(design, 0.4), "x");
  cmp.print();

  bench::banner("sweep-engine wall clock");
  bench::printSweepPerf("bench_design_space", threads, serialSeconds,
                        parallelSeconds, identical);
  return identical ? 0 : 1;
}
