// Reproduces paper §3: the FE-thickness design space — hysteresis onset,
// the non-volatility threshold ("T_FE > 1.9 nm is required"), the window
// width at the 2.25 nm design point ("around 500 mV") and the recommended
// thickness for 0.68 V operation.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/design_space.h"
#include "core/materials.h"

using namespace fefet;

int main() {
  core::FefetParams base;
  base.lk = core::fefetMaterial();

  bench::banner("§3: thickness sweep");
  std::vector<double> thicknesses;
  for (double t = 1.0e-9; t <= 2.6e-9; t += 0.1e-9) thicknesses.push_back(t);
  const auto points = core::sweepThickness(base, thicknesses);
  std::cout << "t_nm,hysteretic,nonvolatile,window_mV,up_V,down_V,"
               "cap_Vc_V,on_off_ratio\n";
  for (const auto& p : points) {
    std::printf("%.2f,%d,%d,%.0f,%.3f,%.3f,%.3f,%.3g\n", p.feThickness * 1e9,
                p.hysteretic, p.nonvolatile, p.windowWidth * 1e3,
                p.upSwitchVoltage, p.downSwitchVoltage,
                p.standaloneCoerciveVoltage, p.onOffRatio);
  }

  const double tNv = core::minimumNonvolatileThickness(base, 1.0e-9, 2.5e-9);
  const double tRec = core::recommendThickness(base, 0.68, 0.1);
  core::FefetParams design = base;
  design.feThickness = 2.25e-9;
  const auto window = core::analyzeHysteresis(design);

  bench::Comparison cmp;
  cmp.add("non-volatility onset (paper: >1.9 nm)", 1.9, tNv * 1e9, "nm");
  cmp.add("window width at 2.25 nm (paper: ~500 mV)", 500.0,
          window.width() * 1e3, "mV");
  cmp.add("recommended thickness for 0.68 V writes", 2.25, tRec * 1e9, "nm");
  cmp.add("on/off ratio at the design point", 1e6,
          core::distinguishability(design, 0.4), "x");
  cmp.print();
  return 0;
}
