// The paper's future work, implemented (§6.2.4: "with new materials, the
// tradeoff study for the optimum retention, performance, area can be
// explored in future"): for each FEFET-practical material, sweep the film
// thickness and chart the retention / switching-voltage / area trade
// surface, then report the Pareto-style design points.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/plot.h"
#include "core/design_space.h"
#include "core/materials.h"
#include "ferro/material_db.h"
#include "ferro/retention.h"

using namespace fefet;

namespace {
constexpr double kYear = 365.25 * 24 * 3600.0;

struct TradePoint {
  double thickness;
  double writeVoltage;   ///< up-fold + 0.1 V margin
  double log10Retention; ///< at W = 65 nm
  double widthForTenYears;  ///< device width for 10-year retention [m]
};
}  // namespace

int main() {
  // Retention reference: the FERAM baseline at 10 years, as in §6.2.4.
  ferro::RetentionModel retention;
  constexpr double kRefArea = 65e-9 * 45e-9;
  retention.calibrateToReference(1.244, 0.4636, kRefArea, 10.0 * kYear);

  for (const char* name : {"dac16-table2", "hzo"}) {
    const auto& material = ferro::findMaterial(name);
    core::FefetParams base;
    base.lk = material.lk;
    const ferro::LandauKhalatnikov lk(base.lk);
    const double pr = lk.remnantPolarization();

    bench::banner(std::string("trade surface: ") + name);
    // Thickness range: from just above the NV onset to 2x onset.
    const double tScale = 9.2 / std::abs(base.lk.alpha);
    double tNv;
    try {
      tNv = core::minimumNonvolatileThickness(base, 0.3 * tScale,
                                              4.0 * tScale);
    } catch (const Error& e) {
      std::printf("no nonvolatile regime: %s\n", e.what());
      continue;
    }

    std::vector<TradePoint> points;
    std::cout << "t_nm,window_mV,write_voltage_V,log10_retention_s_at_65nm,"
                 "width_for_10y_nm,cell_area_ratio_vs_65nm\n";
    for (double f : {1.05, 1.15, 1.3, 1.5, 1.75, 2.0}) {
      core::FefetParams p = base;
      p.feThickness = f * tNv;
      const auto window = core::analyzeHysteresis(p);
      if (!window.nonvolatile) continue;
      TradePoint tp;
      tp.thickness = p.feThickness;
      // Writes are bipolar: the required |bit-line| level is set by the
      // worse of program (up-fold) and erase (down-fold) plus margin.
      tp.writeVoltage = std::max(window.upSwitchVoltage,
                                 -window.downSwitchVoltage) +
                        0.1;
      const double vcDev = 0.5 * window.width();
      tp.log10Retention =
          retention.log10RetentionSeconds(vcDev, pr, kRefArea);
      tp.widthForTenYears = ferro::RetentionModel::widthForMatchedRetention(
          1.244, kRefArea, vcDev, kRefArea, 65e-9);
      points.push_back(tp);
      std::printf("%.2f,%.0f,%.3f,%.1f,%.0f,%.2f\n", tp.thickness * 1e9,
                  window.width() * 1e3, tp.writeVoltage, tp.log10Retention,
                  tp.widthForTenYears * 1e9, tp.widthForTenYears / 65e-9);
    }
    if (points.size() >= 2) {
      plot::Series s;
      s.label = name;
      for (const auto& tp : points) {
        s.x.push_back(tp.writeVoltage);
        s.y.push_back(tp.widthForTenYears * 1e9);
      }
      plot::ChartOptions chart;
      chart.title = "retention-performance trade: width needed for 10-year "
                    "retention vs write voltage";
      chart.xLabel = "write voltage [V]";
      chart.yLabel = "width for 10y [nm]";
      plot::renderChart(std::cout, {s}, chart);
    }
  }

  bench::banner("reading the surface");
  std::printf(
      "Thicker films raise the switching voltage (performance/energy cost)\n"
      "but widen the window, i.e. raise the device-level coercive voltage\n"
      "that guards retention — so the 10-year device width shrinks.  The\n"
      "paper's 2.25 nm / 0.68 V point trades ~4x width-for-retention\n"
      "against FERAM-class drive voltage; a 1.5x-onset HZO film makes the\n"
      "same trade at CMOS-compatible deposition.  This is the exploration\n"
      "the paper deferred to future work, run on its own models.\n");
  return 0;
}
