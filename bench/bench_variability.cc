// Process-variation study: how the paper's nominal claims (window spanning
// 0 V, ~1e6 distinguishability, 0.68 V writes) survive local mismatch and
// global corners — and why the 2.25 nm design point (not the 2.05 nm
// minimum) is the right stability/voltage balance (paper §3).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/materials.h"
#include "core/variability.h"

using namespace fefet;

int main() {
  core::FefetParams nominal;
  nominal.lk = core::fefetMaterial();
  const core::VariationSpec spec;  // 20 mV VT, 2% T_FE, 3% W, 3% alpha

  bench::banner("Monte Carlo (1000 devices) across design thicknesses");
  std::cout << "t_nm,nonvolatile_%,writable_at_0.68V_%,window_mean_mV,"
               "window_sigma_mV,log10_ratio_min\n";
  for (double t : {2.05e-9, 2.15e-9, 2.25e-9, 2.35e-9, 2.50e-9}) {
    core::FefetParams p = nominal;
    p.feThickness = t;
    const auto mc = core::runDeviceMonteCarlo(p, spec, 1000);
    std::printf("%.2f,%.1f,%.1f,%.0f,%.0f,%.2f\n", t * 1e9,
                100.0 * mc.nonvolatileCount / mc.samples,
                100.0 * mc.writableCount / mc.samples,
                mc.windowWidthMean * 1e3, mc.windowWidthSigma * 1e3,
                mc.log10RatioMin);
  }

  bench::banner("process corners at the 2.25 nm design point");
  std::cout << "corner,window_V,up_V,down_V,on_off\n";
  const char* names[] = {"TT", "FF", "SS"};
  const auto corners = core::runCorners(nominal);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const auto& c = corners[i];
    std::printf("%s,%.3f,%.3f,%.3f,%.3g\n", names[i],
                c.upSwitchVoltage - c.downSwitchVoltage, c.upSwitchVoltage,
                c.downSwitchVoltage, c.onOffRatio);
  }

  bench::banner("transient write yield (20 sampled cells)");
  core::Cell2TConfig cfg;
  cfg.fefet = nominal;
  std::cout << "vwrite_V,pulse_ps,yield_%\n";
  for (const auto& [v, pulse] : std::initializer_list<std::pair<double, double>>{
           {0.68, 800e-12}, {0.68, 550e-12}, {0.60, 800e-12},
           {0.55, 800e-12}}) {
    const auto y = core::runWriteYield(cfg, spec, 20, v, pulse);
    std::printf("%.2f,%.0f,%.0f\n", v, pulse * 1e12, y.yield() * 100.0);
  }

  const auto mcNominal = core::runDeviceMonteCarlo(nominal, spec, 1000);
  bench::Comparison cmp;
  cmp.add("nonvolatile fraction at the design point", 100.0,
          100.0 * mcNominal.nonvolatileCount / mcNominal.samples, "%");
  cmp.add("worst-sample distinguishability (log10)", 6.0,
          mcNominal.log10RatioMin, "decades");
  cmp.add("worst-case up-fold (stability floor)", 0.0,
          mcNominal.upSwitchMin, "V (> 0 means hold-safe)");
  cmp.print();
  return 0;
}
