// Process-variation study: how the paper's nominal claims (window spanning
// 0 V, ~1e6 distinguishability, 0.68 V writes) survive local mismatch and
// global corners — and why the 2.25 nm design point (not the 2.05 nm
// minimum) is the right stability/voltage balance (paper §3).
//
// By default the Monte Carlo and write-yield point sets run on
// sim::SweepEngine, once at 1 thread and once at the full pool, to
// demonstrate the deterministic parallel speedup (the PERF line at the end
// is machine-readable).  With any resilient-execution flag the two point
// sets run once each on journaled engines (journals PATH.mc and
// PATH.yield) under kCollectAndContinue and a shared whole-run deadline.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/materials.h"
#include "core/memory_controller.h"
#include "core/variability.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"

using namespace fefet;

namespace {

bool sameMonteCarlo(const core::DeviceMonteCarlo& a,
                    const core::DeviceMonteCarlo& b) {
  return a.samples == b.samples && a.nonvolatileCount == b.nonvolatileCount &&
         a.writableCount == b.writableCount &&
         a.windowWidthMean == b.windowWidthMean &&
         a.windowWidthSigma == b.windowWidthSigma &&
         a.upSwitchMin == b.upSwitchMin &&
         a.downSwitchMax == b.downSwitchMax &&
         a.log10RatioMean == b.log10RatioMean &&
         a.log10RatioMin == b.log10RatioMin;
}

sim::SweepCodec<core::DeviceMonteCarlo> makeMcCodec() {
  sim::SweepCodec<core::DeviceMonteCarlo> codec;
  codec.encode = [](const core::DeviceMonteCarlo& m) {
    char buf[320];
    std::snprintf(buf, sizeof(buf), "%d,%d,%d,%a,%a,%a,%a,%a,%a", m.samples,
                  m.nonvolatileCount, m.writableCount, m.windowWidthMean,
                  m.windowWidthSigma, m.upSwitchMin, m.downSwitchMax,
                  m.log10RatioMean, m.log10RatioMin);
    return std::string(buf);
  };
  codec.decode = [](const std::string& s) {
    core::DeviceMonteCarlo m;
    if (std::sscanf(s.c_str(), "%d,%d,%d,%la,%la,%la,%la,%la,%la", &m.samples,
                    &m.nonvolatileCount, &m.writableCount, &m.windowWidthMean,
                    &m.windowWidthSigma, &m.upSwitchMin, &m.downSwitchMax,
                    &m.log10RatioMean, &m.log10RatioMin) != 9) {
      throw SimulationError("bench_variability: bad MC journal payload");
    }
    return m;
  };
  return codec;
}

sim::SweepCodec<core::WriteYield> makeYieldCodec() {
  sim::SweepCodec<core::WriteYield> codec;
  codec.encode = [](const core::WriteYield& y) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%d,%d", y.samples, y.passes);
    return std::string(buf);
  };
  codec.decode = [](const std::string& s) {
    core::WriteYield y;
    if (std::sscanf(s.c_str(), "%d,%d", &y.samples, &y.passes) != 2) {
      throw SimulationError("bench_variability: bad yield journal payload");
    }
    return y;
  };
  return codec;
}

std::uint64_t foldDouble(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return stats::splitmix64(h ^ bits);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parseSweepCli(argc, argv);
  bench::TelemetrySession telemetry("bench_variability");
  core::FefetParams nominal;
  nominal.lk = core::fefetMaterial();
  const core::VariationSpec spec;  // 20 mV VT, 2% T_FE, 3% W, 3% alpha
  const int threads =
      cli.threads > 0 ? cli.threads : sim::defaultThreadCount();

  const std::vector<double> thicknesses = {2.05e-9, 2.15e-9, 2.25e-9,
                                           2.35e-9, 2.50e-9};
  const std::vector<std::pair<double, double>> yieldPoints = {
      {0.68, 800e-12}, {0.68, 550e-12}, {0.60, 800e-12}, {0.55, 800e-12}};

  if (cli.sharded()) {
    // Multi-process sharding: the same 9-point space (5 MC thicknesses +
    // 4 yield points) leased range-by-range across worker processes.
    // Payloads match the unsharded encode exactly (the seeding is
    // thread-count-invariant), so the merged results_crc must equal the
    // in-process PERF fingerprint — the kill-storm gate relies on it.
    auto mcCodec = makeMcCodec();
    auto yieldCodec = makeYieldCodec();
    std::uint64_t digest = stats::splitmix64(0x5EED0CA1u);
    for (double t : thicknesses) digest = foldDouble(digest, t);
    for (const auto& [v, pulse] : yieldPoints) {
      digest = foldDouble(foldDouble(digest, v), pulse);
    }
    return bench::runShardedBench(
        cli, "bench_variability", argv[0],
        thicknesses.size() + yieldPoints.size(), /*baseSeed=*/1, digest,
        [&](std::size_t i, const sim::SweepContext&) -> std::string {
          if (i < thicknesses.size()) {
            core::FefetParams p = nominal;
            p.feThickness = thicknesses[i];
            return mcCodec.encode(
                core::runDeviceMonteCarloParallel(p, spec, 1000,
                                                  /*threads=*/1));
          }
          const auto& pt = yieldPoints[i - thicknesses.size()];
          core::Cell2TConfig cfg;
          cfg.fefet = nominal;
          return yieldCodec.encode(core::runWriteYieldParallel(
              cfg, spec, 20, pt.first, pt.second, /*threads=*/1));
        });
  }

  struct Results {
    std::vector<core::DeviceMonteCarlo> mc;
    std::vector<core::WriteYield> yield;
  };
  Results results;
  double serialSeconds = 0.0;
  double parallelSeconds = 0.0;
  bool identical = true;
  sim::SweepSummary summary;
  auto mcCodec = makeMcCodec();
  auto yieldCodec = makeYieldCodec();
  std::vector<sim::SweepOutcome> mcOutcomes;
  std::vector<sim::SweepOutcome> yieldOutcomes;

  if (cli.resilient()) {
    // Two journaled engines (the point types differ) sharing one
    // whole-run deadline; journals land at PATH.mc / PATH.yield.
    std::uint64_t mcDigest = stats::splitmix64(0x5EED0CA1u);
    for (double t : thicknesses) mcDigest = foldDouble(mcDigest, t);
    std::uint64_t yieldDigest = stats::splitmix64(0x5EED0CA2u);
    for (const auto& [v, pulse] : yieldPoints) {
      yieldDigest = foldDouble(foldDouble(yieldDigest, v), pulse);
    }

    sim::SweepOptions base;
    base.threads = threads;
    bench::applySweepCli(cli, /*configDigest=*/0, &base);

    bench::WallTimer timer;
    {
      sim::SweepOptions options = base;
      options.journal.configDigest = mcDigest;
      if (!cli.journalPath.empty()) {
        options.journal.path = cli.journalPath + ".mc";
      }
      sim::SweepEngine engine(options);
      results.mc = engine.run(
          thicknesses,
          [&](double t, const sim::SweepContext&) {
            core::FefetParams p = nominal;
            p.feThickness = t;
            return core::runDeviceMonteCarloParallel(p, spec, 1000,
                                                     /*threads=*/1);
          },
          mcCodec);
      summary = engine.summary();
      mcOutcomes = engine.outcomes();
    }
    {
      sim::SweepOptions options = base;
      options.journal.configDigest = yieldDigest;
      if (!cli.journalPath.empty()) {
        options.journal.path = cli.journalPath + ".yield";
      }
      sim::SweepEngine engine(options);
      core::Cell2TConfig cfg;
      cfg.fefet = nominal;
      results.yield = engine.run(
          yieldPoints,
          [&](const std::pair<double, double>& pt, const sim::SweepContext&) {
            return core::runWriteYieldParallel(cfg, spec, 20, pt.first,
                                               pt.second, /*threads=*/1);
          },
          yieldCodec);
      const auto s2 = engine.summary();
      summary.ok += s2.ok;
      summary.failed += s2.failed;
      summary.timedOut += s2.timedOut;
      summary.fromJournal += s2.fromJournal;
      summary.notRun += s2.notRun;
      yieldOutcomes = engine.outcomes();
    }
    serialSeconds = parallelSeconds = timer.seconds();
  } else {
    // Run the full workload (device MC per thickness + transient write
    // yield) at a given thread count; the sweep seeding is thread-count-
    // invariant, so both runs must produce identical results.
    auto runAll = [&](int nThreads) {
      Results r;
      for (double t : thicknesses) {
        core::FefetParams p = nominal;
        p.feThickness = t;
        r.mc.push_back(
            core::runDeviceMonteCarloParallel(p, spec, 1000, nThreads));
      }
      core::Cell2TConfig cfg;
      cfg.fefet = nominal;
      for (const auto& [v, pulse] : yieldPoints) {
        r.yield.push_back(
            core::runWriteYieldParallel(cfg, spec, 20, v, pulse, nThreads));
      }
      return r;
    };

    bench::WallTimer serialTimer;
    const Results serial = runAll(1);
    serialSeconds = serialTimer.seconds();
    bench::WallTimer parallelTimer;
    results = runAll(threads);
    parallelSeconds = parallelTimer.seconds();

    identical = serial.mc.size() == results.mc.size() &&
                serial.yield.size() == results.yield.size();
    for (std::size_t i = 0; identical && i < serial.mc.size(); ++i) {
      identical = sameMonteCarlo(serial.mc[i], results.mc[i]);
    }
    for (std::size_t i = 0; identical && i < serial.yield.size(); ++i) {
      identical = serial.yield[i].samples == results.yield[i].samples &&
                  serial.yield[i].passes == results.yield[i].passes;
    }
    summary.ok = results.mc.size() + results.yield.size();
  }

  const auto hasResult = [](const std::vector<sim::SweepOutcome>& outcomes,
                            std::size_t i) {
    if (i >= outcomes.size()) return true;  // legacy path: all ran
    return outcomes[i].status == sim::SweepPointStatus::kOk ||
           outcomes[i].status == sim::SweepPointStatus::kFromJournal;
  };

  bench::banner("Monte Carlo (1000 devices) across design thicknesses");
  std::cout << "t_nm,nonvolatile_%,writable_at_0.68V_%,window_mean_mV,"
               "window_sigma_mV,log10_ratio_min\n";
  for (std::size_t i = 0; i < thicknesses.size(); ++i) {
    if (!hasResult(mcOutcomes, i)) {
      std::printf("%.2f,%s\n", thicknesses[i] * 1e9,
                  sim::toString(mcOutcomes[i].status));
      continue;
    }
    const auto& mc = results.mc[i];
    std::printf("%.2f,%.1f,%.1f,%.0f,%.0f,%.2f\n", thicknesses[i] * 1e9,
                100.0 * mc.nonvolatileCount / mc.samples,
                100.0 * mc.writableCount / mc.samples,
                mc.windowWidthMean * 1e3, mc.windowWidthSigma * 1e3,
                mc.log10RatioMin);
  }

  bench::banner("process corners at the 2.25 nm design point");
  std::cout << "corner,window_V,up_V,down_V,on_off\n";
  const char* names[] = {"TT", "FF", "SS"};
  const auto corners = core::runCorners(nominal);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const auto& c = corners[i];
    std::printf("%s,%.3f,%.3f,%.3f,%.3g\n", names[i],
                c.upSwitchVoltage - c.downSwitchVoltage, c.upSwitchVoltage,
                c.downSwitchVoltage, c.onOffRatio);
  }

  bench::banner("transient write yield (20 sampled cells)");
  std::cout << "vwrite_V,pulse_ps,yield_%\n";
  for (std::size_t i = 0; i < yieldPoints.size(); ++i) {
    if (!hasResult(yieldOutcomes, i)) {
      std::printf("%.2f,%.0f,%s\n", yieldPoints[i].first,
                  yieldPoints[i].second * 1e12,
                  sim::toString(yieldOutcomes[i].status));
      continue;
    }
    std::printf("%.2f,%.0f,%.0f\n", yieldPoints[i].first,
                yieldPoints[i].second * 1e12,
                results.yield[i].yield() * 100.0);
  }

  const auto mcNominal =
      core::runDeviceMonteCarloParallel(nominal, spec, 1000, threads);
  bench::Comparison cmp;
  cmp.add("nonvolatile fraction at the design point", 100.0,
          100.0 * mcNominal.nonvolatileCount / mcNominal.samples, "%");
  cmp.add("worst-sample distinguishability (log10)", 6.0,
          mcNominal.log10RatioMin, "decades");
  cmp.add("worst-case up-fold (stability floor)", 0.0, mcNominal.upSwitchMin,
          "V (> 0 means hold-safe)");
  cmp.print();

  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < results.mc.size(); ++i) {
    payloads.push_back(hasResult(mcOutcomes, i)
                           ? mcCodec.encode(results.mc[i])
                           : std::string("!") +
                                 sim::toString(mcOutcomes[i].status));
  }
  for (std::size_t i = 0; i < results.yield.size(); ++i) {
    payloads.push_back(hasResult(yieldOutcomes, i)
                           ? yieldCodec.encode(results.yield[i])
                           : std::string("!") +
                                 sim::toString(yieldOutcomes[i].status));
  }

  // Controller smoke: a tiny ECC write/read burst at the nominal device,
  // so one bench run also exercises the fefet.controller.* counters the
  // end-of-run report captures (word writes/reads, retries, corrections).
  bench::banner("controller write/read smoke (ECC on)");
  {
    core::ArrayConfig arrayCfg;
    arrayCfg.rows = 2;
    arrayCfg.cols = 8;
    arrayCfg.fefet = nominal;
    core::ControllerConfig ctlCfg;
    ctlCfg.wordWidth = 4;
    ctlCfg.eccEnabled = true;
    core::MemoryController controller(arrayCfg, ctlCfg);
    int verified = 0;
    const std::uint32_t patterns[] = {0x5u, 0xAu, 0x3u, 0xFu};
    for (int w = 0; w < static_cast<int>(std::size(patterns)); ++w) {
      const int row = w % controller.rows();
      const int word = (w / controller.rows()) % controller.wordsPerRow();
      controller.writeWord(row, word, patterns[w]);
      if (controller.readWord(row, word) == patterns[w]) ++verified;
    }
    std::printf("words_verified,%d_of_%zu\n", verified, std::size(patterns));
  }

  bench::banner("sweep-engine wall clock");
  bench::printSweepPerf("bench_variability", threads, serialSeconds,
                        parallelSeconds, identical, summary,
                        bench::resultsCrc32(payloads));

  telemetry.report().addCount("threads", static_cast<std::uint64_t>(threads));
  telemetry.report().addNumber("serial_s", serialSeconds);
  telemetry.report().addNumber("parallel_s", parallelSeconds);
  telemetry.report().addBool("identical", identical);
  telemetry.addSummary(summary);
  telemetry.finish();
  return identical ? 0 : 1;
}
