// Process-variation study: how the paper's nominal claims (window spanning
// 0 V, ~1e6 distinguishability, 0.68 V writes) survive local mismatch and
// global corners — and why the 2.25 nm design point (not the 2.05 nm
// minimum) is the right stability/voltage balance (paper §3).
//
// The Monte Carlo and write-yield point sets run on sim::SweepEngine, once
// at 1 thread and once at the full pool, to demonstrate the deterministic
// parallel speedup (the PERF line at the end is machine-readable).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/materials.h"
#include "core/variability.h"
#include "sim/thread_pool.h"

using namespace fefet;

namespace {

bool sameMonteCarlo(const core::DeviceMonteCarlo& a,
                    const core::DeviceMonteCarlo& b) {
  return a.samples == b.samples && a.nonvolatileCount == b.nonvolatileCount &&
         a.writableCount == b.writableCount &&
         a.windowWidthMean == b.windowWidthMean &&
         a.windowWidthSigma == b.windowWidthSigma &&
         a.upSwitchMin == b.upSwitchMin &&
         a.downSwitchMax == b.downSwitchMax &&
         a.log10RatioMean == b.log10RatioMean &&
         a.log10RatioMin == b.log10RatioMin;
}

}  // namespace

int main() {
  core::FefetParams nominal;
  nominal.lk = core::fefetMaterial();
  const core::VariationSpec spec;  // 20 mV VT, 2% T_FE, 3% W, 3% alpha
  const int threads = sim::defaultThreadCount();

  const std::vector<double> thicknesses = {2.05e-9, 2.15e-9, 2.25e-9,
                                           2.35e-9, 2.50e-9};
  const std::vector<std::pair<double, double>> yieldPoints = {
      {0.68, 800e-12}, {0.68, 550e-12}, {0.60, 800e-12}, {0.55, 800e-12}};

  // Run the full workload (device MC per thickness + transient write yield)
  // at a given thread count; the sweep seeding is thread-count-invariant,
  // so both runs must produce identical results.
  struct Results {
    std::vector<core::DeviceMonteCarlo> mc;
    std::vector<core::WriteYield> yield;
  };
  auto runAll = [&](int nThreads) {
    Results r;
    for (double t : thicknesses) {
      core::FefetParams p = nominal;
      p.feThickness = t;
      r.mc.push_back(
          core::runDeviceMonteCarloParallel(p, spec, 1000, nThreads));
    }
    core::Cell2TConfig cfg;
    cfg.fefet = nominal;
    for (const auto& [v, pulse] : yieldPoints) {
      r.yield.push_back(
          core::runWriteYieldParallel(cfg, spec, 20, v, pulse, nThreads));
    }
    return r;
  };

  bench::WallTimer serialTimer;
  const Results serial = runAll(1);
  const double serialSeconds = serialTimer.seconds();
  bench::WallTimer parallelTimer;
  const Results parallel = runAll(threads);
  const double parallelSeconds = parallelTimer.seconds();

  bool identical = serial.mc.size() == parallel.mc.size() &&
                   serial.yield.size() == parallel.yield.size();
  for (std::size_t i = 0; identical && i < serial.mc.size(); ++i) {
    identical = sameMonteCarlo(serial.mc[i], parallel.mc[i]);
  }
  for (std::size_t i = 0; identical && i < serial.yield.size(); ++i) {
    identical = serial.yield[i].samples == parallel.yield[i].samples &&
                serial.yield[i].passes == parallel.yield[i].passes;
  }

  bench::banner("Monte Carlo (1000 devices) across design thicknesses");
  std::cout << "t_nm,nonvolatile_%,writable_at_0.68V_%,window_mean_mV,"
               "window_sigma_mV,log10_ratio_min\n";
  for (std::size_t i = 0; i < thicknesses.size(); ++i) {
    const auto& mc = parallel.mc[i];
    std::printf("%.2f,%.1f,%.1f,%.0f,%.0f,%.2f\n", thicknesses[i] * 1e9,
                100.0 * mc.nonvolatileCount / mc.samples,
                100.0 * mc.writableCount / mc.samples,
                mc.windowWidthMean * 1e3, mc.windowWidthSigma * 1e3,
                mc.log10RatioMin);
  }

  bench::banner("process corners at the 2.25 nm design point");
  std::cout << "corner,window_V,up_V,down_V,on_off\n";
  const char* names[] = {"TT", "FF", "SS"};
  const auto corners = core::runCorners(nominal);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    const auto& c = corners[i];
    std::printf("%s,%.3f,%.3f,%.3f,%.3g\n", names[i],
                c.upSwitchVoltage - c.downSwitchVoltage, c.upSwitchVoltage,
                c.downSwitchVoltage, c.onOffRatio);
  }

  bench::banner("transient write yield (20 sampled cells)");
  std::cout << "vwrite_V,pulse_ps,yield_%\n";
  for (std::size_t i = 0; i < yieldPoints.size(); ++i) {
    std::printf("%.2f,%.0f,%.0f\n", yieldPoints[i].first,
                yieldPoints[i].second * 1e12,
                parallel.yield[i].yield() * 100.0);
  }

  const auto mcNominal =
      core::runDeviceMonteCarloParallel(nominal, spec, 1000, threads);
  bench::Comparison cmp;
  cmp.add("nonvolatile fraction at the design point", 100.0,
          100.0 * mcNominal.nonvolatileCount / mcNominal.samples, "%");
  cmp.add("worst-sample distinguishability (log10)", 6.0,
          mcNominal.log10RatioMin, "decades");
  cmp.add("worst-case up-fold (stability floor)", 0.0,
          mcNominal.upSwitchMin, "V (> 0 means hold-safe)");
  cmp.print();

  bench::banner("sweep-engine wall clock");
  bench::printSweepPerf("bench_variability", threads, serialSeconds,
                        parallelSeconds, identical);
  return identical ? 0 : 1;
}
