// Reproduces paper §6.2.4: the single-domain retention comparison.
// FERAM (1 nm film, V_c = 1.24 V) is the 10-year reference; the FEFET's
// lower device-level coercive voltage costs retention, recovered by
// widening the device (the paper suggests W = 112.5 nm; we report the
// width our model needs for parity).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/design_space.h"
#include "core/materials.h"

using namespace fefet;

int main() {
  core::FefetParams params;
  params.lk = core::fefetMaterial();
  constexpr double kArea = 65e-9 * 45e-9;

  bench::banner("§6.2.4: retention (single-domain model, log10 seconds)");
  const auto cmp = core::compareRetention(params, 1.244, kArea);
  const double year = 365.25 * 24 * 3600.0;

  std::printf("activation efficiency (calibrated): %.4g\n",
              cmp.activationEfficiency);
  std::printf("FERAM  (W=65 nm, Vc=1.244 V): log10(t_ret) = %6.2f  (%.1f "
              "years)\n",
              cmp.feramLog10Seconds,
              std::pow(10.0, cmp.feramLog10Seconds) / year);
  std::printf("FEFET  (W=65 nm, device Vc):  log10(t_ret) = %6.2f\n",
              cmp.fefetLog10Seconds);
  std::printf("FEFET width for retention parity: %.1f nm (paper suggests "
              "112.5 nm)\n",
              cmp.fefetWidthForParity * 1e9);

  bench::banner("retention vs FEFET width");
  std::cout << "width_nm,log10_retention_s\n";
  const auto window = core::analyzeHysteresis(params);
  const double vcDevice = 0.5 * window.width();
  ferro::RetentionModel model;
  model.calibrateToReference(1.244, 0.4636, kArea, 10.0 * year);
  for (double w : {65e-9, 90e-9, 112.5e-9, 150e-9, 200e-9, 300e-9}) {
    const double area = w * 45e-9;
    std::printf("%.1f,%.2f\n", w * 1e9,
                model.log10RetentionSeconds(vcDevice, 0.4636, area));
  }

  bench::Comparison out;
  out.addText("FEFET retention < FERAM at W=65 nm", "yes",
              cmp.fefetLog10Seconds < cmp.feramLog10Seconds ? "yes" : "no",
              "");
  out.add("width for parity (paper: 112.5 nm)", 112.5,
          cmp.fefetWidthForParity * 1e9, "nm");
  out.print();
  std::printf("\nNote: the paper's parity width assumes its own (unpublished)"
              " device coercive voltage; our measured window half-width is "
              "%.3f V, so the parity width differs while the qualitative "
              "trade-off (area buys retention) is identical.\n", vcDevice);
  return 0;
}
