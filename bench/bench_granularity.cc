// Access-granularity study (paper §1: "this work supports bit-level
// access" vs FERAM).  Word/plate lines shared per row make FERAM
// intrinsically row-at-a-time: updating one bit costs a destructive
// whole-row read plus a whole-row write-back.  The FEFET array's decoupled
// paths update exactly one cell.  Both arrays here are full circuit-level
// simulations (2x3, Fig. 7 scale).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/feram_array.h"
#include "core/materials.h"
#include "core/memory_array.h"

using namespace fefet;

int main() {
  bench::banner("single-bit update energy: circuit-level arrays (2x3)");

  core::ArrayConfig fefetCfg;
  fefetCfg.fefet.lk = core::fefetMaterial();
  core::MemoryArray fefet(fefetCfg);
  fefet.setPattern({{false, true, false}, {true, false, true}});
  const auto fefetUpdate = fefet.writeBit(0, 0, true);

  core::FeRamArrayConfig feramCfg;
  feramCfg.cell.lk = core::feramMaterial();
  core::FeRamArray feram(feramCfg);
  feram.setPattern({{false, true, false}, {true, false, true}});
  const auto feramUpdate = feram.updateBit(0, 0, true);

  std::printf("FEFET  bit update: %6.3f fJ (one cell write; neighbours "
              "untouched)\n",
              fefetUpdate.totalEnergy * 1e15);
  std::printf("FERAM  bit update: %6.3f fJ (row read + restore + row "
              "rewrite)\n",
              feramUpdate.totalEnergy * 1e15);

  bench::banner("row-width scaling of the penalty");
  std::cout << "cols,fefet_bit_update_fJ,feram_bit_update_fJ,penalty_x\n";
  for (int cols : {2, 3, 4, 6}) {
    core::ArrayConfig fc;
    fc.fefet.lk = core::fefetMaterial();
    fc.cols = cols;
    core::MemoryArray fa(fc);
    const double ef = fa.writeBit(0, 0, true).totalEnergy;

    core::FeRamArrayConfig rc;
    rc.cell.lk = core::feramMaterial();
    rc.cols = cols;
    core::FeRamArray ra(rc);
    std::vector<std::vector<bool>> zeros(
        2, std::vector<bool>(static_cast<std::size_t>(cols), false));
    ra.setPattern(zeros);
    const double er = ra.updateBit(0, 0, true).totalEnergy;
    std::printf("%d,%.3f,%.3f,%.1f\n", cols, ef * 1e15, er * 1e15, er / ef);
  }

  bench::Comparison cmp;
  cmp.addText("FEFET bit update leaves the row intact", "yes",
              fefet.bitAt(0, 1) && !fefet.bitAt(0, 2) ? "yes" : "no", "");
  cmp.addText("FERAM bit update succeeded (row-granular)", "yes",
              feramUpdate.ok ? "yes" : "no", "");
  cmp.add("bit-update energy penalty of row granularity", 10.0,
          feramUpdate.totalEnergy / fefetUpdate.totalEnergy, "x");
  cmp.print();
  std::printf("\nThe penalty grows linearly with the row width: a realistic "
              "256-column FERAM page makes single-bit updates hundreds of "
              "times costlier, which is why the paper's NVP backup favours "
              "the bit-addressable FEFET macro.\n");
  return 0;
}
