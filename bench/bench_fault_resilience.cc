// bench_fault_resilience — fault rate vs read bit-error rate on the 64x64
// behavioral macro, with and without the resilient word path (write–
// verify–retry + SECDED + spare remap).  The protected column is the
// array-level correctness claim of the resilience layer; the raw column
// is what the same fault population does to an unprotected array.
//
// The (stuck rate, write-fail p) sweep points run on sim::SweepEngine at
// 1 thread and at the full pool; every point draws its fault population
// from the same fixed seed, so the runs must match exactly (the PERF line
// records the speedup).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/nvm_macro.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"

namespace fefet {
namespace {

using core::MacroConfig;
using core::MacroResilience;
using core::MacroTechnology;
using core::NvmMacro;

MacroConfig macro64() {
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  return cfg;
}

struct SweepPoint {
  double stuckRate;
  double writeFailure;
};

struct Outcome {
  double ber = 0.0;        ///< wrong data bits / data bits read
  int retries = 0;
  int corrected = 0;
  int remapped = 0;
  int uncorrected = 0;
  double retryEnergyFrac = 0.0;  ///< retry energy / total energy
};

Outcome runPass(const SweepPoint& pt, bool protectedPath,
                std::uint64_t seed) {
  MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtZeroRate = pt.stuckRate / 2.0;
  res.faults.stuckAtOneRate = pt.stuckRate / 2.0;
  res.faults.writeFailureProbability = pt.writeFailure;
  res.faults.seed = seed;
  if (protectedPath) {
    res.retry.maxRetries = 3;
    res.eccEnabled = true;
    res.spareWords = 8;
  } else {
    res.retry.maxRetries = 0;
    res.eccEnabled = false;
    res.spareWords = 0;
  }
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);

  std::vector<std::uint32_t> written;
  for (int i = 0; i < macro.wordCount(); ++i) {
    written.push_back(0x9E3779B9u * static_cast<std::uint32_t>(i + 1));
    macro.writeWord(i, written.back());
  }
  long wrongBits = 0;
  for (int i = 0; i < macro.wordCount(); ++i) {
    std::uint32_t diff = macro.readWord(i).value ^
                         written[static_cast<std::size_t>(i)];
    while (diff) {
      wrongBits += diff & 1u;
      diff >>= 1;
    }
  }
  Outcome out;
  out.ber = static_cast<double>(wrongBits) /
            (static_cast<double>(macro.wordCount()) * 32.0);
  out.retries = macro.report().writeRetries;
  out.corrected = macro.report().correctedBits;
  out.remapped = macro.report().remappedRows;
  out.uncorrected = macro.report().uncorrectedBits;
  out.retryEnergyFrac = macro.report().retryEnergy / macro.totalEnergy();
  return out;
}

struct PointOutcome {
  Outcome raw;
  Outcome hard;
};

bool sameOutcome(const Outcome& a, const Outcome& b) {
  return a.ber == b.ber && a.retries == b.retries &&
         a.corrected == b.corrected && a.remapped == b.remapped &&
         a.uncorrected == b.uncorrected &&
         a.retryEnergyFrac == b.retryEnergyFrac;
}

}  // namespace
}  // namespace fefet

int main() {
  using fefet::strings::generalFormat;
  fefet::bench::banner(
      "Fault rate vs read BER: raw array vs resilient word path (64x64)");

  const std::vector<fefet::SweepPoint> sweep = {
      {0.0, 0.01}, {0.0, 0.05}, {0.0, 0.10},
      {1e-3, 0.0}, {1e-3, 0.05}, {5e-3, 0.05}, {1e-2, 0.10},
  };
  const int threads = fefet::sim::defaultThreadCount();
  auto runAll = [&](int nThreads) {
    fefet::sim::SweepOptions options;
    options.threads = nThreads;
    fefet::sim::SweepEngine engine(options);
    // The fault population is keyed to the fixed seed 2016 per point, not
    // to the sweep's per-point seed — this bench reproduces the original
    // serial table, bit for bit, at any thread count.
    return engine.run(sweep, [](const fefet::SweepPoint& pt,
                                const fefet::sim::SweepContext&) {
      fefet::PointOutcome out;
      out.raw = fefet::runPass(pt, /*protectedPath=*/false, 2016);
      out.hard = fefet::runPass(pt, /*protectedPath=*/true, 2016);
      return out;
    });
  };

  fefet::bench::WallTimer serialTimer;
  const auto serialOutcomes = runAll(1);
  const double serialSeconds = serialTimer.seconds();
  fefet::bench::WallTimer parallelTimer;
  const auto outcomes = runAll(threads);
  const double parallelSeconds = parallelTimer.seconds();

  bool identical = serialOutcomes.size() == outcomes.size();
  for (std::size_t i = 0; identical && i < outcomes.size(); ++i) {
    identical = fefet::sameOutcome(serialOutcomes[i].raw, outcomes[i].raw) &&
                fefet::sameOutcome(serialOutcomes[i].hard, outcomes[i].hard);
  }

  fefet::TextTable table({"stuck rate", "write-fail p", "raw BER",
                          "resilient BER", "retries", "remaps",
                          "uncorrected", "retry E frac"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& pt = sweep[i];
    const auto& raw = outcomes[i].raw;
    const auto& hard = outcomes[i].hard;
    table.addRow({generalFormat(pt.stuckRate, 3),
                  generalFormat(pt.writeFailure, 3),
                  generalFormat(raw.ber, 3), generalFormat(hard.ber, 3),
                  std::to_string(hard.retries),
                  std::to_string(hard.remapped),
                  std::to_string(hard.uncorrected),
                  generalFormat(hard.retryEnergyFrac, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe resilient path holds BER at 0 until the spare pool "
               "saturates at the harshest corner (verify-retry absorbs "
               "transients, spares absorb stuck words); the raw column "
               "degrades with both fault knobs.\n";

  fefet::bench::banner("sweep-engine wall clock");
  fefet::bench::printSweepPerf("bench_fault_resilience", threads,
                               serialSeconds, parallelSeconds, identical);
  return identical ? 0 : 1;
}
