// bench_fault_resilience — fault rate vs read bit-error rate on the 64x64
// behavioral macro, with and without the resilient word path (write–
// verify–retry + SECDED + spare remap).  The protected column is the
// array-level correctness claim of the resilience layer; the raw column
// is what the same fault population does to an unprotected array.
//
// Execution modes:
//  * default: the (stuck rate, write-fail p) points run on
//    sim::SweepEngine at 1 thread and at the full pool; every point draws
//    its fault population from the same fixed seed, so the runs must
//    match exactly (the PERF line records the speedup);
//  * resilient (--journal / --resume / --deadline-seconds / watchdog
//    flags): one journaled run under kCollectAndContinue — a killed run
//    resumes bit-identically from its journal, a straggler point is
//    cancelled by the watchdog, and the PERF line carries the outcome
//    tally plus a CRC32 fingerprint of the encoded results.
//  * --stall-point=K (with --hard-timeout-s or --deadline-seconds) makes
//    point K run an artificially non-converging transient bounded only by
//    its child deadline — the watchdog-cancellation demo.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/nvm_macro.h"
#include "sim/sweep_engine.h"
#include "sim/thread_pool.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet {
namespace {

using core::MacroConfig;
using core::MacroResilience;
using core::MacroTechnology;
using core::NvmMacro;

MacroConfig macro64() {
  MacroConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.wordBits = 32;
  return cfg;
}

struct SweepPoint {
  double stuckRate;
  double writeFailure;
};

struct Outcome {
  double ber = 0.0;        ///< wrong data bits / data bits read
  int retries = 0;
  int corrected = 0;
  int remapped = 0;
  int uncorrected = 0;
  double retryEnergyFrac = 0.0;  ///< retry energy / total energy
};

Outcome runPass(const SweepPoint& pt, bool protectedPath,
                std::uint64_t seed) {
  MacroResilience res;
  res.enabled = true;
  res.faults.stuckAtZeroRate = pt.stuckRate / 2.0;
  res.faults.stuckAtOneRate = pt.stuckRate / 2.0;
  res.faults.writeFailureProbability = pt.writeFailure;
  res.faults.seed = seed;
  if (protectedPath) {
    res.retry.maxRetries = 3;
    res.eccEnabled = true;
    res.spareWords = 8;
  } else {
    res.retry.maxRetries = 0;
    res.eccEnabled = false;
    res.spareWords = 0;
  }
  NvmMacro macro(MacroTechnology::kFefet, macro64(), res);

  std::vector<std::uint32_t> written;
  for (int i = 0; i < macro.wordCount(); ++i) {
    written.push_back(0x9E3779B9u * static_cast<std::uint32_t>(i + 1));
    macro.writeWord(i, written.back());
  }
  long wrongBits = 0;
  for (int i = 0; i < macro.wordCount(); ++i) {
    std::uint32_t diff = macro.readWord(i).value ^
                         written[static_cast<std::size_t>(i)];
    while (diff) {
      wrongBits += diff & 1u;
      diff >>= 1;
    }
  }
  Outcome out;
  out.ber = static_cast<double>(wrongBits) /
            (static_cast<double>(macro.wordCount()) * 32.0);
  out.retries = macro.report().writeRetries;
  out.corrected = macro.report().correctedBits;
  out.remapped = macro.report().remappedRows;
  out.uncorrected = macro.report().uncorrectedBits;
  out.retryEnergyFrac = macro.report().retryEnergy / macro.totalEnergy();
  return out;
}

struct PointOutcome {
  Outcome raw;
  Outcome hard;
};

bool sameOutcome(const Outcome& a, const Outcome& b) {
  return a.ber == b.ber && a.retries == b.retries &&
         a.corrected == b.corrected && a.remapped == b.remapped &&
         a.uncorrected == b.uncorrected &&
         a.retryEnergyFrac == b.retryEnergyFrac;
}

// Hexfloat round-trips doubles bit-exactly, which the journal's resume
// bit-identity guarantee depends on.
std::string encodeOutcome(const Outcome& o) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%a,%d,%d,%d,%d,%a", o.ber, o.retries,
                o.corrected, o.remapped, o.uncorrected, o.retryEnergyFrac);
  return buf;
}

Outcome decodeOutcome(const std::string& s) {
  Outcome o;
  if (std::sscanf(s.c_str(), "%la,%d,%d,%d,%d,%la", &o.ber, &o.retries,
                  &o.corrected, &o.remapped, &o.uncorrected,
                  &o.retryEnergyFrac) != 6) {
    throw SimulationError("bench_fault_resilience: bad journal payload");
  }
  return o;
}

sim::SweepCodec<PointOutcome> makeCodec() {
  sim::SweepCodec<PointOutcome> codec;
  codec.encode = [](const PointOutcome& p) {
    return encodeOutcome(p.raw) + "|" + encodeOutcome(p.hard);
  };
  codec.decode = [](const std::string& s) {
    const auto bar = s.find('|');
    if (bar == std::string::npos) {
      throw SimulationError("bench_fault_resilience: bad journal payload");
    }
    PointOutcome p;
    p.raw = decodeOutcome(s.substr(0, bar));
    p.hard = decodeOutcome(s.substr(bar + 1));
    return p;
  };
  return codec;
}

/// Everything that shapes a point's work, folded into the journal digest.
std::uint64_t configDigest(const std::vector<SweepPoint>& sweep) {
  std::uint64_t h = stats::splitmix64(0xFA17BE9Cu);
  const auto fold = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h = stats::splitmix64(h ^ bits);
  };
  for (const auto& pt : sweep) {
    fold(pt.stuckRate);
    fold(pt.writeFailure);
  }
  return h;
}

/// An artificially non-converging point: a transient with effectively
/// unbounded work whose only stop condition is the child deadline handed
/// down by the sweep engine.  Throws DeadlineExceeded when the watchdog
/// cancels it or the budget runs out.
void stallUntilDeadline(const sim::SweepContext& ctx) {
  spice::Netlist n;
  n.add<spice::VoltageSource>("V1", n.node("in"), n.ground(),
                              spice::shapes::dc(1.0));
  n.add<spice::Resistor>("R", n.node("in"), n.node("out"), 1e3);
  n.add<spice::Capacitor>("C", n.node("out"), n.ground(), 1e-12);
  spice::Simulator sim(n);
  sim.initializeUic();
  spice::TransientOptions options;
  options.duration = 1e6;  // ~1e15 steps at dtMax: never finishes honestly
  options.dtMax = 1e-9;
  options.deadline = ctx.deadline;
  sim.runTransient(options, {spice::Probe::v("out")});
}

void printTable(const std::vector<SweepPoint>& sweep,
                const std::vector<PointOutcome>& outcomes,
                const std::vector<sim::SweepOutcome>& status) {
  using strings::generalFormat;
  TextTable table({"stuck rate", "write-fail p", "raw BER", "resilient BER",
                   "retries", "remaps", "uncorrected", "retry E frac",
                   "status"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& pt = sweep[i];
    const auto st =
        i < status.size() ? status[i].status : sim::SweepPointStatus::kOk;
    const bool hasResult = st == sim::SweepPointStatus::kOk ||
                           st == sim::SweepPointStatus::kFromJournal;
    if (hasResult) {
      const auto& raw = outcomes[i].raw;
      const auto& hard = outcomes[i].hard;
      table.addRow({generalFormat(pt.stuckRate, 3),
                    generalFormat(pt.writeFailure, 3),
                    generalFormat(raw.ber, 3), generalFormat(hard.ber, 3),
                    std::to_string(hard.retries),
                    std::to_string(hard.remapped),
                    std::to_string(hard.uncorrected),
                    generalFormat(hard.retryEnergyFrac, 3),
                    sim::toString(st)});
    } else {
      table.addRow({generalFormat(pt.stuckRate, 3),
                    generalFormat(pt.writeFailure, 3), "-", "-", "-", "-",
                    "-", "-", sim::toString(st)});
    }
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace fefet

int main(int argc, char** argv) {
  const auto cli = fefet::bench::parseSweepCli(argc, argv);
  fefet::bench::TelemetrySession telemetry("bench_fault_resilience");
  fefet::bench::banner(
      "Fault rate vs read BER: raw array vs resilient word path (64x64)");

  const std::vector<fefet::SweepPoint> sweep = {
      {0.0, 0.01}, {0.0, 0.05}, {0.0, 0.10},
      {1e-3, 0.0}, {1e-3, 0.05}, {5e-3, 0.05}, {1e-2, 0.10},
  };
  const int threads =
      cli.threads > 0 ? cli.threads : fefet::sim::defaultThreadCount();
  auto codec = fefet::makeCodec();
  const std::uint64_t digest = fefet::configDigest(sweep);

  if (cli.sharded()) {
    // Multi-process sharding over the same 7-point table.  Every point
    // draws its fault population from the fixed seed 2016, so the merged
    // results_crc equals the in-process PERF fingerprint.
    return fefet::bench::runShardedBench(
        cli, "bench_fault_resilience", argv[0], sweep.size(),
        /*baseSeed=*/2016, digest,
        [&](std::size_t i, const fefet::sim::SweepContext&) {
          fefet::PointOutcome out;
          out.raw = fefet::runPass(sweep[i], /*protectedPath=*/false, 2016);
          out.hard = fefet::runPass(sweep[i], /*protectedPath=*/true, 2016);
          return codec.encode(out);
        });
  }

  const auto pointFn = [&](const fefet::SweepPoint& pt,
                           const fefet::sim::SweepContext& ctx) {
    if (cli.pointDelaySeconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(cli.pointDelaySeconds));
    }
    if (static_cast<int>(ctx.index) == cli.stallPoint) {
      fefet::stallUntilDeadline(ctx);
    }
    fefet::PointOutcome out;
    out.raw = fefet::runPass(pt, /*protectedPath=*/false, 2016);
    out.hard = fefet::runPass(pt, /*protectedPath=*/true, 2016);
    return out;
  };

  const auto payloadsOf = [&](const std::vector<fefet::PointOutcome>& results,
                              const std::vector<fefet::sim::SweepOutcome>&
                                  status) {
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto st = i < status.size() ? status[i].status
                                        : fefet::sim::SweepPointStatus::kOk;
      const bool hasResult =
          st == fefet::sim::SweepPointStatus::kOk ||
          st == fefet::sim::SweepPointStatus::kFromJournal;
      payloads.push_back(hasResult ? codec.encode(results[i])
                                   : std::string("!") +
                                         fefet::sim::toString(st));
    }
    return payloads;
  };

  if (cli.resilient()) {
    fefet::sim::SweepOptions options;
    options.threads = threads;
    fefet::bench::applySweepCli(cli, digest, &options);
    fefet::sim::SweepEngine engine(options);
    fefet::bench::WallTimer timer;
    const auto results = engine.run(sweep, pointFn, codec);
    const double seconds = timer.seconds();

    fefet::printTable(sweep, results, engine.outcomes());
    const auto summary = engine.summary();
    if (summary.failed + summary.timedOut + summary.notRun > 0) {
      std::cout << "\npartial run: " << summary.completed() << " ok, "
                << summary.failed << " failed, " << summary.timedOut
                << " timed out, " << summary.notRun << " not run\n";
    }
    fefet::bench::banner("sweep-engine wall clock");
    fefet::bench::printSweepPerf(
        "bench_fault_resilience", threads, seconds, seconds,
        /*identical=*/true, summary,
        fefet::bench::resultsCrc32(payloadsOf(results, engine.outcomes())));
    telemetry.report().addCount("threads",
                                static_cast<std::uint64_t>(threads));
    telemetry.addSummary(summary);
    telemetry.finish();
    return 0;
  }

  auto runAll = [&](int nThreads) {
    fefet::sim::SweepOptions options;
    options.threads = nThreads;
    fefet::sim::SweepEngine engine(options);
    // The fault population is keyed to the fixed seed 2016 per point, not
    // to the sweep's per-point seed — this bench reproduces the original
    // serial table, bit for bit, at any thread count.
    return engine.run(sweep, pointFn);
  };

  fefet::bench::WallTimer serialTimer;
  const auto serialOutcomes = runAll(1);
  const double serialSeconds = serialTimer.seconds();
  fefet::bench::WallTimer parallelTimer;
  const auto outcomes = runAll(threads);
  const double parallelSeconds = parallelTimer.seconds();

  bool identical = serialOutcomes.size() == outcomes.size();
  for (std::size_t i = 0; identical && i < outcomes.size(); ++i) {
    identical = fefet::sameOutcome(serialOutcomes[i].raw, outcomes[i].raw) &&
                fefet::sameOutcome(serialOutcomes[i].hard, outcomes[i].hard);
  }

  fefet::printTable(sweep, outcomes, {});
  std::cout << "\nThe resilient path holds BER at 0 until the spare pool "
               "saturates at the harshest corner (verify-retry absorbs "
               "transients, spares absorb stuck words); the raw column "
               "degrades with both fault knobs.\n";

  fefet::sim::SweepSummary summary;
  summary.ok = sweep.size();
  fefet::bench::banner("sweep-engine wall clock");
  fefet::bench::printSweepPerf(
      "bench_fault_resilience", threads, serialSeconds, parallelSeconds,
      identical, summary,
      fefet::bench::resultsCrc32(payloadsOf(outcomes, {})));
  telemetry.report().addCount("threads", static_cast<std::uint64_t>(threads));
  telemetry.report().addBool("identical", identical);
  telemetry.addSummary(summary);
  telemetry.finish();
  return identical ? 0 : 1;
}
