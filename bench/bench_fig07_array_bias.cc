// Reproduces paper Fig. 7 + Table 1: the 2x3 FEFET array under the
// proposed bias scheme — selective writes/reads, unaccessed-row isolation,
// disturb and sneak-current quantification.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/bias_scheme.h"
#include "core/memory_array.h"

using namespace fefet;

namespace {
void printState(const core::MemoryArray& arr, const char* label) {
  std::printf("%s\n", label);
  for (int r = 0; r < arr.rows(); ++r) {
    std::printf("  row %d:", r);
    for (int c = 0; c < arr.cols(); ++c) {
      std::printf(" %d", arr.bitAt(r, c) ? 1 : 0);
    }
    std::printf("\n");
  }
}
}  // namespace

int main() {
  bench::banner("Table 1: bias conditions of the memory array");
  core::BiasLevels levels;
  std::cout << core::describeBiasTable(levels);

  bench::banner("Fig. 7: 2x3 array operations");
  core::ArrayConfig cfg;
  core::MemoryArray arr(cfg);
  arr.setPattern({{false, false, false}, {false, false, false}});

  // Write a checkerboard one bit at a time.
  double worstDisturb = 0.0, worstSneak = 0.0, totalEnergy = 0.0;
  int writes = 0;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      const bool bit = (r + c) % 2 == 0;
      const auto res = arr.writeBit(r, c, bit);
      worstDisturb = std::max(worstDisturb, res.maxUnaccessedDisturb);
      worstSneak = std::max(worstSneak, res.maxSneakCurrent);
      totalEnergy += res.totalEnergy;
      ++writes;
      if (!res.ok) std::printf("WRITE FAILED at (%d,%d)\n", r, c);
    }
  }
  printState(arr, "after checkerboard writes (expect 1 0 1 / 0 1 0):");
  std::printf("worst unaccessed-cell disturb: %.4g C/m^2 (states differ by "
              "~0.22)\n", worstDisturb);
  std::printf("worst sneak current during writes: %.4g nA\n",
              worstSneak * 1e9);
  std::printf("average write energy (cell+lines, 2x3 array): %.3g fJ\n",
              totalEnergy / writes * 1e15);

  // Read everything back.
  bool allOk = true;
  double readDisturb = 0.0, readSneak = 0.0;
  std::printf("\nread-back currents (uA):\n");
  for (int r = 0; r < 2; ++r) {
    std::printf("  row %d:", r);
    for (int c = 0; c < 3; ++c) {
      const auto res = arr.readBit(r, c);
      allOk = allOk && res.ok;
      readDisturb = std::max(readDisturb, res.maxUnaccessedDisturb);
      readSneak = std::max(readSneak, res.maxSneakCurrent);
      std::printf(" %8.3f", res.readCurrent * 1e6);
    }
    std::printf("\n");
  }
  printState(arr, "after reads (unchanged - non-destructive):");
  std::printf("worst disturb during reads: %.4g C/m^2\n", readDisturb);
  std::printf("worst sneak current on unaccessed rows: %.4g nA\n",
              readSneak * 1e9);

  const auto hold = arr.hold(10e-9);

  bench::Comparison cmp;
  cmp.addText("checkerboard write+readback", "correct",
              allOk ? "correct" : "WRONG", "");
  cmp.add("write disturb on unaccessed cells", 0.0, worstDisturb,
          "C/m^2 (<< 0.22)");
  cmp.add("sneak current during reads (eliminated)", 0.0, readSneak * 1e9,
          "nA");
  cmp.add("hold-mode energy (zero standby)", 0.0, hold.totalEnergy * 1e18,
          "aJ");
  cmp.print();
  return 0;
}
