// Reproduces paper Fig. 8: the current-based sensing circuit — read timing
// diagram waveforms for stored '1' and '0', the virtual-ground clamp, and
// the eq. (2) read-time budget.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/read_timing.h"
#include "core/sense_amp.h"

using namespace fefet;

int main() {
  core::SenseAmpCircuit circuit{core::SenseAmpConfig{}};

  bench::banner("Fig. 8(b): read of stored '1' (VSENSE rises, VSA -> VDD)");
  const auto r1 = circuit.simulateRead(true);
  bench::dumpWaveform(r1.waveform, {"v(sl)", "v(vsense)", "v(vsa)"}, 40);
  std::printf("-> bit=%d, t_pre=%.2f ns, t_sa=%.2f ns, |V_BL|max=%.3f V, "
              "energy=%.3g pJ\n",
              r1.bitRead, r1.tPreAchieved * 1e9, r1.tSa * 1e9,
              r1.senseLineMax, r1.readEnergy * 1e12);

  bench::banner("Fig. 8(b): read of stored '0' (VSENSE decays, VSA stays 0)");
  const auto r0 = circuit.simulateRead(false);
  bench::dumpWaveform(r0.waveform, {"v(sl)", "v(vsense)", "v(vsa)"}, 40);
  std::printf("-> bit=%d, energy=%.3g pJ\n", r0.bitRead,
              r0.readEnergy * 1e12);

  bench::banner("Eq. (2): read-time budget");
  core::ReadTimingModel timing;
  std::printf("t_pre=%.2f ns, t_dec=%.2f ns, t_sa=%.2f ns, t_buffer=%.2f ns\n",
              timing.tPre * 1e9, timing.tDec * 1e9, timing.tSa * 1e9,
              timing.tBuffer * 1e9);
  std::printf("eq.(2): max(t_pre,t_dec)+t_sa+t_buffer = %.2f ns\n",
              timing.readTimeEq2() * 1e9);
  std::printf("paper's quoted total (plain sum)       = %.2f ns\n",
              timing.readTimeSum() * 1e9);

  bench::Comparison cmp;
  cmp.addText("read '1' digitized", "1", r1.bitRead ? "1" : "0", "");
  cmp.addText("read '0' digitized", "0", r0.bitRead ? "1" : "0", "");
  cmp.add("pre-charge time (budget 0.5 ns)", 0.5, r1.tPreAchieved * 1e9,
          "ns");
  cmp.add("SA resolve time (budget 1.5 ns)", 1.5, r1.tSa * 1e9, "ns");
  cmp.add("virtual ground excursion", 0.0, r1.senseLineMax, "V");
  cmp.add("total read time, eq.(2) model", 3.0, timing.readTimeSum() * 1e9,
          "ns");
  cmp.print();
  return 0;
}
