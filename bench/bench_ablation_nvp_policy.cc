// NVP policy ablation (paper §7 context, after Ma et al. [4]): the paper's
// on-demand-all-backup (ODAB) controller vs a classic periodic-checkpoint
// policy, for both NVM technologies across the harvested-power range.
// ODAB backs up exactly once per outage; periodic checkpointing pays for
// many redundant backups but needs no energy monitor and loses work on
// sudden death.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "nvp/nv_processor.h"

using namespace fefet;
using namespace fefet::nvp;

int main() {
  const auto traces = standardTraceSet();
  const auto suite = mibenchSuite();

  bench::banner("policy x technology: average forward progress");
  std::cout
      << "trace,odab_fefet,odab_feram,periodic_fefet,periodic_feram\n";
  double paperPointOdabGain = 0.0, paperPointPeriodicGain = 0.0;
  for (const auto& nt : traces) {
    double fp[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
    for (const auto& w : suite) {
      NvpConfig odab;
      NvpConfig periodic;
      periodic.policy = BackupPolicy::kPeriodic;
      fp[0][0] += simulateNvp(nt.trace, w, fefetNvm(), odab).forwardProgress;
      fp[0][1] += simulateNvp(nt.trace, w, feramNvm(), odab).forwardProgress;
      fp[1][0] +=
          simulateNvp(nt.trace, w, fefetNvm(), periodic).forwardProgress;
      fp[1][1] +=
          simulateNvp(nt.trace, w, feramNvm(), periodic).forwardProgress;
    }
    const double n = static_cast<double>(suite.size());
    std::printf("%s,%.4f,%.4f,%.4f,%.4f\n", nt.name.c_str(), fp[0][0] / n,
                fp[0][1] / n, fp[1][0] / n, fp[1][1] / n);
    if (nt.name.find("14uW") != std::string::npos) {
      paperPointOdabGain = fp[0][0] / fp[0][1] - 1.0;
      paperPointPeriodicGain = fp[1][0] / fp[1][1] - 1.0;
    }
  }

  bench::banner("checkpoint-interval sensitivity (periodic, fft, 14 uW)");
  std::cout << "interval_us,fp_fefet,fp_feram\n";
  const auto& trace = traces[2].trace;
  const auto& fft = suite[3];
  for (double interval : {50e-6, 150e-6, 300e-6, 600e-6, 1200e-6}) {
    NvpConfig cfg;
    cfg.policy = BackupPolicy::kPeriodic;
    cfg.checkpointInterval = interval;
    std::printf("%.0f,%.4f,%.4f\n", interval * 1e6,
                simulateNvp(trace, fft, fefetNvm(), cfg).forwardProgress,
                simulateNvp(trace, fft, feramNvm(), cfg).forwardProgress);
  }

  bench::Comparison cmp;
  cmp.add("FEFET gain under ODAB (the paper's setting)", 27.0,
          paperPointOdabGain * 100.0, "%");
  cmp.add("FEFET gain under periodic checkpointing", 0.0,
          paperPointPeriodicGain * 100.0, "%");
  cmp.addText("FEFET helps under both policies", "yes",
              (paperPointOdabGain > 0.0 && paperPointPeriodicGain > 0.0)
                  ? "yes"
                  : "no",
              "");
  cmp.print();
  std::printf("\nODAB + FEFET is the best corner: cheap non-destructive "
              "reads make the once-per-outage restore nearly free, and the "
              "energy monitor avoids periodic checkpointing's redundant "
              "writes.\n");
  return 0;
}
