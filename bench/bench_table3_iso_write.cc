// Reproduces paper Table 3: the FEFET and FERAM NVM macro parameters at
// iso write time (550 ps) — bit-line voltage, write time, write energy and
// read energy — combining the simulated cells (voltage/time) with the
// macro energy reconstruction (wires + drivers, see macro_energy.h).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/macro_energy.h"
#include "core/materials.h"
#include "core/write_explorer.h"

using namespace fefet;

int main() {
  bench::banner("Table 3 (measured): iso-write 550 ps cell solve");
  core::Cell2TConfig fefetCfg;
  fefetCfg.fefet.lk = core::fefetMaterial();
  core::FeRamConfig feramCfg;
  feramCfg.lk = core::feramMaterial();
  const auto isoFefet = core::isoWriteFefet(fefetCfg, 550e-12);
  const auto isoFeram = core::isoWriteFeram(feramCfg, 550e-12);
  std::printf("FEFET cell: V=%.3f V, t=%.0f ps, E(cell)=%.3g fJ\n",
              isoFefet.voltage, isoFefet.writeTime * 1e12,
              isoFefet.writeEnergy * 1e15);
  std::printf("FERAM cell: V=%.3f V, t=%.0f ps, E(cell)=%.3g fJ\n",
              isoFeram.voltage, isoFeram.writeTime * 1e12,
              isoFeram.writeEnergy * 1e15);

  bench::banner("Table 3 (reconstructed): macro per-word (32b) parameters");
  core::MacroEnergyModel macro;
  const auto fefet = macro.fefet();
  const auto feram = macro.feram();
  std::printf("FEFET macro: %s\n", fefet.breakdown.c_str());
  std::printf("FERAM macro: %s\n", feram.breakdown.c_str());

  TextTable table({"", "Bit line voltage", "Write time", "Write energy",
                   "Read energy"});
  table.addRow({"FEFET (paper)", "0.68 V", "0.55 ns", "4.82 pJ", "0.28 pJ"});
  table.addRow({"FEFET (ours)",
                strings::fixedFormat(fefet.bitLineVoltage, 2) + " V",
                strings::siFormat(fefet.writeTime, "s"),
                strings::siFormat(fefet.writeEnergy, "J"),
                strings::siFormat(fefet.readEnergy, "J")});
  table.addRow({"FERAM (paper)", "1.64 V", "0.55 ns", "15.0 pJ", "15.5 pJ"});
  table.addRow({"FERAM (ours)",
                strings::fixedFormat(feram.bitLineVoltage, 2) + " V",
                strings::siFormat(feram.writeTime, "s"),
                strings::siFormat(feram.writeEnergy, "J"),
                strings::siFormat(feram.readEnergy, "J")});
  table.print(std::cout);

  bench::banner("headline comparisons (paper abstract)");
  bench::Comparison cmp;
  cmp.add("write voltage reduction", 58.5,
          macro.writeVoltageReduction() * 100.0, "%");
  cmp.add("write energy reduction", 67.7,
          macro.writeEnergySavings() * 100.0, "%");
  cmp.add("iso-write FEFET voltage (simulated cell)", 0.68, isoFefet.voltage,
          "V");
  cmp.add("iso-write FERAM voltage (simulated cell)", 1.64, isoFeram.voltage,
          "V");
  cmp.add("FEFET read vs FERAM read", 15.5 / 0.28,
          feram.readEnergy / fefet.readEnergy, "x");
  cmp.print();
  return 0;
}
