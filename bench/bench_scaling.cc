// Array scaling study (extension): simulated write/read energies of full
// circuit-level arrays from 2x2 up to 8x8 (the 8x8 case runs ~350 MNA
// unknowns through the sparse solver), compared against the analytic
// macro-model trend, plus solver cost accounting.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/macro_energy.h"
#include "core/memory_array.h"

using namespace fefet;

int main() {
  bench::banner("simulated array scaling (write + read of the corner bit)");
  std::cout << "size,unknowns_approx,write_energy_fJ,read_energy_fJ,"
               "write_ms,read_ms,disturb\n";
  for (int size : {2, 3, 4, 6, 8}) {
    core::ArrayConfig cfg;
    cfg.rows = size;
    cfg.cols = size;
    core::MemoryArray arr(cfg);

    const auto t0 = std::chrono::steady_clock::now();
    const auto w = arr.writeBit(0, 0, true);
    const auto t1 = std::chrono::steady_clock::now();
    const auto r = arr.readBit(0, 0);
    const auto t2 = std::chrono::steady_clock::now();
    const double writeMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double readMs =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    // Unknowns: per cell ~2 internal nodes + P aux; per line a node+source.
    const int unknowns = size * size * 3 + size * 8;
    std::printf("%dx%d,%d,%.3f,%.3f,%.0f,%.0f,%.4g\n", size, size, unknowns,
                w.totalEnergy * 1e15, r.totalEnergy * 1e15, writeMs, readMs,
                w.maxUnaccessedDisturb);
    if (!w.ok || !r.ok) std::printf("  OPERATION FAILED at %dx%d\n", size, size);
  }

  bench::banner("analytic macro-model scaling (write energy per word)");
  std::cout << "size,write_pJ,read_pJ\n";
  for (int size : {64, 128, 256, 512}) {
    core::MacroConfig cfg;
    cfg.rows = size;
    cfg.cols = size;
    core::MacroEnergyModel model(cfg);
    std::printf("%dx%d,%.2f,%.3f\n", size, size,
                model.fefet().writeEnergy * 1e12,
                model.fefet().readEnergy * 1e12);
  }

  // Trend check: simulated write energy grows roughly linearly with the
  // line lengths (wire + junction loading per added row/column).
  core::ArrayConfig small;
  small.rows = small.cols = 2;
  core::ArrayConfig big;
  big.rows = big.cols = 8;
  core::MemoryArray arrSmall(small);
  core::MemoryArray arrBig(big);
  const double eSmall = arrSmall.writeBit(0, 0, true).totalEnergy;
  const double eBig = arrBig.writeBit(0, 0, true).totalEnergy;

  bench::Comparison cmp;
  cmp.add("8x8 / 2x2 simulated write energy", 2.0, eBig / eSmall,
          "x (line part ~4x, diluted by fixed cell+driver terms)");
  cmp.addText("8x8 array operations correct", "yes",
              arrBig.readBit(0, 0).ok ? "yes" : "no", "");
  cmp.print();
  return 0;
}
