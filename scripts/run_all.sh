#!/usr/bin/env bash
# Build, test, and regenerate every paper figure/table plus the extension
# studies.  Outputs land in test_output.txt and bench_output.txt.
set -uo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "##### $b"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt
