#!/usr/bin/env bash
# Sanitizer gate: build the whole tree with AddressSanitizer +
# UndefinedBehaviorSanitizer (the FEFET_SANITIZE CMake option) in a
# dedicated build directory and run the full test suite under it.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-sanitize

cmake -B "$BUILD_DIR" -S . -DFEFET_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

# abort_on_error keeps CI logs short; detect_leaks catches missing frees in
# the netlist/device ownership chain.
export ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"
