#!/usr/bin/env bash
# Sanitizer + resilience + perf + observability gate, eight stages:
#
#  1. ASan + UBSan (FEFET_SANITIZE=address) over the full test suite —
#     memory errors and UB in the netlist/device ownership chain (the
#     suite includes the compiled-vs-legacy stamp parity tests, so both
#     assembly engines run under ASan);
#  2. TSan (FEFET_SANITIZE=thread) over the concurrency-sensitive tests
#     (the sweep engine / thread pool, the LU-reuse solver path, the
#     stamp-parity suite and the shard-lease board) — data races in the
#     sim layer.  TSan cannot combine with ASan, hence the separate build
#     directory;
#  3. kill-and-resume smoke: SIGKILL a journaled bench sweep mid-run, then
#     --resume it and require the PERF record (results CRC + outcome
#     tally, wall-clock and from_journal fields excluded) to match an
#     uninterrupted run bit for bit;
#  4. assembly perf smoke: bench_assembly on an optimized build must show
#     the compiled stamp pipeline AND the SoA batched kernels each beating
#     legacy dispatch by >= 1.5x on an array-scale (sparse-path) netlist;
#  5. observability smoke: a traced bench_variability sweep must emit a
#     metrics-JSON report with nonzero newton/assembler/sweep/controller
#     counters and a Chrome trace with the nested span taxonomy (both
#     validated with python3), and telemetry must stay ~free — enabled
#     bench_assembly within 2% of disabled, best of 3;
#  6. kill-storm chaos gate: bench_variability sharded across worker
#     processes with --chaos-kill-p self-SIGKILLs, leases reclaimed and
#     crashed workers restarted — the merged results CRC must be
#     bit-identical to the unsharded run's;
#  7. serving-layer chaos gate: bench_macro_service under a power-fail
#     storm (--storm-p=0.2) — every acked write must read back exactly
#     (acked_lost=0), no torn word may be served (torn_served=0), and the
#     shed rate of backpressure-honoring clients must stay bounded;
#  8. clang-tidy (performance-* as errors + modernize subset, .clang-tidy)
#     over src/spice and src/common — skipped with a notice when
#     clang-tidy is not installed.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_BUILD_DIR=build-sanitize
TSAN_BUILD_DIR=build-tsan
PERF_BUILD_DIR=build-perf

echo "== ASan/UBSan: full suite =="
cmake -B "$ASAN_BUILD_DIR" -S . -DFEFET_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)"

# abort_on_error keeps CI logs short; detect_leaks catches missing frees in
# the netlist/device ownership chain.
ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo "== TSan: sweep engine + LU reuse + stamp parity + observability =="
cmake -B "$TSAN_BUILD_DIR" -S . -DFEFET_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" \
  --target test_sim_sweep test_lu_reuse test_variability test_stamp_parity \
  test_obs test_shard_lease test_serve test_serve_concurrent

# The ^(...)\. anchors keep the test_obs suites from pulling in unbuilt
# binaries with similar names (Trace vs PowerTrace, LogJson vs Logistic).
TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|SweepEngine|SparseLuFactorizer|LuReuse|Variability|StampParity|ShardLease|ServeConcurrent|MacroService|ShardStore|StormStream|^(JsonChecker|Metrics|Trace|RunReport|ObsAlloc|LogPrefix|LogJson|Admission)\.' "$@"

echo "== kill-and-resume smoke: journaled sweep survives SIGKILL =="
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)" --target bench_fault_resilience
BENCH="$ASAN_BUILD_DIR/bench/bench_fault_resilience"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# PERF record minus the fields legitimately differing between a fresh and
# a resumed run (wall clock, speedup, replay count).
normalize_perf() {
  grep '^PERF ' "$1" \
    | sed -E 's/"(serial_s|parallel_s|speedup)":[0-9.]+,?//g; s/"from_journal":[0-9]+,//'
}

"$BENCH" --journal="$SMOKE_DIR/ref.journal" > "$SMOKE_DIR/ref.out"

# Pad each point so SIGKILL reliably lands mid-sweep, then pull the rug.
"$BENCH" --journal="$SMOKE_DIR/kill.journal" --point-delay-ms=400 \
  > "$SMOKE_DIR/kill.out" 2>&1 &
BENCH_PID=$!
sleep 1.2
kill -KILL "$BENCH_PID" 2>/dev/null || true
wait "$BENCH_PID" 2>/dev/null || true
if ! [ -s "$SMOKE_DIR/kill.journal" ]; then
  echo "FAIL: SIGKILL'd run left no journal" >&2
  exit 1
fi

"$BENCH" --journal="$SMOKE_DIR/kill.journal" --resume > "$SMOKE_DIR/resume.out"
if ! grep -q '"from_journal":[1-9]' "$SMOKE_DIR/resume.out"; then
  echo "FAIL: resume replayed no journal points" >&2
  cat "$SMOKE_DIR/resume.out"
  exit 1
fi
REF_PERF=$(normalize_perf "$SMOKE_DIR/ref.out")
RESUME_PERF=$(normalize_perf "$SMOKE_DIR/resume.out")
if [ "$REF_PERF" != "$RESUME_PERF" ]; then
  echo "FAIL: resumed run is not bit-identical to the uninterrupted run" >&2
  echo "  reference: $REF_PERF" >&2
  echo "  resumed:   $RESUME_PERF" >&2
  exit 1
fi
echo "kill-and-resume smoke passed (PERF records identical: $REF_PERF)"

echo "== assembly perf smoke: compiled stamps must beat legacy dispatch =="
# Optimized, sanitizer-free build: timing under ASan would be meaningless.
# Compile commands are exported here for the clang-tidy stage below.
cmake -B "$PERF_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$PERF_BUILD_DIR" -j"$(nproc)" --target bench_assembly
PERF_OUT=$("$PERF_BUILD_DIR/bench/bench_assembly")
echo "$PERF_OUT"
SPEEDUP=$(echo "$PERF_OUT" | grep '^PERF ' \
  | sed -E 's/.*"assembly_speedup":([0-9.]+).*/\1/')
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "FAIL: assembly speedup $SPEEDUP is below the 1.5x floor" >&2
  exit 1
fi
BATCHED_SPEEDUP=$(echo "$PERF_OUT" | grep '^PERF ' \
  | sed -E 's/.*"batched_speedup":([0-9.]+).*/\1/')
if ! awk -v s="$BATCHED_SPEEDUP" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "FAIL: batched speedup $BATCHED_SPEEDUP is below the 1.5x floor" >&2
  exit 1
fi
echo "assembly perf smoke passed (compiled ${SPEEDUP}x," \
     "batched ${BATCHED_SPEEDUP}x)"

echo "== observability smoke: metrics + trace capture, near-free telemetry =="
cmake --build "$PERF_BUILD_DIR" -j"$(nproc)" --target bench_variability
OBS_METRICS="$SMOKE_DIR/metrics.json"
OBS_TRACE="$SMOKE_DIR/trace.json"
# --journal makes the sweep run once (no serial-vs-parallel double run).
FEFET_METRICS="$OBS_METRICS" FEFET_TRACE="$OBS_TRACE" \
  "$PERF_BUILD_DIR/bench/bench_variability" --threads 2 \
  --journal="$SMOKE_DIR/obs.journal" > "$SMOKE_DIR/obs.out"
if ! grep -q '^REPORT ' "$SMOKE_DIR/obs.out"; then
  echo "FAIL: bench_variability emitted no REPORT line" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OBS_METRICS" "$OBS_TRACE" <<'PYEOF'
import json
import sys

report = json.load(open(sys.argv[1]))
counters = report["metrics"]["counters"]
for key in ("fefet.newton.solves.compiled", "fefet.assembler.assemblies",
            "fefet.sweep.points_ok", "fefet.controller.word_writes",
            "fefet.transient.steps"):
    assert counters.get(key, 0) > 0, f"counter {key} is zero or missing"
trace = json.load(open(sys.argv[2]))
names = {event["name"] for event in trace["traceEvents"]}
for span in ("sweep.point", "transient", "newton.solve", "newton.assemble",
             "newton.lu_solve"):
    assert span in names, f"span {span} missing from the trace"
print(f"validated {len(counters)} counters, "
      f"{len(trace['traceEvents'])} trace events")
PYEOF
else
  echo "python3 not installed; skipping JSON validation"
fi

# Telemetry must be ~free when it counts: compiled assemble phase with
# metrics enabled vs disabled, best of 3 each, within 2%.
best_compiled_assemble() {
  local best=""
  local run seconds
  for run in 1 2 3; do
    seconds=$(FEFET_METRICS="$1" "$PERF_BUILD_DIR/bench/bench_assembly" \
      | grep '^PERF ' | sed -E 's/.*"compiled_assemble_s":([0-9.]+).*/\1/')
    if [ -z "$best" ] || \
       awk -v a="$seconds" -v b="$best" 'BEGIN { exit !(a < b) }'; then
      best="$seconds"
    fi
  done
  echo "$best"
}
DISABLED_S=$(best_compiled_assemble 0)
ENABLED_S=$(best_compiled_assemble 1)
if ! awk -v e="$ENABLED_S" -v d="$DISABLED_S" \
    'BEGIN { exit !(e <= d * 1.02) }'; then
  echo "FAIL: telemetry costs >2% on bench_assembly:" \
       "enabled ${ENABLED_S}s vs disabled ${DISABLED_S}s" >&2
  exit 1
fi
echo "observability smoke passed" \
     "(compiled assemble: disabled ${DISABLED_S}s, enabled ${ENABLED_S}s)"

echo "== kill-storm: sharded sweep under random SIGKILLs stays bit-identical =="
# The same optimized bench_variability, twice: once unsharded (the
# reference CRC), once split across 4 shards / 2 worker processes with a
# 30% chance each worker self-SIGKILLs after every durable point append.
# Leases expire, survivors and restarted workers reclaim the ranges, and
# the first-wins merge must reproduce the reference CRC bit for bit.
crc_of() {
  grep '^PERF ' "$1" | sed -E 's/.*"results_crc":"([0-9a-f]+)".*/\1/'
}
"$PERF_BUILD_DIR/bench/bench_variability" \
  --journal="$SMOKE_DIR/storm-ref.journal" > "$SMOKE_DIR/storm-ref.out"
REF_CRC=$(crc_of "$SMOKE_DIR/storm-ref.out")
"$PERF_BUILD_DIR/bench/bench_variability" --shards=4 --shard-workers=2 \
  --chaos-kill-p=0.3 --chaos-seed=11 --lease-ttl-s=1 \
  --shard-lease="$SMOKE_DIR/storm.board" > "$SMOKE_DIR/storm.out"
STORM_PERF=$(grep '^PERF ' "$SMOKE_DIR/storm.out")
echo "$STORM_PERF"
STORM_CRC=$(crc_of "$SMOKE_DIR/storm.out")
if [ "$STORM_CRC" != "$REF_CRC" ]; then
  echo "FAIL: kill-storm merge CRC $STORM_CRC differs from unsharded" \
       "reference $REF_CRC" >&2
  exit 1
fi
if ! echo "$STORM_PERF" | grep -q '"complete":true'; then
  echo "FAIL: kill-storm run did not complete the board" >&2
  exit 1
fi
# The crash count depends on which worker races to which point, so it is
# advisory: a storm that happened to land zero kills still proves the CRC.
if echo "$STORM_PERF" | grep -q '"restarts":0'; then
  echo "WARN: chaos produced no worker restarts this run" >&2
fi
echo "kill-storm smoke passed (CRC $STORM_CRC matches unsharded reference)"

echo "== serve chaos gate: acked writes survive power-fail storms =="
cmake --build "$PERF_BUILD_DIR" -j"$(nproc)" --target bench_macro_service
SERVE_OUT="$SMOKE_DIR/serve.out"
# The bench itself exits non-zero on any acked-write loss, torn read, or
# lost completion; the PERF fields are re-asserted here so a regression
# in the bench's own exit-code logic cannot mask one in the service.
if ! "$PERF_BUILD_DIR/bench/bench_macro_service" --ops=6000 --storm-p=0.2 \
    --seed=11 > "$SERVE_OUT"; then
  echo "FAIL: bench_macro_service chaos run violated a durability invariant" >&2
  cat "$SERVE_OUT" >&2
  exit 1
fi
SERVE_PERF=$(grep '^PERF ' "$SERVE_OUT")
echo "$SERVE_PERF"
for field in acked_lost torn_served; do
  if ! echo "$SERVE_PERF" | grep -Eq "\"$field\":0[,}]"; then
    echo "FAIL: serve chaos gate: $field is nonzero" >&2
    exit 1
  fi
done
if echo "$SERVE_PERF" | grep -q '"power_fails":0,'; then
  echo "FAIL: serve chaos gate: the storm injected no power failures" >&2
  exit 1
fi
SERVE_SHED_RATE=$(echo "$SERVE_PERF" \
  | sed -E 's/.*"shed_rate":([0-9.]+).*/\1/')
if ! awk -v s="$SERVE_SHED_RATE" 'BEGIN { exit !(s <= 0.5) }'; then
  echo "FAIL: serve chaos gate: shed rate $SERVE_SHED_RATE exceeds 0.5" >&2
  exit 1
fi
echo "serve chaos gate passed (no acked write lost, no torn word served," \
     "shed rate ${SERVE_SHED_RATE})"

echo "== clang-tidy: performance + modernize over the solver hot path =="
if command -v clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  clang-tidy -p "$PERF_BUILD_DIR" --quiet \
    $(ls src/spice/*.cc src/common/*.cc)
  echo "clang-tidy passed"
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi
