#!/usr/bin/env bash
# Sanitizer gate, two configurations:
#
#  1. ASan + UBSan (FEFET_SANITIZE=address) over the full test suite —
#     memory errors and UB in the netlist/device ownership chain;
#  2. TSan (FEFET_SANITIZE=thread) over the concurrency-sensitive tests
#     (the sweep engine / thread pool and the LU-reuse solver path) —
#     data races in the sim layer.  TSan cannot combine with ASan, hence
#     the separate build directory.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_BUILD_DIR=build-sanitize
TSAN_BUILD_DIR=build-tsan

echo "== ASan/UBSan: full suite =="
cmake -B "$ASAN_BUILD_DIR" -S . -DFEFET_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)"

# abort_on_error keeps CI logs short; detect_leaks catches missing frees in
# the netlist/device ownership chain.
ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo "== TSan: sweep engine + LU reuse =="
cmake -B "$TSAN_BUILD_DIR" -S . -DFEFET_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" \
  --target test_sim_sweep test_lu_reuse test_variability

TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|SweepEngine|SparseLuFactorizer|LuReuse|Variability' "$@"
