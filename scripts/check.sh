#!/usr/bin/env bash
# Sanitizer + resilience gate, three stages:
#
#  1. ASan + UBSan (FEFET_SANITIZE=address) over the full test suite —
#     memory errors and UB in the netlist/device ownership chain;
#  2. TSan (FEFET_SANITIZE=thread) over the concurrency-sensitive tests
#     (the sweep engine / thread pool and the LU-reuse solver path) —
#     data races in the sim layer.  TSan cannot combine with ASan, hence
#     the separate build directory;
#  3. kill-and-resume smoke: SIGKILL a journaled bench sweep mid-run, then
#     --resume it and require the PERF record (results CRC + outcome
#     tally, wall-clock and from_journal fields excluded) to match an
#     uninterrupted run bit for bit.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_BUILD_DIR=build-sanitize
TSAN_BUILD_DIR=build-tsan

echo "== ASan/UBSan: full suite =="
cmake -B "$ASAN_BUILD_DIR" -S . -DFEFET_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)"

# abort_on_error keeps CI logs short; detect_leaks catches missing frees in
# the netlist/device ownership chain.
ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo "== TSan: sweep engine + LU reuse =="
cmake -B "$TSAN_BUILD_DIR" -S . -DFEFET_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" \
  --target test_sim_sweep test_lu_reuse test_variability

TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|SweepEngine|SparseLuFactorizer|LuReuse|Variability' "$@"

echo "== kill-and-resume smoke: journaled sweep survives SIGKILL =="
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)" --target bench_fault_resilience
BENCH="$ASAN_BUILD_DIR/bench/bench_fault_resilience"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# PERF record minus the fields legitimately differing between a fresh and
# a resumed run (wall clock, speedup, replay count).
normalize_perf() {
  grep '^PERF ' "$1" \
    | sed -E 's/"(serial_s|parallel_s|speedup)":[0-9.]+,?//g; s/"from_journal":[0-9]+,//'
}

"$BENCH" --journal="$SMOKE_DIR/ref.journal" > "$SMOKE_DIR/ref.out"

# Pad each point so SIGKILL reliably lands mid-sweep, then pull the rug.
"$BENCH" --journal="$SMOKE_DIR/kill.journal" --point-delay-ms=400 \
  > "$SMOKE_DIR/kill.out" 2>&1 &
BENCH_PID=$!
sleep 1.2
kill -KILL "$BENCH_PID" 2>/dev/null || true
wait "$BENCH_PID" 2>/dev/null || true
if ! [ -s "$SMOKE_DIR/kill.journal" ]; then
  echo "FAIL: SIGKILL'd run left no journal" >&2
  exit 1
fi

"$BENCH" --journal="$SMOKE_DIR/kill.journal" --resume > "$SMOKE_DIR/resume.out"
if ! grep -q '"from_journal":[1-9]' "$SMOKE_DIR/resume.out"; then
  echo "FAIL: resume replayed no journal points" >&2
  cat "$SMOKE_DIR/resume.out"
  exit 1
fi
REF_PERF=$(normalize_perf "$SMOKE_DIR/ref.out")
RESUME_PERF=$(normalize_perf "$SMOKE_DIR/resume.out")
if [ "$REF_PERF" != "$RESUME_PERF" ]; then
  echo "FAIL: resumed run is not bit-identical to the uninterrupted run" >&2
  echo "  reference: $REF_PERF" >&2
  echo "  resumed:   $RESUME_PERF" >&2
  exit 1
fi
echo "kill-and-resume smoke passed (PERF records identical: $REF_PERF)"
