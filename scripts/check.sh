#!/usr/bin/env bash
# Sanitizer + resilience + perf gate, five stages:
#
#  1. ASan + UBSan (FEFET_SANITIZE=address) over the full test suite —
#     memory errors and UB in the netlist/device ownership chain (the
#     suite includes the compiled-vs-legacy stamp parity tests, so both
#     assembly engines run under ASan);
#  2. TSan (FEFET_SANITIZE=thread) over the concurrency-sensitive tests
#     (the sweep engine / thread pool, the LU-reuse solver path and the
#     stamp-parity suite) — data races in the sim layer.  TSan cannot
#     combine with ASan, hence the separate build directory;
#  3. kill-and-resume smoke: SIGKILL a journaled bench sweep mid-run, then
#     --resume it and require the PERF record (results CRC + outcome
#     tally, wall-clock and from_journal fields excluded) to match an
#     uninterrupted run bit for bit;
#  4. assembly perf smoke: bench_assembly on an optimized build must show
#     the compiled stamp pipeline beating legacy dispatch by >= 1.5x on
#     an array-scale (sparse-path) netlist;
#  5. clang-tidy (performance-* as errors + modernize subset, .clang-tidy)
#     over src/spice and src/common — skipped with a notice when
#     clang-tidy is not installed.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

ASAN_BUILD_DIR=build-sanitize
TSAN_BUILD_DIR=build-tsan
PERF_BUILD_DIR=build-perf

echo "== ASan/UBSan: full suite =="
cmake -B "$ASAN_BUILD_DIR" -S . -DFEFET_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)"

# abort_on_error keeps CI logs short; detect_leaks catches missing frees in
# the netlist/device ownership chain.
ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j"$(nproc)" "$@"

echo "== TSan: sweep engine + LU reuse + stamp parity =="
cmake -B "$TSAN_BUILD_DIR" -S . -DFEFET_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" \
  --target test_sim_sweep test_lu_reuse test_variability test_stamp_parity

TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j"$(nproc)" \
  -R 'ThreadPool|SweepEngine|SparseLuFactorizer|LuReuse|Variability|StampParity' "$@"

echo "== kill-and-resume smoke: journaled sweep survives SIGKILL =="
cmake --build "$ASAN_BUILD_DIR" -j"$(nproc)" --target bench_fault_resilience
BENCH="$ASAN_BUILD_DIR/bench/bench_fault_resilience"
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# PERF record minus the fields legitimately differing between a fresh and
# a resumed run (wall clock, speedup, replay count).
normalize_perf() {
  grep '^PERF ' "$1" \
    | sed -E 's/"(serial_s|parallel_s|speedup)":[0-9.]+,?//g; s/"from_journal":[0-9]+,//'
}

"$BENCH" --journal="$SMOKE_DIR/ref.journal" > "$SMOKE_DIR/ref.out"

# Pad each point so SIGKILL reliably lands mid-sweep, then pull the rug.
"$BENCH" --journal="$SMOKE_DIR/kill.journal" --point-delay-ms=400 \
  > "$SMOKE_DIR/kill.out" 2>&1 &
BENCH_PID=$!
sleep 1.2
kill -KILL "$BENCH_PID" 2>/dev/null || true
wait "$BENCH_PID" 2>/dev/null || true
if ! [ -s "$SMOKE_DIR/kill.journal" ]; then
  echo "FAIL: SIGKILL'd run left no journal" >&2
  exit 1
fi

"$BENCH" --journal="$SMOKE_DIR/kill.journal" --resume > "$SMOKE_DIR/resume.out"
if ! grep -q '"from_journal":[1-9]' "$SMOKE_DIR/resume.out"; then
  echo "FAIL: resume replayed no journal points" >&2
  cat "$SMOKE_DIR/resume.out"
  exit 1
fi
REF_PERF=$(normalize_perf "$SMOKE_DIR/ref.out")
RESUME_PERF=$(normalize_perf "$SMOKE_DIR/resume.out")
if [ "$REF_PERF" != "$RESUME_PERF" ]; then
  echo "FAIL: resumed run is not bit-identical to the uninterrupted run" >&2
  echo "  reference: $REF_PERF" >&2
  echo "  resumed:   $RESUME_PERF" >&2
  exit 1
fi
echo "kill-and-resume smoke passed (PERF records identical: $REF_PERF)"

echo "== assembly perf smoke: compiled stamps must beat legacy dispatch =="
# Optimized, sanitizer-free build: timing under ASan would be meaningless.
# Compile commands are exported here for the clang-tidy stage below.
cmake -B "$PERF_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$PERF_BUILD_DIR" -j"$(nproc)" --target bench_assembly
PERF_OUT=$("$PERF_BUILD_DIR/bench/bench_assembly")
echo "$PERF_OUT"
SPEEDUP=$(echo "$PERF_OUT" | grep '^PERF ' \
  | sed -E 's/.*"assembly_speedup":([0-9.]+).*/\1/')
if ! awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.5) }'; then
  echo "FAIL: assembly speedup $SPEEDUP is below the 1.5x floor" >&2
  exit 1
fi
echo "assembly perf smoke passed (speedup ${SPEEDUP}x)"

echo "== clang-tidy: performance + modernize over the solver hot path =="
if command -v clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  clang-tidy -p "$PERF_BUILD_DIR" --quiet \
    $(ls src/spice/*.cc src/common/*.cc)
  echo "clang-tidy passed"
else
  echo "clang-tidy not installed; skipping static-analysis stage"
fi
