// trace.h — scoped spans with monotonic timestamps, a bounded ring-buffer
// collector and a Chrome trace_event JSON exporter.
//
// A Span is an RAII scope marker: construction stamps the start time,
// destruction records one complete event (name, start, duration, thread)
// into the collector.  Spans nest naturally — sweep point → transient →
// Newton iteration → assemble/solve — and viewers (chrome://tracing,
// Perfetto, https://ui.perfetto.dev) reconstruct the nesting from
// timestamp containment per thread, so no parent pointers are needed.
//
// Cost model:
//
//  * disabled (default): Span construction is one relaxed atomic load and
//    a branch; nothing else happens.  This is the state the <2%
//    bench_assembly telemetry budget is measured in (scripts/check.sh).
//  * enabled: two monotonic clock reads plus one write into the calling
//    thread's preallocated ring — no locks, no allocation, no contention
//    (each thread records into its own ring; a mutex is taken only the
//    first time a thread records after enable()/clear()).
//
// The collector is bounded: each thread's ring holds a fixed number of
// events and overwrites its oldest on overflow (dropped() reports how
// many were lost).  Span names must be string literals (or otherwise
// outlive the collector) — they are stored as const char*.
//
// Concurrency contract: record() (i.e. Span destruction) is safe from any
// number of threads concurrently.  enable(), clear(), events(),
// toChromeJson() and writeChromeJson() must not race with in-flight
// spans — quiesce first (join workers / ThreadPool::wait()), which every
// bench does naturally by enabling at startup and exporting at end of
// run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace fefet::obs {

/// One completed span.
struct TraceEvent {
  const char* name = "";      ///< static string (span label)
  std::uint64_t startNs = 0;  ///< monotonicNanos() at span entry
  std::uint64_t durNs = 0;    ///< span duration
  int thread = 0;             ///< currentThreadId() of the recording thread
  std::uint64_t arg = 0;      ///< optional numeric payload (point index, …)
  bool hasArg = false;
};

class Trace {
 public:
  /// True while the collector accepts events.  Relaxed load — the only
  /// cost a disabled span pays.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting.  Discards previously collected events and sizes
  /// each thread's ring to `eventsPerThread` (rounded up to a power of
  /// two).  Also the way to resize: enable(n) while enabled re-arms with
  /// the new capacity.
  static void enable(std::size_t eventsPerThread = 1 << 13);

  /// Stop collecting; already-recorded events stay readable.
  static void disable();

  /// Drop all collected events (keeps the enabled state and capacity).
  static void clear();

  /// If the FEFET_TRACE environment variable names a file, enable() and
  /// return that path (the caller writes it at end of run); otherwise
  /// return empty and leave the collector alone.  Optional
  /// FEFET_TRACE_EVENTS overrides the per-thread ring capacity.
  static std::string enableFromEnv();

  /// Record one complete event (Span does this; callable directly for
  /// pre-measured intervals).  No-op when disabled.
  static void record(const char* name, std::uint64_t startNs,
                     std::uint64_t durNs, std::uint64_t arg = 0,
                     bool hasArg = false);

  /// All retained events, merged across threads, sorted by start time.
  /// See the concurrency contract above.
  static std::vector<TraceEvent> events();

  /// Events overwritten by ring overflow since the last enable()/clear().
  static std::uint64_t dropped();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in µs):
  /// load in chrome://tracing or https://ui.perfetto.dev.
  static std::string toChromeJson();

  /// Write toChromeJson() to `path`; false on I/O failure.
  static bool writeChromeJson(const std::string& path);

 private:
  static std::atomic<bool> enabled_;
};

/// RAII scope span.  Usage:
///   obs::Span span("newton.solve");
///   obs::Span span("sweep.point", pointIndex);
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), active_(Trace::enabled()) {
    if (active_) start_ = monotonicNanos();
  }
  Span(const char* name, std::uint64_t arg)
      : name_(name), arg_(arg), active_(Trace::enabled()), hasArg_(true) {
    if (active_) start_ = monotonicNanos();
  }
  ~Span() {
    if (active_) {
      Trace::record(name_, start_, monotonicNanos() - start_, arg_, hasArg_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ = 0;
  std::uint64_t arg_ = 0;
  bool active_;
  bool hasArg_ = false;
};

}  // namespace fefet::obs
