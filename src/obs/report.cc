#include "obs/report.h"

#include <cstdio>

#include "common/strings.h"

namespace fefet::obs {

void RunReport::addNumber(const std::string& key, double value) {
  fields_.emplace_back(key, strings::jsonNumber(value));
}

void RunReport::addCount(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
}

void RunReport::addString(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, '"' + strings::jsonEscape(value) + '"');
}

void RunReport::addBool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
}

void RunReport::addRaw(const std::string& key, const std::string& json) {
  fields_.emplace_back(key, json);
}

std::string RunReport::toJson(const MetricsSnapshot& metrics) const {
  std::string out =
      "{\"bench\":\"" + strings::jsonEscape(benchName_) + '"';
  for (const auto& [key, value] : fields_) {
    out += ",\"" + strings::jsonEscape(key) + "\":" + value;
  }
  out += ",\"metrics\":" + metrics.toJson() + '}';
  return out;
}

bool RunReport::writeJson(const std::string& path,
                          const MetricsSnapshot& metrics) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = toJson(metrics);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace fefet::obs
