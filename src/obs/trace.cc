#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/strings.h"

namespace fefet::obs {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// One thread's bounded ring.  Only the owning thread writes (head is
/// advanced without atomics); readers synchronize through quiescence
/// (see the contract in trace.h) plus the collector mutex.
struct ThreadRing {
  int thread = 0;
  std::vector<TraceEvent> slots;
  std::uint64_t head = 0;     ///< total events ever recorded
  std::uint64_t dropped = 0;  ///< head minus retained
};

/// Collector: owns every thread's ring so events survive thread exit
/// (sweep workers die after each run; their spans must not).
struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::size_t capacity = 1 << 13;  ///< per-thread, power of two
  std::uint64_t generation = 0;    ///< bumped by enable()/clear()
};

Collector& collector() {
  static Collector* c = new Collector();  // never destroyed: threads may
  return *c;                              // record until process exit
}

std::atomic<std::uint64_t> g_generation{0};

thread_local ThreadRing* t_ring = nullptr;
thread_local std::uint64_t t_generation = ~std::uint64_t{0};

ThreadRing* acquireRing() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> guard(c.mutex);
  auto ring = std::make_unique<ThreadRing>();
  ring->thread = currentThreadId();
  ring->slots.resize(c.capacity);
  t_ring = ring.get();
  t_generation = c.generation;
  c.rings.push_back(std::move(ring));
  return t_ring;
}

/// Chronological copy of one ring's retained events.
void appendRingEvents(const ThreadRing& ring, std::vector<TraceEvent>* out) {
  const std::size_t cap = ring.slots.size();
  const std::uint64_t retained = std::min<std::uint64_t>(ring.head, cap);
  const std::uint64_t first = ring.head - retained;
  for (std::uint64_t i = first; i < ring.head; ++i) {
    out->push_back(ring.slots[static_cast<std::size_t>(i & (cap - 1))]);
  }
}

}  // namespace

std::atomic<bool> Trace::enabled_{false};

void Trace::enable(std::size_t eventsPerThread) {
  Collector& c = collector();
  const std::lock_guard<std::mutex> guard(c.mutex);
  c.capacity = roundUpPow2(std::max<std::size_t>(eventsPerThread, 2));
  c.rings.clear();
  ++c.generation;
  g_generation.store(c.generation, std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Trace::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Trace::clear() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> guard(c.mutex);
  c.rings.clear();
  ++c.generation;
  g_generation.store(c.generation, std::memory_order_release);
}

std::string Trace::enableFromEnv() {
  const char* path = std::getenv("FEFET_TRACE");
  if (path == nullptr || path[0] == '\0') return {};
  std::size_t capacity = 1 << 13;
  if (const char* n = std::getenv("FEFET_TRACE_EVENTS")) {
    const long v = std::atol(n);
    if (v > 0) capacity = static_cast<std::size_t>(v);
  }
  enable(capacity);
  return path;
}

void Trace::record(const char* name, std::uint64_t startNs,
                   std::uint64_t durNs, std::uint64_t arg, bool hasArg) {
  if (!enabled()) return;
  ThreadRing* ring = t_ring;
  if (ring == nullptr ||
      t_generation != g_generation.load(std::memory_order_acquire)) {
    ring = acquireRing();
  }
  const std::size_t cap = ring->slots.size();
  TraceEvent& slot = ring->slots[static_cast<std::size_t>(
      ring->head & (cap - 1))];
  slot.name = name;
  slot.startNs = startNs;
  slot.durNs = durNs;
  slot.thread = ring->thread;
  slot.arg = arg;
  slot.hasArg = hasArg;
  ++ring->head;
  if (ring->head > cap) ++ring->dropped;
}

std::vector<TraceEvent> Trace::events() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> guard(c.mutex);
  std::vector<TraceEvent> all;
  for (const auto& ring : c.rings) appendRingEvents(*ring, &all);
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.startNs < b.startNs;
                   });
  return all;
}

std::uint64_t Trace::dropped() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> guard(c.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : c.rings) total += ring->dropped;
  return total;
}

std::string Trace::toChromeJson() {
  const std::vector<TraceEvent> all = events();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const TraceEvent& e : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + strings::jsonEscape(e.name) +
           "\",\"cat\":\"fefet\",\"ph\":\"X\",\"pid\":1";
    std::snprintf(buf, sizeof(buf), ",\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
                  e.thread, static_cast<double>(e.startNs) / 1e3,
                  static_cast<double>(e.durNs) / 1e3);
    out += buf;
    if (e.hasArg) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"i\":%llu}",
                    static_cast<unsigned long long>(e.arg));
      out += buf;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Trace::writeChromeJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = toChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace fefet::obs
