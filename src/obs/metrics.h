// metrics.h — process-wide registry of named counters, gauges and
// fixed-bucket histograms.
//
// Design goals, in order:
//
//  1. Hot-path increments are lock-free and allocation-free.  Counters
//     and histograms stripe their storage across cache-line-padded
//     shards indexed by the caller's thread id, so concurrent workers
//     never contend on one atomic; a snapshot merges the shards.  All
//     storage is sized at registration — after that, add()/observe()
//     touch only preallocated atomics (tests/test_obs.cc audits this
//     with the same operator-new hook as test_stamp_alloc).
//  2. Registration is cheap but not free (mutex + map lookup), so call
//     sites hold the returned reference — typically a function-local
//     static or a constructor-initialized member.  Registered metrics
//     are never deleted or moved: references stay valid for the process
//     lifetime, and Metrics::reset() zeroes values without invalidating
//     them.
//  3. Snapshots serialize to the same PERF-v2-style JSON the benches
//     emit, under the `fefet.<layer>.<name>` naming scheme (see
//     DESIGN.md §6.3).
//
// Collection is globally gated by Metrics::enabled() (default on; env
// FEFET_METRICS=0 disables) so the zero-telemetry cost is one relaxed
// load per call site.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"

namespace fefet::obs {

/// Shard count of the thread-striped storage.  Power of two; threads map
/// onto shards by `currentThreadId() & (kMetricShards - 1)`.
inline constexpr int kMetricShards = 8;

/// Monotonically increasing event count (iterations, retries, stamped
/// entries, accumulated nanoseconds, …).
class Counter {
 public:
  void add(std::uint64_t delta) {
    shards_[shardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Sum across shards.  Safe to call concurrently with add(); the result
  /// is a consistent-enough merge for reporting (each shard is read
  /// atomically).
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static int shardIndex() { return currentThreadId() & (kMetricShards - 1); }
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-written value (queue depth, active workers, configured threads).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= edges[i]
/// (first matching bucket, Prometheus "le" semantics); one extra
/// overflow bucket catches v > edges.back().  Edges are fixed at
/// registration; observe() is a linear scan over <= ~16 edges plus one
/// relaxed fetch_add — allocation-free.
///
/// NaN observations are dropped from the buckets, count and sum (a NaN
/// would land in the overflow bucket — every `v <= edge` comparison is
/// false — and poison the running sum forever) and tallied separately in
/// nanCount(), so a producer emitting garbage is visible without
/// corrupting the distribution.
class Histogram {
 public:
  explicit Histogram(std::span<const double> edges);

  void observe(double value);

  std::size_t bucketCount() const { return edges_.size() + 1; }
  const std::vector<double>& edges() const { return edges_; }

  /// Merged bucket counts (size bucketCount()), total count and sum.
  /// The merge is a plain per-bucket sum, so it is associative: merging
  /// shard-by-shard equals merging any grouping of shards
  /// (tests/test_obs.cc checks this against a single-threaded reference).
  std::vector<std::uint64_t> bucketTotals() const;
  std::uint64_t count() const;
  double sum() const;
  /// NaN observations dropped (excluded from buckets/count/sum).
  std::uint64_t nanCount() const;

  void reset();

 private:
  static int shardIndex() { return currentThreadId() & (kMetricShards - 1); }
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> nan{0};
  };
  std::vector<double> edges_;
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time copy of every registered metric, decoupled from the
/// live registry (safe to serialize while workers keep counting).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;  ///< edges.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint64_t nan = 0;  ///< NaN observations dropped
  };
  std::vector<CounterValue> counters;    ///< sorted by name
  std::vector<GaugeValue> gauges;        ///< sorted by name
  std::vector<HistogramValue> histograms;  ///< sorted by name

  /// Value of one counter (0 when absent — absent and never-incremented
  /// are indistinguishable by design).
  std::uint64_t counterValue(const std::string& name) const;

  /// PERF-v2-style JSON object:
  /// {"counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{"edges":[...],"buckets":[...],
  ///                      "count":N,"sum":S,"nan":N},...}}
  std::string toJson() const;
};

/// The process-wide registry.  All accessors return references that stay
/// valid for the process lifetime.
class Metrics {
 public:
  /// Global collection gate: default on, FEFET_METRICS=0 in the
  /// environment starts the process disabled.  Call sites with non-trivial
  /// bookkeeping (clock reads, per-item loops) should check this first;
  /// plain add()/observe() calls may skip the check — their cost is one
  /// relaxed atomic op either way.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void setEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Find-or-create.  Names follow `fefet.<layer>.<name>`.  Re-requesting
  /// an existing histogram ignores the new edges (first registration
  /// wins).
  static Counter& counter(const std::string& name);
  static Gauge& gauge(const std::string& name);
  static Histogram& histogram(const std::string& name,
                              std::span<const double> edges);

  /// Copy every registered metric.
  static MetricsSnapshot snapshot();

  /// Zero every registered metric (values only; references stay valid).
  /// For benches and tests that want a clean slate per run.
  static void reset();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace fefet::obs
