// report.h — unified end-of-run report: one JSON document merging the
// final metrics snapshot with bench-specific fields (sweep outcome tally,
// wall clocks, result CRCs, …).
//
// Every bench emits exactly one of these through the shared
// bench/bench_util.h helper (TelemetrySession), replacing the ad-hoc
// per-bench PERF assembly that used to hand-roll its own JSON.  The
// document shape:
//
//   {"bench":"<name>", <extra fields in insertion order>,
//    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
//
// Extra fields are added typed (number/string/bool/raw) so the report
// builder owns all escaping and formatting.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace fefet::obs {

class RunReport {
 public:
  explicit RunReport(std::string benchName)
      : benchName_(std::move(benchName)) {}

  const std::string& benchName() const { return benchName_; }

  void addNumber(const std::string& key, double value);
  void addCount(const std::string& key, std::uint64_t value);
  void addString(const std::string& key, const std::string& value);
  void addBool(const std::string& key, bool value);
  /// Pre-rendered JSON value (object/array); the caller guarantees it is
  /// valid JSON.
  void addRaw(const std::string& key, const std::string& json);

  /// Render the document around `metrics` (pass Metrics::snapshot() for
  /// the live registry).
  std::string toJson(const MetricsSnapshot& metrics) const;

  /// toJson() written to `path`; false on I/O failure.
  bool writeJson(const std::string& path,
                 const MetricsSnapshot& metrics) const;

 private:
  std::string benchName_;
  std::vector<std::pair<std::string, std::string>> fields_;  ///< key, JSON
};

}  // namespace fefet::obs
