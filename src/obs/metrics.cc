#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "common/error.h"
#include "common/strings.h"

namespace fefet::obs {

namespace {

bool initialEnabled() {
  const char* env = std::getenv("FEFET_METRICS");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Registry storage.  unique_ptr values keep metric addresses stable
/// across map rehashes; the registry itself lives forever (intentionally
/// leaked on exit — call sites hold references from static initializers
/// whose destruction order is unknowable).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

std::atomic<bool> Metrics::enabled_{initialEnabled()};

Histogram::Histogram(std::span<const double> edges)
    : edges_(edges.begin(), edges.end()) {
  FEFET_REQUIRE(!edges_.empty(), "histogram needs at least one bucket edge");
  FEFET_REQUIRE(std::is_sorted(edges_.begin(), edges_.end()),
                "histogram bucket edges must be sorted ascending");
  const std::size_t buckets = bucketCount();
  for (auto& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double value) {
  if (std::isnan(value)) {
    // A NaN fails every `value <= edge` comparison (so it would count as
    // overflow) and turns the running sum into NaN permanently.  Drop it
    // from the distribution and tally it separately.
    shards_[static_cast<std::size_t>(shardIndex())].nan.fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  std::size_t bucket = edges_.size();  // overflow unless an edge catches it
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = shards_[static_cast<std::size_t>(shardIndex())];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS accumulation: atomic<double> has no fetch_add pre-C++23.
  double expected = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketTotals() const {
  std::vector<std::uint64_t> totals(bucketCount(), 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < totals.size(); ++i) {
      totals[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::nanCount() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.nan.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (std::size_t i = 0; i < bucketCount(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.nan.store(0, std::memory_order_relaxed);
  }
}

Counter& Metrics::counter(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name,
                              std::span<const double> edges) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(edges);
  return *slot;
}

MetricsSnapshot Metrics::snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, counter] : r.counters) {
    snap.counters.push_back({name, counter->total()});
  }
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, gauge] : r.gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, histogram] : r.histograms) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.edges = histogram->edges();
    h.buckets = histogram->bucketTotals();
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.nan = histogram->nanCount();
    snap.histograms.push_back(std::move(h));
  }
  return snap;  // std::map iterates sorted, so the vectors are sorted
}

void Metrics::reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> guard(r.mutex);
  for (auto& [name, counter] : r.counters) counter->reset();
  for (auto& [name, gauge] : r.gauges) gauge->reset();
  for (auto& [name, histogram] : r.histograms) histogram->reset();
}

std::uint64_t MetricsSnapshot::counterValue(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + strings::jsonEscape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + strings::jsonEscape(g.name) +
           "\":" + strings::jsonNumber(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + strings::jsonEscape(h.name) + "\":{\"edges\":[";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      if (i > 0) out += ',';
      out += strings::jsonNumber(h.edges[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + strings::jsonNumber(h.sum) +
           ",\"nan\":" + std::to_string(h.nan) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace fefet::obs
