#include "xtor/mosfet_model.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math.h"
#include "common/units.h"

namespace fefet::xtor {

using math::logistic;
using math::softplus;

MosfetModel::MosfetModel(const MosParams& params, double width)
    : params_(params), width_(width) {
  FEFET_REQUIRE(width_ > 0.0, "MOSFET width must be positive");
  FEFET_REQUIRE(params_.length > 0.0, "MOSFET length must be positive");
  FEFET_REQUIRE(params_.cox > 0.0, "oxide capacitance must be positive");
  FEFET_REQUIRE(params_.slopeFactor >= 1.0, "slope factor must be >= 1");
  FEFET_REQUIRE(params_.mobility > 0.0, "mobility must be positive");
}

double MosfetModel::thermalVoltage() const {
  return constants::kBoltzmann * params_.temperature /
         constants::kElementaryCharge;
}

namespace {
/// Normal-mode (vds >= 0) NMOS evaluation.  Returns ids and the partial
/// derivatives w.r.t. vgs and vds.
struct NormalModeResult {
  double ids;
  double dIdVgs;
  double dIdVds;
};

NormalModeResult evaluateNormalMode(const MosParams& p, double width,
                                    double phit, double vgs, double vds) {
  const double n = p.slopeFactor;
  const double ispec = 2.0 * n * p.mobility * p.cox * (width / p.length) *
                       phit * phit;
  const double vtEff = p.vt0 - p.dibl * vds;

  const double argF = (vgs - vtEff) / (2.0 * n * phit);
  const double argR = argF - vds / (2.0 * phit);
  const double lf = softplus(argF);
  const double lr = softplus(argR);
  const double sf = logistic(argF);
  const double sr = logistic(argR);
  const double iF = lf * lf;
  const double iR = lr * lr;

  // Smoothed gate overdrive for the mobility-degradation factor.
  const double argOv = (vgs - vtEff) / (2.0 * phit);
  const double ovs = 2.0 * phit * softplus(argOv);
  const double sOv = logistic(argOv);
  const double mobDen = 1.0 + p.mobilityTheta * ovs;
  const double clm = 1.0 + p.lambda * vds;
  const double m = clm / mobDen;

  const double core = iF - iR;
  const double ids = ispec * core * m;

  // d(iF)/dvgs = lf*sf/(n*phit); same form for iR.
  const double diFdVgs = lf * sf / (n * phit);
  const double diRdVgs = lr * sr / (n * phit);
  // Via vtEff(vds): d(arg)/dvds adds dibl/(2 n phit); iR also has the
  // explicit -vds/(2 phit) term.
  const double diFdVds = lf * sf * p.dibl / (n * phit);
  const double diRdVds = lr * sr * (p.dibl - n) / (n * phit);

  const double dMdVgs = -m * p.mobilityTheta * sOv / mobDen;
  const double dOvsdVds = sOv * p.dibl;
  const double dMdVds =
      p.lambda / mobDen - m * p.mobilityTheta * dOvsdVds / mobDen;

  NormalModeResult r;
  r.ids = ids;
  r.dIdVgs = ispec * ((diFdVgs - diRdVgs) * m + core * dMdVgs);
  r.dIdVds = ispec * ((diFdVds - diRdVds) * m + core * dMdVds);
  return r;
}
}  // namespace

MosOperatingPoint MosfetModel::evaluate(double vd, double vg,
                                        double vs) const {
  // Mirror PMOS into NMOS space.
  double sgn = 1.0;
  if (params_.type == MosType::kPmos) {
    vd = -vd;
    vg = -vg;
    vs = -vs;
    sgn = -1.0;
  }
  const double phit = thermalVoltage();

  MosOperatingPoint op;
  if (vd >= vs) {
    const auto r = evaluateNormalMode(params_, width_, phit, vg - vs, vd - vs);
    op.ids = sgn * r.ids;
    op.gm = r.dIdVgs;        // dI/dvg
    op.gds = r.dIdVds;       // dI/dvd
  } else {
    // Swapped mode: I(vd,vg,vs) = -I_N with source and drain exchanged.
    const auto r = evaluateNormalMode(params_, width_, phit, vg - vd, vs - vd);
    op.ids = -sgn * r.ids;
    op.gm = -r.dIdVgs;                 // dI/dvg
    op.gds = r.dIdVgs + r.dIdVds;      // dI/dvd (was -dI_N/dvs')
  }
  // PMOS: dI_p/dv = d[-I_n(-v)]/dv = +dI_n/dv' — derivative values carry over.
  return op;
}

double MosfetModel::idsAt(double vd, double vg, double vs) const {
  return evaluate(vd, vg, vs).ids;
}

void MosfetModel::evaluateBatch(std::size_t n, const MosfetModel* const* models,
                                const double* vd, const double* vg,
                                const double* vs, MosOperatingPoint* out) {
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = models[k]->evaluate(vd[k], vg[k], vs[k]);
  }
}

void MosfetModel::gateChargeBatch(std::size_t n,
                                  const MosfetModel* const* models,
                                  const double* vgs, double* chargeDensity,
                                  double* capacitanceDensity) {
  for (std::size_t k = 0; k < n; ++k) {
    // Read the lane input first: chargeDensity may alias vgs.
    const double v = vgs[k];
    chargeDensity[k] = models[k]->gateChargeDensity(v);
    capacitanceDensity[k] = models[k]->gateCapacitanceDensity(v);
  }
}

double MosfetModel::branchCharge(double overdrive) const {
  if (overdrive <= 0.0) return 0.0;
  const double c = 1.0 / params_.cox;
  const double k = params_.chargeStiffening;
  const double s = std::sqrt(c * c + 4.0 * k * overdrive);
  return 2.0 * overdrive / (c + s);
}

double MosfetModel::branchCapacitance(double overdrive,
                                      double logisticFactor) const {
  if (overdrive <= 0.0) return params_.cox * logisticFactor;
  const double c = 1.0 / params_.cox;
  const double k = params_.chargeStiffening;
  const double s = std::sqrt(c * c + 4.0 * k * overdrive);
  const double dQdU = 2.0 / (c + s) - 4.0 * k * overdrive /
                                          (s * (c + s) * (c + s));
  return dQdU * logisticFactor;
}

double MosfetModel::gateChargeDensity(double vgs) const {
  if (params_.type == MosType::kPmos) return -gateChargeDensityMirror(-vgs);
  return gateChargeDensityMirror(vgs);
}

// Helper implemented as a private-like free pattern via a member; declared
// inline here to keep the header minimal.
double MosfetModel::gateChargeDensityMirror(double vgs) const {
  const double phit = thermalVoltage();
  const double n = params_.slopeFactor;
  const double na = params_.accSlopeFactor;
  const double uInv = n * phit * softplus((vgs - params_.vt0) / (n * phit));
  const double uAcc =
      na * phit * softplus(-(vgs - params_.vfb) / (na * phit));
  return branchCharge(uInv) - branchCharge(uAcc);
}

double MosfetModel::gateCapacitanceDensity(double vgs) const {
  if (params_.type == MosType::kPmos) vgs = -vgs;  // symmetric derivative
  const double phit = thermalVoltage();
  const double n = params_.slopeFactor;
  const double na = params_.accSlopeFactor;
  const double xInv = (vgs - params_.vt0) / (n * phit);
  const double xAcc = -(vgs - params_.vfb) / (na * phit);
  const double uInv = n * phit * softplus(xInv);
  const double uAcc = na * phit * softplus(xAcc);
  return branchCapacitance(uInv, logistic(xInv)) +
         branchCapacitance(uAcc, logistic(xAcc));
}

double MosfetModel::gateVoltageForCharge(double q) const {
  const double lo = -10.0, hi = 10.0;
  return math::brent(
      [this, q](double v) { return gateChargeDensity(v) - q; }, lo, hi,
      {.xTolerance = 1e-12});
}

double MosfetModel::totalGateCharge(double vg, double vd, double vs) const {
  const double cov = params_.overlapCapPerWidth * width_;
  return gateArea() * gateChargeDensity(vg - vs) + cov * (vg - vd) +
         cov * (vg - vs);
}

double MosfetModel::effectiveThreshold(double vds) const {
  return params_.vt0 - params_.dibl * std::abs(vds);
}

std::string MosfetModel::describe() const {
  std::ostringstream os;
  os << (params_.type == MosType::kNmos ? "nmos" : "pmos") << " W="
     << width_ * 1e9 << "nm L=" << params_.length * 1e9 << "nm VT="
     << params_.vt0 << "V";
  return os.str();
}

MosParams nmos45() { return MosParams{}; }

MosParams pmos45() {
  MosParams p;
  p.type = MosType::kPmos;
  p.mobility = 4.1e-3;  // ~0.45x NMOS drive
  return p;
}

}  // namespace fefet::xtor
