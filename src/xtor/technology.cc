#include "xtor/technology.h"

#include <sstream>

namespace fefet::xtor {

std::string Technology::describe() const {
  std::ostringstream os;
  os << "Technology node        : " << nodeLength * 1e9 << " nm\n"
     << "Transistor width       : " << transistorWidth * 1e9 << " nm\n"
     << "Metal capacitance      : " << metalCapPerLength * 1e15 * 1e-6
     << " fF/um\n"
     << "Write voltage (VDD)    : " << vdd << " V\n"
     << "Read voltage           : " << vread << " V\n"
     << "Write-select boost     : " << writeSelectBoost << " V\n"
     << "NMOS VT / n / Cox      : " << nmos.vt0 << " V / " << nmos.slopeFactor
     << " / " << nmos.cox << " F/m^2\n"
     << "PMOS VT / mobility     : " << pmos.vt0 << " V / " << pmos.mobility
     << " m^2/Vs\n";
  return os.str();
}

const Technology& defaultTechnology() {
  static const Technology tech{};
  return tech;
}

}  // namespace fefet::xtor
