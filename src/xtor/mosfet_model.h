// mosfet_model.h — EKV-style unified MOSFET compact model (45 nm class).
//
// The paper couples the LK ferroelectric model with a "45nm high
// performance transistor model" (PTM [14]).  We substitute an analytic
// charge-based compact model with the same qualitative anatomy:
//
//  * Drain current: EKV forward/reverse interpolation — exponential
//    subthreshold (slope n·phi_t·ln10 ≈ 90 mV/dec), square-law moderate
//    inversion, triode/saturation via the reverse term, channel-length
//    modulation, DIBL and mobility degradation with gate overdrive.
//
//  * Gate charge: a smooth areal density Q_G(v_g) combining an inversion
//    branch (threshold VT, slope factor n) and an accumulation branch
//    (flat-band VFB, slope factor n_acc).  Above each onset the charge
//    follows  v_over = Q/C_ox + kappa·Q²  — the quadratic "stiffening"
//    term models the finite inversion-layer density of states /
//    poly-depletion-like reduction of gate capacitance at high charge.
//
// kappa and C_ox are the two knobs that, together with the paper's LK
// coefficients, reproduce the paper's device-level behaviour (see
// DESIGN.md §5): no hysteresis at T_FE = 1 nm, volatile hysteresis at
// 1.9 nm, a ~0.5 V nonvolatile window at 2.25 nm, and ~10^6 on/off ratio.
#pragma once

#include <cstddef>
#include <string>

namespace fefet::xtor {

enum class MosType { kNmos, kPmos };

/// Process card of one transistor flavour.  All quantities SI; voltages of
/// the PMOS card are specified as positive magnitudes and mirrored
/// internally.
struct MosParams {
  MosType type = MosType::kNmos;
  double vt0 = 0.40;           ///< threshold voltage [V]
  double slopeFactor = 1.5;    ///< subthreshold slope factor n
  double vfb = -0.90;          ///< flat-band voltage [V] (accumulation onset)
  double accSlopeFactor = 1.0; ///< accumulation branch slope factor
  double cox = 1.0 / 9.2;      ///< oxide capacitance per area [F/m^2]
  double chargeStiffening = 5.0; ///< kappa [V·m^4/C^2], see header comment
  double mobility = 9.1e-3;    ///< low-field effective mobility [m^2/Vs]
  double mobilityTheta = 2.0;  ///< mobility degradation theta [1/V]
  double lambda = 0.15;        ///< channel-length modulation [1/V]
  double dibl = 0.04;          ///< DIBL coefficient [V/V]
  double length = 45e-9;       ///< drawn channel length [m]
  double temperature = 300.0;  ///< [K]
  double overlapCapPerWidth = 0.25e-15 / 1e-6;  ///< G-S/G-D overlap [F/m]
  double junctionCapPerWidth = 0.60e-15 / 1e-6; ///< S/D junction [F/m]
};

/// Small-signal/large-signal evaluation bundle for one bias point.
struct MosOperatingPoint {
  double ids = 0.0;  ///< drain-to-source current [A] (positive into drain)
  double gm = 0.0;   ///< dIds/dVgs [S]
  double gds = 0.0;  ///< dIds/dVds [S]
};

/// Analytic 45nm-class transistor.  Stateless: all methods are const and
/// take terminal voltages; instances are cheap to copy.
class MosfetModel {
 public:
  MosfetModel(const MosParams& params, double width);

  const MosParams& params() const { return params_; }
  double width() const { return width_; }
  double gateArea() const { return width_ * params_.length; }
  double thermalVoltage() const;

  /// Drain current and derivatives.  Voltages are absolute node voltages of
  /// drain, gate, source; the model handles source/drain swap (Vds < 0) and
  /// PMOS mirroring internally.
  MosOperatingPoint evaluate(double vd, double vg, double vs) const;

  /// Convenience: just the current.
  double idsAt(double vd, double vg, double vs) const;

  /// Batch kernel of evaluate() for the SoA device path (see
  /// spice/device_batch.h): out[k] = models[k]->evaluate(vd[k], vg[k],
  /// vs[k]).  Defined in the model TU so the scalar kernel inlines into a
  /// tight non-virtual loop; each lane is bit-identical to the scalar
  /// call.
  static void evaluateBatch(std::size_t n, const MosfetModel* const* models,
                            const double* vd, const double* vg,
                            const double* vs, MosOperatingPoint* out);

  /// Batch kernel of the gate charge model: chargeDensity[k] =
  /// gateChargeDensity(vgs[k]), capacitanceDensity[k] =
  /// gateCapacitanceDensity(vgs[k]).  `chargeDensity` may alias `vgs`
  /// (each lane reads its input before writing).
  static void gateChargeBatch(std::size_t n, const MosfetModel* const* models,
                              const double* vgs, double* chargeDensity,
                              double* capacitanceDensity);

  // --- Gate charge model (areal, NMOS convention) ---------------------

  /// Areal gate charge density [C/m^2] for an intrinsic gate-to-channel
  /// voltage (channel referenced to source).  Strictly increasing.
  double gateChargeDensity(double vgs) const;

  /// d(gateChargeDensity)/dVgs [F/m^2].
  double gateCapacitanceDensity(double vgs) const;

  /// Inverse of gateChargeDensity: the gate voltage required to hold areal
  /// charge density q.  Used for load-line analysis.  Solved with Brent.
  double gateVoltageForCharge(double q) const;

  /// Total gate charge [C] (areal x gate area) plus overlap contributions.
  double totalGateCharge(double vg, double vd, double vs) const;

  /// Threshold voltage including DIBL at the given Vds.
  double effectiveThreshold(double vds) const;

  /// Name for diagnostics.
  std::string describe() const;

 private:
  /// Charge of one branch: overdrive -> density via the stiffened quadratic.
  double branchCharge(double overdrive) const;
  double branchCapacitance(double overdrive, double logisticFactor) const;
  /// NMOS-space charge density (PMOS callers mirror the argument).
  double gateChargeDensityMirror(double vgs) const;

  MosParams params_;
  double width_;
};

/// 45nm-class NMOS card used throughout the paper reproduction.
MosParams nmos45();
/// Matched PMOS card (mirrored, ~0.45x drive).
MosParams pmos45();

}  // namespace fefet::xtor
