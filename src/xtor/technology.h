// technology.h — the 45 nm technology card shared by every experiment
// (paper Table 2) plus derived convenience quantities.
#pragma once

#include <string>

#include "xtor/mosfet_model.h"

namespace fefet::xtor {

/// Paper Table 2 "Simulation parameters" plus the reconstructed values this
/// reproduction adds (see DESIGN.md §2).
struct Technology {
  double nodeLength = 45e-9;          ///< technology node [m]
  double transistorWidth = 65e-9;     ///< default device width [m]
  double metalCapPerLength = 0.2e-15 / 1e-6;  ///< 0.2 fF/um [F/m]
  double vdd = 0.68;                  ///< array supply / write voltage [V]
  double vread = 0.40;                ///< read (drain) voltage [V]
  double writeSelectBoost = 1.36;     ///< boosted write-select level (2x VDD)
  MosParams nmos = nmos45();
  MosParams pmos = pmos45();

  /// Pretty-printable summary (one line per parameter).
  std::string describe() const;
};

/// The default technology instance used by cells, arrays and benches.
const Technology& defaultTechnology();

}  // namespace fefet::xtor
