#include "ferro/lk_model.h"

#include <cmath>

#include "common/error.h"
#include "common/math.h"

namespace fefet::ferro {

LandauKhalatnikov::LandauKhalatnikov(const LkCoefficients& coefficients)
    : c_(coefficients) {
  FEFET_REQUIRE(c_.rho > 0.0, "LK kinetic coefficient rho must be positive");
}

double LandauKhalatnikov::staticField(double p) const {
  const double p2 = p * p;
  return p * (c_.alpha + p2 * (c_.beta + p2 * c_.gamma));
}

double LandauKhalatnikov::staticFieldSlope(double p) const {
  const double p2 = p * p;
  return c_.alpha + p2 * (3.0 * c_.beta + p2 * 5.0 * c_.gamma);
}

double LandauKhalatnikov::dynamicField(double p, double dPdt) const {
  return staticField(p) + c_.rho * dPdt;
}

void LandauKhalatnikov::staticFieldBatch(std::size_t n,
                                         const LandauKhalatnikov* const* models,
                                         const double* p, double* field,
                                         double* slope) {
  for (std::size_t k = 0; k < n; ++k) {
    field[k] = models[k]->staticField(p[k]);
    slope[k] = models[k]->staticFieldSlope(p[k]);
  }
}

double LandauKhalatnikov::energyDensity(double p) const {
  const double p2 = p * p;
  return p2 * (0.5 * c_.alpha +
               p2 * (0.25 * c_.beta + p2 * c_.gamma / 6.0));
}

bool LandauKhalatnikov::isFerroelectric() const {
  if (c_.alpha >= 0.0) return false;
  // A nontrivial root of alpha + beta x + gamma x^2 = 0 (x = P^2) must exist
  // with x > 0.
  const double disc = c_.beta * c_.beta - 4.0 * c_.gamma * c_.alpha;
  if (disc < 0.0) return false;
  if (c_.gamma == 0.0) return c_.beta > 0.0;
  const double x1 = (-c_.beta + std::sqrt(disc)) / (2.0 * c_.gamma);
  const double x2 = (-c_.beta - std::sqrt(disc)) / (2.0 * c_.gamma);
  return x1 > 0.0 || x2 > 0.0;
}

double LandauKhalatnikov::remnantPolarization() const {
  FEFET_REQUIRE(isFerroelectric(),
                "coefficient set has no remnant polarization");
  // Solve alpha + beta x + gamma x^2 = 0 for x = P^2 and take the smallest
  // positive root (the physical well; the larger root, when present, is an
  // artifact of the truncated expansion).
  if (c_.gamma == 0.0) return std::sqrt(-c_.alpha / c_.beta);
  const double disc = c_.beta * c_.beta - 4.0 * c_.gamma * c_.alpha;
  const double sq = std::sqrt(disc);
  const double xa = (-c_.beta + sq) / (2.0 * c_.gamma);
  const double xb = (-c_.beta - sq) / (2.0 * c_.gamma);
  double x = -1.0;
  if (xa > 0.0) x = xa;
  if (xb > 0.0 && (x < 0.0 || xb < x)) x = xb;
  FEFET_REQUIRE(x > 0.0, "no positive well found");
  return std::sqrt(x);
}

double LandauKhalatnikov::saturationPolarization() const {
  return 1.25 * remnantPolarization();
}

double LandauKhalatnikov::coercivePolarization() const {
  // Solve dE/dP = alpha + 3 beta x + 5 gamma x^2 = 0, x = P^2; take the
  // smallest positive root, which lies between 0 and P_r.
  const double a = 5.0 * c_.gamma;
  const double b = 3.0 * c_.beta;
  const double c = c_.alpha;
  double x = -1.0;
  if (a == 0.0) {
    x = -c / b;
  } else {
    const double disc = b * b - 4.0 * a * c;
    FEFET_REQUIRE(disc >= 0.0, "no coercive extremum exists");
    const double sq = std::sqrt(disc);
    const double xa = (-b + sq) / (2.0 * a);
    const double xb = (-b - sq) / (2.0 * a);
    if (xa > 0.0) x = xa;
    if (xb > 0.0 && (x < 0.0 || xb < x)) x = xb;
  }
  FEFET_REQUIRE(x > 0.0, "no positive coercive extremum");
  return std::sqrt(x);
}

double LandauKhalatnikov::coerciveField() const {
  return std::abs(staticField(coercivePolarization()));
}

double LandauKhalatnikov::wellBarrier() const {
  return energyDensity(0.0) - energyDensity(remnantPolarization());
}

std::vector<double> LandauKhalatnikov::staticPolarizations(
    double field) const {
  const double pMax = saturationPolarization() * 1.6;
  return math::findAllRoots(
      [this, field](double p) { return staticField(p) - field; }, -pMax,
      pMax, 2000);
}

}  // namespace fefet::ferro
