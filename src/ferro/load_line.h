// load_line.h — load-line analysis of the FE film in series with the MOSFET
// gate (paper Fig. 4(a)).
//
// At a given gate voltage V_G, charge balance forces the same areal charge
// density Q on the FE film and the MOS gate.  Quasi-static equilibrium
// requires
//
//     V_G = psi(Q) + t_FE * E_s(Q)
//
// where psi(Q) is the MOS gate voltage needed to hold charge density Q and
// t_FE * E_s(Q) is the static FE voltage drop.  Plotting Q versus the two
// voltage contributions — the "load line" — the number of intersection
// points decides the device regime:
//   1 intersection  : monostable (no hysteresis; e.g. t_FE = 1 nm),
//   3 intersections : bistable (hysteresis; e.g. t_FE = 2.25 nm), with the
//                     outer two stable and the middle one unstable.
#pragma once

#include <functional>
#include <vector>

#include "ferro/lk_model.h"

namespace fefet::ferro {

/// psi(Q): MOS gate voltage as a function of gate charge density [C/m^2].
/// Provided by the transistor model (xtor::EkvTransistor::gateVoltageForCharge).
using MosChargeVoltage = std::function<double(double)>;

struct LoadLinePoint {
  double charge = 0.0;      ///< equilibrium areal charge density [C/m^2]
  double mosVoltage = 0.0;  ///< psi(Q) at the equilibrium
  double feVoltage = 0.0;   ///< t_FE * E_s(Q) at the equilibrium
  bool stable = false;      ///< d(V_G)/dQ > 0 at this point
};

struct LoadLineResult {
  std::vector<LoadLinePoint> equilibria;  ///< sorted by charge
  /// Sampled curves for plotting: Q grid, FE branch voltage V_G - t*E_s(Q)
  /// ("available" voltage for the MOSFET) and the MOS demand psi(Q).
  std::vector<double> chargeGrid;
  std::vector<double> feBranch;
  std::vector<double> mosBranch;

  bool bistable() const { return equilibria.size() >= 3; }
};

struct LoadLineOptions {
  double chargeMin = -0.30;  ///< [C/m^2]
  double chargeMax = 0.30;   ///< [C/m^2]
  int samples = 4000;
};

/// Solve V_G = psi(Q) + t_FE * E_s(Q) for all equilibrium charges and
/// classify their stability.
LoadLineResult analyzeLoadLine(const LandauKhalatnikov& lk, double feThickness,
                               const MosChargeVoltage& mosPsiOfQ,
                               double gateVoltage,
                               const LoadLineOptions& options = {});

/// Smallest FE thickness at which the series device becomes bistable at
/// V_G = 0 (the hysteresis onset; paper reports ~1.9 nm for non-volatility).
/// Bisection between tLow (monostable) and tHigh (bistable).
double criticalThicknessForBistability(const LandauKhalatnikov& lk,
                                       const MosChargeVoltage& mosPsiOfQ,
                                       double tLow, double tHigh,
                                       double tolerance = 1e-12);

}  // namespace fefet::ferro
