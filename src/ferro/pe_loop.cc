#include "ferro/pe_loop.h"

#include <cmath>

#include "common/error.h"
#include "common/math.h"

namespace fefet::ferro {

namespace {
/// Triangle wave, period T, amplitude A, starting at 0 and rising:
/// 0 -> +A (T/4) -> -A (3T/4) -> 0 (T).
double triangle(double t, double period, double amplitude) {
  double phase = std::fmod(t, period) / period;  // [0, 1)
  if (phase < 0.25) return amplitude * (4.0 * phase);
  if (phase < 0.75) return amplitude * (2.0 - 4.0 * phase);
  return amplitude * (4.0 * phase - 4.0);
}
}  // namespace

double PeLoop::area() const {
  // Shoelace integral of P dV around the closed loop.
  double acc = 0.0;
  const std::size_t n = voltage.size();
  for (std::size_t i = 1; i < n; ++i) {
    acc += 0.5 * (polarization[i] + polarization[i - 1]) *
           (voltage[i] - voltage[i - 1]);
  }
  return std::abs(acc);
}

PeLoop tracePeLoop(const FeCapacitor& capacitor, const PeLoopOptions& options) {
  FEFET_REQUIRE(options.amplitude > 0.0, "PE loop amplitude must be positive");
  FEFET_REQUIRE(options.samplesPerPeriod >= 16, "too few samples per period");

  FeCapacitor work = capacitor;
  const double dt = options.period / options.samplesPerPeriod;
  const auto drive = [&options](double t) {
    return triangle(t, options.period, options.amplitude);
  };

  // Settle: run whole cycles so the state forgets the initial condition.
  double t = 0.0;
  for (int cycle = 0; cycle < options.settleCycles; ++cycle) {
    for (int i = 0; i < options.samplesPerPeriod; ++i) {
      work.step(drive, t, dt, 2);
      t += dt;
    }
  }

  PeLoop loop;
  loop.voltage.reserve(options.samplesPerPeriod + 1);
  loop.field.reserve(options.samplesPerPeriod + 1);
  loop.polarization.reserve(options.samplesPerPeriod + 1);
  const double tFe = capacitor.geometry().thickness;

  loop.voltage.push_back(drive(t));
  loop.field.push_back(drive(t) / tFe);
  loop.polarization.push_back(work.polarization());
  for (int i = 0; i < options.samplesPerPeriod; ++i) {
    work.step(drive, t, dt, 2);
    t += dt;
    const double v = drive(t);
    loop.voltage.push_back(v);
    loop.field.push_back(v / tFe);
    loop.polarization.push_back(work.polarization());
  }

  // Extract remnant and coercive metrics from the recorded cycle.  The
  // cycle starts at V=0 rising; quarter points split the branches.
  const int q = options.samplesPerPeriod / 4;
  auto segment = [&](int from, int to) {
    return std::pair(
        std::span<const double>(loop.voltage).subspan(from, to - from + 1),
        std::span<const double>(loop.polarization).subspan(from, to - from + 1));
  };
  // Down branch: +A at q -> -A at 3q. P crosses 0 at the negative coercive
  // voltage (if the film is hysteretic).
  {
    auto [v, p] = segment(q, 3 * q);
    if (math::hasCrossing(p, 0.0)) {
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i - 1] > 0.0 && p[i] <= 0.0) {
          const double f = p[i - 1] / (p[i - 1] - p[i]);
          loop.coerciveVoltageDown = v[i - 1] + f * (v[i] - v[i - 1]);
          break;
        }
      }
    }
    // Remnant on the way down: P at the V = 0 crossing of the drive.
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i - 1] > 0.0 && v[i] <= 0.0) {
        const double f = v[i - 1] / (v[i - 1] - v[i]);
        loop.remnantDown = p[i - 1] + f * (p[i] - p[i - 1]);
        break;
      }
    }
  }
  // Up branch: -A at 3q -> back to 0 at 4q, continue into next cycle; use
  // the wrap plus the initial rise (0 -> +A) recorded at the cycle start.
  {
    auto [v, p] = segment(3 * q, 4 * q);
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i - 1] < 0.0 && p[i] >= 0.0) {
        const double f = -p[i - 1] / (p[i] - p[i - 1]);
        loop.coerciveVoltageUp = v[i - 1] + f * (v[i] - v[i - 1]);
        break;
      }
    }
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i - 1] < 0.0 && v[i] >= 0.0) {
        const double f = -v[i - 1] / (v[i] - v[i - 1]);
        loop.remnantUp = p[i - 1] + f * (p[i] - p[i - 1]);
        break;
      }
    }
    // If P had not yet crossed zero by the time V returned to 0, the
    // crossing happens on the rising quarter at the start of the cycle.
    if (loop.coerciveVoltageUp == 0.0) {
      auto [v2, p2] = segment(0, q);
      for (std::size_t i = 1; i < p2.size(); ++i) {
        if (p2[i - 1] < 0.0 && p2[i] >= 0.0) {
          const double f = -p2[i - 1] / (p2[i] - p2[i - 1]);
          loop.coerciveVoltageUp = v2[i - 1] + f * (v2[i] - v2[i - 1]);
          break;
        }
      }
    }
  }
  return loop;
}

}  // namespace fefet::ferro
