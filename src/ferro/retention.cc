#include "ferro/retention.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace fefet::ferro {

RetentionModel::RetentionModel(const RetentionParams& params)
    : params_(params) {
  FEFET_REQUIRE(params_.attemptTime > 0.0, "attempt time must be positive");
  FEFET_REQUIRE(params_.temperature > 0.0, "temperature must be positive");
  FEFET_REQUIRE(params_.activationEfficiency > 0.0,
                "activation efficiency must be positive");
}

double RetentionModel::barrierEnergy(double vc, double pr, double area) const {
  FEFET_REQUIRE(vc >= 0.0 && pr >= 0.0 && area > 0.0,
                "retention: non-physical design parameters");
  return params_.activationEfficiency * vc * pr * area;
}

double RetentionModel::log10RetentionSeconds(double vc, double pr,
                                             double area) const {
  const double kT = constants::kBoltzmann * params_.temperature;
  return std::log10(params_.attemptTime) +
         barrierEnergy(vc, pr, area) / kT / std::log(10.0);
}

double RetentionModel::retentionSeconds(double vc, double pr,
                                        double area) const {
  const double lg = log10RetentionSeconds(vc, pr, area);
  if (lg > 300.0) return 1e300;
  return std::pow(10.0, lg);
}

double RetentionModel::calibrateToReference(double vc, double pr, double area,
                                            double targetSeconds) {
  FEFET_REQUIRE(targetSeconds > params_.attemptTime,
                "retention target must exceed the attempt time");
  const double kT = constants::kBoltzmann * params_.temperature;
  const double neededBarrier = kT * std::log(targetSeconds / params_.attemptTime);
  params_.activationEfficiency = neededBarrier / (vc * pr * area);
  return params_.activationEfficiency;
}

double RetentionModel::widthForMatchedRetention(double vcA, double areaA,
                                                double vcB,
                                                double areaBAtReferenceWidth,
                                                double referenceWidth) {
  FEFET_REQUIRE(vcB > 0.0 && areaBAtReferenceWidth > 0.0 &&
                    referenceWidth > 0.0,
                "matched retention: non-physical parameters");
  // Match s*Vc*Pr*A (Pr identical material): A_B = Vc_A A_A / Vc_B.
  const double neededArea = vcA * areaA / vcB;
  return referenceWidth * neededArea / areaBAtReferenceWidth;
}

}  // namespace fefet::ferro
