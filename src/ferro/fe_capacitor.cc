#include "ferro/fe_capacitor.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math.h"

namespace fefet::ferro {

FeCapacitor::FeCapacitor(const LkCoefficients& coefficients,
                         const FeGeometry& geometry)
    : lk_(coefficients), geom_(geometry) {
  FEFET_REQUIRE(geom_.thickness > 0.0, "FE thickness must be positive");
  FEFET_REQUIRE(geom_.area > 0.0, "FE area must be positive");
}

double FeCapacitor::voltage(double polarization, double dPdt) const {
  return geom_.thickness * lk_.dynamicField(polarization, dPdt);
}

double FeCapacitor::coerciveVoltage() const {
  return geom_.thickness * lk_.coerciveField();
}

double FeCapacitor::polarizationRate(double appliedVoltage) const {
  return (appliedVoltage / geom_.thickness - lk_.staticField(p_)) /
         lk_.coefficients().rho;
}

double FeCapacitor::step(const std::function<double(double)>& voltageOfTime,
                         double t0, double dt, int substeps) {
  FEFET_REQUIRE(substeps >= 1, "step: substeps must be positive");
  const double h = dt / substeps;
  double t = t0;
  const auto rate = [this, &voltageOfTime](double time, double p) {
    return (voltageOfTime(time) / geom_.thickness - lk_.staticField(p)) /
           lk_.coefficients().rho;
  };
  for (int i = 0; i < substeps; ++i) {
    p_ = math::rk4Step(rate, t, p_, h);
    t += h;
  }
  return p_;
}

double FeCapacitor::stepConstant(double appliedVoltage, double dt,
                                 int substeps) {
  return step([appliedVoltage](double) { return appliedVoltage; }, 0.0, dt,
              substeps);
}

double FeCapacitor::switchingTime(double appliedVoltage, double fraction,
                                  double maxTime) const {
  FEFET_REQUIRE(fraction > 0.0 && fraction < 1.0,
                "switchingTime: fraction in (0,1)");
  if (appliedVoltage <= coerciveVoltage()) {
    std::ostringstream os;
    os << "applied voltage " << appliedVoltage
       << " V is below the coercive voltage " << coerciveVoltage()
       << " V: the capacitor never switches";
    throw SimulationError(os.str());
  }
  const double pr = lk_.remnantPolarization();
  const double target = fraction * pr;
  // Integrate dP/dt with an adaptive-ish fixed step sized from the initial
  // rate; the trajectory is stiff near the coercive plateau, so use many
  // substeps and a conservative cap.
  FeCapacitor work = *this;
  work.setPolarization(-pr);
  const double rho = lk_.coefficients().rho;
  // Characteristic time: rho / |alpha| is the small-signal relaxation time.
  const double tau = rho / std::abs(lk_.coefficients().alpha);
  const double dt = tau / 50.0;
  double t = 0.0;
  while (t < maxTime) {
    work.stepConstant(appliedVoltage, dt, 1);
    t += dt;
    if (work.polarization() >= target) return t;
  }
  std::ostringstream os;
  os << "switching did not complete within " << maxTime << " s at "
     << appliedVoltage << " V";
  throw SimulationError(os.str());
}

double FeCapacitor::chargeFromPolarizationChange(double dP) const {
  return geom_.area * dP;
}

}  // namespace fefet::ferro
