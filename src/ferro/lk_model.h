// lk_model.h — time-dependent Landau–Khalatnikov (LK) model of the
// ferroelectric layer, paper eq. (1):
//
//     E = alpha*P + beta*P^3 + gamma*P^5 + rho*dP/dt
//
// with E the electric field across the FE [V/m], P the polarization
// [C/m^2], (alpha, beta, gamma) the Landau expansion coefficients and rho
// the kinetic (viscosity) coefficient that sets the switching time scale.
//
// The DAC'16 paper gives (Table 2):
//   alpha = -7e9 m/F, beta = 3.3e10 m^5/F/C^2, gamma = -0.2e10 m^9/F/C^4.
// From these statics the derived quantities used as oracles throughout the
// library are:  P_r ≈ 0.4636 C/m^2 and E_c ≈ 1.2435 GV/m (i.e. 1.24 V of
// coercive voltage per nm of FE thickness — the paper quotes 1.26 V at
// 1 nm).  rho is not published; ferro::calibrateRho() reconstructs it from
// the paper's 550 ps @ 0.68 V write-time anchor.
#pragma once

#include <cstddef>
#include <vector>

namespace fefet::ferro {

/// Landau expansion coefficients plus kinetics.  All SI.
struct LkCoefficients {
  double alpha = -7.0e9;    ///< [m/F]
  double beta = 3.3e10;     ///< [m^5 F^-1 C^-2]
  double gamma = -0.2e10;   ///< [m^9 F^-1 C^-4]
  /// Kinetic coefficient [ohm·m].  The default is the value reconstructed
  /// by core::calibrateFefetRho(): the 2T cell then writes (worst polarity)
  /// in 550 ps at V_write = 0.68 V — the paper's Table 3 anchor.
  double rho = 0.885;
};

/// Static and dynamic evaluation of the LK equation for one FE film.
class LandauKhalatnikov {
 public:
  explicit LandauKhalatnikov(const LkCoefficients& coefficients = {});

  const LkCoefficients& coefficients() const { return c_; }

  /// Static field E_s(P) = alpha*P + beta*P^3 + gamma*P^5 [V/m].
  double staticField(double polarization) const;

  /// dE_s/dP [V·m/C] — the reciprocal of the FE's differential capacitance
  /// per unit area and thickness; negative around P = 0 (negative
  /// capacitance region).
  double staticFieldSlope(double polarization) const;

  /// Full dynamic field including the viscous term.
  double dynamicField(double polarization, double dPdt) const;

  /// Batch kernel of the static field and its slope for the SoA device
  /// path (see spice/device_batch.h): field[k] =
  /// models[k]->staticField(p[k]), slope[k] =
  /// models[k]->staticFieldSlope(p[k]).  Defined in the model TU so the
  /// polynomial kernels inline into one tight loop; each lane is
  /// bit-identical to the scalar calls.
  static void staticFieldBatch(std::size_t n,
                               const LandauKhalatnikov* const* models,
                               const double* p, double* field, double* slope);

  /// Landau free-energy density U(P) = a/2 P^2 + b/4 P^4 + c/6 P^6 [J/m^3];
  /// double-well with minima at ±P_r for ferroelectric coefficient sets.
  double energyDensity(double polarization) const;

  /// Remnant polarization P_r: the positive nontrivial root of E_s(P) = 0.
  /// Throws NumericalError if the coefficient set is not ferroelectric.
  double remnantPolarization() const;

  /// Saturation polarization bound used for sweeps (slightly above P_r).
  double saturationPolarization() const;

  /// Coercive field E_c: the height of the local maximum of E_s on the
  /// branch 0 < P < P_r (the field needed to destabilize the -P_r well).
  double coerciveField() const;

  /// Polarization at which the coercive extremum occurs (positive branch).
  double coercivePolarization() const;

  /// Energy barrier between a well and the saddle at P = 0 [J/m^3]:
  /// U(0) - U(P_r).  Governs retention within single-domain approximation.
  double wellBarrier() const;

  /// All static solutions P of E_s(P) = E for a given applied field.
  /// 1 solution: monostable; 3 solutions: bistable region (outer two stable,
  /// middle unstable).
  std::vector<double> staticPolarizations(double field) const;

  /// True when the coefficient set gives a double-well energy (alpha < 0
  /// with a restoring positive-stiffness tail).
  bool isFerroelectric() const;

 private:
  LkCoefficients c_;
};

}  // namespace fefet::ferro
