// thermal.h — temperature dependence of the ferroelectric.
//
// In Landau theory only the quadratic coefficient is strongly
// temperature-dependent (Curie–Weiss):
//
//     alpha(T) = alpha(T_ref) * (T_C - T) / (T_C - T_ref)
//
// so heating toward the Curie temperature T_C softens the double well:
// P_r and E_c shrink and vanish at T_C.  Combined with the kT in the
// retention exponent, temperature attacks nonvolatile margins twice —
// the thermal study (bench_thermal) quantifies both for the paper's
// design point.
#pragma once

#include "ferro/lk_model.h"

namespace fefet::ferro {

struct ThermalParams {
  double referenceTemperature = 300.0;  ///< [K] where the base set holds
  double curieTemperature = 700.0;      ///< [K] ferroelectric T_C
};

/// Landau set rescaled to temperature T (alpha via Curie–Weiss; beta,
/// gamma, rho kept — their drift is second-order).
LkCoefficients atTemperature(const LkCoefficients& base, double temperature,
                             const ThermalParams& thermal = ThermalParams());

/// Remnant polarization / coercive field ratios vs the reference
/// temperature (1.0 at T_ref, 0 at and beyond T_C).
double remnantFractionAt(double temperature,
                         const ThermalParams& thermal = ThermalParams());

}  // namespace fefet::ferro
