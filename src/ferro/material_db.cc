#include "ferro/material_db.h"

#include <cmath>

#include "common/error.h"

namespace fefet::ferro {

LkCoefficients lkFromPrEc(double pr, double ec, double rho) {
  FEFET_REQUIRE(pr > 0.0 && ec > 0.0, "lkFromPrEc: Pr and Ec must be positive");
  LkCoefficients c;
  const double alphaMag = 3.0 * std::sqrt(3.0) * ec / (2.0 * pr);
  c.alpha = -alphaMag;
  c.beta = alphaMag / (pr * pr);
  c.gamma = 0.0;
  c.rho = rho;
  return c;
}

std::vector<Material> materialDatabase() {
  std::vector<Material> db;
  {
    Material m;
    m.name = "dac16-table2";
    m.notes = "the paper's calibrated set: Pr=46 uC/cm^2, Ec=1.24 MV/cm";
    m.lk = LkCoefficients{};  // Table 2 values with the calibrated rho
    m.fatigue = sbtFatigue();
    db.push_back(m);
  }
  {
    Material m;
    m.name = "pzt";
    m.notes = "Pb(Zr,Ti)O3 ceramic: Pr=30 uC/cm^2, Ec=50 kV/cm; fatigues "
              "on metal electrodes";
    m.lk = lkFromPrEc(0.30, 5e6, 50.0);
    m.fatigue = pztFatigue();
    db.push_back(m);
  }
  {
    Material m;
    m.name = "sbt";
    m.notes = "SrBi2Ta2O9: Pr=8 uC/cm^2, Ec=40 kV/cm; nearly fatigue-free";
    m.lk = lkFromPrEc(0.08, 4e6, 80.0);
    m.fatigue = sbtFatigue();
    db.push_back(m);
  }
  {
    Material m;
    m.name = "hzo";
    m.notes = "Hf0.5Zr0.5O2: Pr=17 uC/cm^2, Ec=1 MV/cm; the CMOS-"
              "compatible FEFET workhorse";
    m.lk = lkFromPrEc(0.17, 1e8, 2.0);
    m.fatigue = hzoFatigue();
    db.push_back(m);
  }
  return db;
}

const Material& findMaterial(const std::string& name) {
  static const std::vector<Material> db = materialDatabase();
  for (const auto& m : db) {
    if (m.name == name) return m;
  }
  throw InvalidArgumentError("unknown material: " + name);
}

}  // namespace fefet::ferro
