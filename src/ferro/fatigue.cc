#include "ferro/fatigue.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace fefet::ferro {

FatigueModel::FatigueModel(const FatigueParams& params) : params_(params) {
  FEFET_REQUIRE(params_.halfLifeCycles > 0.0, "fatigue: N50 must be positive");
  FEFET_REQUIRE(params_.steepness > 0.0, "fatigue: steepness must be positive");
  FEFET_REQUIRE(params_.floorFraction >= 0.0 && params_.floorFraction < 1.0,
                "fatigue: floor fraction in [0,1)");
}

double FatigueModel::retainedFraction(double cycles) const {
  FEFET_REQUIRE(cycles >= 0.0, "fatigue: negative cycle count");
  if (cycles == 0.0) return 1.0;
  const double ratio =
      std::pow(cycles / params_.halfLifeCycles, params_.steepness);
  return params_.floorFraction +
         (1.0 - params_.floorFraction) / (1.0 + ratio);
}

double FatigueModel::cyclesToFraction(double fraction) const {
  FEFET_REQUIRE(fraction > 0.0 && fraction < 1.0,
                "fatigue: target fraction in (0,1)");
  if (fraction <= params_.floorFraction) {
    return std::numeric_limits<double>::infinity();
  }
  // Invert the logistic: fraction = floor + (1-floor)/(1+r) with
  // r = (N/N50)^m.
  const double r =
      (1.0 - params_.floorFraction) / (fraction - params_.floorFraction) -
      1.0;
  if (r <= 0.0) return 0.0;
  return params_.halfLifeCycles * std::pow(r, 1.0 / params_.steepness);
}

FatigueParams pztFatigue() {
  FatigueParams p;
  p.halfLifeCycles = 5e10;
  p.steepness = 0.8;
  p.floorFraction = 0.15;
  return p;
}

FatigueParams sbtFatigue() {
  FatigueParams p;
  p.halfLifeCycles = 3e14;
  p.steepness = 0.9;
  p.floorFraction = 0.4;
  return p;
}

FatigueParams hzoFatigue() {
  FatigueParams p;
  p.halfLifeCycles = 2e10;
  p.steepness = 0.6;
  p.floorFraction = 0.1;
  return p;
}

}  // namespace fefet::ferro
