#include "ferro/thermal.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::ferro {

LkCoefficients atTemperature(const LkCoefficients& base, double temperature,
                             const ThermalParams& thermal) {
  FEFET_REQUIRE(temperature > 0.0, "temperature must be positive");
  FEFET_REQUIRE(thermal.curieTemperature > thermal.referenceTemperature,
                "Curie temperature must exceed the reference temperature");
  LkCoefficients c = base;
  const double scale =
      (thermal.curieTemperature - temperature) /
      (thermal.curieTemperature - thermal.referenceTemperature);
  // Above T_C the film is paraelectric: alpha turns positive.
  c.alpha = base.alpha * scale;
  return c;
}

double remnantFractionAt(double temperature, const ThermalParams& thermal) {
  const double scale =
      (thermal.curieTemperature - temperature) /
      (thermal.curieTemperature - thermal.referenceTemperature);
  if (scale <= 0.0) return 0.0;
  // With gamma ~ 0: P_r ~ sqrt(-alpha/beta) ~ sqrt(scale).
  return std::sqrt(scale);
}

}  // namespace fefet::ferro
