// fatigue.h — ferroelectric endurance (fatigue) model.
//
// The paper's motivation table (§1) ranks technologies by endurance: FE
// memories endure ~1e12-1e15 cycles while ReRAM/PCM fade around 1e6-1e9.
// Within FE memories, fatigue appears as remnant-polarization loss with
// cycling (domain-wall pinning).  The standard empirical model is a
// logistic decay in log-cycles:
//
//     P_r(N) = P_r0 * [ f_inf + (1 - f_inf) / (1 + (N / N_50)^m) ]
//
// with N_50 the cycle count at the half-way point of the collapse and m
// the (log) steepness.  A cell fails when the remaining window no longer
// clears the sensing margin; for the FEFET cell this maps through the
// load-line to a shrinking hysteresis window.
#pragma once

namespace fefet::ferro {

struct FatigueParams {
  double halfLifeCycles = 1e14;  ///< N_50
  double steepness = 0.7;        ///< m (decades^-1 shape)
  double floorFraction = 0.2;    ///< f_inf: polarization that never fades
};

class FatigueModel {
 public:
  explicit FatigueModel(const FatigueParams& params = FatigueParams());

  const FatigueParams& params() const { return params_; }

  /// Remaining polarization fraction after `cycles` program/erase cycles.
  double retainedFraction(double cycles) const;

  /// Cycles until the retained fraction first drops below `fraction`.
  /// Returns +inf when the floor is above the target.
  double cyclesToFraction(double fraction) const;

  /// Endurance at a sensing requirement: the FEFET cell needs
  /// P_r(N) >= requiredFraction * P_r0 for its window to clear the margin.
  double enduranceCycles(double requiredFraction = 0.5) const {
    return cyclesToFraction(requiredFraction);
  }

 private:
  FatigueParams params_;
};

/// Representative parameter sets.
FatigueParams pztFatigue();   ///< classic PZT on Pt electrodes (~1e10-1e12)
FatigueParams sbtFatigue();   ///< SBT: nearly fatigue-free (>=1e14)
FatigueParams hzoFatigue();   ///< doped-HfO2: ~1e9-1e11 with wake-up

}  // namespace fefet::ferro
