// retention.h — single-domain retention model (paper §6.2.4).
//
// "The retention time is expected to be exponentially proportional to the
// product of coercive voltage, remnant polarization, and area of the
// ferroelectric capacitor within single domain approximation."
//
//     t_ret = tau0 * exp( s * V_c * P_r * A / (k_B T) )
//
// V_c * P_r * A is an energy [J]: the work to move the remnant charge
// across the coercive voltage, i.e. the scale of the well barrier seen from
// the terminals.  `s` is a dimensionless activation efficiency < 1 that
// absorbs nucleation-limited switching (the full film does not flip as one
// macrospin); it is calibrated once so that the FERAM reference design
// (t_FE = 1 nm, W = 65 nm, V_c = 1.24 V) retains for 10 years, and then held
// fixed across designs so that *ratios* between designs are model-driven.
//
// Because the exponent spans hundreds of decades across designs, the API
// works in log10 seconds.
#pragma once

namespace fefet::ferro {

struct RetentionParams {
  double attemptTime = 1e-12;        ///< tau0 [s]
  double temperature = 300.0;        ///< [K]
  double activationEfficiency = 1.0; ///< s, set via calibrate* below
};

class RetentionModel {
 public:
  explicit RetentionModel(const RetentionParams& params = {});

  const RetentionParams& params() const { return params_; }

  /// Barrier energy [J] for a design: s * Vc * Pr * A.
  double barrierEnergy(double coerciveVoltage, double remnantPolarization,
                       double area) const;

  /// log10 of the retention time in seconds.
  double log10RetentionSeconds(double coerciveVoltage,
                               double remnantPolarization, double area) const;

  /// Retention time in seconds; saturates at 1e300 to avoid overflow.
  double retentionSeconds(double coerciveVoltage, double remnantPolarization,
                          double area) const;

  /// Calibrate the activation efficiency so the given reference design
  /// retains for `targetSeconds`.  Returns the new efficiency and stores it.
  double calibrateToReference(double coerciveVoltage,
                              double remnantPolarization, double area,
                              double targetSeconds);

  /// Width (same length unit as `referenceWidth`) needed for design B to
  /// match design A's retention, keeping B's length/thickness fixed:
  /// scales B's area linearly with width.
  static double widthForMatchedRetention(double coerciveVoltageA,
                                         double areaA,
                                         double coerciveVoltageB,
                                         double areaBAtReferenceWidth,
                                         double referenceWidth);

 private:
  RetentionParams params_;
};

}  // namespace fefet::ferro
