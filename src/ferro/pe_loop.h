// pe_loop.h — quasi-static and dynamic P–E / P–V hysteresis loop generation
// (paper Fig. 1(c) and Fig. 4(b)).
//
// A loop is traced by driving the FE capacitor with a slow triangular
// voltage sweep 0 -> +V -> -V -> +V and recording (V, P).  For a
// ferroelectric film the result is the classic hysteresis loop whose
// half-width at P = 0 is the coercive voltage.
#pragma once

#include <vector>

#include "ferro/fe_capacitor.h"

namespace fefet::ferro {

/// One traced loop: parallel arrays of applied voltage, field and
/// polarization, plus extracted metrics.
struct PeLoop {
  std::vector<double> voltage;       ///< applied terminal voltage [V]
  std::vector<double> field;         ///< E = V / t_FE [V/m]
  std::vector<double> polarization;  ///< P [C/m^2]

  /// Extracted coercive voltages: applied V at the two P = 0 crossings
  /// (negative-going and positive-going branches).
  double coerciveVoltageUp = 0.0;    ///< V at P=0 while sweeping up
  double coerciveVoltageDown = 0.0;  ///< V at P=0 while sweeping down
  /// Polarization remaining at V = 0 on the way down from +V (remnant).
  double remnantUp = 0.0;
  double remnantDown = 0.0;

  /// Loop area in the (V, P) plane [V·C/m^2]; nonzero area = hysteresis.
  double area() const;
};

struct PeLoopOptions {
  double amplitude = 2.5;      ///< peak applied voltage [V]
  double period = 200e-9;      ///< sweep period [s]; slow vs rho/|alpha|
  int samplesPerPeriod = 4000;
  int settleCycles = 1;        ///< cycles discarded before recording
};

/// Trace a full hysteresis loop of the given capacitor.
PeLoop tracePeLoop(const FeCapacitor& capacitor, const PeLoopOptions& options = {});

}  // namespace fefet::ferro
