#include "ferro/load_line.h"

#include <algorithm>

#include "common/error.h"
#include "common/math.h"

namespace fefet::ferro {

LoadLineResult analyzeLoadLine(const LandauKhalatnikov& lk, double feThickness,
                               const MosChargeVoltage& mosPsiOfQ,
                               double gateVoltage,
                               const LoadLineOptions& options) {
  FEFET_REQUIRE(feThickness > 0.0, "load line: FE thickness must be positive");
  FEFET_REQUIRE(options.samples >= 16, "load line: too few samples");

  LoadLineResult result;
  const auto residual = [&](double q) {
    return mosPsiOfQ(q) + feThickness * lk.staticField(q) - gateVoltage;
  };

  const auto roots = math::findAllRoots(residual, options.chargeMin,
                                        options.chargeMax, options.samples);
  for (double q : roots) {
    LoadLinePoint pt;
    pt.charge = q;
    pt.mosVoltage = mosPsiOfQ(q);
    pt.feVoltage = feThickness * lk.staticField(q);
    // Stability: total differential "stiffness" d(V_G)/dQ must be positive
    // (a small charge fluctuation raises the voltage needed, pushing back).
    const double dq = 1e-6 * (options.chargeMax - options.chargeMin);
    const double slope = (residual(q + dq) - residual(q - dq)) / (2.0 * dq);
    pt.stable = slope > 0.0;
    result.equilibria.push_back(pt);
  }
  std::sort(result.equilibria.begin(), result.equilibria.end(),
            [](const LoadLinePoint& a, const LoadLinePoint& b) {
              return a.charge < b.charge;
            });

  result.chargeGrid.reserve(options.samples + 1);
  result.feBranch.reserve(options.samples + 1);
  result.mosBranch.reserve(options.samples + 1);
  for (int i = 0; i <= options.samples; ++i) {
    const double q = options.chargeMin +
                     (options.chargeMax - options.chargeMin) *
                         static_cast<double>(i) / options.samples;
    result.chargeGrid.push_back(q);
    result.feBranch.push_back(gateVoltage - feThickness * lk.staticField(q));
    result.mosBranch.push_back(mosPsiOfQ(q));
  }
  return result;
}

double criticalThicknessForBistability(const LandauKhalatnikov& lk,
                                       const MosChargeVoltage& mosPsiOfQ,
                                       double tLow, double tHigh,
                                       double tolerance) {
  FEFET_REQUIRE(tLow > 0.0 && tHigh > tLow,
                "criticalThickness: bad bracket");
  const auto bistableAt = [&](double t) {
    return analyzeLoadLine(lk, t, mosPsiOfQ, 0.0).bistable();
  };
  FEFET_REQUIRE(!bistableAt(tLow),
                "criticalThickness: lower bracket already bistable");
  FEFET_REQUIRE(bistableAt(tHigh),
                "criticalThickness: upper bracket not bistable");
  while (tHigh - tLow > tolerance) {
    const double mid = 0.5 * (tLow + tHigh);
    if (bistableAt(mid)) {
      tHigh = mid;
    } else {
      tLow = mid;
    }
  }
  return 0.5 * (tLow + tHigh);
}

}  // namespace fefet::ferro
