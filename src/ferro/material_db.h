// material_db.h — a small library of ferroelectric materials expressed as
// LK coefficient sets, plus the inverse problem (Landau coefficients from
// measured remnant polarization and coercive field).
//
// The paper's Table 2 set is a strong, thin-film-scalable ferroelectric
// (P_r ≈ 46 µC/cm², E_c ≈ 1.24 MV/cm — hafnia-class coercive fields with
// perovskite-class polarization).  The database also carries classic
// PZT/SBT (large P_r, tiny E_c — great capacitors, unscalable FEFETs) and
// doped-HfO2 (moderate P_r, MV/cm E_c — the material that made FEFETs
// practical).  bench_materials uses these to show *why* the FEFET needs a
// hafnia-class E_c: the critical film thickness for non-volatility scales
// as 1/(C_ox · |alpha|) and reaches hundreds of nanometres for perovskites.
#pragma once

#include <string>
#include <vector>

#include "ferro/fatigue.h"
#include "ferro/lk_model.h"

namespace fefet::ferro {

struct Material {
  std::string name;
  std::string notes;
  LkCoefficients lk;
  FatigueParams fatigue;
};

/// Derive 4th-order Landau coefficients (gamma = 0) from measured
/// (P_r, E_c):  |alpha| = 3*sqrt(3)*E_c / (2*P_r),  beta = |alpha| / P_r^2.
LkCoefficients lkFromPrEc(double remnantPolarization, double coerciveField,
                          double rho = 1.0);

/// The built-in material list (paper set first).
std::vector<Material> materialDatabase();

/// Lookup by name; throws InvalidArgumentError when absent.
const Material& findMaterial(const std::string& name);

}  // namespace fefet::ferro
