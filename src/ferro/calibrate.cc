#include "ferro/calibrate.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math.h"

namespace fefet::ferro {

RhoCalibration calibrateRho(const SwitchingTimeOfRho& measure,
                            double targetTime, double rhoMin, double rhoMax,
                            double relTolerance) {
  FEFET_REQUIRE(targetTime > 0.0, "calibrateRho: target time must be positive");
  FEFET_REQUIRE(rhoMin > 0.0 && rhoMax > rhoMin, "calibrateRho: bad bracket");

  RhoCalibration result;
  auto residual = [&](double rho) {
    ++result.evaluations;
    return measure(rho) - targetTime;
  };

  const double fLo = residual(rhoMin);
  if (fLo > 0.0) {
    std::ostringstream os;
    os << "calibrateRho: even rho=" << rhoMin << " switches slower ("
       << fLo + targetTime << " s) than the target " << targetTime << " s";
    throw NumericalError(os.str());
  }
  const double fHi = residual(rhoMax);
  if (fHi < 0.0) {
    std::ostringstream os;
    os << "calibrateRho: even rho=" << rhoMax << " switches faster ("
       << fHi + targetTime << " s) than the target " << targetTime << " s";
    throw NumericalError(os.str());
  }

  // Bisection in log space: switching time scales ~linearly with rho, so
  // log-bisection converges uniformly across decades.
  double lo = std::log(rhoMin), hi = std::log(rhoMax);
  double mid = 0.5 * (lo + hi);
  for (int i = 0; i < 60 && (hi - lo) > relTolerance; ++i) {
    mid = 0.5 * (lo + hi);
    if (residual(std::exp(mid)) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.rho = std::exp(0.5 * (lo + hi));
  result.achievedTime = measure(result.rho);
  return result;
}

RhoCalibration calibrateRhoStandalone(const LkCoefficients& coefficients,
                                      const FeGeometry& geometry,
                                      double appliedVoltage,
                                      double targetTime) {
  return calibrateRho(
      [&](double rho) {
        LkCoefficients c = coefficients;
        c.rho = rho;
        const FeCapacitor cap(c, geometry);
        return cap.switchingTime(appliedVoltage);
      },
      targetTime);
}

}  // namespace fefet::ferro
