// fe_capacitor.h — a standalone ferroelectric capacitor of thickness t_FE
// and plate area A, governed by the LK dynamics:
//
//     V(t) = t_FE * [ E_s(P) + rho * dP/dt ]
//  => dP/dt = ( V / t_FE - E_s(P) ) / rho
//
// The terminal current is i = A * dP/dt (plus an optional linear background
// dielectric term A * eps / t_FE * dV/dt, modeled in the circuit-level
// device; this class covers the pure polarization response used for device
// physics studies and the FERAM storage element).
#pragma once

#include <functional>

#include "ferro/lk_model.h"

namespace fefet::ferro {

/// Geometry of a ferroelectric film.
struct FeGeometry {
  double thickness = 2.25e-9;  ///< t_FE [m]
  double area = 65e-9 * 45e-9; ///< plate area [m^2] (W x L of the 45nm gate)
};

/// Standalone FE capacitor with explicit polarization state.
class FeCapacitor {
 public:
  FeCapacitor(const LkCoefficients& coefficients, const FeGeometry& geometry);

  const LandauKhalatnikov& lk() const { return lk_; }
  const FeGeometry& geometry() const { return geom_; }

  double polarization() const { return p_; }
  void setPolarization(double p) { p_ = p; }

  /// Voltage across the film for a given state and rate.
  double voltage(double polarization, double dPdt) const;

  /// Static (dPdt = 0) voltage at the current state.
  double staticVoltage() const { return voltage(p_, 0.0); }

  /// Coercive voltage of the standalone film: t_FE * E_c.
  double coerciveVoltage() const;

  /// dP/dt for an applied terminal voltage at the current state.
  double polarizationRate(double appliedVoltage) const;

  /// Advance the state by dt under a (possibly time-varying) applied
  /// voltage v(t) using RK4 substeps.  Returns the new polarization.
  double step(const std::function<double(double)>& voltageOfTime, double t0,
              double dt, int substeps = 4);

  /// Advance under a constant voltage.
  double stepConstant(double appliedVoltage, double dt, int substeps = 4);

  /// Time for the polarization to swing from -P_r to +P_r * `fraction`
  /// under a constant applied voltage.  Throws SimulationError when the
  /// voltage is below the coercive voltage (no switching).
  double switchingTime(double appliedVoltage, double fraction = 0.9,
                       double maxTime = 1e-6) const;

  /// Charge delivered through the terminals when P changes by dP: A * dP.
  double chargeFromPolarizationChange(double dP) const;

 private:
  LandauKhalatnikov lk_;
  FeGeometry geom_;
  double p_ = 0.0;
};

}  // namespace fefet::ferro
