// calibrate.h — reconstruction of the unpublished LK kinetic coefficient.
//
// The paper's Table 2 fixes the Landau statics but not rho (the viscosity
// that sets switching speed).  It does, however, publish an anchor point:
// the 2T FEFET cell writes in ~550 ps at V_write = 0.68 V (Table 3), and the
// FERAM writes in ~550 ps at 1.64 V.  Switching time is monotonically
// increasing in rho, so rho is recovered by bisection against any
// user-supplied "measure switching time for this rho" functional — either
// the standalone capacitor (cheap) or the full cell transient (exact).
#pragma once

#include <functional>

#include "ferro/fe_capacitor.h"

namespace fefet::ferro {

/// t_switch(rho): any measurement of switching time as a function of rho.
using SwitchingTimeOfRho = std::function<double(double)>;

struct RhoCalibration {
  double rho = 0.0;            ///< recovered kinetic coefficient [ohm·m]
  double achievedTime = 0.0;   ///< switching time at the recovered rho [s]
  int evaluations = 0;         ///< number of transient evaluations used
};

/// Find rho in [rhoMin, rhoMax] such that measure(rho) == targetTime within
/// `relTolerance`.  Requires the target to be bracketed.
RhoCalibration calibrateRho(const SwitchingTimeOfRho& measure,
                            double targetTime, double rhoMin = 1.0,
                            double rhoMax = 1e4,
                            double relTolerance = 1e-3);

/// Convenience: calibrate rho so a standalone capacitor with the given
/// coefficients/geometry switches (-P_r to +0.9 P_r) in `targetTime` under
/// `appliedVoltage`.
RhoCalibration calibrateRhoStandalone(const LkCoefficients& coefficients,
                                      const FeGeometry& geometry,
                                      double appliedVoltage,
                                      double targetTime);

}  // namespace fefet::ferro
