// shard_store.h — one shard's crash-consistent word store: an NvmMacro
// partitioned into checkpoint banks, a redo ring and a data region, with
// a write protocol whose acknowledgements survive power failure at ANY
// word boundary.
//
// Macro address layout (all word addresses, 32-bit words):
//
//   [0, 2*bankWords)            nvp/CheckpointManager double banks over
//                               the state vector [seq, data[0..N)]
//   [ringBase, ringBase+4*R)    redo ring: R slots of 4 words
//                               (addr, value, check, seq — seq LAST)
//   [dataBase, dataBase+N)      the served data words
//
// Write protocol (word writes in order):
//
//   1. if the ring would wrap onto a live slot, checkpoint first
//      (double-banked backup of [seq, data]; retires ring entries);
//   2. write the slot's addr, value, check words;
//   3. write the slot's seq word (the COMMIT point — a torn or absent
//      seq/check leaves the slot's previous, retired entry);
//   4. write the data word;  5. acknowledge.
//
// A power failure after any prefix of these writes — including a torn
// in-flight word — is recoverable: recover() restores the newest intact
// checkpoint, replays committed ring entries in sequence order, and
// scrubs the data region against the reconstructed image.  Invariants:
// an acknowledged write always has either a checkpointed image or a
// committed ring entry (so it is never lost), and a torn data word is
// always repaired before it can be served (the scrub).
//
// Not thread-safe: a ShardStore is owned by exactly one shard worker
// thread (serve/service.h enforces this), which is also what keeps the
// endurance-meter and ResilienceReport tallies exact under load.
#pragma once

#include <cstdint>
#include <vector>

#include "core/nvm_macro.h"
#include "nvp/checkpoint.h"
#include "serve/chaos.h"

namespace fefet::serve {

struct ShardStoreConfig {
  int dataWords = 256;  ///< served logical words per shard
  int ringSlots = 32;   ///< redo capacity between forced checkpoints
  core::MacroTechnology technology = core::MacroTechnology::kFefet;
  /// Base macro geometry; rows are grown automatically when the layout
  /// (banks + ring + data) does not fit.  wordBits is forced to 32
  /// (CheckpointManager requirement).
  core::MacroConfig macro;
  /// Cell-level fault modeling (PR 1 ECC/retry/spares) — enabled so the
  /// resilience machinery runs under serving traffic; zero fault rates by
  /// default keep the store deterministic.
  core::MacroResilience resilience;
};

/// Outcome of one write operation.
struct ShardWriteResult {
  bool acked = false;        ///< durably committed (ring entry + data word)
  std::uint32_t seq = 0;     ///< durability sequence of the ack (0 if not)
  bool powerFailed = false;  ///< an injected failure interrupted the op
};

/// Outcome of one recovery pass.
struct ShardRecoveryReport {
  bool restoredCheckpoint = false;  ///< a committed bank verified
  std::uint32_t checkpointSeq = 0;  ///< seq captured by that bank
  int ringReplayed = 0;             ///< committed ring entries re-applied
  int scrubbed = 0;                 ///< data words repaired by the scrub
};

struct ShardStoreStats {
  std::uint64_t writes = 0;          ///< acknowledged writes
  std::uint64_t reads = 0;
  std::uint64_t checkpoints = 0;     ///< committed checkpoint backups
  std::uint64_t forcedCheckpoints = 0;  ///< triggered by ring pressure
  std::uint64_t powerFails = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t ringReplayed = 0;
  std::uint64_t scrubbedWords = 0;
  double modeledLatency = 0.0;  ///< [s] accumulated macro access latency
};

class ShardStore {
 public:
  explicit ShardStore(const ShardStoreConfig& config);

  int dataWords() const { return config_.dataWords; }
  int ringSlots() const { return config_.ringSlots; }

  /// Word writes the next write operation will issue (forced checkpoint
  /// included) — the chaos stream sizes its fail-point draw with this.
  int nextWriteOpWords() const;
  /// Word writes of an explicit checkpoint operation.
  int checkpointOpWords() const { return manager_.bankWords(); }

  /// Apply one write.  With `fail` set, the supply dies inside the op at
  /// the drawn word boundary: the store transitions to the failed state
  /// and the result reports powerFailed (acked only if the failure landed
  /// after the full protocol committed).  Callers must recover() before
  /// issuing further operations after a failure.
  ShardWriteResult write(int address, std::uint32_t value,
                         const PowerFailPoint* fail = nullptr);

  /// Serve one word (macro read path, ECC-corrected when enabled).
  std::uint32_t read(int address);

  /// Explicit checkpoint; false when `fail` interrupted the backup.
  bool checkpoint(const PowerFailPoint* fail = nullptr);

  /// Power-cycle recovery: restore the newest intact checkpoint, replay
  /// committed ring entries, scrub the data region.  Idempotent; clears
  /// the failed state.
  ShardRecoveryReport recover();

  /// True after an injected power failure until recover() runs.
  bool failed() const { return down_; }

  std::uint32_t seq() const { return seq_; }
  const ShardStoreStats& stats() const { return stats_; }
  const core::NvmMacro& macro() const { return macro_; }
  const core::ResilienceReport& report() const { return macro_.report(); }
  /// Worst-case program/erase cycles of the underlying macro — the
  /// endurance meter the wear-aware router consults (via the service's
  /// published atomic, never this accessor cross-thread).
  double wearCycles() const { return macro_.worstCaseCycles(); }

 private:
  int ringBase() const { return 2 * manager_.bankWords(); }
  int ringSlotBase(std::uint32_t seq) const {
    return ringBase() +
           4 * static_cast<int>((seq - 1) % static_cast<std::uint32_t>(
                                               config_.ringSlots));
  }
  int dataBase() const { return ringBase() + 4 * config_.ringSlots; }
  bool checkpointDue() const;

  /// One macro word write under the fail plan.  Returns false when the
  /// supply died instead (the word is absent or — `tearable` — torn).
  bool wordWrite(int address, std::uint32_t value, const PowerFailPoint* fail);

  /// Internal checkpoint with the op-relative fail plan; true on commit.
  bool checkpointLocked(const PowerFailPoint* fail, bool forced);

  static std::uint32_t ringCheck(std::uint32_t addr, std::uint32_t value,
                                 std::uint32_t seq);

  ShardStoreConfig config_;
  core::NvmMacro macro_;
  nvp::CheckpointManager manager_;
  std::vector<std::uint32_t> shadow_;  ///< committed logical image
  std::uint32_t seq_ = 0;              ///< last durably committed sequence
  std::uint32_t checkpointSeq_ = 0;    ///< seq captured by the last commit
  bool down_ = false;
  int opWrites_ = 0;  ///< word writes committed in the current op
  ShardStoreStats stats_;
};

/// The macro geometry (rows grown as needed) serving `config`'s layout.
core::MacroConfig shardMacroConfig(const ShardStoreConfig& config);

}  // namespace fefet::serve
