#include "serve/shard_store.h"

#include <algorithm>

#include "common/error.h"
#include "core/ecc.h"

namespace fefet::serve {

core::MacroConfig shardMacroConfig(const ShardStoreConfig& config) {
  FEFET_REQUIRE(config.dataWords > 0, "shard store needs at least one word");
  FEFET_REQUIRE(config.ringSlots > 0, "shard store needs at least one ring slot");
  core::MacroConfig macro = config.macro;
  macro.wordBits = 32;  // CheckpointManager requires 32-bit words
  const int bankWords = (config.dataWords + 1) + 2;
  const int totalWords =
      2 * bankWords + 4 * config.ringSlots + config.dataWords;
  const int storedBits =
      32 + (config.resilience.enabled && config.resilience.eccEnabled
                ? core::SecdedCodec(32).parityBits()
                : 0);
  const int spareWords =
      config.resilience.enabled ? config.resilience.spareWords : 0;
  if (macro.cols <= 0) macro.cols = 256;
  const long long bitsNeeded =
      static_cast<long long>(totalWords + spareWords) * storedBits;
  const int rowsNeeded = static_cast<int>(
      (bitsNeeded + macro.cols - 1) / macro.cols);
  macro.rows = std::max(macro.rows, rowsNeeded + 1);
  return macro;
}

ShardStore::ShardStore(const ShardStoreConfig& config)
    : config_(config),
      macro_(config.technology, shardMacroConfig(config), config.resilience),
      manager_(macro_, config.dataWords + 1),
      shadow_(static_cast<std::size_t>(config.dataWords), 0u) {}

bool ShardStore::checkpointDue() const {
  // The entry about to be written (seq_ + 1) lands in slot (seq_) % R,
  // overwriting the entry with sequence seq_ + 1 - R; that entry must be
  // retired (covered by the last checkpoint) before it can be recycled.
  return seq_ + 1 - checkpointSeq_ > static_cast<std::uint32_t>(config_.ringSlots);
}

int ShardStore::nextWriteOpWords() const {
  return (checkpointDue() ? manager_.bankWords() : 0) + 5;
}

std::uint32_t ShardStore::ringCheck(std::uint32_t addr, std::uint32_t value,
                                    std::uint32_t seq) {
  return static_cast<std::uint32_t>(
      chaosMix(addr ^ chaosMix(value ^ chaosMix(seq))));
}

bool ShardStore::wordWrite(int address, std::uint32_t value,
                           const PowerFailPoint* fail) {
  if (fail != nullptr && opWrites_ == fail->failAfterWords) {
    // The supply dies on THIS word write: the bits selected by tearMask
    // committed before the rail collapsed, the rest retain their old
    // state — a torn word, repaired by recover()'s replay + scrub.
    const std::uint32_t old = macro_.readWord(address).value;
    const std::uint32_t torn =
        (value & fail->tearMask) | (old & ~fail->tearMask);
    if (torn != old) macro_.writeWord(address, torn);
    down_ = true;
    return false;
  }
  const auto access = macro_.writeWord(address, value);
  stats_.modeledLatency += access.latency;
  ++opWrites_;
  return true;
}

bool ShardStore::checkpointLocked(const PowerFailPoint* fail, bool forced) {
  std::vector<std::uint32_t> state;
  state.reserve(shadow_.size() + 1);
  state.push_back(seq_);
  state.insert(state.end(), shadow_.begin(), shadow_.end());
  int failAfter = -1;
  if (fail != nullptr) {
    const int remaining = fail->failAfterWords - opWrites_;
    if (remaining < manager_.bankWords()) failAfter = std::max(0, remaining);
  }
  const auto result = manager_.backup(state, failAfter);
  opWrites_ += result.wordsWritten;
  stats_.modeledLatency += result.latency;
  if (!result.committed) {
    down_ = true;
    return false;
  }
  checkpointSeq_ = seq_;
  ++stats_.checkpoints;
  if (forced) ++stats_.forcedCheckpoints;
  return true;
}

ShardWriteResult ShardStore::write(int address, std::uint32_t value,
                                   const PowerFailPoint* fail) {
  FEFET_REQUIRE(!down_, "shard store is power-failed; recover() first");
  FEFET_REQUIRE(address >= 0 && address < config_.dataWords,
                "shard store write address out of range");
  ShardWriteResult result;
  opWrites_ = 0;
  if (checkpointDue() && !checkpointLocked(fail, /*forced=*/true)) {
    ++stats_.powerFails;
    result.powerFailed = true;
    return result;
  }
  const std::uint32_t seq = seq_ + 1;
  const int base = ringSlotBase(seq);
  const std::uint32_t addr = static_cast<std::uint32_t>(address);
  // Ring entry: addr, value, check — then seq LAST (the commit point; a
  // torn or absent seq word leaves the slot's previous, retired entry).
  const bool committed = wordWrite(base + 0, addr, fail) &&
                         wordWrite(base + 1, value, fail) &&
                         wordWrite(base + 2, ringCheck(addr, value, seq), fail) &&
                         wordWrite(base + 3, seq, fail);
  if (!committed) {
    ++stats_.powerFails;
    result.powerFailed = true;
    return result;
  }
  // The redo entry is durable: even if the data word below tears, replay
  // reconstructs it.  The ack is therefore safe from here on — but we
  // only ack once the data word also landed, so an unacked write may
  // still surface after recovery (allowed: unacked implies either
  // outcome, never a torn word).
  if (!wordWrite(dataBase() + address, value, fail)) {
    seq_ = seq;  // the ring entry committed; recovery will finish the op
    ++stats_.powerFails;
    result.powerFailed = true;
    return result;
  }
  seq_ = seq;
  shadow_[static_cast<std::size_t>(address)] = value;
  ++stats_.writes;
  result.acked = true;
  result.seq = seq;
  return result;
}

std::uint32_t ShardStore::read(int address) {
  FEFET_REQUIRE(!down_, "shard store is power-failed; recover() first");
  FEFET_REQUIRE(address >= 0 && address < config_.dataWords,
                "shard store read address out of range");
  const auto access = macro_.readWord(dataBase() + address);
  stats_.modeledLatency += access.latency;
  ++stats_.reads;
  return access.value;
}

bool ShardStore::checkpoint(const PowerFailPoint* fail) {
  FEFET_REQUIRE(!down_, "shard store is power-failed; recover() first");
  opWrites_ = 0;
  if (checkpointLocked(fail, /*forced=*/false)) return true;
  ++stats_.powerFails;
  return false;
}

ShardRecoveryReport ShardStore::recover() {
  ShardRecoveryReport report;
  ++stats_.recoveries;
  // 1. Newest intact checkpoint (double-bank replay): the state vector is
  // [seq, data image]; a mid-backup power failure left the previous
  // committed bank untouched.
  std::uint32_t checkpointSeq = 0;
  if (auto image = manager_.restore()) {
    checkpointSeq = (*image)[0];
    std::copy(image->begin() + 1, image->end(), shadow_.begin());
    report.restoredCheckpoint = true;
  } else {
    std::fill(shadow_.begin(), shadow_.end(), 0u);
  }
  report.checkpointSeq = checkpointSeq;
  // 2. Replay committed ring entries newer than the checkpoint, in
  // sequence order.  A torn slot fails its check word; a recycled slot
  // fails the seq filter.
  struct Entry {
    std::uint32_t seq, addr, value;
  };
  std::vector<Entry> live;
  for (int slot = 0; slot < config_.ringSlots; ++slot) {
    const int base = ringBase() + 4 * slot;
    const std::uint32_t addr = macro_.readWord(base + 0).value;
    const std::uint32_t value = macro_.readWord(base + 1).value;
    const std::uint32_t check = macro_.readWord(base + 2).value;
    const std::uint32_t seq = macro_.readWord(base + 3).value;
    if (seq == 0 || seq <= checkpointSeq) continue;
    if (check != ringCheck(addr, value, seq)) continue;
    if (addr >= static_cast<std::uint32_t>(config_.dataWords)) continue;
    live.push_back({seq, addr, value});
  }
  std::sort(live.begin(), live.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::uint32_t maxSeq = checkpointSeq;
  for (const Entry& e : live) {
    shadow_[e.addr] = e.value;
    maxSeq = std::max(maxSeq, e.seq);
    ++report.ringReplayed;
  }
  seq_ = maxSeq;
  checkpointSeq_ = checkpointSeq;
  // 3. Scrub: the reconstructed image is the truth; any data word that
  // disagrees (the torn in-flight word, or an unacked suffix) is
  // rewritten so a torn word can never be served.
  for (int a = 0; a < config_.dataWords; ++a) {
    const std::uint32_t current = macro_.readWord(dataBase() + a).value;
    if (current != shadow_[static_cast<std::size_t>(a)]) {
      macro_.writeWord(dataBase() + a, shadow_[static_cast<std::size_t>(a)]);
      ++report.scrubbed;
    }
  }
  stats_.ringReplayed += static_cast<std::uint64_t>(report.ringReplayed);
  stats_.scrubbedWords += static_cast<std::uint64_t>(report.scrubbed);
  down_ = false;
  return report;
}

}  // namespace fefet::serve
