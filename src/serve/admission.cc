#include "serve/admission.h"

#include <algorithm>

#include "common/error.h"

namespace fefet::serve {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         int shards)
    : config_(config), shards_(shards) {
  FEFET_REQUIRE(shards_ >= 1 && shards_ <= kMaxShards,
                "admission controller shard count out of range");
  FEFET_REQUIRE(config_.queueCapacityPerShard >= 1,
                "shard queue capacity must be at least 1");
  FEFET_REQUIRE(config_.brownoutEnterUtilization >
                    config_.brownoutExitUtilization,
                "brownout thresholds must have hysteresis (enter > exit)");
  for (int c = 0; c < kTrafficClasses; ++c) {
    classCap_[c] = std::max(
        1, static_cast<int>(config_.queueCapacityPerShard *
                            config_.classShare[c]));
  }
}

AdmitDecision AdmissionController::admit(OpType op, TrafficClass cls,
                                         int shard) {
  const int c = static_cast<int>(cls);
  // Brownout: mutating ops are refused at the door; reads keep flowing
  // (still subject to the queue bound below).
  if (op != OpType::kRead && readOnly()) {
    shedReadOnly_[c].value.fetch_add(1, std::memory_order_relaxed);
    return AdmitDecision::kShedReadOnly;
  }
  const int s = shardIndex(shard);
  const int depth =
      shardDepth_[s].value.fetch_add(1, std::memory_order_relaxed) + 1;
  if (depth > config_.queueCapacityPerShard) {
    shardDepth_[s].value.fetch_sub(1, std::memory_order_relaxed);
    shedOverload_[c].value.fetch_add(1, std::memory_order_relaxed);
    return AdmitDecision::kShedOverload;
  }
  const int classDepth =
      classDepth_[s][c].value.fetch_add(1, std::memory_order_relaxed) + 1;
  if (classDepth > classCap_[c]) {
    classDepth_[s][c].value.fetch_sub(1, std::memory_order_relaxed);
    shardDepth_[s].value.fetch_sub(1, std::memory_order_relaxed);
    shedOverload_[c].value.fetch_add(1, std::memory_order_relaxed);
    return AdmitDecision::kShedOverload;
  }
  const int total = totalDepth_.fetch_add(1, std::memory_order_relaxed) + 1;
  updateBrownout(total);
  admitted_[c].value.fetch_add(1, std::memory_order_relaxed);
  return AdmitDecision::kAdmit;
}

void AdmissionController::release(TrafficClass cls, int shard) {
  const int s = shardIndex(shard);
  const int c = static_cast<int>(cls);
  classDepth_[s][c].value.fetch_sub(1, std::memory_order_relaxed);
  shardDepth_[s].value.fetch_sub(1, std::memory_order_relaxed);
  const int total = totalDepth_.fetch_sub(1, std::memory_order_relaxed) - 1;
  updateBrownout(total);
}

void AdmissionController::updateBrownout(int totalQueued) {
  const double utilization =
      static_cast<double>(totalQueued) /
      static_cast<double>(shards_ * config_.queueCapacityPerShard);
  if (utilization >= config_.brownoutEnterUtilization) {
    bool expected = false;
    if (readOnly_.compare_exchange_strong(expected, true,
                                          std::memory_order_relaxed)) {
      brownoutEntries_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (utilization <= config_.brownoutExitUtilization) {
    bool expected = true;
    if (readOnly_.compare_exchange_strong(expected, false,
                                          std::memory_order_relaxed)) {
      brownoutExits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

double AdmissionController::retryAfterSeconds(int shard) const {
  const double utilization =
      static_cast<double>(queuedAt(shard)) /
      static_cast<double>(config_.queueCapacityPerShard);
  return config_.retryAfterBaseSeconds * (1.0 + 4.0 * utilization);
}

AdmissionSnapshot AdmissionController::snapshot() const {
  AdmissionSnapshot snap;
  for (int c = 0; c < kTrafficClasses; ++c) {
    snap.admitted[c] = admitted_[c].value.load(std::memory_order_relaxed);
    snap.shedOverload[c] =
        shedOverload_[c].value.load(std::memory_order_relaxed);
    snap.shedReadOnly[c] =
        shedReadOnly_[c].value.load(std::memory_order_relaxed);
  }
  snap.brownoutEntries = brownoutEntries_.load(std::memory_order_relaxed);
  snap.brownoutExits = brownoutExits_.load(std::memory_order_relaxed);
  snap.readOnly = readOnly();
  return snap;
}

}  // namespace fefet::serve
