#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/clock.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace fefet::serve {
namespace {

constexpr std::uint64_t kNoDeadline =
    std::numeric_limits<std::uint64_t>::max();
constexpr std::uint32_t kSlotBits = 20;
constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1u;

// Host-side end-to-end latency edges [s]: 1 us .. 1 s, log-ish spacing.
constexpr double kLatencyEdges[] = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
                                    1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1,
                                    1.0};

obs::Histogram& latencyHistogram(OpType op) {
  switch (op) {
    case OpType::kRead:
      return obs::Metrics::histogram("fefet.serve.latency_read_s",
                                     kLatencyEdges);
    case OpType::kWrite:
      return obs::Metrics::histogram("fefet.serve.latency_write_s",
                                     kLatencyEdges);
    case OpType::kCheckpoint:
      break;
  }
  return obs::Metrics::histogram("fefet.serve.latency_checkpoint_s",
                                 kLatencyEdges);
}

std::uint64_t absoluteDeadlineNs(std::uint64_t nowNs, double budgetSeconds) {
  if (budgetSeconds <= 0.0) return kNoDeadline;
  const double ns = budgetSeconds * 1e9;
  if (ns >= static_cast<double>(kNoDeadline - nowNs)) return kNoDeadline;
  return nowNs + static_cast<std::uint64_t>(ns);
}

}  // namespace

MacroService::MacroService(const ServiceConfig& config)
    : config_(config),
      admission_(config.admission, config.shards),
      stormProbability_(config.storm.opFailProbability) {
  FEFET_REQUIRE(config_.shards >= 1 && config_.shards <= 64,
                "service shard count out of range");
  FEFET_REQUIRE(config_.store.dataWords <= static_cast<int>(kSlotMask),
                "shard dataWords exceeds the directory slot field");
  FEFET_REQUIRE(config_.maxAttempts >= 1, "service needs at least 1 attempt");
  directory_ = std::make_unique<DirectoryStripe[]>(kDirectoryStripes);
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  nextSlot_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->store = std::make_unique<ShardStore>(config_.store);
    shard->storm = std::make_unique<StormStream>(config_.storm, i);
    shard->wearCycles.store(shard->store->wearCycles(),
                            std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
    nextSlot_.push_back(std::make_unique<std::atomic<int>>(0));
  }
  for (int i = 0; i < config_.shards; ++i) {
    shards_[static_cast<std::size_t>(i)]->worker =
        std::thread([this, i] { workerLoop(i); });
  }
}

MacroService::~MacroService() { stop(); }

int MacroService::leastWornShardWithSpace() const {
  int best = -1;
  double bestWear = 0.0;
  for (int s = 0; s < config_.shards; ++s) {
    if (nextSlot_[static_cast<std::size_t>(s)]->load(
            std::memory_order_relaxed) >= config_.store.dataWords) {
      continue;
    }
    const double wear = shards_[static_cast<std::size_t>(s)]->wearCycles.load(
        std::memory_order_relaxed);
    if (best < 0 || wear < bestWear) {
      best = s;
      bestWear = wear;
    }
  }
  return best;
}

bool MacroService::route(const Request& request, int* shard, int* slot,
                         bool* steered) {
  *steered = false;
  if (request.op == OpType::kCheckpoint) {
    *shard = static_cast<int>(request.address %
                              static_cast<std::uint64_t>(config_.shards));
    *slot = -1;
    return true;
  }
  DirectoryStripe& stripe =
      directory_[request.address % static_cast<std::uint64_t>(
                                       kDirectoryStripes)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (auto it = stripe.map.find(request.address); it != stripe.map.end()) {
    *shard = static_cast<int>(it->second >> kSlotBits);
    *slot = static_cast<int>(it->second & kSlotMask);
    return true;
  }
  if (request.op == OpType::kRead) {
    *shard = -1;
    *slot = -1;
    return false;
  }
  // First write of this key: place it.  Default owner is key % shards;
  // steer to the least-worn shard when the default has burned notably
  // more endurance than the fleet minimum (the published wear meters are
  // atomics — routing never touches a macro cross-thread).
  int owner = static_cast<int>(request.address %
                               static_cast<std::uint64_t>(config_.shards));
  double minWear = std::numeric_limits<double>::infinity();
  for (int s = 0; s < config_.shards; ++s) {
    minWear = std::min(minWear,
                       shards_[static_cast<std::size_t>(s)]->wearCycles.load(
                           std::memory_order_relaxed));
  }
  const double ownerWear =
      shards_[static_cast<std::size_t>(owner)]->wearCycles.load(
          std::memory_order_relaxed);
  if (ownerWear >
      minWear * config_.wearSteerFactor + config_.wearSteerFloor) {
    const int candidate = leastWornShardWithSpace();
    if (candidate >= 0 && candidate != owner) {
      owner = candidate;
      *steered = true;
    }
  }
  // Claim a slot on the owner; overflow to the least-worn shard with
  // space, then give up (capacity exhausted).
  for (int round = 0; round < 2; ++round) {
    std::atomic<int>& next = *nextSlot_[static_cast<std::size_t>(owner)];
    int cur = next.load(std::memory_order_relaxed);
    while (cur < config_.store.dataWords) {
      if (next.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_relaxed)) {
        stripe.map[request.address] =
            (static_cast<std::uint32_t>(owner) << kSlotBits) |
            static_cast<std::uint32_t>(cur);
        *shard = owner;
        *slot = cur;
        return true;
      }
    }
    const int fallback = leastWornShardWithSpace();
    if (fallback < 0 || fallback == owner) break;
    owner = fallback;
    *steered = true;
  }
  *shard = -1;
  *slot = -1;
  return false;
}

int MacroService::shardOf(std::uint64_t key) const {
  const DirectoryStripe& stripe =
      directory_[key % static_cast<std::uint64_t>(kDirectoryStripes)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (auto it = stripe.map.find(key); it != stripe.map.end()) {
    return static_cast<int>(it->second >> kSlotBits);
  }
  return -1;
}

bool MacroService::submit(const Request& request, Completion done) {
  static obs::Counter& cSubmitted =
      obs::Metrics::counter("fefet.serve.submitted");
  static obs::Counter& cShedOverload =
      obs::Metrics::counter("fefet.serve.shed_overload");
  static obs::Counter& cShedReadOnly =
      obs::Metrics::counter("fefet.serve.shed_readonly");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cSubmitted.increment();
  Response response;
  if (stopping_.load(std::memory_order_acquire)) {
    response.status = Status::kCancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    if (done) done(response);
    return false;
  }
  int shard = -1;
  int slot = -1;
  bool steered = false;
  if (!route(request, &shard, &slot, &steered)) {
    if (request.op == OpType::kRead) {
      // Never-written key: reads as zero without touching a shard.
      response.status = Status::kOk;
      response.value = 0;
      completedOk_.fetch_add(1, std::memory_order_relaxed);
      if (done) done(response);
      return false;
    }
    response.status = Status::kFailed;  // capacity exhausted
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (done) done(response);
    return false;
  }
  const AdmitDecision decision =
      admission_.admit(request.op, request.cls, shard);
  if (decision != AdmitDecision::kAdmit) {
    response.shard = shard;
    response.retryAfterSeconds = admission_.retryAfterSeconds(shard);
    if (decision == AdmitDecision::kShedOverload) {
      response.status = Status::kRejectedOverload;
      cShedOverload.increment();
    } else {
      response.status = Status::kRejectedReadOnly;
      cShedReadOnly.increment();
    }
    if (done) done(response);
    return false;
  }
  if (steered) {
    steeredWrites_.fetch_add(1, std::memory_order_relaxed);
    obs::Metrics::counter("fefet.serve.steered_writes").increment();
  }
  Pending pending;
  pending.req = request;
  pending.done = std::move(done);
  pending.shard = shard;
  pending.slot = slot;
  pending.enqueueNs = monotonicNanos();
  pending.deadlineNs = absoluteDeadlineNs(pending.enqueueNs,
                                          request.budgetSeconds);
  pending.admitSeq = admitSeq_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inflightMutex_);
    ++inflight_;
  }
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  {
    std::lock_guard<std::mutex> lock(sh.mutex);
    sh.queue.push(std::move(pending));
  }
  sh.work.notify_one();
  return true;
}

void MacroService::workerLoop(int shardIndex) {
  static obs::Gauge& gDepth = obs::Metrics::gauge("fefet.serve.queue_depth");
  Shard& sh = *shards_[static_cast<std::size_t>(shardIndex)];
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(sh.mutex);
      sh.work.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !sh.queue.empty();
      });
      if (sh.queue.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      pending = std::move(const_cast<Pending&>(sh.queue.top()));
      sh.queue.pop();
    }
    admission_.release(pending.req.cls, pending.shard);
    gDepth.set(static_cast<double>(admission_.queuedAt(shardIndex)));
    if (stopping_.load(std::memory_order_acquire)) {
      Response response;
      response.status = Status::kCancelled;
      response.shard = pending.shard;
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      complete(pending, response);
      continue;
    }
    execute(sh, pending);
  }
}

void MacroService::execute(Shard& sh, Pending& pending) {
  static obs::Counter& cPowerFails =
      obs::Metrics::counter("fefet.serve.power_fails");
  static obs::Counter& cRetries = obs::Metrics::counter("fefet.serve.retries");
  static obs::Counter& cReplayed =
      obs::Metrics::counter("fefet.serve.ring_replayed");
  static obs::Counter& cScrubbed =
      obs::Metrics::counter("fefet.serve.scrubbed_words");
  static obs::Counter& cRecoveries =
      obs::Metrics::counter("fefet.serve.recoveries");
  static obs::Counter& cAcked =
      obs::Metrics::counter("fefet.serve.acked_writes");
  static obs::Counter& cDeadline =
      obs::Metrics::counter("fefet.serve.deadline_expired");
  static obs::Counter& cDropped =
      obs::Metrics::counter("fefet.serve.power_fail_dropped");
  static obs::Counter& cOk = obs::Metrics::counter("fefet.serve.completed_ok");
  static obs::Counter& cFailed = obs::Metrics::counter("fefet.serve.failed");

  const std::uint64_t startNs = monotonicNanos();
  ShardStore& store = *sh.store;
  Response response;
  response.shard = pending.shard;
  response.queueSeconds =
      static_cast<double>(startNs - pending.enqueueNs) / 1e9;

  auto finish = [&](Status status) {
    response.status = status;
    response.serviceSeconds =
        static_cast<double>(monotonicNanos() - startNs) / 1e9;
    switch (status) {
      case Status::kOk:
        completedOk_.fetch_add(1, std::memory_order_relaxed);
        cOk.increment();
        break;
      case Status::kDeadlineExpired:
        deadlineExpired_.fetch_add(1, std::memory_order_relaxed);
        cDeadline.increment();
        break;
      case Status::kPowerFailDropped:
        powerFailDropped_.fetch_add(1, std::memory_order_relaxed);
        cDropped.increment();
        break;
      case Status::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        cFailed.increment();
        break;
      default:
        break;
    }
    if (obs::Metrics::enabled()) {
      latencyHistogram(pending.req.op)
          .observe(response.queueSeconds + response.serviceSeconds);
    }
    complete(pending, response);
  };

  if (startNs >= pending.deadlineNs) {
    response.attempts = 0;
    finish(Status::kDeadlineExpired);
    return;
  }

  const double stormP = stormProbability_.load(std::memory_order_relaxed);
  auto recoverShard = [&] {
    const ShardRecoveryReport report = store.recover();
    cRecoveries.increment();
    cReplayed.add(static_cast<std::uint64_t>(report.ringReplayed));
    cScrubbed.add(static_cast<std::uint64_t>(report.scrubbed));
  };

  try {
    for (int attempt = 1; attempt <= config_.maxAttempts; ++attempt) {
      response.attempts = attempt;
      const std::uint64_t ordinal = sh.opOrdinal++;
      bool hitPowerFail = false;
      switch (pending.req.op) {
        case OpType::kRead: {
          // A power blip can drop an in-flight read, but it writes
          // nothing, so there is nothing to recover — just retry.
          if (sh.storm->draw(ordinal, 1, stormP).has_value()) {
            hitPowerFail = true;
            break;
          }
          response.value = store.read(pending.slot);
          break;
        }
        case OpType::kWrite: {
          const auto fail =
              sh.storm->draw(ordinal, store.nextWriteOpWords(), stormP);
          const ShardWriteResult result = store.write(
              pending.slot, pending.req.value, fail ? &*fail : nullptr);
          if (result.powerFailed) {
            hitPowerFail = true;
            recoverShard();
            break;
          }
          response.value = pending.req.value;
          response.ackSeq = result.seq;
          ackedWrites_.fetch_add(1, std::memory_order_relaxed);
          cAcked.increment();
          break;
        }
        case OpType::kCheckpoint: {
          const auto fail =
              sh.storm->draw(ordinal, store.checkpointOpWords(), stormP);
          if (!store.checkpoint(fail ? &*fail : nullptr)) {
            hitPowerFail = true;
            recoverShard();
          }
          break;
        }
      }
      sh.wearCycles.store(store.wearCycles(), std::memory_order_relaxed);
      if (!hitPowerFail) {
        finish(Status::kOk);
        return;
      }
      powerFails_.fetch_add(1, std::memory_order_relaxed);
      cPowerFails.increment();
      if (attempt == config_.maxAttempts) break;
      retries_.fetch_add(1, std::memory_order_relaxed);
      cRetries.increment();
      // Exponential backoff, clipped to the remaining deadline budget.
      const double backoff = std::min(
          config_.retryBackoffSeconds * std::pow(2.0, attempt - 1),
          config_.retryBackoffMaxSeconds);
      const std::uint64_t now = monotonicNanos();
      if (now >= pending.deadlineNs) {
        finish(Status::kDeadlineExpired);
        return;
      }
      const double remaining =
          static_cast<double>(pending.deadlineNs - now) / 1e9;
      const double sleepSeconds = std::min(backoff, remaining);
      if (sleepSeconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleepSeconds));
      }
      if (monotonicNanos() >= pending.deadlineNs) {
        finish(Status::kDeadlineExpired);
        return;
      }
    }
    finish(Status::kPowerFailDropped);
  } catch (const Error&) {
    // Store-level failure (uncorrectable word, exhausted spares surfaced
    // as a hard error): classified, never silently dropped.
    if (store.failed()) recoverShard();
    finish(Status::kFailed);
  }
}

void MacroService::complete(Pending& pending, Response response) {
  if (pending.done) pending.done(response);
  finishOne();
}

void MacroService::finishOne() {
  std::lock_guard<std::mutex> lock(inflightMutex_);
  --inflight_;
  if (inflight_ == 0) inflightDone_.notify_all();
}

void MacroService::drain() {
  std::unique_lock<std::mutex> lock(inflightMutex_);
  inflightDone_.wait(lock, [&] { return inflight_ == 0; });
}

void MacroService::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    return;
  }
  for (auto& shard : shards_) shard->work.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

ServiceStats MacroService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completedOk = completedOk_.load(std::memory_order_relaxed);
  stats.deadlineExpired = deadlineExpired_.load(std::memory_order_relaxed);
  stats.powerFailDropped = powerFailDropped_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.ackedWrites = ackedWrites_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.powerFails = powerFails_.load(std::memory_order_relaxed);
  stats.steeredWrites = steeredWrites_.load(std::memory_order_relaxed);
  stats.admission = admission_.snapshot();
  for (int c = 0; c < kTrafficClasses; ++c) {
    stats.shedOverload += stats.admission.shedOverload[c];
    stats.shedReadOnly += stats.admission.shedReadOnly[c];
  }
  for (const auto& shard : shards_) {
    const ShardStoreStats& s = shard->store->stats();
    stats.recoveries += s.recoveries;
    stats.ringReplayed += s.ringReplayed;
    stats.scrubbedWords += s.scrubbedWords;
    stats.checkpoints += s.checkpoints;
  }
  return stats;
}

}  // namespace fefet::serve
