// admission.h — admission control and brownout degradation for the
// serving layer.
//
// Overload must never turn into unbounded queueing: every shard queue is
// bounded, every traffic class has its own quota inside that bound (so a
// cache-mode flood cannot starve storage-mode traffic), and a request
// that does not fit is rejected IMMEDIATELY with a retry-after hint —
// shed at the door, accounted per class, never silently dropped.
//
// On top of the per-queue bounds sits a two-state brownout machine:
//
//     kNormal --(utilization >= enterUtilization)--> kReadOnly
//     kReadOnly --(utilization <= exitUtilization)--> kNormal
//
// In kReadOnly the service degrades gracefully: reads keep flowing,
// writes and checkpoints are rejected with kRejectedReadOnly.  The
// hysteresis gap keeps the machine from flapping at the threshold.
//
// Thread-safe: admit()/release() are called concurrently from submitting
// threads and shard workers; all state is atomics (the brownout flip is
// a CAS, so the enter/exit counters are exact).
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/request.h"

namespace fefet::serve {

struct AdmissionConfig {
  /// Bounded queue depth per shard (all classes together).
  int queueCapacityPerShard = 64;
  /// Per-class quota as a fraction of the shard queue capacity.  The
  /// quotas may sum above 1.0 (work-conserving overcommit) — the total
  /// bound still holds; they exist to guarantee each class a floor.
  double classShare[kTrafficClasses] = {0.6, 0.6};
  /// Fleet-wide queue utilization (queued / total capacity) that enters
  /// and exits read-only brownout.  enter > exit: hysteresis.
  double brownoutEnterUtilization = 0.9;
  double brownoutExitUtilization = 0.45;
  /// Base of the retry-after hint handed to shed requests; scales with
  /// how overloaded the rejecting queue is.
  double retryAfterBaseSeconds = 1e-3;
};

enum class AdmitDecision { kAdmit, kShedOverload, kShedReadOnly };

/// Per-class admission/rejection tallies (monotonic totals).
struct AdmissionSnapshot {
  std::uint64_t admitted[kTrafficClasses] = {0, 0};
  std::uint64_t shedOverload[kTrafficClasses] = {0, 0};
  std::uint64_t shedReadOnly[kTrafficClasses] = {0, 0};
  std::uint64_t brownoutEntries = 0;
  std::uint64_t brownoutExits = 0;
  bool readOnly = false;

  std::uint64_t totalShed() const {
    std::uint64_t n = 0;
    for (int c = 0; c < kTrafficClasses; ++c) {
      n += shedOverload[c] + shedReadOnly[c];
    }
    return n;
  }
  std::uint64_t totalAdmitted() const {
    return admitted[0] + admitted[1];
  }
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config, int shards);

  /// Decide for one request against shard `shard`'s queue.  kAdmit
  /// reserves one slot (per-shard and per-class) that release() must
  /// return after the request leaves the queue.
  AdmitDecision admit(OpType op, TrafficClass cls, int shard);

  /// Return the slot reserved by a successful admit().
  void release(TrafficClass cls, int shard);

  bool readOnly() const {
    return readOnly_.load(std::memory_order_relaxed);
  }

  /// Backpressure hint for a shed request: grows with the utilization of
  /// the rejecting shard's queue.
  double retryAfterSeconds(int shard) const;

  int queuedAt(int shard) const {
    return shardDepth_[shardIndex(shard)].value.load(std::memory_order_relaxed);
  }
  int capacityPerShard() const { return config_.queueCapacityPerShard; }

  AdmissionSnapshot snapshot() const;

 private:
  static constexpr int kMaxShards = 64;
  struct alignas(64) PaddedInt {
    std::atomic<int> value{0};
  };
  struct alignas(64) PaddedCount {
    std::atomic<std::uint64_t> value{0};
  };

  int shardIndex(int shard) const { return shard % shards_; }
  /// Re-evaluate the brownout machine against the current total depth.
  void updateBrownout(int totalQueued);

  AdmissionConfig config_;
  int shards_;
  int classCap_[kTrafficClasses];
  PaddedInt shardDepth_[kMaxShards];
  PaddedInt classDepth_[kMaxShards][kTrafficClasses];
  std::atomic<int> totalDepth_{0};
  std::atomic<bool> readOnly_{false};
  PaddedCount admitted_[kTrafficClasses];
  PaddedCount shedOverload_[kTrafficClasses];
  PaddedCount shedReadOnly_[kTrafficClasses];
  std::atomic<std::uint64_t> brownoutEntries_{0};
  std::atomic<std::uint64_t> brownoutExits_{0};
};

}  // namespace fefet::serve
