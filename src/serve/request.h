// request.h — the async request/response vocabulary of the memory-macro
// serving layer (DESIGN.md §6.6).
//
// A Request is one word-level operation (read / write / checkpoint)
// tagged with a traffic class and a wall-clock deadline budget.  The
// service answers asynchronously through a completion callback invoked on
// the owning shard's worker thread; every submitted request is completed
// exactly once, with a Status that classifies the outcome — there is no
// unclassified failure path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fefet::serve {

/// Operation kind.  kCheckpoint forces the owning shard to commit a
/// double-banked checkpoint of its full state (nvp/CheckpointManager).
enum class OpType { kRead, kWrite, kCheckpoint };

/// Traffic class, after the hybrid volatile/non-volatile FeFET bit-cell
/// work (arxiv 2606.19918): cache-mode traffic is latency-sensitive and
/// bursty, storage-mode traffic is durability-sensitive.  Admission
/// control gives each class its own share of every shard queue so one
/// class flooding cannot starve the other.
enum class TrafficClass { kCacheMode, kStorageMode };
inline constexpr int kTrafficClasses = 2;

inline const char* opTypeName(OpType op) {
  switch (op) {
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kCheckpoint: return "checkpoint";
  }
  return "?";
}

inline const char* trafficClassName(TrafficClass cls) {
  return cls == TrafficClass::kCacheMode ? "cache" : "storage";
}

/// Terminal classification of one request.  Every completion carries
/// exactly one of these; the admission layer tallies the rejection kinds
/// per traffic class (AdmissionController::snapshot()).
enum class Status {
  kOk,                ///< operation applied (writes: durably acknowledged)
  kRejectedOverload,  ///< queue/class quota full — honor retryAfterSeconds
  kRejectedReadOnly,  ///< brownout: service degraded to read-only
  kDeadlineExpired,   ///< budget ran out in queue or during retries
  kPowerFailDropped,  ///< dropped by a power failure, retry budget exhausted
  kFailed,            ///< store-level failure (uncorrectable word)
  kCancelled,         ///< service stopped before the request ran
};

inline const char* statusName(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejectedOverload: return "rejected_overload";
    case Status::kRejectedReadOnly: return "rejected_readonly";
    case Status::kDeadlineExpired: return "deadline_expired";
    case Status::kPowerFailDropped: return "power_fail_dropped";
    case Status::kFailed: return "failed";
    case Status::kCancelled: return "cancelled";
  }
  return "?";
}

/// One word-level operation against the service's logical address space.
struct Request {
  OpType op = OpType::kRead;
  TrafficClass cls = TrafficClass::kCacheMode;
  std::uint64_t address = 0;     ///< logical word address (service-wide)
  std::uint32_t value = 0;       ///< write payload (ignored for reads)
  /// Wall-clock budget from submit() to completion.  <= 0 means
  /// unlimited; the scheduler treats unlimited requests as
  /// latest-deadline (EDF places them behind every bounded request).
  double budgetSeconds = 0.0;
};

/// Completion record.  For kOk reads, `value` is the word read; for kOk
/// writes it echoes the durably acknowledged payload.  `ackSeq` is the
/// shard-local durability sequence number of an acknowledged write
/// (0 otherwise) — the replay verifier keys its oracle on it.
struct Response {
  Status status = Status::kCancelled;
  std::uint32_t value = 0;
  std::uint64_t ackSeq = 0;
  int shard = -1;                ///< shard that executed (or rejected) it
  int attempts = 0;              ///< execution attempts (retries + 1)
  double retryAfterSeconds = 0;  ///< backpressure hint on kRejectedOverload
  double queueSeconds = 0.0;     ///< admission -> dequeue wall time
  double serviceSeconds = 0.0;   ///< dequeue -> completion wall time

  bool ok() const { return status == Status::kOk; }
};

/// Invoked exactly once per submitted request, on the shard worker (or on
/// the submitting thread for admission rejections).  Must be cheap and
/// must not call back into the service.
using Completion = std::function<void(const Response&)>;

}  // namespace fefet::serve
