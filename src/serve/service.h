// service.h — the fault-tolerant memory-macro service (DESIGN.md §6.6):
// N ShardStore instances, each owned by one worker thread behind a
// bounded earliest-deadline-first queue, fronted by admission control
// (serve/admission.h), wear-aware write routing, per-op retry with
// exponential backoff, and a chaos layer injecting power-fail storms
// (serve/chaos.h).
//
// Threading model: submit() may be called from any thread; it routes,
// admits (or sheds synchronously) and enqueues.  Each shard worker owns
// its ShardStore exclusively — every macro access, checkpoint and
// recovery for a shard happens on that one thread, which is what keeps
// the endurance meter and ResilienceReport tallies exact with no lost
// updates.  Completions run on the worker thread (or the submitting
// thread for shed requests) and must not call back into the service.
//
// Addressing: requests name opaque 64-bit keys.  A key's owner shard and
// slot are assigned on first write — by default key % shards, steered to
// the least-worn shard when the default owner's write wear is a
// configurable factor above the fleet minimum (the endurance meter is
// published per shard as an atomic, so routing never touches a macro
// cross-thread).  Reads of never-written keys complete immediately with
// value 0 without touching a shard.  kCheckpoint requests target the
// shard `key % shards`.
//
// Power-fail storms: each executed operation draws from a deterministic
// per-shard storm stream; a hit kills the shard's supply mid-operation
// (see shard_store.h for the truncation semantics).  The worker then
// power-cycles the shard — CheckpointManager double-bank restore, redo
// ring replay, data scrub — and retries the victim under its deadline
// budget with exponential backoff.  Queued requests stay queued (the
// front-end survives; only the macro supply blips).  A dropped read
// retries without recovery: it wrote nothing, so there is nothing to
// replay.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/request.h"
#include "serve/shard_store.h"

namespace fefet::serve {

struct ServiceConfig {
  int shards = 4;
  ShardStoreConfig store;        ///< per-shard store geometry
  AdmissionConfig admission;
  StormConfig storm;
  /// Execution attempts per request (first try + retries); backoff
  /// doubles per retry from `retryBackoffSeconds`, capped at
  /// `retryBackoffMaxSeconds`, and never sleeps past the deadline.
  int maxAttempts = 4;
  double retryBackoffSeconds = 100e-6;
  double retryBackoffMaxSeconds = 2e-3;
  /// Steer a new key away from its default shard when that shard's
  /// worst-case write cycles exceed fleet-min * factor + floor.
  double wearSteerFactor = 2.0;
  double wearSteerFloor = 256.0;
};

/// Aggregated service tallies.  The status/admission counters are live
/// (atomics); the store-derived fields (recoveries, replay, scrub,
/// checkpoints, per-shard reports) are collected from the shard stores
/// and are only exact when the service is quiescent — call after
/// drain().
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completedOk = 0;
  std::uint64_t shedOverload = 0;
  std::uint64_t shedReadOnly = 0;
  std::uint64_t deadlineExpired = 0;
  std::uint64_t powerFailDropped = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t ackedWrites = 0;
  std::uint64_t retries = 0;
  std::uint64_t powerFails = 0;
  std::uint64_t steeredWrites = 0;
  // Quiescent-only (summed over shard stores):
  std::uint64_t recoveries = 0;
  std::uint64_t ringReplayed = 0;
  std::uint64_t scrubbedWords = 0;
  std::uint64_t checkpoints = 0;
  AdmissionSnapshot admission;
};

class MacroService {
 public:
  explicit MacroService(const ServiceConfig& config);
  ~MacroService();

  MacroService(const MacroService&) = delete;
  MacroService& operator=(const MacroService&) = delete;

  /// Submit one request.  The completion is invoked exactly once —
  /// synchronously for shed/invalid requests, on the owning shard's
  /// worker otherwise.  Returns true when the request was admitted to a
  /// queue (false = completed synchronously with a rejection).
  bool submit(const Request& request, Completion done);

  /// Block until every admitted request has completed.
  void drain();

  /// Stop the workers.  Requests still queued complete with kCancelled.
  void stop();

  int shards() const { return config_.shards; }
  /// Logical capacity: keys the service can hold.
  std::int64_t capacityKeys() const {
    return static_cast<std::int64_t>(config_.shards) *
           config_.store.dataWords;
  }

  /// Storm probability override (power-trace-driven storm windows).
  void setStormProbability(double p) {
    stormProbability_.store(p, std::memory_order_relaxed);
  }
  double stormProbability() const {
    return stormProbability_.load(std::memory_order_relaxed);
  }

  /// Owner shard of `key` right now (-1 when unmapped).  For tests.
  int shardOf(std::uint64_t key) const;

  /// Quiescent-only (after drain()): the shard stores for inspection.
  const ShardStore& shard(int i) const { return *shards_[i]->store; }

  ServiceStats stats() const;
  const AdmissionController& admission() const { return admission_; }

 private:
  struct Pending {
    Request req;
    Completion done;
    int shard = -1;
    int slot = -1;
    std::uint64_t enqueueNs = 0;
    std::uint64_t deadlineNs = 0;  ///< absolute monotonic ns (EDF key)
    std::uint64_t admitSeq = 0;    ///< FIFO tie-break within a deadline
  };
  struct EdfLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deadlineNs != b.deadlineNs) return a.deadlineNs > b.deadlineNs;
      return a.admitSeq > b.admitSeq;
    }
  };
  struct Shard {
    std::unique_ptr<ShardStore> store;
    std::unique_ptr<StormStream> storm;
    std::mutex mutex;
    std::condition_variable work;
    std::priority_queue<Pending, std::vector<Pending>, EdfLater> queue;
    std::thread worker;
    std::uint64_t opOrdinal = 0;        ///< chaos stream position
    std::atomic<double> wearCycles{0.0};  ///< published endurance meter
  };

  /// Route `key`: existing mapping, or (writes) allocate a slot with
  /// wear steering.  Returns false when no slot is available (reads of
  /// unmapped keys also return false with *slot = -1).
  bool route(const Request& request, int* shard, int* slot, bool* steered);
  int leastWornShardWithSpace() const;

  void workerLoop(int shardIndex);
  /// Execute one dequeued request on its shard (retry loop inside).
  void execute(Shard& shard, Pending& pending);
  void complete(Pending& pending, Response response);
  void finishOne();

  ServiceConfig config_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<double> stormProbability_;
  std::atomic<bool> stopping_{false};

  // Key directory: striped maps key -> (shard, slot).
  static constexpr int kDirectoryStripes = 16;
  struct alignas(64) DirectoryStripe {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, std::uint32_t> map;  ///< shard<<20|slot
  };
  std::unique_ptr<DirectoryStripe[]> directory_;
  std::vector<std::unique_ptr<std::atomic<int>>> nextSlot_;  ///< per shard

  // Live tallies.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completedOk_{0};
  std::atomic<std::uint64_t> deadlineExpired_{0};
  std::atomic<std::uint64_t> powerFailDropped_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> ackedWrites_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> powerFails_{0};
  std::atomic<std::uint64_t> steeredWrites_{0};
  std::atomic<std::uint64_t> admitSeq_{0};

  // Drain bookkeeping: admitted-but-incomplete requests.
  std::mutex inflightMutex_;
  std::condition_variable inflightDone_;
  std::uint64_t inflight_ = 0;
};

}  // namespace fefet::serve
