// chaos.h — deterministic power-fail storm injection for the serving
// layer.
//
// A storm is a per-operation Bernoulli draw: with probability p the
// shard's supply dies somewhere inside the operation.  WHERE it dies is
// drawn uniformly over the operation's word-write sequence — before the
// redo-ring entry, between ring words, mid data word (a torn word), or
// mid checkpoint stream — so every truncation point of the crash-
// consistency protocol gets exercised, exactly like CheckpointManager's
// failAfterWords hook but driven statistically.
//
// Draws are a pure function of (seed, shard, operation ordinal): a storm
// replays identically for a given seed regardless of thread timing, which
// keeps the chaos gate in scripts/check.sh reproducible.
#pragma once

#include <cstdint>
#include <optional>

namespace fefet::serve {

/// One injected power failure.
struct PowerFailPoint {
  /// The supply dies after this many macro word writes of the current
  /// operation have fully committed.  The next word write is the victim:
  /// for a data word it tears (tearMask selects which bits committed),
  /// for ring/checkpoint words it is simply absent.
  int failAfterWords = 0;
  /// Which bits of the in-flight word committed before the supply died.
  std::uint32_t tearMask = 0;
};

/// Storm shape: per-op failure probability, deterministic seed.
struct StormConfig {
  double opFailProbability = 0.0;
  std::uint64_t seed = 1;
};

/// SplitMix64 — the repo-standard cheap stateless mixer (same idiom as
/// the shard-lease chaos stream): full 64-bit avalanche, so consecutive
/// ordinals give independent draws.
inline std::uint64_t chaosMix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-shard storm stream.  Not thread-safe; owned by one
/// shard worker.
class StormStream {
 public:
  StormStream(const StormConfig& config, int shard)
      : config_(config), shard_(static_cast<std::uint64_t>(shard)) {}

  /// Draw for operation `ordinal` of this shard with `opWords` word
  /// writes ahead of it (the fail point lands uniformly in [0, opWords)).
  /// The probability can be overridden per call (storm windows driven by
  /// a power trace).
  std::optional<PowerFailPoint> draw(std::uint64_t ordinal, int opWords,
                                     double probability) {
    if (probability <= 0.0 || opWords <= 0) return std::nullopt;
    const std::uint64_t h =
        chaosMix(config_.seed ^ chaosMix(shard_ * 0x5851F42D4C957F2Dull +
                                         ordinal));
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= probability) return std::nullopt;
    PowerFailPoint p;
    const std::uint64_t h2 = chaosMix(h);
    p.failAfterWords = static_cast<int>(h2 % static_cast<std::uint64_t>(opWords));
    p.tearMask = static_cast<std::uint32_t>(chaosMix(h2));
    return p;
  }

  std::optional<PowerFailPoint> draw(std::uint64_t ordinal, int opWords) {
    return draw(ordinal, opWords, config_.opFailProbability);
  }

 private:
  StormConfig config_;
  std::uint64_t shard_;
};

}  // namespace fefet::serve
