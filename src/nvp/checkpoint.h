// checkpoint.h — crash-consistent processor-state checkpointing on top of
// the NVM macro, for the ODAB backup path of the NVP system model.
//
// A naive backup that overwrites its only copy is corruptible: power can
// die mid-stream, leaving a half-new half-old image with no way to tell.
// CheckpointManager double-buffers instead — two banks in the macro, each
// with a trailing (checksum, epoch) header.  A backup streams the state
// words into the standby bank, then the checksum, and commits by writing
// the epoch word LAST; restore picks the bank with the highest epoch whose
// checksum verifies.  A power failure at ANY word boundary therefore loses
// at most the in-flight checkpoint, never the previous good one.
//
// Power-failure injection is built in: backup(state, failAfterWords = k)
// stops after k word writes, exactly as a dying energy buffer would, so
// tests can verify recovery from every truncation point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/nvm_macro.h"

namespace fefet::nvp {

/// Outcome of one backup attempt.
struct BackupResult {
  bool committed = false;   ///< epoch marker landed (checkpoint durable)
  int wordsWritten = 0;     ///< macro word writes issued (incl. header)
  double energy = 0.0;      ///< [J]
  double latency = 0.0;     ///< [s]
};

class CheckpointManager {
 public:
  /// Manages checkpoints of `stateWords` words inside `macro`, which must
  /// hold two banks of stateWords + 2 header words.  The macro is
  /// borrowed, not owned; the manager claims addresses [0, 2*bankWords).
  CheckpointManager(core::NvmMacro& macro, int stateWords);

  int stateWords() const { return stateWords_; }
  /// Words per bank including the (checksum, epoch) header.
  int bankWords() const { return stateWords_ + 2; }

  /// Stream `state` into the standby bank and commit it.  With
  /// `failAfterWords` >= 0 the supply dies after that many word writes:
  /// the backup stops mid-stream and reports committed = false.
  BackupResult backup(const std::vector<std::uint32_t>& state,
                      int failAfterWords = -1);

  /// Recover the newest intact checkpoint, or nullopt when no bank has
  /// ever committed (first boot, or both banks corrupt).
  std::optional<std::vector<std::uint32_t>> restore();

  /// Epoch of the latest committed checkpoint (0 = none yet).
  std::uint32_t epoch() const { return epoch_; }

 private:
  int bankBase(int bank) const { return bank * bankWords(); }
  /// Read a bank's image; nullopt when its checksum does not verify.
  std::optional<std::vector<std::uint32_t>> readBank(int bank,
                                                     std::uint32_t* epochOut,
                                                     double* energy,
                                                     double* latency);

  core::NvmMacro& macro_;
  int stateWords_ = 0;
  std::uint32_t epoch_ = 0;  ///< last committed epoch
  int standby_ = 0;          ///< bank the NEXT backup streams into
};

/// Order-sensitive 32-bit checksum (FNV-1a over the word stream mixed
/// with the epoch), so a torn image cannot alias a committed one.
std::uint32_t checkpointChecksum(const std::vector<std::uint32_t>& state,
                                 std::uint32_t epoch);

/// File-backed double-bank checkpoint store: the same commit discipline as
/// CheckpointManager, persisted as two bank files on a host filesystem
/// (external snapshot of a macro's state for cold restarts and tooling).
///
/// A save streams [magic, stateWords, epoch, checksum, words...] into the
/// standby bank file and fsyncs it; restore picks the bank with the
/// highest epoch whose checksum verifies, so a torn or interrupted save
/// loses at most the in-flight image.  Durability detail inherited from
/// the sweep-journal fix (PR 6): a freshly created bank file's NAME lives
/// in the parent directory, so the store fsyncs the parent directory
/// after creating a file — without that, a power loss can vanish a fully
/// fsynced bank wholesale.  Not thread-safe.
class FileCheckpointStore {
 public:
  /// Store banks under `directory` (created, and made durable in ITS
  /// parent, if missing) for images of `stateWords` words.  Resumes the
  /// epoch sequence from any banks already present.
  FileCheckpointStore(const std::string& directory, int stateWords);

  int stateWords() const { return stateWords_; }
  std::string bankPath(int bank) const;

  /// Persist `state` into the standby bank.  True when the image is
  /// durable (written, fsynced, directory entry fsynced on first
  /// creation); false on any I/O failure — the previous bank is intact.
  bool save(const std::vector<std::uint32_t>& state);

  /// Newest intact image, or nullopt when no bank verifies.
  std::optional<std::vector<std::uint32_t>> restore();

  /// Epoch of the latest committed save (0 = none yet).
  std::uint32_t epoch() const { return epoch_; }

 private:
  /// Parse one bank file; nullopt unless magic/size/checksum verify.
  std::optional<std::vector<std::uint32_t>> readBank(
      int bank, std::uint32_t* epochOut) const;

  std::string directory_;
  int stateWords_ = 0;
  std::uint32_t epoch_ = 0;
  int standby_ = 0;
};

}  // namespace fefet::nvp
