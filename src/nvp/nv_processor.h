// nv_processor.h — the non-pipelined on-demand-all-backup (ODAB)
// nonvolatile processor of paper Fig. 12, after Ma et al. [4].
//
// Energy-driven state machine over a piecewise-constant power trace:
//
//   OFF ──(buffer charged past wake threshold)──> RESTORE ──> RUN
//   RUN ──(buffer below backup reserve)──> BACKUP ──> OFF
//
// The storage capacitor integrates harvested power; the core drains
// `activePower` while running.  On a backup, `backupWords` words are
// written to the NVM block (write energy/time per word from Table 3); on
// a restore they are read back (read energy/time per word — this is where
// FERAM's destructive, expensive reads hurt).  Forward progress is the
// fraction of wall-clock time spent doing useful computation.
#pragma once

#include <string>

#include "nvp/power_trace.h"
#include "nvp/workload.h"

namespace fefet::nvp {

/// NVM macro parameters (paper Table 3).
struct NvmParams {
  std::string name;
  double writeEnergyPerWord = 0.0;  ///< [J]
  double readEnergyPerWord = 0.0;   ///< [J]
  double writeTimePerWord = 0.0;    ///< [s]
  double readTimePerWord = 0.0;     ///< [s]
};

/// Table 3 rows.
NvmParams fefetNvm();
NvmParams feramNvm();

/// Backup policy.  The paper's architecture is on-demand-all-backup
/// (checkpoint only when the energy buffer hits the reserve); the periodic
/// policy (checkpoint every `checkpointInterval` of useful compute) is the
/// classic alternative [4] and is provided for the policy ablation.
enum class BackupPolicy { kOnDemand, kPeriodic };

struct NvpConfig {
  double clockFrequency = 8e6;       ///< [Hz]
  double storageCapacitance = 8e-9;  ///< [F] on-chip/board buffer cap
  double operatingVoltage = 1.0;     ///< buffer considered "full" level [V]
  double wakeFraction = 0.55;        ///< start running at this fill level
  double reserveMargin = 2.0;        ///< backup reserve = margin x E_backup
  double harvestEfficiency = 0.8;
  double sleepPower = 80e-9;         ///< controller/retention drain [W]
  double timeStep = 2e-6;            ///< simulation step [s]
  BackupPolicy policy = BackupPolicy::kOnDemand;
  double checkpointInterval = 300e-6;  ///< [s] useful time between periodic
                                       ///< checkpoints (kPeriodic only)
};

struct NvpResult {
  double forwardProgress = 0.0;   ///< useful-compute time / total time
  double usefulSeconds = 0.0;
  int powerCycles = 0;            ///< completed backup/restore round trips
  double backupEnergy = 0.0;      ///< total energy spent in backups [J]
  double restoreEnergy = 0.0;     ///< total energy spent in restores [J]
  double backupTime = 0.0;        ///< total time in backups [s]
  double restoreTime = 0.0;
};

/// Simulate one workload on one trace with one NVM technology.
NvpResult simulateNvp(const PowerTrace& trace, const Workload& workload,
                      const NvmParams& nvm, const NvpConfig& config = {});

/// Convenience: forward-progress improvement of NVM `a` over `b` (e.g.
/// FEFET over FERAM) on the same trace/workload, as a fraction.
double forwardProgressGain(const PowerTrace& trace, const Workload& workload,
                           const NvmParams& a, const NvmParams& b,
                           const NvpConfig& config = {});

}  // namespace fefet::nvp
