// workload.h — MiBench-style workload profiles for the NVP study
// (paper §7, Fig. 13, testbench of [24]).
//
// The NVP model only needs each benchmark's aggregate behaviour: how much
// power the core draws while running it, and how much architectural state
// the on-demand-all-backup (ODAB) controller must save/restore (PC +
// register file + live scratch words).  The profiles below are
// representative embedded-core numbers, not instruction-accurate traces.
#pragma once

#include <string>
#include <vector>

namespace fefet::nvp {

struct Workload {
  std::string name;
  double activePower = 24e-6;  ///< core power while computing [W]
  int backupWords = 34;        ///< 32-bit words saved on a power failure
  double cyclesPerItem = 1e4;  ///< cycles per unit of useful work
};

/// The eight MiBench-named profiles used by the Fig. 13 bench.
std::vector<Workload> mibenchSuite();

}  // namespace fefet::nvp
