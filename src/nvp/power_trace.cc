#include "nvp/power_trace.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace fefet::nvp {

void PowerTrace::addSegment(double duration, double power) {
  FEFET_REQUIRE(duration > 0.0, "trace segment duration must be positive");
  FEFET_REQUIRE(power >= 0.0, "trace segment power must be non-negative");
  durations_.push_back(duration);
  powers_.push_back(power);
  totalDuration_ += duration;
}

double PowerTrace::meanPower() const {
  FEFET_REQUIRE(totalDuration_ > 0.0, "empty trace");
  double energy = 0.0;
  for (std::size_t i = 0; i < durations_.size(); ++i) {
    energy += durations_[i] * powers_[i];
  }
  return energy / totalDuration_;
}

double PowerTrace::interruptionRate() const {
  FEFET_REQUIRE(totalDuration_ > 0.0, "empty trace");
  int interruptions = 0;
  for (std::size_t i = 1; i < powers_.size(); ++i) {
    if (powers_[i - 1] > 0.0 && powers_[i] == 0.0) ++interruptions;
  }
  return interruptions / totalDuration_;
}

double PowerTrace::dutyCycle() const {
  FEFET_REQUIRE(totalDuration_ > 0.0, "empty trace");
  double on = 0.0;
  for (std::size_t i = 0; i < durations_.size(); ++i) {
    if (powers_[i] > 0.0) on += durations_[i];
  }
  return on / totalDuration_;
}

void PowerTrace::scaleToMeanPower(double target) {
  FEFET_REQUIRE(target > 0.0, "target mean power must be positive");
  const double factor = target / meanPower();
  for (double& p : powers_) p *= factor;
}

PowerTrace makeWifiTrace(const WifiTraceParams& params) {
  FEFET_REQUIRE(params.duration > 0.0, "trace duration must be positive");
  stats::Rng rng(params.seed);
  PowerTrace trace;
  double t = 0.0;
  bool on = rng.bernoulli(0.5);
  while (t < params.duration) {
    const double mean = on ? params.meanBurst : params.meanOutage;
    double span = rng.exponential(1.0 / mean);
    span = std::min(std::max(span, mean * 0.05), params.duration - t);
    if (on) {
      // Log-normal burst amplitude around the nominal on-power.
      const double nominal =
          params.meanPower * (params.meanBurst + params.meanOutage) /
          params.meanBurst;
      const double amp =
          nominal * std::exp(rng.normal(0.0, params.amplitudeSigma) -
                             0.5 * params.amplitudeSigma *
                                 params.amplitudeSigma);
      trace.addSegment(span, amp);
    } else {
      trace.addSegment(span, 0.0);
    }
    t += span;
    on = !on;
  }
  trace.scaleToMeanPower(params.meanPower);
  return trace;
}

std::vector<NamedTrace> standardTraceSet(std::uint64_t seed) {
  // Lower-power scenarios are also the more frequently interrupted ones
  // (shorter bursts, longer outages), as in the paper's harvester data.
  struct Spec {
    const char* name;
    double meanPower;
    double meanBurst;
    double meanOutage;
  };
  const Spec specs[] = {
      {"wifi-3uW", 3e-6, 100e-6, 700e-6},
      {"wifi-6uW", 6e-6, 140e-6, 550e-6},
      {"wifi-14uW", 14e-6, 210e-6, 410e-6},
      {"wifi-25uW", 25e-6, 300e-6, 320e-6},
      {"wifi-50uW", 50e-6, 450e-6, 220e-6},
  };
  std::vector<NamedTrace> out;
  std::uint64_t s = seed;
  for (const auto& spec : specs) {
    WifiTraceParams p;
    p.meanPower = spec.meanPower;
    p.meanBurst = spec.meanBurst;
    p.meanOutage = spec.meanOutage;
    p.seed = s++;
    out.push_back({spec.name, makeWifiTrace(p)});
  }
  return out;
}

}  // namespace fefet::nvp
