// power_trace.h — synthetic ambient-energy power traces (paper §7).
//
// The paper drives its NVP study with measured Wi-Fi energy-harvester
// traces [4].  We synthesize statistically similar supplies: bursty
// on/off behaviour with exponentially distributed burst/outage durations
// and log-normal burst amplitudes, parameterized by mean power and
// interruption rate.  Traces are piecewise-constant and deterministic
// given a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fefet::nvp {

/// Piecewise-constant power supply: segment i spans
/// [startTime[i], startTime[i] + duration[i]) at `power[i]` watts.
class PowerTrace {
 public:
  void addSegment(double duration, double power);

  double totalDuration() const { return totalDuration_; }
  std::size_t segmentCount() const { return durations_.size(); }
  double segmentDuration(std::size_t i) const { return durations_[i]; }
  double segmentPower(std::size_t i) const { return powers_[i]; }

  /// Time-averaged power [W].
  double meanPower() const;
  /// Outages (power-on to power-off transitions) per second.
  double interruptionRate() const;
  /// Fraction of time with nonzero power.
  double dutyCycle() const;

  /// Scale all powers so meanPower() == target.
  void scaleToMeanPower(double target);

 private:
  std::vector<double> durations_;
  std::vector<double> powers_;
  double totalDuration_ = 0.0;
};

/// Wi-Fi harvester synthesis parameters.
struct WifiTraceParams {
  double duration = 1.0;        ///< trace length [s]
  double meanPower = 20e-6;     ///< time-averaged harvested power [W]
  double meanBurst = 250e-6;    ///< mean powered-burst duration [s]
  double meanOutage = 350e-6;   ///< mean outage duration [s]
  double amplitudeSigma = 0.6;  ///< log-normal spread of burst power
  std::uint64_t seed = 1;
};

/// Generate a bursty RF-harvester trace and normalize it to `meanPower`.
PowerTrace makeWifiTrace(const WifiTraceParams& params);

/// The named trace set used by the Fig. 13 reproduction: one trace per
/// power level, lowest power = most frequently interrupted.
struct NamedTrace {
  std::string name;
  PowerTrace trace;
};
std::vector<NamedTrace> standardTraceSet(std::uint64_t seed = 7);

}  // namespace fefet::nvp
