#include "nvp/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "sim/sweep_journal.h"

namespace fefet::nvp {

namespace {

/// Checkpoint traffic telemetry under fefet.checkpoint.*.  Latency here
/// is the *modeled* macro write latency of one backup (the metric the
/// normally-off energy story cares about), not host wall time.
struct CheckpointTelemetry {
  obs::Counter& backups;
  obs::Counter& commits;
  obs::Counter& restores;
  obs::Counter& bytesWritten;
  obs::Histogram& backupLatencySeconds;
};

CheckpointTelemetry& checkpointTelemetry() {
  static constexpr double kLatencyEdges[] = {1e-8, 3e-8, 1e-7, 3e-7, 1e-6,
                                             3e-6, 1e-5, 3e-5, 1e-4, 1e-3};
  static CheckpointTelemetry t{
      obs::Metrics::counter("fefet.checkpoint.backups"),
      obs::Metrics::counter("fefet.checkpoint.commits"),
      obs::Metrics::counter("fefet.checkpoint.restores"),
      obs::Metrics::counter("fefet.checkpoint.bytes_written"),
      obs::Metrics::histogram("fefet.checkpoint.backup_latency_s",
                              kLatencyEdges)};
  return t;
}

}  // namespace

std::uint32_t checkpointChecksum(const std::vector<std::uint32_t>& state,
                                 std::uint32_t epoch) {
  std::uint32_t h = 2166136261u ^ epoch;
  for (const std::uint32_t w : state) {
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xFFu;
      h *= 16777619u;
    }
  }
  return h;
}

CheckpointManager::CheckpointManager(core::NvmMacro& macro, int stateWords)
    : macro_(macro), stateWords_(stateWords) {
  FEFET_REQUIRE(stateWords_ > 0, "checkpoint state must be at least one word");
  FEFET_REQUIRE(macro_.wordCount() >= 2 * bankWords(),
                "macro too small for two checkpoint banks");
  FEFET_REQUIRE(macro_.wordBits() == 32,
                "checkpoint banks require a 32-bit macro word");
  // Recover the commit state from whatever the macro already holds, so a
  // manager rebuilt after a power cycle resumes the epoch sequence.
  double e = 0.0, t = 0.0;
  std::uint32_t best = 0;
  int bestBank = -1;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    if (readBank(bank, &epoch, &e, &t) && epoch > best) {
      best = epoch;
      bestBank = bank;
    }
  }
  epoch_ = best;
  standby_ = bestBank == 0 ? 1 : 0;
}

std::optional<std::vector<std::uint32_t>> CheckpointManager::readBank(
    int bank, std::uint32_t* epochOut, double* energy, double* latency) {
  const int base = bankBase(bank);
  std::vector<std::uint32_t> data(static_cast<std::size_t>(stateWords_));
  for (int i = 0; i < stateWords_; ++i) {
    const auto a = macro_.readWord(base + i);
    data[static_cast<std::size_t>(i)] = a.value;
    *energy += a.energy;
    *latency += a.latency;
  }
  const auto sum = macro_.readWord(base + stateWords_);
  const auto epoch = macro_.readWord(base + stateWords_ + 1);
  *energy += sum.energy + epoch.energy;
  *latency += sum.latency + epoch.latency;
  *epochOut = epoch.value;
  if (epoch.value == 0 ||
      sum.value != checkpointChecksum(data, epoch.value)) {
    return std::nullopt;
  }
  return data;
}

BackupResult CheckpointManager::backup(
    const std::vector<std::uint32_t>& state, int failAfterWords) {
  FEFET_REQUIRE(static_cast<int>(state.size()) == stateWords_,
                "checkpoint state size mismatch");
  BackupResult r;
  const int base = bankBase(standby_);
  const std::uint32_t newEpoch = epoch_ + 1;
  const auto writeOne = [&](int offset, std::uint32_t v) {
    if (failAfterWords >= 0 && r.wordsWritten >= failAfterWords) {
      return false;  // supply died at this word boundary
    }
    const auto a = macro_.writeWord(base + offset, v);
    ++r.wordsWritten;
    r.energy += a.energy;
    r.latency += a.latency;
    return true;
  };
  // Flushes on every exit: interrupted backups (failAfterWords) count too.
  struct TelemetryFlush {
    const BackupResult& r;
    ~TelemetryFlush() {
      if (!obs::Metrics::enabled()) return;
      CheckpointTelemetry& t = checkpointTelemetry();
      t.backups.increment();
      if (r.committed) t.commits.increment();
      t.bytesWritten.add(static_cast<std::uint64_t>(r.wordsWritten) * 4u);
      t.backupLatencySeconds.observe(r.latency);
    }
  } telemetryFlush{r};
  for (int i = 0; i < stateWords_; ++i) {
    if (!writeOne(i, state[static_cast<std::size_t>(i)])) return r;
  }
  if (!writeOne(stateWords_, checkpointChecksum(state, newEpoch))) return r;
  // The epoch word is the commit point: until it lands, restore still
  // sees the previous checkpoint.
  if (!writeOne(stateWords_ + 1, newEpoch)) return r;
  r.committed = true;
  epoch_ = newEpoch;
  standby_ ^= 1;
  return r;
}

namespace {

constexpr std::uint32_t kBankMagic = 0x46454643u;  // "FEFC"

bool writeAllWords(int fd, const std::vector<std::uint32_t>& words) {
  const char* data = reinterpret_cast<const char*>(words.data());
  std::size_t remaining = words.size() * sizeof(std::uint32_t);
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n <= 0) return false;
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FileCheckpointStore::FileCheckpointStore(const std::string& directory,
                                         int stateWords)
    : directory_(directory), stateWords_(stateWords) {
  FEFET_REQUIRE(!directory_.empty(), "checkpoint store needs a directory");
  FEFET_REQUIRE(stateWords_ > 0, "checkpoint state must be at least one word");
  if (::mkdir(directory_.c_str(), 0755) == 0) {
    // The directory itself is a fresh name in ITS parent — same rule.
    sim::fsyncParentDir(directory_);
  }
  // Resume the epoch sequence from whatever banks already verify.
  std::uint32_t best = 0;
  int bestBank = -1;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    if (readBank(bank, &epoch) && epoch > best) {
      best = epoch;
      bestBank = bank;
    }
  }
  epoch_ = best;
  standby_ = bestBank == 0 ? 1 : 0;
}

std::string FileCheckpointStore::bankPath(int bank) const {
  return directory_ + "/bank" + std::to_string(bank) + ".ckpt";
}

std::optional<std::vector<std::uint32_t>> FileCheckpointStore::readBank(
    int bank, std::uint32_t* epochOut) const {
  *epochOut = 0;
  const std::string path = bankPath(bank);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint32_t> raw(static_cast<std::size_t>(stateWords_) + 4);
  const std::size_t want = raw.size() * sizeof(std::uint32_t);
  char* data = reinterpret_cast<char*>(raw.data());
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::read(fd, data + got, want - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (got != want) return std::nullopt;  // truncated (torn) bank
  if (raw[0] != kBankMagic ||
      raw[1] != static_cast<std::uint32_t>(stateWords_)) {
    return std::nullopt;
  }
  const std::uint32_t epoch = raw[2];
  std::vector<std::uint32_t> state(raw.begin() + 4, raw.end());
  if (epoch == 0 || raw[3] != checkpointChecksum(state, epoch)) {
    return std::nullopt;
  }
  *epochOut = epoch;
  return state;
}

bool FileCheckpointStore::save(const std::vector<std::uint32_t>& state) {
  FEFET_REQUIRE(static_cast<int>(state.size()) == stateWords_,
                "checkpoint state size mismatch");
  const std::uint32_t newEpoch = epoch_ + 1;
  std::vector<std::uint32_t> image;
  image.reserve(state.size() + 4);
  image.push_back(kBankMagic);
  image.push_back(static_cast<std::uint32_t>(stateWords_));
  image.push_back(newEpoch);
  image.push_back(checkpointChecksum(state, newEpoch));
  image.insert(image.end(), state.begin(), state.end());
  const std::string path = bankPath(standby_);
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool written = writeAllWords(fd, image) && ::fsync(fd) == 0;
  ::close(fd);
  if (!written) return false;
  if (!existed) {
    // The bank's data is durable but its directory entry is not until the
    // parent directory is fsynced (the PR 6 sweep-journal fix): skip this
    // and a power loss can vanish the whole fsynced file.
    sim::fsyncParentDir(path);
  }
  epoch_ = newEpoch;
  standby_ ^= 1;
  return true;
}

std::optional<std::vector<std::uint32_t>> FileCheckpointStore::restore() {
  std::uint32_t bestEpoch = 0;
  int bestBank = -1;
  std::vector<std::uint32_t> bestData;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    auto data = readBank(bank, &epoch);
    if (data && epoch > bestEpoch) {
      bestEpoch = epoch;
      bestBank = bank;
      bestData = std::move(*data);
    }
  }
  if (bestBank < 0) return std::nullopt;
  epoch_ = bestEpoch;
  standby_ = bestBank == 0 ? 1 : 0;
  return bestData;
}

std::optional<std::vector<std::uint32_t>> CheckpointManager::restore() {
  if (obs::Metrics::enabled()) checkpointTelemetry().restores.increment();
  double e = 0.0, t = 0.0;
  std::uint32_t bestEpoch = 0;
  int bestBank = -1;
  std::vector<std::uint32_t> bestData;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    auto data = readBank(bank, &epoch, &e, &t);
    if (data && epoch > bestEpoch) {
      bestEpoch = epoch;
      bestBank = bank;
      bestData = std::move(*data);
    }
  }
  if (bestBank < 0) return std::nullopt;
  epoch_ = bestEpoch;
  standby_ = bestBank == 0 ? 1 : 0;
  return bestData;
}

}  // namespace fefet::nvp
