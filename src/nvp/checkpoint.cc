#include "nvp/checkpoint.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace fefet::nvp {

namespace {

/// Checkpoint traffic telemetry under fefet.checkpoint.*.  Latency here
/// is the *modeled* macro write latency of one backup (the metric the
/// normally-off energy story cares about), not host wall time.
struct CheckpointTelemetry {
  obs::Counter& backups;
  obs::Counter& commits;
  obs::Counter& restores;
  obs::Counter& bytesWritten;
  obs::Histogram& backupLatencySeconds;
};

CheckpointTelemetry& checkpointTelemetry() {
  static constexpr double kLatencyEdges[] = {1e-8, 3e-8, 1e-7, 3e-7, 1e-6,
                                             3e-6, 1e-5, 3e-5, 1e-4, 1e-3};
  static CheckpointTelemetry t{
      obs::Metrics::counter("fefet.checkpoint.backups"),
      obs::Metrics::counter("fefet.checkpoint.commits"),
      obs::Metrics::counter("fefet.checkpoint.restores"),
      obs::Metrics::counter("fefet.checkpoint.bytes_written"),
      obs::Metrics::histogram("fefet.checkpoint.backup_latency_s",
                              kLatencyEdges)};
  return t;
}

}  // namespace

std::uint32_t checkpointChecksum(const std::vector<std::uint32_t>& state,
                                 std::uint32_t epoch) {
  std::uint32_t h = 2166136261u ^ epoch;
  for (const std::uint32_t w : state) {
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xFFu;
      h *= 16777619u;
    }
  }
  return h;
}

CheckpointManager::CheckpointManager(core::NvmMacro& macro, int stateWords)
    : macro_(macro), stateWords_(stateWords) {
  FEFET_REQUIRE(stateWords_ > 0, "checkpoint state must be at least one word");
  FEFET_REQUIRE(macro_.wordCount() >= 2 * bankWords(),
                "macro too small for two checkpoint banks");
  FEFET_REQUIRE(macro_.wordBits() == 32,
                "checkpoint banks require a 32-bit macro word");
  // Recover the commit state from whatever the macro already holds, so a
  // manager rebuilt after a power cycle resumes the epoch sequence.
  double e = 0.0, t = 0.0;
  std::uint32_t best = 0;
  int bestBank = -1;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    if (readBank(bank, &epoch, &e, &t) && epoch > best) {
      best = epoch;
      bestBank = bank;
    }
  }
  epoch_ = best;
  standby_ = bestBank == 0 ? 1 : 0;
}

std::optional<std::vector<std::uint32_t>> CheckpointManager::readBank(
    int bank, std::uint32_t* epochOut, double* energy, double* latency) {
  const int base = bankBase(bank);
  std::vector<std::uint32_t> data(static_cast<std::size_t>(stateWords_));
  for (int i = 0; i < stateWords_; ++i) {
    const auto a = macro_.readWord(base + i);
    data[static_cast<std::size_t>(i)] = a.value;
    *energy += a.energy;
    *latency += a.latency;
  }
  const auto sum = macro_.readWord(base + stateWords_);
  const auto epoch = macro_.readWord(base + stateWords_ + 1);
  *energy += sum.energy + epoch.energy;
  *latency += sum.latency + epoch.latency;
  *epochOut = epoch.value;
  if (epoch.value == 0 ||
      sum.value != checkpointChecksum(data, epoch.value)) {
    return std::nullopt;
  }
  return data;
}

BackupResult CheckpointManager::backup(
    const std::vector<std::uint32_t>& state, int failAfterWords) {
  FEFET_REQUIRE(static_cast<int>(state.size()) == stateWords_,
                "checkpoint state size mismatch");
  BackupResult r;
  const int base = bankBase(standby_);
  const std::uint32_t newEpoch = epoch_ + 1;
  const auto writeOne = [&](int offset, std::uint32_t v) {
    if (failAfterWords >= 0 && r.wordsWritten >= failAfterWords) {
      return false;  // supply died at this word boundary
    }
    const auto a = macro_.writeWord(base + offset, v);
    ++r.wordsWritten;
    r.energy += a.energy;
    r.latency += a.latency;
    return true;
  };
  // Flushes on every exit: interrupted backups (failAfterWords) count too.
  struct TelemetryFlush {
    const BackupResult& r;
    ~TelemetryFlush() {
      if (!obs::Metrics::enabled()) return;
      CheckpointTelemetry& t = checkpointTelemetry();
      t.backups.increment();
      if (r.committed) t.commits.increment();
      t.bytesWritten.add(static_cast<std::uint64_t>(r.wordsWritten) * 4u);
      t.backupLatencySeconds.observe(r.latency);
    }
  } telemetryFlush{r};
  for (int i = 0; i < stateWords_; ++i) {
    if (!writeOne(i, state[static_cast<std::size_t>(i)])) return r;
  }
  if (!writeOne(stateWords_, checkpointChecksum(state, newEpoch))) return r;
  // The epoch word is the commit point: until it lands, restore still
  // sees the previous checkpoint.
  if (!writeOne(stateWords_ + 1, newEpoch)) return r;
  r.committed = true;
  epoch_ = newEpoch;
  standby_ ^= 1;
  return r;
}

std::optional<std::vector<std::uint32_t>> CheckpointManager::restore() {
  if (obs::Metrics::enabled()) checkpointTelemetry().restores.increment();
  double e = 0.0, t = 0.0;
  std::uint32_t bestEpoch = 0;
  int bestBank = -1;
  std::vector<std::uint32_t> bestData;
  for (int bank = 0; bank < 2; ++bank) {
    std::uint32_t epoch = 0;
    auto data = readBank(bank, &epoch, &e, &t);
    if (data && epoch > bestEpoch) {
      bestEpoch = epoch;
      bestBank = bank;
      bestData = std::move(*data);
    }
  }
  if (bestBank < 0) return std::nullopt;
  epoch_ = bestEpoch;
  standby_ = bestBank == 0 ? 1 : 0;
  return bestData;
}

}  // namespace fefet::nvp
