#include "nvp/nv_processor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::nvp {

NvmParams fefetNvm() {
  return {"FEFET", 4.82e-12 / 32.0, 0.28e-12 / 32.0, 0.55e-9, 3.0e-9};
}

NvmParams feramNvm() {
  return {"FERAM", 15.0e-12 / 32.0, 15.5e-12 / 32.0, 0.55e-9, 3.0e-9};
}

NvpResult simulateNvp(const PowerTrace& trace, const Workload& workload,
                      const NvmParams& nvm, const NvpConfig& config) {
  FEFET_REQUIRE(trace.segmentCount() > 0, "empty power trace");

  const double eCap = 0.5 * config.storageCapacitance *
                      config.operatingVoltage * config.operatingVoltage;
  const double eBackup = workload.backupWords * nvm.writeEnergyPerWord * 32.0;
  const double eRestore = workload.backupWords * nvm.readEnergyPerWord * 32.0;
  const double tBackup =
      workload.backupWords * nvm.writeTimePerWord * 32.0 + 1e-6;
  const double tRestore =
      workload.backupWords * nvm.readTimePerWord * 32.0 + 1e-6;
  // Note: Table 3 energies are per 32-bit word; backupWords counts words,
  // and per-word values above were derived by dividing by 32 bits, so the
  // x32 here restores per-word cost.  The extra 1 us is controller
  // sequencing overhead (the "3 us wake-up" class of designs [6]).

  const double eReserve = config.reserveMargin * eBackup;
  const double eWake =
      std::max(config.wakeFraction * eCap, eReserve + eRestore * 1.5);

  enum class State { kOff, kRestoring, kRunning, kBackingUp };
  State state = State::kOff;
  double buffer = 0.0;       // stored energy [J]
  double phaseLeft = 0.0;    // time remaining in restore/backup [s]
  bool resumeAfterBackup = false;   // periodic checkpoints keep running
  double usefulSinceCkpt = 0.0;     // at-risk progress (periodic policy)
  const bool periodic = config.policy == BackupPolicy::kPeriodic;
  NvpResult result;

  const double dt = config.timeStep;
  double total = 0.0;
  for (std::size_t seg = 0; seg < trace.segmentCount(); ++seg) {
    const double pin =
        trace.segmentPower(seg) * config.harvestEfficiency;
    double remaining = trace.segmentDuration(seg);
    while (remaining > 0.0) {
      const double step = std::min(dt, remaining);
      remaining -= step;
      total += step;
      buffer = std::min(buffer + pin * step, eCap);

      switch (state) {
        case State::kOff:
          if (buffer >= eWake) {
            state = State::kRestoring;
            phaseLeft = tRestore;
          }
          break;
        case State::kRestoring: {
          const double drain = eRestore / tRestore + config.sleepPower;
          buffer -= drain * step;
          result.restoreEnergy += (eRestore / tRestore) * step;
          result.restoreTime += step;
          phaseLeft -= step;
          if (buffer <= eReserve) {
            // Restore aborted by brown-out: emergency backup not needed
            // (state still in NVM), just power down.
            state = State::kOff;
          } else if (phaseLeft <= 0.0) {
            state = State::kRunning;
          }
          break;
        }
        case State::kRunning:
          buffer -= (workload.activePower + config.sleepPower) * step;
          result.usefulSeconds += step;
          usefulSinceCkpt += step;
          if (periodic) {
            if (buffer <= 0.0) {
              // Sudden death without a checkpoint: the progress since the
              // last checkpoint is lost and must be recomputed.
              result.usefulSeconds -= usefulSinceCkpt;
              usefulSinceCkpt = 0.0;
              state = State::kOff;
              ++result.powerCycles;
            } else if (usefulSinceCkpt >= config.checkpointInterval &&
                       buffer > eBackup) {
              state = State::kBackingUp;
              phaseLeft = tBackup;
              resumeAfterBackup = true;
            }
          } else if (buffer <= eReserve) {
            state = State::kBackingUp;
            phaseLeft = tBackup;
            resumeAfterBackup = false;
          }
          break;
        case State::kBackingUp: {
          const double drain = eBackup / tBackup + config.sleepPower;
          buffer -= drain * step;
          result.backupEnergy += (eBackup / tBackup) * step;
          result.backupTime += step;
          phaseLeft -= step;
          if (periodic && buffer <= 0.0) {
            // Died mid-checkpoint: this checkpoint is invalid too.
            result.usefulSeconds -= usefulSinceCkpt;
            usefulSinceCkpt = 0.0;
            state = State::kOff;
            ++result.powerCycles;
            break;
          }
          if (phaseLeft <= 0.0) {
            usefulSinceCkpt = 0.0;
            if (resumeAfterBackup && buffer > 0.0) {
              state = State::kRunning;
            } else {
              state = State::kOff;
              ++result.powerCycles;
            }
          }
          break;
        }
      }
      if (buffer < 0.0) buffer = 0.0;
    }
  }
  result.forwardProgress = total > 0.0 ? result.usefulSeconds / total : 0.0;
  return result;
}

double forwardProgressGain(const PowerTrace& trace, const Workload& workload,
                           const NvmParams& a, const NvmParams& b,
                           const NvpConfig& config) {
  const double fa = simulateNvp(trace, workload, a, config).forwardProgress;
  const double fb = simulateNvp(trace, workload, b, config).forwardProgress;
  FEFET_REQUIRE(fb > 0.0, "baseline made no forward progress");
  return fa / fb - 1.0;
}

}  // namespace fefet::nvp
