#include "nvp/workload.h"

namespace fefet::nvp {

std::vector<Workload> mibenchSuite() {
  // Active power reflects datapath intensity; backup words reflect live
  // architectural state (PC + register file + live buffers) for the
  // non-pipelined ODAB core.
  return {
      {"bitcount", 20e-6, 37, 8e3},
      {"crc32", 22e-6, 39, 6e3},
      {"dijkstra", 26e-6, 46, 2e4},
      {"fft", 30e-6, 56, 4e4},
      {"qsort", 27e-6, 50, 2.5e4},
      {"sha", 28e-6, 48, 1.8e4},
      {"stringsearch", 23e-6, 41, 1.2e4},
      {"susan", 29e-6, 53, 3e4},
  };
}

}  // namespace fefet::nvp
