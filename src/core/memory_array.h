// memory_array.h — an RxC array of 2T FEFET cells with the paper's line
// organization (Fig. 7) and bias scheme (Table 1).
//
// Per row:    write-select (WS) and read-select (RS) lines.
// Per column: write bit line (WBL) and sense line (SL).
// The RS line doubles as the read supply; SL is held at virtual ground by
// the sensing scheme (modeled here as an ideal 0 V source whose current is
// the column read current).  All four line sets carry lumped wire
// capacitance derived from the cell pitch and the paper's 0.2 fF/um metal.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bias_scheme.h"
#include "core/cell2t.h"
#include "core/fault_model.h"
#include "core/fefet.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::core {

struct ArrayConfig {
  int rows = 2;
  int cols = 3;
  FefetParams fefet;
  xtor::MosParams accessMos = xtor::nmos45();
  double accessWidth = 65e-9;
  BiasLevels levels;
  /// Lumped wire capacitance added per cell on each horizontal line (WS,
  /// RS) and vertical line (WBL, SL).  Defaults: 0.2 fF/um metal times a
  /// ~0.35 um cell pitch.
  double rowWireCapPerCell = 0.07e-15;
  double colWireCapPerCell = 0.06e-15;
  double edgeTime = 20e-12;
  double settleTime = 150e-12;
  double writePulse = 700e-12;   ///< default write pulse width
  double readCurrentThreshold = 1e-6;  ///< '1' classification level [A]
  /// Table 1 drives unaccessed write-select lines to -VDD during writes.
  /// Setting this false grounds them instead — the ablation knob that
  /// demonstrates why the paper's scheme needs the negative level.
  bool negativeUnaccessedSelect = true;
  /// Injected cell faults (all-zero rates = pristine array).
  FaultSpec faults;
};

/// Write-drive override for verify–retry escalation (paper Fig. 10: a
/// failed write succeeds at higher voltage or longer pulse).
struct WriteDrive {
  double voltageScale = 1.0;  ///< scales V_write and the select boost
  double pulseScale = 1.0;    ///< scales the write pulse width
};

/// Outcome of one array operation, including disturb bookkeeping.
struct ArrayOpResult {
  spice::Waveform waveform;        ///< line currents over the operation
  bool ok = false;                 ///< intended effect achieved
  bool bitRead = false;            ///< sensed value (reads)
  double readCurrent = 0.0;        ///< accessed column current [A]
  double maxUnaccessedDisturb = 0.0;  ///< max |dP| on any unaccessed cell
  double maxSneakCurrent = 0.0;    ///< peak |I| on unaccessed SLs/RSs [A]
  double totalEnergy = 0.0;        ///< all line drivers [J]
  bool faultInjected = false;      ///< a fault event altered this op
};

class MemoryArray {
 public:
  explicit MemoryArray(const ArrayConfig& config);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }

  /// Directly set every cell's stored state (row-major pattern).
  void setPattern(const std::vector<std::vector<bool>>& bits);
  /// Stored bit of one cell (classified from committed polarization).
  bool bitAt(int row, int col) const;
  /// Committed polarization map.
  std::vector<std::vector<double>> polarizations() const;

  /// Write one bit using the Table 1 bias conditions.
  ArrayOpResult writeBit(int row, int col, bool one);
  /// Write with escalated drive (verify–retry path).
  ArrayOpResult writeBit(int row, int col, bool one, const WriteDrive& drive);
  /// Read one bit (current sensing on the accessed column, virtual-ground
  /// sense lines everywhere).
  ArrayOpResult readBit(int row, int col);
  /// Hold with all lines grounded.  With retention decay configured the
  /// stored polarizations relax toward the basin boundary.
  ArrayOpResult hold(double duration);

  /// Injected fault class of one cell.
  CellFault faultAt(int row, int col) const;
  FaultInjector& faultInjector() { return injector_; }

  const ArrayConfig& config() const { return config_; }

 private:
  struct Lines {
    spice::VoltageSource* ws;
    spice::VoltageSource* rs;
    spice::VoltageSource* wbl;
    spice::VoltageSource* sl;
  };

  ArrayOpResult runOp(double duration, int accessedRow, int accessedCol,
                      bool isRead);
  void groundAll();
  /// Re-pin stuck cells (and optionally revert one cell) in the committed
  /// state, then re-seed the solver so the next op starts consistent.
  /// Returns true when any state was overridden.
  bool enforceFaultState(int revertRow, int revertCol, double revertP);
  FefetInstance& cell(int row, int col) {
    return cells_[static_cast<std::size_t>(row * config_.cols + col)];
  }
  const FefetInstance& cell(int row, int col) const {
    return cells_[static_cast<std::size_t>(row * config_.cols + col)];
  }

  ArrayConfig config_;
  FaultInjector injector_;
  std::vector<CellFault> cellFaults_;  // row-major
  spice::Netlist netlist_;
  std::vector<FefetInstance> cells_;  // row-major
  std::vector<spice::VoltageSource*> wsSources_, rsSources_;
  std::vector<spice::VoltageSource*> wblSources_, slSources_;
  std::unique_ptr<spice::Simulator> sim_;
  double pOn_ = 0.0, pOff_ = 0.0, pSaddle_ = 0.0, psiOn_ = 0.0, psiOff_ = 0.0;
};

}  // namespace fefet::core
