// resilience.h — shared types of the resilient write/read path, used by
// both the circuit-level MemoryController and the behavioral NvmMacro.
#pragma once

#include <string>

namespace fefet::core {

/// Write–verify–retry escalation ladder (paper Fig. 10: the write
/// voltage/time tradeoff — a failed pulse is retried with boosted voltage
/// and a stretched pulse, up to a budget).
struct RetryPolicy {
  int maxRetries = 2;                ///< attempts beyond the first write
  double voltageBoostPerRetry = 1.12;  ///< multiplicative V_write escalation
  double pulseStretchPerRetry = 1.5;   ///< multiplicative pulse-width escalation
  double maxVoltageScale = 1.4;        ///< drive ceiling (reliability limit)

  /// Drive scales of attempt `k` (0 = first write, unboosted).
  double voltageScaleFor(int k) const {
    double s = 1.0;
    for (int i = 0; i < k; ++i) s *= voltageBoostPerRetry;
    return s < maxVoltageScale ? s : maxVoltageScale;
  }
  double pulseScaleFor(int k) const {
    double s = 1.0;
    for (int i = 0; i < k; ++i) s *= pulseStretchPerRetry;
    return s;
  }
};

/// Graceful-degradation ledger: what the resilience machinery absorbed and
/// what leaked through.  `clean()` is the array-level correctness claim —
/// every fault was absorbed by verify-retry, ECC or remapping.
struct ResilienceReport {
  int wordWrites = 0;
  int wordReads = 0;
  int writeRetries = 0;        ///< escalated write attempts issued
  int correctedBits = 0;       ///< ECC single-bit corrections on read
  int detectedDoubleBits = 0;  ///< ECC double-bit detections (uncorrected)
  int remappedRows = 0;        ///< rows retired to spares
  int sparePoolExhausted = 0;  ///< remap requests denied: spare pool empty
  int uncorrectedBits = 0;     ///< verified-wrong bits with no remedy left
  double retryEnergy = 0.0;    ///< [J] energy spent on retries/migration

  bool clean() const {
    return uncorrectedBits == 0 && detectedDoubleBits == 0;
  }
  std::string summary() const;
};

}  // namespace fefet::core
