// cell2t.h — the paper's 2-transistor FEFET memory cell (Fig. 5/6/7).
//
//   write path:  WBL --[access NMOS, gate=WS]-- G --[FE]-- internal -- MOS
//   read path:   RS (drain) -- FEFET channel -- SL (source, sense line)
//
// Write: WS boosted, WBL = +/-V_write switches the FE polarization.
// Read:  WS = VDD with WBL = 0 (grounds the FEFET gate), RS = V_read on the
//        drain, current on SL identifies the bit.  Hold: everything at 0 V.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/bias_scheme.h"
#include "core/fault_model.h"
#include "core/fefet.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::core {

struct Cell2TConfig {
  FefetParams fefet;
  xtor::MosParams accessMos = xtor::nmos45();
  double accessWidth = 65e-9;
  BiasLevels levels;
  double edgeTime = 20e-12;     ///< source rise/fall time
  double settleTime = 300e-12;  ///< post-pulse settling (write recovery)
  /// Injected faults; the cell draws its fault class as cell (0, 0) of the
  /// fault map (all-zero rates = healthy cell).
  FaultSpec faults;
  /// Solver options for the cell's simulator (e.g. flip useCompiledStamps
  /// for legacy-vs-compiled parity runs).
  spice::NewtonOptions newton;
};

/// Result of one cell operation.
struct CellOpResult {
  spice::Waveform waveform;
  bool bitAfter = false;           ///< classified stored bit after the op
  double finalPolarization = 0.0;  ///< committed P [C/m^2]
  double writeLatency = -1.0;      ///< P threshold crossing time (writes) [s]
  double readCurrent = 0.0;        ///< plateau drain current (reads) [A]
  std::map<std::string, double> sourceEnergy;  ///< per-source energy [J]
  double totalEnergy = 0.0;                    ///< sum over sources [J]
  bool faultInjected = false;      ///< a fault event altered this op
};

/// A simulatable 2T cell with persistent state across operations.
class Cell2T {
 public:
  explicit Cell2T(const Cell2TConfig& config);

  /// Force the stored state (quasi-static target polarization + internal
  /// node voltage), bypassing a write.
  void setStoredBit(bool one);
  bool storedBit() const;
  double polarization() const { return fefet_.fe->polarization(); }

  /// Apply a write pulse of the given width at the configured V_write.
  /// `voltageOverride` (if set) replaces the bit-line magnitude.
  CellOpResult write(bool one, double pulseWidth,
                     std::optional<double> voltageOverride = {});

  /// Current-sensed read (non-destructive).  `duration` covers select
  /// assertion and the sampling plateau.
  CellOpResult read(double duration = 2e-9);

  /// Hold with all lines grounded.
  CellOpResult hold(double duration);

  /// Smallest pulse width that reliably writes the target bit at the given
  /// bit-line voltage (bisection; the paper's "write access time").
  /// Returns a negative value when even `maxPulse` fails.
  double minimumWritePulse(bool one, double vWrite, double maxPulse = 4e-9,
                           double resolution = 5e-12);

  /// Quasi-static target polarizations of the two states at V_G = 0.
  double onPolarization() const { return pOn_; }
  double offPolarization() const { return pOff_; }

  /// Injected fault class of this cell.
  CellFault fault() const { return fault_; }

  const Cell2TConfig& config() const { return config_; }
  spice::Simulator& simulator() { return *sim_; }
  const FefetInstance& fefetInstance() const { return fefet_; }

 private:
  CellOpResult runOp(double duration, bool isWrite);
  void resetSourceEnergies();

  Cell2TConfig config_;
  FaultInjector injector_;
  CellFault fault_ = CellFault::kNone;
  spice::Netlist netlist_;
  FefetInstance fefet_;
  spice::VoltageSource* vWbl_ = nullptr;
  spice::VoltageSource* vWs_ = nullptr;
  spice::VoltageSource* vRs_ = nullptr;
  spice::VoltageSource* vSl_ = nullptr;
  std::unique_ptr<spice::Simulator> sim_;
  double pOn_ = 0.0;
  double pOff_ = 0.0;
  double pSaddle_ = 0.0;  ///< basin boundary: P of the unstable equilibrium
  double psiOn_ = 0.0;
  double psiOff_ = 0.0;
};

}  // namespace fefet::core
