#include "core/memory_controller.h"

#include "common/error.h"

namespace fefet::core {

MemoryController::MemoryController(const ArrayConfig& config, int wordWidth,
                                   int maxRetries)
    : array_(config), wordWidth_(wordWidth), maxRetries_(maxRetries) {
  FEFET_REQUIRE(wordWidth_ >= 1 && wordWidth_ <= 32,
                "controller word width must be 1..32");
  FEFET_REQUIRE(config.cols % wordWidth_ == 0,
                "array columns must be a multiple of the word width");
  FEFET_REQUIRE(maxRetries_ >= 0, "negative retry budget");
}

bool MemoryController::writeWord(int row, int word, std::uint32_t value) {
  FEFET_REQUIRE(word >= 0 && word < wordsPerRow(),
                "controller write: word index out of range");
  ++stats_.wordWrites;
  bool allGood = true;
  for (int bit = 0; bit < wordWidth_; ++bit) {
    const int col = word * wordWidth_ + bit;
    const bool target = (value >> bit) & 1u;
    auto res = array_.writeBit(row, col, target);
    stats_.totalEnergy += res.totalEnergy;
    int retries = 0;
    // Verify-after-write: the committed state is directly inspectable.
    while (array_.bitAt(row, col) != target && retries < maxRetries_) {
      ++retries;
      ++stats_.bitRetries;
      res = array_.writeBit(row, col, target);
      stats_.totalEnergy += res.totalEnergy;
    }
    if (array_.bitAt(row, col) != target) {
      ++stats_.uncorrectable;
      allGood = false;
    }
  }
  return allGood;
}

std::uint32_t MemoryController::readWord(int row, int word) {
  FEFET_REQUIRE(word >= 0 && word < wordsPerRow(),
                "controller read: word index out of range");
  ++stats_.wordReads;
  std::uint32_t value = 0;
  for (int bit = 0; bit < wordWidth_; ++bit) {
    const int col = word * wordWidth_ + bit;
    const auto res = array_.readBit(row, col);
    stats_.totalEnergy += res.totalEnergy;
    if (res.bitRead) value |= (1u << bit);
  }
  return value;
}

}  // namespace fefet::core
