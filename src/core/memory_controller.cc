#include "core/memory_controller.h"

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"

namespace fefet::core {

namespace {

/// Process-wide mirrors of the per-instance ControllerReport tallies under
/// fefet.controller.*: a sweep creates one controller per point and drops
/// it with the point's netlist, so only these registry counters survive to
/// the end-of-run snapshot.
struct ControllerTelemetry {
  obs::Counter& wordWrites;
  obs::Counter& wordReads;
  obs::Counter& writeRetries;
  obs::Counter& uncorrectableBits;
  obs::Counter& remappedRows;
  obs::Counter& sparePoolExhausted;
  obs::Counter& eccCorrections;
  obs::Counter& detectedDoubleBits;
};

ControllerTelemetry& controllerTelemetry() {
  static ControllerTelemetry t{
      obs::Metrics::counter("fefet.controller.word_writes"),
      obs::Metrics::counter("fefet.controller.word_reads"),
      obs::Metrics::counter("fefet.controller.write_retries"),
      obs::Metrics::counter("fefet.controller.uncorrectable_bits"),
      obs::Metrics::counter("fefet.controller.remapped_rows"),
      obs::Metrics::counter("fefet.controller.spare_pool_exhausted"),
      obs::Metrics::counter("fefet.controller.ecc_corrections"),
      obs::Metrics::counter("fefet.controller.detected_double_bits")};
  return t;
}

}  // namespace

MemoryController::MemoryController(const ArrayConfig& config, int wordWidth,
                                   int maxRetries)
    : MemoryController(config, [&] {
        ControllerConfig c;
        c.wordWidth = wordWidth;
        c.retry.maxRetries = maxRetries;
        // Legacy behavior: plain rewrites, no escalation, no ECC, no
        // spares.
        c.retry.voltageBoostPerRetry = 1.0;
        c.retry.pulseStretchPerRetry = 1.0;
        c.retry.maxVoltageScale = 1.0;
        return c;
      }()) {}

MemoryController::MemoryController(const ArrayConfig& config,
                                   const ControllerConfig& controller)
    : array_(config), controller_(controller) {
  FEFET_REQUIRE(controller_.wordWidth >= 1 && controller_.wordWidth <= 32,
                "controller word width must be 1..32");
  FEFET_REQUIRE(controller_.retry.maxRetries >= 0, "negative retry budget");
  FEFET_REQUIRE(controller_.spareRows >= 0 &&
                    controller_.spareRows < config.rows,
                "spare rows must leave at least one logical row");
  if (controller_.eccEnabled) codec_.emplace(controller_.wordWidth);
  FEFET_REQUIRE(config.cols % bitsPerWord() == 0,
                "array columns must be a multiple of the stored word width "
                "(data + check bits)");
}

int MemoryController::bitsPerWord() const {
  return controller_.wordWidth + (codec_ ? codec_->parityBits() : 0);
}

int MemoryController::physicalRow(int row) const {
  const auto it = remap_.find(row);
  return it == remap_.end() ? row : it->second;
}

bool MemoryController::writeBitWithRetry(int physRow, int col, bool target) {
  auto res = array_.writeBit(physRow, col, target);
  stats_.totalEnergy += res.totalEnergy;
  for (int k = 1; array_.bitAt(physRow, col) != target &&
                  k <= controller_.retry.maxRetries;
       ++k) {
    ++stats_.bitRetries;
    ++report_.writeRetries;
    if (obs::Metrics::enabled()) controllerTelemetry().writeRetries.increment();
    WriteDrive drive;
    drive.voltageScale = controller_.retry.voltageScaleFor(k);
    drive.pulseScale = controller_.retry.pulseScaleFor(k);
    res = array_.writeBit(physRow, col, target, drive);
    stats_.totalEnergy += res.totalEnergy;
    report_.retryEnergy += res.totalEnergy;
  }
  return array_.bitAt(physRow, col) == target;
}

std::optional<int> MemoryController::remapRow(int logicalRow,
                                              int failedPhysRow) {
  while (nextSpare_ < controller_.spareRows) {
    const int spare = array_.rows() - controller_.spareRows + nextSpare_;
    ++nextSpare_;
    // Migrate the committed row image; a spare with its own bad cells is
    // burned and the next one tried.
    bool ok = true;
    for (int c = 0; c < array_.cols() && ok; ++c) {
      const bool v = array_.bitAt(failedPhysRow, c);
      ok = writeBitWithRetry(spare, c, v);
    }
    if (ok) {
      remap_[logicalRow] = spare;
      ++report_.remappedRows;
      if (obs::Metrics::enabled()) {
        controllerTelemetry().remappedRows.increment();
      }
      FEFET_INFO() << "controller: remapped row " << logicalRow
                   << " (phys " << failedPhysRow << ") to spare " << spare;
      return spare;
    }
  }
  // Spare pool drained mid-burst: degrade gracefully — record the denied
  // remap in the resilience ledger (the caller keeps the uncorrected-bit
  // accounting) instead of surfacing an unclassified error.
  ++report_.sparePoolExhausted;
  if (obs::Metrics::enabled()) {
    controllerTelemetry().sparePoolExhausted.increment();
  }
  FEFET_WARN() << "controller: spare pool exhausted remapping row "
               << logicalRow << " (phys " << failedPhysRow << ")";
  return std::nullopt;
}

bool MemoryController::writeWord(int row, int word, std::uint32_t value) {
  FEFET_REQUIRE(row >= 0 && row < rows(),
                "controller write: row index out of range");
  FEFET_REQUIRE(word >= 0 && word < wordsPerRow(),
                "controller write: word index out of range");
  ++stats_.wordWrites;
  ++report_.wordWrites;
  if (obs::Metrics::enabled()) controllerTelemetry().wordWrites.increment();

  // Codeword bit image: data bits, then SECDED check bits.
  const int n = bitsPerWord();
  std::uint64_t image = value & ((controller_.wordWidth >= 32
                                      ? ~std::uint32_t{0}
                                      : (1u << controller_.wordWidth) - 1u));
  if (codec_) {
    image |= static_cast<std::uint64_t>(codec_->encode(image))
             << controller_.wordWidth;
  }

  int physRow = physicalRow(row);
  bool allGood = true;
  for (int bit = 0; bit < n; ++bit) {
    const int col = word * n + bit;
    const bool target = (image >> bit) & 1u;
    if (writeBitWithRetry(physRow, col, target)) continue;
    // The escalation ladder is exhausted: a hard-failed cell.  Retire the
    // row to a spare and land the bit there.
    const auto spare = remapRow(row, physRow);
    if (spare && writeBitWithRetry(*spare, col, target)) {
      physRow = *spare;
      continue;
    }
    ++stats_.uncorrectable;
    ++report_.uncorrectedBits;
    if (obs::Metrics::enabled()) {
      controllerTelemetry().uncorrectableBits.increment();
    }
    allGood = false;
  }
  return allGood;
}

std::uint32_t MemoryController::readWord(int row, int word) {
  FEFET_REQUIRE(row >= 0 && row < rows(),
                "controller read: row index out of range");
  FEFET_REQUIRE(word >= 0 && word < wordsPerRow(),
                "controller read: word index out of range");
  ++stats_.wordReads;
  ++report_.wordReads;
  if (obs::Metrics::enabled()) controllerTelemetry().wordReads.increment();
  const int physRow = physicalRow(row);
  const int n = bitsPerWord();
  std::uint64_t image = 0;
  for (int bit = 0; bit < n; ++bit) {
    const int col = word * n + bit;
    const auto res = array_.readBit(physRow, col);
    stats_.totalEnergy += res.totalEnergy;
    if (res.bitRead) image |= std::uint64_t{1} << bit;
  }
  if (!codec_) return static_cast<std::uint32_t>(image);

  const std::uint64_t dataMask =
      controller_.wordWidth >= 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << controller_.wordWidth) - 1;
  const auto decoded = codec_->decode(
      image & dataMask,
      static_cast<std::uint16_t>(image >> controller_.wordWidth));
  if (decoded.status == EccStatus::kCorrectedSingle) {
    ++report_.correctedBits;
    if (obs::Metrics::enabled()) {
      controllerTelemetry().eccCorrections.increment();
    }
  }
  if (decoded.status == EccStatus::kDetectedDouble) {
    ++report_.detectedDoubleBits;
    if (obs::Metrics::enabled()) {
      controllerTelemetry().detectedDoubleBits.increment();
    }
  }
  return static_cast<std::uint32_t>(decoded.data);
}

}  // namespace fefet::core
