#include "core/write_explorer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace fefet::core {

namespace {

/// Measure one voltage point on any cell exposing the shared interface.
template <typename CellT>
WritePoint measurePoint(CellT& cell, double voltage, double maxPulse) {
  WritePoint pt;
  pt.voltage = voltage;
  const double t1 = cell.minimumWritePulse(true, voltage, maxPulse);
  const double t0 = cell.minimumWritePulse(false, voltage, maxPulse);
  if (t1 < 0.0 || t0 < 0.0) {
    pt.failed = true;
    return pt;
  }
  pt.writeTime = std::max(t1, t0);
  // Energy at the worst-polarity pulse width: average of the two writes
  // (the paper's write energy covers both data values symmetrically).
  cell.setStoredBit(false);
  const auto w1 = cell.write(true, pt.writeTime, voltage);
  const auto w0 = cell.write(false, pt.writeTime, voltage);
  pt.writeEnergy = 0.5 * (w1.totalEnergy + w0.totalEnergy);
  return pt;
}

template <typename CellT>
double writeWall(CellT& cell, double vLo, double vHi, double maxPulse,
                 double tolerance) {
  const auto succeeds = [&](double v) {
    return cell.minimumWritePulse(true, v, maxPulse) >= 0.0 &&
           cell.minimumWritePulse(false, v, maxPulse) >= 0.0;
  };
  FEFET_REQUIRE(!succeeds(vLo), "write wall: lower bracket already writes");
  FEFET_REQUIRE(succeeds(vHi), "write wall: upper bracket fails");
  while (vHi - vLo > tolerance) {
    const double mid = 0.5 * (vLo + vHi);
    (succeeds(mid) ? vHi : vLo) = mid;
  }
  return 0.5 * (vLo + vHi);
}

template <typename CellT>
WritePoint isoWrite(CellT& cell, double targetTime, double vLo, double vHi,
                    double maxPulse) {
  // Write time decreases monotonically with voltage; bisect.
  const auto timeAt = [&](double v) {
    const double t1 = cell.minimumWritePulse(true, v, maxPulse, 2e-12);
    const double t0 = cell.minimumWritePulse(false, v, maxPulse, 2e-12);
    if (t1 < 0.0 || t0 < 0.0) return maxPulse * 10.0;
    return std::max(t1, t0);
  };
  FEFET_REQUIRE(timeAt(vLo) > targetTime,
                "isoWrite: lower voltage already faster than target");
  FEFET_REQUIRE(timeAt(vHi) < targetTime,
                "isoWrite: upper voltage still slower than target");
  double lo = vLo, hi = vHi;
  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    (timeAt(mid) > targetTime ? lo : hi) = mid;
  }
  const double v = 0.5 * (lo + hi);
  return measurePoint(cell, v, maxPulse);
}

}  // namespace

std::vector<WritePoint> sweepFefetWrite(const Cell2TConfig& config,
                                        const std::vector<double>& voltages,
                                        double maxPulse) {
  Cell2T cell(config);
  std::vector<WritePoint> out;
  out.reserve(voltages.size());
  for (double v : voltages) {
    FEFET_INFO() << "fefet write sweep @ " << v << " V";
    out.push_back(measurePoint(cell, v, maxPulse));
  }
  return out;
}

std::vector<WritePoint> sweepFeramWrite(const FeRamConfig& config,
                                        const std::vector<double>& voltages,
                                        double maxPulse) {
  FeRamCell cell(config);
  std::vector<WritePoint> out;
  out.reserve(voltages.size());
  for (double v : voltages) {
    FEFET_INFO() << "feram write sweep @ " << v << " V";
    out.push_back(measurePoint(cell, v, maxPulse));
  }
  return out;
}

WritePoint isoWriteFefet(const Cell2TConfig& config, double targetTime,
                         double vLo, double vHi) {
  Cell2T cell(config);
  return isoWrite(cell, targetTime, vLo, vHi, 4e-9);
}

WritePoint isoWriteFeram(const FeRamConfig& config, double targetTime,
                         double vLo, double vHi) {
  FeRamCell cell(config);
  return isoWrite(cell, targetTime, vLo, vHi, 4e-9);
}

double fefetWriteWall(const Cell2TConfig& config, double vLo, double vHi,
                      double maxPulse, double tolerance) {
  Cell2T cell(config);
  return writeWall(cell, vLo, vHi, maxPulse, tolerance);
}

double feramWriteWall(const FeRamConfig& config, double vLo, double vHi,
                      double maxPulse, double tolerance) {
  FeRamCell cell(config);
  return writeWall(cell, vLo, vHi, maxPulse, tolerance);
}

}  // namespace fefet::core
