// bias_scheme.h — the array bias conditions of paper Table 1.
#pragma once

#include <string>
#include <vector>

namespace fefet::core {

enum class ArrayOp { kWrite, kRead, kHold };
enum class RowKind { kAccessed, kUnaccessed };

/// Line voltages for one (operation, row kind) combination.  For writes the
/// bit line carries +V_write for a '1' and -V_write for a '0'; `bitLine`
/// here stores the magnitude with the sign applied by the caller.
struct BiasCondition {
  double readSelect = 0.0;
  double writeSelect = 0.0;
  double bitLine = 0.0;
  double senseLine = 0.0;
};

/// Supply levels the scheme is built from.
struct BiasLevels {
  double vdd = 0.68;          ///< V_DD
  double vWrite = 0.68;       ///< write bit-line magnitude
  double vRead = 0.40;        ///< read-select (drain) level
  double writeBoost = 1.36;   ///< boosted write-select level (2x V_DD)
};

/// Paper Table 1 (with the select-line boost of §4.1 made explicit).
BiasCondition biasFor(ArrayOp op, RowKind row, const BiasLevels& levels,
                      bool writeOne = true);

/// Pretty table of all conditions (used by the Table 1 bench).
std::string describeBiasTable(const BiasLevels& levels);

}  // namespace fefet::core
