#include "core/stress.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::core {

std::string toString(StressPattern pattern) {
  switch (pattern) {
    case StressPattern::kColumnHammer: return "column-hammer";
    case StressPattern::kRowHammer: return "row-hammer";
    case StressPattern::kReadHammer: return "read-hammer";
    case StressPattern::kCheckerboardToggle: return "checkerboard-toggle";
  }
  return "?";
}

StressReport runStress(const ArrayConfig& config, StressPattern pattern,
                       int cycles) {
  FEFET_REQUIRE(cycles >= 1, "stress needs at least one cycle");
  MemoryArray array(config);
  std::vector<std::vector<bool>> checker(
      config.rows, std::vector<bool>(config.cols, false));
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      checker[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          ((r + c) % 2) == 0;
    }
  }
  array.setPattern(checker);
  const auto initial = array.polarizations();

  StressReport report;
  report.pattern = pattern;
  // Which cells count as victims (never deliberately written)?
  const auto isVictim = [&](int r, int c) {
    switch (pattern) {
      case StressPattern::kColumnHammer:
      case StressPattern::kReadHammer:
        return !(r == 0 && c == 0);
      case StressPattern::kRowHammer:
        return r != 0;
      case StressPattern::kCheckerboardToggle:
        return false;  // every cell is written; checked via statesIntact
    }
    return true;
  };

  for (int k = 0; k < cycles; ++k) {
    switch (pattern) {
      case StressPattern::kColumnHammer:
        array.writeBit(0, 0, k % 2 == 0);
        ++report.operations;
        break;
      case StressPattern::kRowHammer:
        for (int c = 0; c < config.cols; ++c) {
          array.writeBit(0, c, (k + c) % 2 == 0);
          ++report.operations;
        }
        break;
      case StressPattern::kReadHammer:
        array.readBit(0, 0);
        ++report.operations;
        break;
      case StressPattern::kCheckerboardToggle: {
        for (int r = 0; r < config.rows; ++r) {
          for (int c = 0; c < config.cols; ++c) {
            array.writeBit(r, c, ((r + c + k) % 2) == 0);
            ++report.operations;
          }
        }
        break;
      }
    }
  }

  // Expected final pattern.
  auto expected = checker;
  if (pattern == StressPattern::kColumnHammer) {
    expected[0][0] = (cycles - 1) % 2 == 0;
  } else if (pattern == StressPattern::kRowHammer) {
    for (int c = 0; c < config.cols; ++c) {
      expected[0][static_cast<std::size_t>(c)] = (cycles - 1 + c) % 2 == 0;
    }
  } else if (pattern == StressPattern::kCheckerboardToggle) {
    for (int r = 0; r < config.rows; ++r) {
      for (int c = 0; c < config.cols; ++c) {
        expected[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            ((r + c + cycles - 1) % 2) == 0;
      }
    }
  }

  const auto final = array.polarizations();
  double driftSum = 0.0;
  int victims = 0;
  const double separation = 0.22;  // ON/OFF polarization distance
  for (int r = 0; r < config.rows; ++r) {
    for (int c = 0; c < config.cols; ++c) {
      if (array.bitAt(r, c) !=
          expected[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) {
        report.statesIntact = false;
      }
      if (!isVictim(r, c)) continue;
      const double drift = std::abs(
          final[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -
          initial[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]);
      report.maxDrift = std::max(report.maxDrift, drift);
      driftSum += drift;
      ++victims;
    }
  }
  if (victims > 0) report.meanDrift = driftSum / victims;
  report.maxDriftFraction = report.maxDrift / separation;
  return report;
}

std::vector<StressReport> runAllStressPatterns(const ArrayConfig& config,
                                               int cycles) {
  std::vector<StressReport> out;
  for (StressPattern p :
       {StressPattern::kColumnHammer, StressPattern::kRowHammer,
        StressPattern::kReadHammer, StressPattern::kCheckerboardToggle}) {
    out.push_back(runStress(config, p, cycles));
  }
  return out;
}

}  // namespace fefet::core
