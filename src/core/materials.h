// materials.h — the two experimentally-calibrated ferroelectric parameter
// sets used in the paper ("calibrated to two different sets of
// experiments", §6.2).  The Landau coefficients come straight from Table 2;
// the kinetic coefficients are reconstructed from the paper's iso-write
// anchor (550 ps at 0.68 V for the FEFET cell, 550 ps at 1.64 V for the
// FERAM cell) via the calibrate* routines below.  The constants returned
// by fefetMaterial()/feramMaterial() are the cached calibration results so
// normal users never pay the calibration cost; tests re-run the routines
// and verify the constants.
#pragma once

#include "ferro/lk_model.h"

namespace fefet::core {

/// FE gate-stack material of the 2T FEFET cell (rho = 1.368 ohm·m).
ferro::LkCoefficients fefetMaterial();

/// FE capacitor material of the FERAM baseline (rho reconstructed from the
/// 1.64 V / 550 ps anchor).
ferro::LkCoefficients feramMaterial();

/// Re-derive the FEFET rho: bisect until the worst-polarity minimum write
/// pulse of a default 2T cell equals `targetTime` at `vWrite`.
double calibrateFefetRho(double vWrite = 0.68, double targetTime = 550e-12);

/// Re-derive the FERAM rho: same procedure on the 1T-1C cell.
double calibrateFeramRho(double vWrite = 1.64, double targetTime = 550e-12);

}  // namespace fefet::core
