#include "core/cell2t.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

Cell2T::Cell2T(const Cell2TConfig& config)
    : config_(config), injector_(config.faults) {
  fault_ = injector_.cellFault(0, 0);
  // Weak cells carry physically collapsed device parameters.
  config_.fefet = injector_.apply(config_.fefet, fault_);
  // Quasi-static state targets.
  const auto stable = stableInternalVoltages(config_.fefet, 0.0);
  FEFET_REQUIRE(stable.size() >= 2,
                "Cell2T requires a nonvolatile FEFET (bistable at V_G=0)");
  psiOff_ = stable.front();
  for (double s : stable) {
    if (std::abs(s) < std::abs(psiOff_)) psiOff_ = s;
  }
  psiOn_ = *std::max_element(stable.begin(), stable.end());
  const xtor::MosfetModel mos(config_.fefet.mos, config_.fefet.width);
  pOn_ = mos.gateChargeDensity(psiOn_);
  pOff_ = mos.gateChargeDensity(psiOff_);
  // Basin boundary: the unstable equilibrium between OFF and ON (classify
  // the stored bit by which basin the committed polarization lies in).
  const auto allEq = math::findAllRoots(
      [&](double psi) { return gateVoltageOfInternal(config_.fefet, psi); },
      psiOff_ + 1e-6, psiOn_ - 1e-6, 4000);
  pSaddle_ = 0.5 * (pOn_ + pOff_);
  if (!allEq.empty()) {
    pSaddle_ = mos.gateChargeDensity(allEq.front());
  }

  // Netlist: sources on all four lines; access transistor; FEFET.
  vWbl_ = netlist_.add<spice::VoltageSource>("Vwbl", netlist_.node("wbl"),
                                             netlist_.ground(), dc(0.0));
  vWs_ = netlist_.add<spice::VoltageSource>("Vws", netlist_.node("ws"),
                                            netlist_.ground(), dc(0.0));
  vRs_ = netlist_.add<spice::VoltageSource>("Vrs", netlist_.node("rs"),
                                            netlist_.ground(), dc(0.0));
  vSl_ = netlist_.add<spice::VoltageSource>("Vsl", netlist_.node("sl"),
                                            netlist_.ground(), dc(0.0));
  netlist_.add<spice::MosfetDevice>("Macc", netlist_.node("wbl"),
                                    netlist_.node("ws"), netlist_.node("g"),
                                    config_.accessMos, config_.accessWidth);
  fefet_ = attachFefet(netlist_, "cell", "g", "rs", "sl", config_.fefet,
                       pOff_);
  sim_ = std::make_unique<spice::Simulator>(netlist_, config_.newton);
  setStoredBit(false);
}

void Cell2T::setStoredBit(bool one) {
  if (fault_ == CellFault::kStuckAtZero) one = false;
  if (fault_ == CellFault::kStuckAtOne) one = true;
  fefet_.fe->setPolarization(one ? pOn_ : pOff_);
  sim_->setNodeVoltage(netlist_.nodeName(fefet_.internalNode),
                       one ? psiOn_ : psiOff_);
  sim_->initializeUic();
}

bool Cell2T::storedBit() const {
  return fefet_.fe->polarization() > pSaddle_;
}

void Cell2T::resetSourceEnergies() {
  for (auto* src : {vWbl_, vWs_, vRs_, vSl_}) src->resetEnergy();
}

CellOpResult Cell2T::runOp(double duration, bool isWrite) {
  resetSourceEnergies();
  spice::TransientOptions options;
  options.duration = duration;
  options.dtMax = duration / 200.0;
  options.dtInitial = std::min(1e-12, options.dtMax);
  const std::vector<Probe> probes = {
      Probe::v("wbl"), Probe::v("ws"), Probe::v("rs"), Probe::v("sl"),
      Probe::v("g"),
      Probe::v(netlist_.nodeName(fefet_.internalNode)),
      Probe::deviceState("cell:fe", "P"),
      Probe::deviceState("cell:mos", "id"),
  };
  auto transient = sim_->runTransient(options, probes);

  CellOpResult result;
  result.waveform = std::move(transient.waveform);
  result.finalPolarization = fefet_.fe->polarization();
  result.bitAfter = storedBit();
  for (auto* src : {vWbl_, vWs_, vRs_, vSl_}) {
    result.sourceEnergy[src->name()] = src->energyDelivered();
    result.totalEnergy += src->energyDelivered();
  }
  if (isWrite) {
    const double threshold = pSaddle_;
    const auto p = result.waveform.column("P(cell:fe)");
    if (math::hasCrossing(p, threshold)) {
      result.writeLatency = math::firstCrossing(
          result.waveform.time(), p, threshold, p.front() < threshold);
    }
  }
  return result;
}

CellOpResult Cell2T::write(bool one, double pulseWidth,
                           std::optional<double> voltageOverride) {
  const double vw = voltageOverride.value_or(config_.levels.vWrite);
  const double edge = config_.edgeTime;
  const double lead = 2.0 * edge;  // WS asserted before the WBL pulse
  // Boosted select spans the bit-line pulse plus the recovery window, so
  // the gate is actively held at 0 V while the polarization settles into
  // its basin (write recovery; a floating gate would freeze P mid-flight).
  vWs_->setShape(pulse(0.0, config_.levels.writeBoost, edge, edge,
                       pulseWidth + 4.0 * edge + 0.8 * config_.settleTime,
                       edge));
  vWbl_->setShape(pulse(0.0, one ? vw : -vw, lead + edge, edge, pulseWidth,
                        edge));
  vRs_->setShape(dc(0.0));
  vSl_->setShape(dc(0.0));
  const double duration =
      lead + pulseWidth + 6.0 * edge + config_.settleTime;
  const double pBefore = fefet_.fe->polarization();
  auto result = runOp(duration, /*isWrite=*/true);

  // Injected faults: stuck cells ignore writes; a transient failure
  // reverts this pulse.  The solver state is re-seeded from the overridden
  // committed polarization, same mechanics as setStoredBit.
  bool overridden = false;
  double pForced = 0.0;
  if (fault_ == CellFault::kStuckAtZero) {
    pForced = pOff_;
    overridden = fefet_.fe->polarization() > pSaddle_;
  } else if (fault_ == CellFault::kStuckAtOne) {
    pForced = pOn_;
    overridden = fefet_.fe->polarization() < pSaddle_;
  } else if (injector_.spec().writeFailureProbability > 0.0 &&
             injector_.nextWriteFails(vw / config_.levels.vWrite)) {
    pForced = pBefore;
    overridden = true;
  }
  if (overridden) {
    fefet_.fe->setPolarization(pForced);
    sim_->setNodeVoltage(netlist_.nodeName(fefet_.internalNode),
                         pForced > pSaddle_ ? psiOn_ : psiOff_);
    sim_->initializeUic();
    result.finalPolarization = pForced;
    result.bitAfter = storedBit();
    result.faultInjected = true;
  }
  return result;
}

CellOpResult Cell2T::read(double duration) {
  const double edge = config_.edgeTime;
  // WS on with WBL grounded pins the FEFET gate to 0 V during the read.
  vWs_->setShape(pulse(0.0, config_.levels.vdd, edge, edge,
                       duration - 6.0 * edge, edge));
  vWbl_->setShape(dc(0.0));
  vRs_->setShape(pulse(0.0, config_.levels.vRead, 3.0 * edge, edge,
                       duration - 10.0 * edge, edge));
  vSl_->setShape(dc(0.0));
  auto result = runOp(duration, /*isWrite=*/false);
  // Plateau current: sample the drain current midway through the RS pulse.
  const double tSample = 3.0 * edge + 0.5 * (duration - 10.0 * edge);
  result.readCurrent = result.waveform.valueAt("id(cell:mos)", tSample);
  return result;
}

CellOpResult Cell2T::hold(double duration) {
  vWs_->setShape(dc(0.0));
  vWbl_->setShape(dc(0.0));
  vRs_->setShape(dc(0.0));
  vSl_->setShape(dc(0.0));
  return runOp(duration, /*isWrite=*/false);
}

double Cell2T::minimumWritePulse(bool one, double vWrite, double maxPulse,
                                 double resolution) {
  const auto attempt = [&](double width) {
    setStoredBit(!one);
    const auto r = write(one, width, vWrite);
    return r.bitAfter == one;
  };
  if (!attempt(maxPulse)) return -1.0;
  double lo = 0.0, hi = maxPulse;
  while (hi - lo > resolution) {
    const double mid = 0.5 * (lo + hi);
    (attempt(mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace fefet::core
