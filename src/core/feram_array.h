// feram_array.h — an RxC 1T-1C FERAM array (paper Fig. 9 scaled up).
//
// Word and plate lines are shared per ROW, so asserting a word line
// exposes every cell in the row and the plate pulse drives them all:
// FERAM is intrinsically row-at-a-time.  Updating a single bit therefore
// costs a destructive read of the whole row followed by a full row
// write-back — which is exactly the access-granularity disadvantage the
// paper contrasts with its bit-addressable FEFET array ("this work
// supports bit-level access").  bench_granularity quantifies it.
#pragma once

#include <memory>
#include <vector>

#include "core/feram_cell.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::core {

struct FeRamArrayConfig {
  int rows = 2;
  int cols = 3;
  FeRamConfig cell;  ///< material/geometry/drive levels per cell
  double colWireCapPerCell = 0.06e-15;  ///< BL loading per attached row
};

struct FeRamRowResult {
  bool ok = false;
  std::vector<bool> bitsRead;   ///< sensed data (reads)
  double totalEnergy = 0.0;     ///< all line drivers [J]
};

class FeRamArray {
 public:
  explicit FeRamArray(const FeRamArrayConfig& config);

  int rows() const { return config_.rows; }
  int cols() const { return config_.cols; }

  void setPattern(const std::vector<std::vector<bool>>& bits);
  bool bitAt(int row, int col) const;

  /// Write a full row (two plate phases: BL-high writes the ones, then the
  /// row plate pulse writes the zeros).
  FeRamRowResult writeRow(int row, const std::vector<bool>& bits);

  /// Destructive read of a full row followed by automatic write-back.
  FeRamRowResult readRow(int row);

  /// Update one bit: the row-granular read-modify-write sequence.
  FeRamRowResult updateBit(int row, int col, bool value);

  const FeRamArrayConfig& config() const { return config_; }

 private:
  FeRamRowResult driveRow(int row, const std::vector<bool>& bits,
                          bool isWriteBack);
  void groundAll();
  void resetEnergies();
  double collectEnergies() const;

  FeRamArrayConfig config_;
  spice::Netlist netlist_;
  std::vector<spice::VoltageSource*> wlSources_, plSources_;
  std::vector<spice::VoltageSource*> blSources_;
  std::vector<spice::TimedSwitch*> blSwitches_;
  std::vector<spice::FeCapDevice*> cells_;  // row-major
  std::unique_ptr<spice::Simulator> sim_;
};

}  // namespace fefet::core
