#include "core/fefet.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

FefetInstance attachFefet(spice::Netlist& netlist, const std::string& name,
                          const std::string& gate, const std::string& drain,
                          const std::string& source, const FefetParams& params,
                          double initialPolarization) {
  FefetInstance inst;
  const std::string internalName = name + ":int";
  inst.internalNode = netlist.node(internalName);
  inst.fe = netlist.add<spice::FeCapDevice>(
      name + ":fe", netlist.node(gate), inst.internalNode, params.lk,
      params.feGeometry(), initialPolarization, params.backgroundEpsR);
  // The internal (floating) gate carries no explicit overlap capacitance:
  // those parasitics are already absorbed into the effective gate-charge
  // model, and an isolated internal node with explicit overlaps would trap
  // charge with no discharge path on simulation timescales (a real MFMIS
  // gate equilibrates through gate tunneling), skewing the P-psi manifold
  // after every write.
  xtor::MosParams mosParams = params.mos;
  mosParams.overlapCapPerWidth = 0.0;
  inst.mos = netlist.add<spice::MosfetDevice>(
      name + ":mos", netlist.node(drain), inst.internalNode,
      netlist.node(source), mosParams, params.width);
  return inst;
}

double gateVoltageOfInternal(const FefetParams& params, double psi) {
  const xtor::MosfetModel mos(params.mos, params.width);
  const ferro::LandauKhalatnikov lk(params.lk);
  return psi + params.feThickness * lk.staticField(mos.gateChargeDensity(psi));
}

HysteresisWindow analyzeHysteresis(const FefetParams& params, double psiMin,
                                   double psiMax, int samples) {
  FEFET_REQUIRE(samples >= 64, "analyzeHysteresis: too few samples");
  HysteresisWindow window;

  double prevPsi = psiMin;
  double prevVg = gateVoltageOfInternal(params, psiMin);
  double prevSlopeSign = 0.0;
  for (int i = 1; i <= samples; ++i) {
    const double psi = psiMin + (psiMax - psiMin) * i / samples;
    const double vg = gateVoltageOfInternal(params, psi);
    const double slopeSign = math::sign(vg - prevVg);
    if (prevSlopeSign != 0.0 && slopeSign != 0.0 &&
        slopeSign != prevSlopeSign) {
      Fold fold;
      fold.internalVoltage = prevPsi;
      fold.gateVoltage = prevVg;
      fold.isMaximum = prevSlopeSign > 0.0;  // rising then falling = max
      window.folds.push_back(fold);
    }
    if (slopeSign != 0.0) prevSlopeSign = slopeSign;
    prevPsi = psi;
    prevVg = vg;
  }

  window.hysteretic = !window.folds.empty();
  if (!window.hysteretic) return window;

  // Inversion-branch pair: the two folds with the largest internal
  // voltages.  By construction of the S-curve, the max (up-switch) sits at
  // lower psi than the min (down-switch).
  std::vector<Fold> sorted = window.folds;
  std::sort(sorted.begin(), sorted.end(), [](const Fold& a, const Fold& b) {
    return a.internalVoltage > b.internalVoltage;
  });
  const Fold* up = nullptr;
  const Fold* down = nullptr;
  for (const Fold& f : sorted) {
    if (!down && !f.isMaximum) {
      down = &f;
    } else if (down && !up && f.isMaximum) {
      up = &f;
      break;
    }
  }
  if (up && down) {
    window.upSwitchVoltage = up->gateVoltage;
    window.downSwitchVoltage = down->gateVoltage;
    window.nonvolatile =
        window.downSwitchVoltage < 0.0 && window.upSwitchVoltage > 0.0;
  }
  return window;
}

std::vector<double> stableInternalVoltages(const FefetParams& params,
                                           double gateVoltage, double psiMin,
                                           double psiMax, int samples) {
  const auto residual = [&](double psi) {
    return gateVoltageOfInternal(params, psi) - gateVoltage;
  };
  const auto roots = math::findAllRoots(residual, psiMin, psiMax, samples);
  std::vector<double> stable;
  const double h = (psiMax - psiMin) / samples;
  for (double r : roots) {
    // Stable where dV_G/dpsi > 0.
    if (residual(r + 0.25 * h) > residual(r - 0.25 * h)) stable.push_back(r);
  }
  return stable;
}

double stateCurrent(const FefetParams& params, double vgs, double vds,
                    double psiSeed) {
  const auto stable = stableInternalVoltages(params, vgs);
  FEFET_REQUIRE(!stable.empty(), "no stable state at this gate voltage");
  double best = stable.front();
  for (double s : stable) {
    if (std::abs(s - psiSeed) < std::abs(best - psiSeed)) best = s;
  }
  const xtor::MosfetModel mos(params.mos, params.width);
  return mos.idsAt(vds, best, 0.0);
}

double distinguishability(const FefetParams& params, double vread) {
  const auto window = analyzeHysteresis(params);
  FEFET_REQUIRE(window.nonvolatile,
                "distinguishability needs a nonvolatile device");
  const auto stable = stableInternalVoltages(params, 0.0);
  FEFET_REQUIRE(stable.size() >= 2, "expected at least two stable states");
  const xtor::MosfetModel mos(params.mos, params.width);
  // OFF: the stable state nearest psi = 0; ON: the largest-psi state on the
  // inversion branch.
  double psiOff = stable.front();
  for (double s : stable) {
    if (std::abs(s) < std::abs(psiOff)) psiOff = s;
  }
  const double psiOn = *std::max_element(stable.begin(), stable.end());
  const double iOn = mos.idsAt(vread, psiOn, 0.0);
  const double iOff = mos.idsAt(vread, psiOff, 0.0);
  FEFET_REQUIRE(iOff > 0.0, "off current vanished");
  return iOn / iOff;
}

double minimumNonvolatileThickness(const FefetParams& params, double tLow,
                                   double tHigh, double tolerance) {
  FEFET_REQUIRE(tLow > 0.0 && tHigh > tLow,
                "minimumNonvolatileThickness: bad bracket");
  const auto nonvolatileAt = [&](double t) {
    FefetParams p = params;
    p.feThickness = t;
    return analyzeHysteresis(p).nonvolatile;
  };
  FEFET_REQUIRE(!nonvolatileAt(tLow), "lower bracket already nonvolatile");
  FEFET_REQUIRE(nonvolatileAt(tHigh), "upper bracket not nonvolatile");
  while (tHigh - tLow > tolerance) {
    const double mid = 0.5 * (tLow + tHigh);
    (nonvolatileAt(mid) ? tHigh : tLow) = mid;
  }
  return 0.5 * (tLow + tHigh);
}

std::vector<TransferPoint> sweepTransfer(const FefetParams& params,
                                         double vFrom, double vTo, int steps,
                                         double vds, double startPsi) {
  FEFET_REQUIRE(steps >= 2, "sweepTransfer: too few steps");
  const xtor::MosfetModel mos(params.mos, params.width);
  std::vector<TransferPoint> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  double psi = startPsi;
  for (int i = 0; i <= steps; ++i) {
    const double vg = vFrom + (vTo - vFrom) * i / steps;
    const auto stable = stableInternalVoltages(params, vg);
    FEFET_REQUIRE(!stable.empty(), "no equilibrium during transfer sweep");
    // Continuation: stay on the branch nearest the previous state (a fold
    // annihilation makes the nearest surviving branch the jump target).
    double best = stable.front();
    for (double s : stable) {
      if (std::abs(s - psi) < std::abs(best - psi)) best = s;
    }
    psi = best;
    TransferPoint pt;
    pt.vgs = vg;
    pt.internalVoltage = psi;
    pt.drainCurrent = mos.idsAt(vds, psi, 0.0);
    pt.polarization = mos.gateChargeDensity(psi);
    out.push_back(pt);
  }
  return out;
}

}  // namespace fefet::core
