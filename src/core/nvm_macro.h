// nvm_macro.h — the adoptable top-level component: a word-addressable
// nonvolatile memory macro with the paper's energetics and timing.
//
// Functionally it is a bounds-checked word store; energetically every
// access is charged with the Table 3 numbers produced by MacroEnergyModel
// (which itself derives them from layout wires + simulated cells), and
// timing follows the calibrated write anchor and the eq. (2) read budget.
// The endurance meter ages the array with the ferro fatigue model — FERAM
// reads count as cycles too, because its reads are destructive.
//
// This is the object the NVP system model consumes (nvmParams()).
#pragma once

#include <cstdint>
#include <vector>

#include "core/macro_energy.h"
#include "core/read_timing.h"
#include "ferro/fatigue.h"
#include "layout/layout.h"

namespace fefet::core {

enum class MacroTechnology { kFefet, kFeram };

/// Result of one word access.
struct MacroAccess {
  std::uint32_t value = 0;   ///< read data (echo of written data on writes)
  double energy = 0.0;       ///< [J]
  double latency = 0.0;      ///< [s]
};

class NvmMacro {
 public:
  explicit NvmMacro(MacroTechnology technology,
                    const MacroConfig& config = MacroConfig());

  MacroTechnology technology() const { return technology_; }
  int wordCount() const { return wordCount_; }
  int wordBits() const { return config_.wordBits; }

  MacroAccess writeWord(int address, std::uint32_t value);
  MacroAccess readWord(int address);

  /// Access-pattern bookkeeping.
  int writeAccesses() const { return writes_; }
  int readAccesses() const { return reads_; }
  double totalEnergy() const { return totalEnergy_; }

  /// The Table 3 row this macro charges per access.
  const MacroNumbers& numbers() const { return numbers_; }

  /// Macro array footprint [m^2] (cells only, from the layout model).
  double arrayArea() const;

  /// Worst-cycled word so far and the endurance headroom left for it
  /// (fraction of remnant polarization remaining per the fatigue model).
  double worstCaseCycles() const;
  double enduranceMarginRemaining(double requiredFraction = 0.5) const;

 private:
  MacroTechnology technology_;
  MacroConfig config_;
  MacroNumbers numbers_;
  ferro::FatigueModel fatigue_;
  int wordCount_ = 0;
  std::vector<std::uint32_t> store_;
  std::vector<std::uint32_t> cycles_;  ///< program/erase cycles per word
  int writes_ = 0;
  int reads_ = 0;
  double totalEnergy_ = 0.0;
};

}  // namespace fefet::core
