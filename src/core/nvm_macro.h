// nvm_macro.h — the adoptable top-level component: a word-addressable
// nonvolatile memory macro with the paper's energetics and timing.
//
// Functionally it is a bounds-checked word store; energetically every
// access is charged with the Table 3 numbers produced by MacroEnergyModel
// (which itself derives them from layout wires + simulated cells), and
// timing follows the calibrated write anchor and the eq. (2) read budget.
// The endurance meter ages the array with the ferro fatigue model — FERAM
// reads count as cycles too, because its reads are destructive.
//
// With a MacroResilience config the macro additionally models the array
// at cell granularity: per-cell faults from FaultInjector (stuck cells,
// weak cells, transient write failures), mitigated by write–verify–retry
// with drive escalation, SECDED ECC check bits stored alongside the data,
// and remapping of unwritable words to spares.  The ResilienceReport
// ledger records what was absorbed and what leaked through.
//
// This is the object the NVP system model consumes (nvmParams()).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/ecc.h"
#include "core/fault_model.h"
#include "core/macro_energy.h"
#include "core/read_timing.h"
#include "core/resilience.h"
#include "ferro/fatigue.h"
#include "layout/layout.h"

namespace fefet::core {

enum class MacroTechnology { kFefet, kFeram };

/// Result of one word access.
struct MacroAccess {
  std::uint32_t value = 0;   ///< read data (echo of written data on writes)
  double energy = 0.0;       ///< [J]
  double latency = 0.0;      ///< [s]
};

/// Behavioral fault/resilience mode of the macro.  `enabled` turns on
/// cell-level fault modeling; the mitigation knobs (retry ladder, ECC,
/// spares) can be zeroed independently to measure the unprotected array.
struct MacroResilience {
  bool enabled = false;
  FaultSpec faults;
  RetryPolicy retry;
  /// Store SECDED check bits in extra cells per word; correct on read.
  bool eccEnabled = true;
  /// Physical words at the top of the array reserved as remap spares.
  int spareWords = 8;
};

class NvmMacro {
 public:
  explicit NvmMacro(MacroTechnology technology,
                    const MacroConfig& config = MacroConfig());
  NvmMacro(MacroTechnology technology, const MacroConfig& config,
           const MacroResilience& resilience);

  MacroTechnology technology() const { return technology_; }
  int wordCount() const { return wordCount_; }
  int wordBits() const { return config_.wordBits; }
  /// Cells a stored word occupies: data bits plus ECC check bits.
  int storedBitsPerWord() const;

  MacroAccess writeWord(int address, std::uint32_t value);
  MacroAccess readWord(int address);

  /// Access-pattern bookkeeping.
  int writeAccesses() const { return writes_; }
  int readAccesses() const { return reads_; }
  double totalEnergy() const { return totalEnergy_; }

  /// The Table 3 row this macro charges per access.
  const MacroNumbers& numbers() const { return numbers_; }

  /// Resilience ledger (all-zero when fault modeling is disabled).
  const ResilienceReport& report() const { return report_; }
  const MacroResilience& resilience() const { return resilience_; }

  /// Macro array footprint [m^2] (cells only, from the layout model).
  double arrayArea() const;

  /// Worst-cycled word so far and the endurance headroom left for it
  /// (fraction of remnant polarization remaining per the fatigue model).
  double worstCaseCycles() const;
  double enduranceMarginRemaining(double requiredFraction = 0.5) const;

 private:
  /// Physical word after remapping.
  int physicalWord(int address) const;
  CellFault cellFaultAt(int physWord, int bit) const;
  /// One bit through the write–verify–retry ladder; true once the stored
  /// cell value matches the target.
  bool writeStoredBit(int physWord, int bit, bool target);
  /// Hand out the next spare word for a failing logical address.
  std::optional<int> allocateSpare(int address);

  MacroTechnology technology_;
  MacroConfig config_;
  MacroNumbers numbers_;
  ferro::FatigueModel fatigue_;
  int wordCount_ = 0;
  std::vector<std::uint32_t> store_;
  std::vector<std::uint32_t> cycles_;  ///< program/erase cycles per word
  int writes_ = 0;
  int reads_ = 0;
  double totalEnergy_ = 0.0;

  // Resilient mode only.
  MacroResilience resilience_;
  FaultInjector injector_;
  std::optional<SecdedCodec> codec_;
  ResilienceReport report_;
  int physicalWordCount_ = 0;
  std::vector<std::uint8_t> cellBits_;  ///< per-cell stored values
  std::map<int, int> remap_;            ///< logical address -> spare word
  int nextSpare_ = 0;
};

}  // namespace fefet::core
