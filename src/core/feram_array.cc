#include "core/feram_array.h"

#include <string>

#include "common/error.h"
#include "spice/mosfet_device.h"
#include "spice/passives.h"

namespace fefet::core {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

FeRamArray::FeRamArray(const FeRamArrayConfig& config) : config_(config) {
  FEFET_REQUIRE(config_.rows >= 1 && config_.cols >= 1,
                "FERAM array needs at least one cell");
  auto& n = netlist_;
  const auto& cc = config_.cell;
  for (int r = 0; r < config_.rows; ++r) {
    const std::string wl = "wl" + std::to_string(r);
    const std::string pl = "pl" + std::to_string(r);
    wlSources_.push_back(
        n.add<spice::VoltageSource>("V" + wl, n.node(wl), n.ground(), dc(0.0)));
    plSources_.push_back(
        n.add<spice::VoltageSource>("V" + pl, n.node(pl), n.ground(), dc(0.0)));
  }
  for (int c = 0; c < config_.cols; ++c) {
    const std::string bl = "bl" + std::to_string(c);
    blSources_.push_back(n.add<spice::VoltageSource>(
        "V" + bl, n.node(bl + "d"), n.ground(), dc(0.0)));
    blSwitches_.push_back(n.add<spice::TimedSwitch>(
        "S" + bl, n.node(bl + "d"), n.node(bl), dc(1.0), 50.0));
    n.add<spice::Capacitor>(
        "C" + bl, n.node(bl), n.ground(),
        cc.bitLineCap + config_.colWireCapPerCell * config_.rows);
  }
  const ferro::LandauKhalatnikov lk(cc.lk);
  const double pr = lk.remnantPolarization();
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      const std::string id =
          "cell" + std::to_string(r) + "_" + std::to_string(c);
      n.add<spice::MosfetDevice>(id + ":acc",
                                 n.node("bl" + std::to_string(c)),
                                 n.node("wl" + std::to_string(r)),
                                 n.node(id + ":x"), cc.accessMos,
                                 cc.accessWidth);
      cells_.push_back(n.add<spice::FeCapDevice>(
          id + ":fe", n.node(id + ":x"), n.node("pl" + std::to_string(r)),
          cc.lk, cc.feGeometry(), -pr));
    }
  }
  sim_ = std::make_unique<spice::Simulator>(netlist_);
  sim_->initializeUic();
}

void FeRamArray::setPattern(const std::vector<std::vector<bool>>& bits) {
  FEFET_REQUIRE(static_cast<int>(bits.size()) == config_.rows,
                "pattern row count mismatch");
  const ferro::LandauKhalatnikov lk(config_.cell.lk);
  const double pr = lk.remnantPolarization();
  for (int r = 0; r < config_.rows; ++r) {
    FEFET_REQUIRE(static_cast<int>(bits[r].size()) == config_.cols,
                  "pattern column count mismatch");
    for (int c = 0; c < config_.cols; ++c) {
      cells_[static_cast<std::size_t>(r * config_.cols + c)]->setPolarization(
          bits[r][c] ? pr : -pr);
    }
  }
  sim_->initializeUic();
}

bool FeRamArray::bitAt(int row, int col) const {
  return cells_[static_cast<std::size_t>(row * config_.cols + col)]
             ->polarization() > 0.0;
}

void FeRamArray::groundAll() {
  for (auto* s : wlSources_) s->setShape(dc(0.0));
  for (auto* s : plSources_) s->setShape(dc(0.0));
  for (std::size_t c = 0; c < blSources_.size(); ++c) {
    blSources_[c]->setShape(dc(0.0));
    blSwitches_[c]->setControl(dc(1.0));
  }
}

void FeRamArray::resetEnergies() {
  for (auto* s : wlSources_) s->resetEnergy();
  for (auto* s : plSources_) s->resetEnergy();
  for (auto* s : blSources_) s->resetEnergy();
}

double FeRamArray::collectEnergies() const {
  double e = 0.0;
  for (auto* s : wlSources_) e += s->energyDelivered();
  for (auto* s : plSources_) e += s->energyDelivered();
  for (auto* s : blSources_) e += s->energyDelivered();
  return e;
}

FeRamRowResult FeRamArray::driveRow(int row, const std::vector<bool>& bits,
                                    bool /*isWriteBack*/) {
  const auto& cc = config_.cell;
  const double edge = cc.edgeTime;
  const double phase = 700e-12;  // per-phase drive width
  groundAll();
  resetEnergies();
  // Phase A [lead .. lead+phase]: BL = V for the ones, PL = 0.
  // Phase B [lead+phase+gap ..]: PL = V, BLs of ones held high.
  const double lead = 2.0 * edge;
  const double gap = 4.0 * edge;
  const double wlSpan = lead + 2.0 * phase + gap + 6.0 * edge +
                        0.8 * cc.settleTime;
  wlSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, cc.wordLineBoost, edge, edge, wlSpan, edge));
  plSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, cc.vWrite, lead + phase + gap, edge, phase, edge));
  for (int c = 0; c < config_.cols; ++c) {
    if (bits[static_cast<std::size_t>(c)]) {
      blSources_[static_cast<std::size_t>(c)]->setShape(
          pulse(0.0, cc.vWrite, lead, edge, 2.0 * phase + gap, edge));
    }
  }
  spice::TransientOptions options;
  options.duration = wlSpan + 4.0 * edge + cc.settleTime;
  options.dtMax = options.duration / 200.0;
  sim_->runTransient(options, {});

  FeRamRowResult result;
  result.totalEnergy = collectEnergies();
  result.ok = true;
  for (int c = 0; c < config_.cols; ++c) {
    if (bitAt(row, c) != bits[static_cast<std::size_t>(c)]) result.ok = false;
  }
  return result;
}

FeRamRowResult FeRamArray::writeRow(int row,
                                    const std::vector<bool>& bits) {
  FEFET_REQUIRE(row >= 0 && row < config_.rows, "writeRow: row out of range");
  FEFET_REQUIRE(static_cast<int>(bits.size()) == config_.cols,
                "writeRow: bit count mismatch");
  return driveRow(row, bits, false);
}

FeRamRowResult FeRamArray::readRow(int row) {
  FEFET_REQUIRE(row >= 0 && row < config_.rows, "readRow: row out of range");
  const auto& cc = config_.cell;
  const double edge = cc.edgeTime;
  groundAll();
  resetEnergies();
  // Sense phase: BLs float, WL on, row plate pulses.
  const double t0 = 4.0 * edge;
  const double plWidth = 1.2e-9;
  const double senseAt = t0 + edge + 0.8 * plWidth;
  const double span = t0 + plWidth + 6.0 * edge;
  for (auto* sw : blSwitches_) {
    sw->setControl(pulse(1.0, 0.0, t0 - edge, 1e-12, span, 1e-12));
  }
  wlSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, cc.wordLineBoost, edge, edge, span, edge));
  plSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, cc.vWrite, t0, edge, plWidth, edge));

  std::vector<Probe> probes;
  for (int c = 0; c < config_.cols; ++c) {
    probes.push_back(Probe::v("bl" + std::to_string(c)));
  }
  spice::TransientOptions options;
  options.duration = span + cc.settleTime;
  options.dtMax = options.duration / 300.0;
  const auto tr = sim_->runTransient(options, probes);

  FeRamRowResult result;
  result.totalEnergy = collectEnergies();
  result.bitsRead.resize(static_cast<std::size_t>(config_.cols));
  for (int c = 0; c < config_.cols; ++c) {
    const double swing =
        tr.waveform.valueAt("v(bl" + std::to_string(c) + ")", senseAt);
    result.bitsRead[static_cast<std::size_t>(c)] =
        swing > cc.senseThreshold;
  }
  // Write-back the sensed data (the read flipped every stored '1').
  const auto restore = driveRow(row, result.bitsRead, true);
  result.totalEnergy += restore.totalEnergy;
  result.ok = restore.ok;
  return result;
}

FeRamRowResult FeRamArray::updateBit(int row, int col, bool value) {
  FEFET_REQUIRE(col >= 0 && col < config_.cols, "updateBit: col out of range");
  // Row-granular RMW: destructive read (with restore energy folded in),
  // then rewrite the row with the one bit changed.
  auto read = readRow(row);
  if (!read.ok) return read;
  read.bitsRead[static_cast<std::size_t>(col)] = value;
  const auto write = writeRow(row, read.bitsRead);
  FeRamRowResult result;
  result.ok = write.ok;
  result.bitsRead = read.bitsRead;
  result.totalEnergy = read.totalEnergy + write.totalEnergy;
  return result;
}

}  // namespace fefet::core
