#include "core/memory_array.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math.h"
#include "spice/passives.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

namespace {
std::string rowName(const std::string& base, int r) {
  return base + std::to_string(r);
}
}  // namespace

MemoryArray::MemoryArray(const ArrayConfig& config)
    : config_(config), injector_(config.faults) {
  FEFET_REQUIRE(config_.rows >= 1 && config_.cols >= 1,
                "array needs at least one cell");
  // Quasi-static state targets (same math as Cell2T).
  const auto stable = stableInternalVoltages(config_.fefet, 0.0);
  FEFET_REQUIRE(stable.size() >= 2, "array requires a nonvolatile FEFET");
  psiOff_ = stable.front();
  for (double s : stable) {
    if (std::abs(s) < std::abs(psiOff_)) psiOff_ = s;
  }
  psiOn_ = *std::max_element(stable.begin(), stable.end());
  const xtor::MosfetModel mos(config_.fefet.mos, config_.fefet.width);
  pOn_ = mos.gateChargeDensity(psiOn_);
  pOff_ = mos.gateChargeDensity(psiOff_);
  const auto allEq = math::findAllRoots(
      [&](double psi) { return gateVoltageOfInternal(config_.fefet, psi); },
      psiOff_ + 1e-6, psiOn_ - 1e-6, 4000);
  pSaddle_ = allEq.empty() ? 0.5 * (pOn_ + pOff_)
                           : mos.gateChargeDensity(allEq.front());

  auto& n = netlist_;
  for (int r = 0; r < config_.rows; ++r) {
    const auto ws = rowName("ws", r);
    const auto rs = rowName("rs", r);
    wsSources_.push_back(n.add<spice::VoltageSource>(
        "V" + ws, n.node(ws), n.ground(), dc(0.0)));
    rsSources_.push_back(n.add<spice::VoltageSource>(
        "V" + rs, n.node(rs), n.ground(), dc(0.0)));
    n.add<spice::Capacitor>("C" + ws, n.node(ws), n.ground(),
                            config_.rowWireCapPerCell * config_.cols);
    n.add<spice::Capacitor>("C" + rs, n.node(rs), n.ground(),
                            config_.rowWireCapPerCell * config_.cols);
  }
  for (int c = 0; c < config_.cols; ++c) {
    const auto wbl = rowName("wbl", c);
    const auto sl = rowName("sl", c);
    wblSources_.push_back(n.add<spice::VoltageSource>(
        "V" + wbl, n.node(wbl), n.ground(), dc(0.0)));
    slSources_.push_back(n.add<spice::VoltageSource>(
        "V" + sl, n.node(sl), n.ground(), dc(0.0)));
    n.add<spice::Capacitor>("C" + wbl, n.node(wbl), n.ground(),
                            config_.colWireCapPerCell * config_.rows);
    n.add<spice::Capacitor>("C" + sl, n.node(sl), n.ground(),
                            config_.colWireCapPerCell * config_.rows);
  }
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      std::ostringstream id;
      id << "cell" << r << "_" << c;
      const std::string gate = id.str() + ":g";
      n.add<spice::MosfetDevice>(id.str() + ":acc",
                                 n.node(rowName("wbl", c)),
                                 n.node(rowName("ws", r)), n.node(gate),
                                 config_.accessMos, config_.accessWidth);
      const CellFault fault = injector_.cellFault(r, c);
      cellFaults_.push_back(fault);
      // Weak cells are instantiated with collapsed device parameters, so
      // their degraded window is physical, not bookkept.
      cells_.push_back(attachFefet(n, id.str(), gate, rowName("rs", r),
                                   rowName("sl", c),
                                   injector_.apply(config_.fefet, fault),
                                   pOff_));
    }
  }
  sim_ = std::make_unique<spice::Simulator>(netlist_);
  std::vector<std::vector<bool>> zeros(
      static_cast<std::size_t>(config_.rows),
      std::vector<bool>(static_cast<std::size_t>(config_.cols), false));
  setPattern(zeros);
}

void MemoryArray::setPattern(const std::vector<std::vector<bool>>& bits) {
  FEFET_REQUIRE(static_cast<int>(bits.size()) == config_.rows,
                "pattern row count mismatch");
  for (int r = 0; r < config_.rows; ++r) {
    FEFET_REQUIRE(static_cast<int>(bits[r].size()) == config_.cols,
                  "pattern column count mismatch");
    for (int c = 0; c < config_.cols; ++c) {
      bool one = bits[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
      const CellFault fault = faultAt(r, c);
      if (fault == CellFault::kStuckAtZero) one = false;
      if (fault == CellFault::kStuckAtOne) one = true;
      cell(r, c).fe->setPolarization(one ? pOn_ : pOff_);
      sim_->setNodeVoltage(netlist_.nodeName(cell(r, c).internalNode),
                           one ? psiOn_ : psiOff_);
    }
  }
  sim_->initializeUic();
}

CellFault MemoryArray::faultAt(int row, int col) const {
  if (cellFaults_.empty()) return CellFault::kNone;
  return cellFaults_[static_cast<std::size_t>(row * config_.cols + col)];
}

bool MemoryArray::enforceFaultState(int revertRow, int revertCol,
                                    double revertP) {
  bool changed = false;
  const auto pin = [&](int r, int c, double p) {
    cell(r, c).fe->setPolarization(p);
    sim_->setNodeVoltage(netlist_.nodeName(cell(r, c).internalNode),
                         p > pSaddle_ ? psiOn_ : psiOff_);
    changed = true;
  };
  if (revertRow >= 0) pin(revertRow, revertCol, revertP);
  if (injector_.spec().anyCellFaults()) {
    for (int r = 0; r < config_.rows; ++r) {
      for (int c = 0; c < config_.cols; ++c) {
        const CellFault fault = faultAt(r, c);
        if (fault == CellFault::kStuckAtZero && bitAt(r, c)) pin(r, c, pOff_);
        if (fault == CellFault::kStuckAtOne && !bitAt(r, c)) pin(r, c, pOn_);
      }
    }
  }
  // Re-seeding the solver keeps the aux polarization unknowns and device
  // histories consistent with the overridden committed state; untouched
  // cells keep their exact committed values.
  if (changed) sim_->initializeUic();
  return changed;
}

bool MemoryArray::bitAt(int row, int col) const {
  return cell(row, col).fe->polarization() > pSaddle_;
}

std::vector<std::vector<double>> MemoryArray::polarizations() const {
  std::vector<std::vector<double>> out(static_cast<std::size_t>(config_.rows));
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      out[static_cast<std::size_t>(r)].push_back(cell(r, c).fe->polarization());
    }
  }
  return out;
}

void MemoryArray::groundAll() {
  for (auto* s : wsSources_) s->setShape(dc(0.0));
  for (auto* s : rsSources_) s->setShape(dc(0.0));
  for (auto* s : wblSources_) s->setShape(dc(0.0));
  for (auto* s : slSources_) s->setShape(dc(0.0));
}

ArrayOpResult MemoryArray::runOp(double duration, int accessedRow,
                                 int accessedCol, bool isRead) {
  const auto before = polarizations();
  for (auto* s : wsSources_) s->resetEnergy();
  for (auto* s : rsSources_) s->resetEnergy();
  for (auto* s : wblSources_) s->resetEnergy();
  for (auto* s : slSources_) s->resetEnergy();

  spice::TransientOptions options;
  options.duration = duration;
  options.dtMax = duration / 150.0;
  options.dtInitial = std::min(1e-12, options.dtMax);

  std::vector<Probe> probes;
  for (int c = 0; c < config_.cols; ++c) {
    probes.push_back(Probe::i("Vsl" + std::to_string(c)));
  }
  for (int r = 0; r < config_.rows; ++r) {
    probes.push_back(Probe::i("Vrs" + std::to_string(r)));
  }
  auto transient = sim_->runTransient(options, probes);

  ArrayOpResult result;
  const auto after = polarizations();
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      if (r == accessedRow && c == accessedCol) continue;
      const double dP = std::abs(after[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -
                                 before[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]);
      result.maxUnaccessedDisturb = std::max(result.maxUnaccessedDisturb, dP);
    }
  }
  // Sneak currents.  During a read the whole accessed row legitimately
  // conducts into its column sense lines (row-parallel read), so sneak
  // paths are currents on UNACCESSED rows' read-select lines; during
  // writes and holds no sense line should carry anything at all.
  if (!isRead) {
    for (int c = 0; c < config_.cols; ++c) {
      const auto& col =
          transient.waveform.column("i(Vsl" + std::to_string(c) + ")");
      for (double i : col) {
        result.maxSneakCurrent = std::max(result.maxSneakCurrent, std::abs(i));
      }
    }
  }
  for (int r = 0; r < config_.rows; ++r) {
    if (isRead && r == accessedRow) continue;
    const auto& row =
        transient.waveform.column("i(Vrs" + std::to_string(r) + ")");
    for (double i : row) {
      result.maxSneakCurrent = std::max(result.maxSneakCurrent, std::abs(i));
    }
  }
  if (isRead && accessedRow >= 0) {
    // Accessed column current plateau (sampled mid-operation); the SL
    // source absorbs the cell current, so negate its delivered current.
    const auto t = transient.waveform.time();
    const std::string label = "i(Vsl" + std::to_string(accessedCol) + ")";
    result.readCurrent =
        -transient.waveform.valueAt(label, 0.6 * t.back());
    result.bitRead = result.readCurrent > config_.readCurrentThreshold;
  }
  for (auto* s : wsSources_) result.totalEnergy += s->energyDelivered();
  for (auto* s : rsSources_) result.totalEnergy += s->energyDelivered();
  for (auto* s : wblSources_) result.totalEnergy += s->energyDelivered();
  for (auto* s : slSources_) result.totalEnergy += s->energyDelivered();
  result.waveform = std::move(transient.waveform);
  return result;
}

ArrayOpResult MemoryArray::writeBit(int row, int col, bool one) {
  return writeBit(row, col, one, WriteDrive{});
}

ArrayOpResult MemoryArray::writeBit(int row, int col, bool one,
                                    const WriteDrive& drive) {
  FEFET_REQUIRE(row >= 0 && row < config_.rows && col >= 0 &&
                    col < config_.cols,
                "writeBit: cell index out of range");
  FEFET_REQUIRE(drive.voltageScale >= 1.0 && drive.pulseScale >= 1.0,
                "write drive scales must be >= 1");
  groundAll();
  const double edge = config_.edgeTime;
  const double width = config_.writePulse * drive.pulseScale;
  const double lead = 2.0 * edge;
  // Table 1 write biases: accessed WS boosted, unaccessed WS at -VDD.
  // The select boost scales with the bit-line drive so the access
  // transistor keeps passing the escalated level.
  for (int r = 0; r < config_.rows; ++r) {
    if (r == row) {
      wsSources_[static_cast<std::size_t>(r)]->setShape(
          pulse(0.0, config_.levels.writeBoost * drive.voltageScale, edge,
                edge, width + 4.0 * edge + 0.8 * config_.settleTime, edge));
    } else if (config_.negativeUnaccessedSelect) {
      wsSources_[static_cast<std::size_t>(r)]->setShape(
          pulse(0.0, -config_.levels.vdd, edge, edge,
                width + 4.0 * edge + 0.8 * config_.settleTime, edge));
    } else {
      wsSources_[static_cast<std::size_t>(r)]->setShape(dc(0.0));
    }
  }
  const double vw = config_.levels.vWrite * drive.voltageScale;
  wblSources_[static_cast<std::size_t>(col)]->setShape(
      pulse(0.0, one ? vw : -vw, lead + edge, edge, width, edge));
  const double duration = lead + width + 6.0 * edge + config_.settleTime;

  const double pBefore = cell(row, col).fe->polarization();
  auto result = runOp(duration, row, col, /*isRead=*/false);

  // Fault events: a transient write failure reverts the accessed cell to
  // its pre-write state; stuck cells are re-pinned regardless.
  int revertRow = -1, revertCol = -1;
  double revertP = 0.0;
  if (injector_.spec().writeFailureProbability > 0.0 &&
      injector_.nextWriteFails(drive.voltageScale)) {
    revertRow = row;
    revertCol = col;
    revertP = pBefore;
    result.faultInjected = true;
  }
  if (enforceFaultState(revertRow, revertCol, revertP) &&
      faultAt(row, col) != CellFault::kNone) {
    result.faultInjected = true;
  }
  result.ok = (bitAt(row, col) == one);
  return result;
}

ArrayOpResult MemoryArray::readBit(int row, int col) {
  FEFET_REQUIRE(row >= 0 && row < config_.rows && col >= 0 &&
                    col < config_.cols,
                "readBit: cell index out of range");
  groundAll();
  const double edge = config_.edgeTime;
  const double duration = 2e-9;
  // Accessed row: WS = VDD (gate pinned to the grounded WBL), RS = V_read.
  wsSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, config_.levels.vdd, edge, edge, duration - 6.0 * edge,
            edge));
  rsSources_[static_cast<std::size_t>(row)]->setShape(
      pulse(0.0, config_.levels.vRead, 3.0 * edge, edge,
            duration - 10.0 * edge, edge));
  const bool expected = bitAt(row, col);
  auto result = runOp(duration, row, col, /*isRead=*/true);
  // Non-destructive read can still nudge a stuck cell's committed state in
  // simulation; re-pin so subsequent classification stays faulted.
  enforceFaultState(-1, -1, 0.0);
  result.ok = (result.bitRead == expected) && (bitAt(row, col) == expected);
  return result;
}

ArrayOpResult MemoryArray::hold(double duration) {
  groundAll();
  auto result = runOp(duration, -1, -1, /*isRead=*/false);
  // Retention / depolarization decay: stored polarization relaxes toward
  // the basin boundary, faster for weak cells; stuck cells stay pinned.
  if (injector_.spec().retentionDecayPerSecond > 0.0) {
    for (int r = 0; r < config_.rows; ++r) {
      for (int c = 0; c < config_.cols; ++c) {
        const CellFault fault = faultAt(r, c);
        if (fault == CellFault::kStuckAtZero ||
            fault == CellFault::kStuckAtOne) {
          continue;
        }
        const double factor = injector_.retentionFactor(duration, fault);
        const double p = cell(r, c).fe->polarization();
        cell(r, c).fe->setPolarization(pSaddle_ + (p - pSaddle_) * factor);
      }
    }
    sim_->initializeUic();
    result.faultInjected = true;
  }
  enforceFaultState(-1, -1, 0.0);
  result.ok = true;
  return result;
}

}  // namespace fefet::core
