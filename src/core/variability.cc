#include "core/variability.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "sim/sweep_engine.h"

namespace fefet::core {

FefetParams perturbDevice(const FefetParams& nominal,
                          const VariationSpec& spec, stats::Rng& rng) {
  FefetParams p = nominal;
  p.mos.vt0 = nominal.mos.vt0 + rng.normal(0.0, spec.vtSigma);
  p.feThickness =
      nominal.feThickness *
      (1.0 + rng.normal(0.0, spec.feThicknessSigmaRel));
  p.width = nominal.width * (1.0 + rng.normal(0.0, spec.widthSigmaRel));
  p.lk.alpha = nominal.lk.alpha * (1.0 + rng.normal(0.0, spec.alphaSigmaRel));
  return p;
}

DeviceMonteCarlo runDeviceMonteCarlo(const FefetParams& nominal,
                                     const VariationSpec& spec, int samples,
                                     double vWrite, double vRead) {
  FEFET_REQUIRE(samples >= 2, "monte carlo needs at least 2 samples");
  stats::Rng rng(spec.seed);
  DeviceMonteCarlo mc;
  mc.samples = samples;
  std::vector<double> widths, ratios;
  mc.upSwitchMin = 1e9;
  mc.downSwitchMax = -1e9;
  for (int i = 0; i < samples; ++i) {
    const auto device = perturbDevice(nominal, spec, rng);
    const auto window = analyzeHysteresis(device);
    if (!window.nonvolatile) continue;
    ++mc.nonvolatileCount;
    widths.push_back(window.width());
    mc.upSwitchMin = std::min(mc.upSwitchMin, window.upSwitchVoltage);
    mc.downSwitchMax = std::max(mc.downSwitchMax, window.downSwitchVoltage);
    const bool writable = (vWrite > window.upSwitchVoltage) &&
                          (-vWrite < window.downSwitchVoltage);
    if (writable) ++mc.writableCount;
    ratios.push_back(std::log10(distinguishability(device, vRead)));
  }
  if (!widths.empty()) {
    mc.windowWidthMean = stats::mean(widths);
    if (widths.size() >= 2) mc.windowWidthSigma = stats::stddev(widths);
    mc.log10RatioMean = stats::mean(ratios);
    mc.log10RatioMin = stats::minOf(ratios);
  }
  return mc;
}

DeviceMonteCarlo mergeMonteCarlo(std::span<const DeviceMonteCarlo> parts) {
  DeviceMonteCarlo out;
  out.upSwitchMin = 1e9;
  out.downSwitchMax = -1e9;
  stats::Accumulator widths;
  stats::Accumulator ratios;
  for (const auto& part : parts) {
    out.samples += part.samples;
    out.nonvolatileCount += part.nonvolatileCount;
    out.writableCount += part.writableCount;
    out.upSwitchMin = std::min(out.upSwitchMin, part.upSwitchMin);
    out.downSwitchMax = std::max(out.downSwitchMax, part.downSwitchMax);
    if (part.nonvolatileCount == 0) continue;
    const double n = static_cast<double>(part.nonvolatileCount);
    // m2 = sigma^2 * (n - 1); exact inverse of the summary's sigma, and 0
    // for single-sample parts where the summary left sigma at 0.
    const double widthM2 =
        part.windowWidthSigma * part.windowWidthSigma * (n - 1.0);
    // Width min/max are not tracked in the summary; feed the mean (any
    // in-range value works — the merged min/max are never read here).
    widths.merge(stats::Accumulator::fromMoments(
        part.nonvolatileCount, part.windowWidthMean, widthM2,
        part.windowWidthMean, part.windowWidthMean));
    ratios.merge(stats::Accumulator::fromMoments(
        part.nonvolatileCount, part.log10RatioMean, 0.0, part.log10RatioMin,
        part.log10RatioMean));
  }
  if (widths.count() > 0) {
    out.windowWidthMean = widths.mean();
    if (widths.count() >= 2) out.windowWidthSigma = widths.stddev();
    out.log10RatioMean = ratios.mean();
    out.log10RatioMin = ratios.minimum();
  }
  return out;
}

DeviceMonteCarlo runDeviceMonteCarloParallel(const FefetParams& nominal,
                                             const VariationSpec& spec,
                                             int samples, int threads,
                                             double vWrite, double vRead,
                                             int chunkSamples) {
  FEFET_REQUIRE(samples >= 2, "monte carlo needs at least 2 samples");
  FEFET_REQUIRE(chunkSamples >= 2, "monte carlo chunks need >= 2 samples");
  // Fixed chunking, independent of thread count: chunk sizes (and therefore
  // every chunk's RNG stream) depend only on (samples, chunkSamples).
  std::vector<int> chunkSizes;
  int remaining = samples;
  while (remaining > 0) {
    int take = std::min(chunkSamples, remaining);
    // runDeviceMonteCarlo rejects single-sample runs; absorb a would-be
    // trailing 1-sample chunk into this one.
    if (remaining - take == 1) ++take;
    chunkSizes.push_back(take);
    remaining -= take;
  }
  sim::SweepOptions options;
  options.threads = threads;
  options.baseSeed = spec.seed;
  sim::SweepEngine engine(options);
  const auto parts = engine.run(
      chunkSizes, [&](int count, const sim::SweepContext& ctx) {
        VariationSpec chunkSpec = spec;
        chunkSpec.seed = ctx.seed;
        return runDeviceMonteCarlo(nominal, chunkSpec, count, vWrite, vRead);
      });
  return mergeMonteCarlo(parts);
}

WriteYield runWriteYield(const Cell2TConfig& nominal,
                         const VariationSpec& spec, int samples,
                         double vWrite, double pulseWidth) {
  FEFET_REQUIRE(samples >= 1, "write yield needs at least one sample");
  stats::Rng rng(spec.seed);
  WriteYield result;
  result.samples = samples;
  for (int i = 0; i < samples; ++i) {
    Cell2TConfig cfg = nominal;
    cfg.fefet = perturbDevice(nominal.fefet, spec, rng);
    // The access transistor varies independently.
    cfg.accessMos.vt0 = nominal.accessMos.vt0 + rng.normal(0.0, spec.vtSigma);
    try {
      Cell2T cell(cfg);
      cell.setStoredBit(false);
      const bool one = cell.write(true, pulseWidth, vWrite).bitAfter;
      const bool zero = !cell.write(false, pulseWidth, vWrite).bitAfter;
      if (one && zero) ++result.passes;
    } catch (const Error&) {
      // Device fell out of the nonvolatile regime: a yield loss.
    }
  }
  return result;
}

WriteYield runWriteYieldParallel(const Cell2TConfig& nominal,
                                 const VariationSpec& spec, int samples,
                                 double vWrite, double pulseWidth,
                                 int threads) {
  FEFET_REQUIRE(samples >= 1, "write yield needs at least one sample");
  std::vector<int> points(static_cast<std::size_t>(samples), 1);
  sim::SweepOptions options;
  options.threads = threads;
  options.baseSeed = spec.seed;
  sim::SweepEngine engine(options);
  const auto parts = engine.run(
      points, [&](int count, const sim::SweepContext& ctx) {
        VariationSpec sampleSpec = spec;
        sampleSpec.seed = ctx.seed;
        return runWriteYield(nominal, sampleSpec, count, vWrite, pulseWidth);
      });
  WriteYield result;
  for (const auto& part : parts) {
    result.samples += part.samples;
    result.passes += part.passes;
  }
  return result;
}

std::vector<CornerResult> runCorners(const FefetParams& nominal,
                                     double vRead) {
  std::vector<CornerResult> out;
  for (Corner corner : {Corner::kTypical, Corner::kFast, Corner::kSlow}) {
    FefetParams p = nominal;
    switch (corner) {
      case Corner::kTypical:
        break;
      case Corner::kFast:
        p.mos.vt0 = nominal.mos.vt0 - 0.03;
        p.mos.mobility = nominal.mos.mobility * 1.10;
        p.feThickness = nominal.feThickness * 0.98;
        break;
      case Corner::kSlow:
        p.mos.vt0 = nominal.mos.vt0 + 0.03;
        p.mos.mobility = nominal.mos.mobility * 0.90;
        p.feThickness = nominal.feThickness * 1.02;
        break;
    }
    CornerResult r;
    r.corner = corner;
    const auto window = analyzeHysteresis(p);
    r.nonvolatile = window.nonvolatile;
    r.upSwitchVoltage = window.upSwitchVoltage;
    r.downSwitchVoltage = window.downSwitchVoltage;
    if (window.nonvolatile) r.onOffRatio = distinguishability(p, vRead);
    out.push_back(r);
  }
  return out;
}

}  // namespace fefet::core
