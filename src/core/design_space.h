// design_space.h — FE-thickness design-space exploration (paper §3) and
// the retention study (paper §6.2.4).
#pragma once

#include <vector>

#include "core/fefet.h"
#include "ferro/retention.h"

namespace fefet::core {

/// One thickness sample of the design space.
struct DesignPoint {
  double feThickness = 0.0;
  bool hysteretic = false;
  bool nonvolatile = false;
  double upSwitchVoltage = 0.0;    ///< V_G destabilizing the OFF state
  double downSwitchVoltage = 0.0;  ///< V_G destabilizing the ON state
  double windowWidth = 0.0;
  double onOffRatio = 0.0;         ///< 0 unless nonvolatile
  double standaloneCoerciveVoltage = 0.0;  ///< t_FE * E_c of a bare film
};

/// Characterize a single thickness sample — the per-point body of
/// sweepThickness, exposed so sweeps can fan points across threads.
DesignPoint characterizeThickness(const FefetParams& base, double thickness,
                                  double vread = 0.40);

/// Sweep T_FE and characterize each point (Fig. 4 context + §3 narrative).
std::vector<DesignPoint> sweepThickness(const FefetParams& base,
                                        const std::vector<double>& thicknesses,
                                        double vread = 0.40);

/// sweepThickness with the points fanned across a sim::SweepEngine pool
/// (`threads` = 0 uses the default count).  Each point is a pure function
/// of its thickness, so results are identical to the serial sweep for any
/// thread count.
std::vector<DesignPoint> sweepThicknessParallel(
    const FefetParams& base, const std::vector<double>& thicknesses,
    double vread = 0.40, int threads = 0);

/// The §3 design recommendation: smallest T_FE that is nonvolatile with at
/// least `voltageMargin` between the write level and both window edges.
/// Returns the chosen thickness (paper: 2.25 nm at 0.68 V write).
double recommendThickness(const FefetParams& base, double vWrite,
                          double voltageMargin, double tMin = 1.8e-9,
                          double tMax = 3.0e-9, int samples = 25);

/// Retention comparison of §6.2.4.  Device-level coercive voltage (half
/// the hysteresis window for the FEFET, the film coercive voltage for the
/// FERAM capacitor) enters the single-domain exponent.
struct RetentionComparison {
  double feramLog10Seconds = 0.0;   ///< reference design (10-year target)
  double fefetLog10Seconds = 0.0;   ///< FEFET at W = 65 nm
  double fefetWidthForParity = 0.0; ///< FEFET width matching FERAM retention
  double activationEfficiency = 0.0;
};

RetentionComparison compareRetention(const FefetParams& fefetParams,
                                     double feramCoerciveVoltage,
                                     double feramArea,
                                     double targetYears = 10.0);

}  // namespace fefet::core
