#include "core/resilience.h"

#include <sstream>

namespace fefet::core {

std::string ResilienceReport::summary() const {
  std::ostringstream os;
  os << wordWrites << " writes / " << wordReads << " reads: "
     << writeRetries << " retries, " << correctedBits << " ECC-corrected, "
     << detectedDoubleBits << " double-detected, " << remappedRows
     << " rows remapped, " << sparePoolExhausted << " spare-exhausted, "
     << uncorrectedBits << " uncorrected";
  return os.str();
}

}  // namespace fefet::core
