// macro_energy.h — array-macro energy reconstruction (paper Table 3).
//
// The paper reports NVM *macro* parameters (per 32-bit word access,
// drivers included): FEFET 0.68 V / 0.55 ns / 4.82 pJ write / 0.28 pJ read
// vs FERAM 1.64 V / 0.55 ns / 15.0 pJ write / 15.5 pJ read.  This model
// rebuilds those numbers from first principles:
//
//   * wire capacitance  = line length (layout module) x 0.2 fF/um (Table 2)
//     + per-cell gate / junction / FE loading from the device models,
//   * cell switching charge from the calibrated cells,
//   * the Table 1 biasing overheads (select boost, negative unaccessed
//     rows; their cost is amortized over a write burst, as in the NVP
//     backup use-case where whole words stream row by row),
//   * FERAM's two-phase plate pulsing and destructive-read restore,
//   * a common peripheral (decoder/driver) overhead factor,
//   * FEFET reads are current-limited by the read driver (weak RS driver),
//     which is what makes non-destructive current sensing cheap.
//
// The two calibration knobs shared by BOTH technologies (peripheral
// overhead, burst amortization) are fitted once against Table 3; every
// FEFET-vs-FERAM *ratio* then follows from the physics.
#pragma once

#include <string>

#include "layout/layout.h"

namespace fefet::core {

struct MacroConfig {
  int rows = 256;
  int cols = 256;
  int wordBits = 32;
  double metalCapPerLength = 0.2e-15 / 1e-6;  ///< Table 2 [F/m]

  // FEFET side.
  double vddFefet = 0.68;
  double writeBoost = 1.36;
  double fefetCellWriteEnergy = 1.0e-15;  ///< simulated 2T cell write [J]
  double fefetGateLoadPerCell = 0.32e-15; ///< access-gate C on the WS line
  double fefetJunctionPerCell = 0.0195e-15;  ///< shared contacts halve it
  double fefetReadCurrent = 8e-6;   ///< current-limited read level [A]
  double fefetReadWindow = 2.2e-9;  ///< sense window per read [s]
  double vRead = 0.40;

  // FERAM side.
  double vddFeram = 1.64;
  double wordLineBoost = 2.4;
  double feramCellWriteEnergy = 4.5e-15;  ///< ~2 P_r A V switching charge
  double feramGateLoadPerCell = 0.365e-15;
  double feramJunctionPerCell = 0.0195e-15;
  double feramFeCapLinearPerCell = 0.55e-15;  ///< background-dielectric FE load on PL
  int feramPlatePhases = 2;  ///< bipolar plate-pulse write scheme
  double feramSenseEnergy = 0.5e-12;  ///< SA + reference per word read [J]

  // Shared calibration knobs.
  double peripheralOverhead = 3.2;  ///< decoder/driver multiplier
  double writeBurstLength = 12.75;  ///< words per write-mode entry

  layout::DesignRules rules;
  double transistorWidth = 65e-9;
};

/// Per-access macro numbers for one technology.
struct MacroNumbers {
  double bitLineVoltage = 0.0;
  double writeTime = 0.0;       ///< from the calibrated cells [s]
  double writeEnergy = 0.0;     ///< per word [J]
  double readEnergy = 0.0;      ///< per word [J]
  std::string breakdown;
};

class MacroEnergyModel {
 public:
  explicit MacroEnergyModel(const MacroConfig& config = {});

  MacroNumbers fefet() const;
  MacroNumbers feram() const;

  /// Paper-style comparison: (1 - fefet/feram) for write energy, and the
  /// write-voltage reduction (58.5% / 67.7% in the paper's abstract).
  double writeEnergySavings() const;
  double writeVoltageReduction() const;

  const MacroConfig& config() const { return config_; }

 private:
  MacroConfig config_;
};

}  // namespace fefet::core
