// memory_controller.h — a word-level controller on top of the
// circuit-level MemoryArray: sequences per-bit writes across a row,
// verifies after write (re-reads and retries failed bits), and keeps
// operation/energy statistics.  This is the bridge between the
// transistor-level array and the word-level NvmMacro abstraction — on
// small arrays the two can be cross-checked bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_array.h"

namespace fefet::core {

struct ControllerStats {
  int wordWrites = 0;
  int wordReads = 0;
  int bitRetries = 0;        ///< verify-after-write retries issued
  int uncorrectable = 0;     ///< bits that failed even after retries
  double totalEnergy = 0.0;  ///< line-driver energy across all ops [J]
};

class MemoryController {
 public:
  /// The controller owns the array.  Word `w` of row `r` occupies columns
  /// [w*width, (w+1)*width).
  MemoryController(const ArrayConfig& config, int wordWidth,
                   int maxRetries = 2);

  int rows() const { return array_.rows(); }
  int wordsPerRow() const { return array_.cols() / wordWidth_; }
  int wordWidth() const { return wordWidth_; }

  /// Write a word with verify-after-write; returns true when every bit
  /// landed (possibly after retries).
  bool writeWord(int row, int word, std::uint32_t value);

  /// Read a word by per-bit current sensing.
  std::uint32_t readWord(int row, int word);

  const ControllerStats& stats() const { return stats_; }
  MemoryArray& array() { return array_; }

 private:
  MemoryArray array_;
  int wordWidth_;
  int maxRetries_;
  ControllerStats stats_;
};

}  // namespace fefet::core
