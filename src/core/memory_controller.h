// memory_controller.h — a word-level controller on top of the
// circuit-level MemoryArray: sequences per-bit writes across a row,
// verifies after write (re-reads and retries failed bits with escalated
// drive), protects words with SECDED ECC, remaps bad rows to spares, and
// keeps operation/energy statistics.  This is the bridge between the
// transistor-level array and the word-level NvmMacro abstraction — on
// small arrays the two can be cross-checked bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/ecc.h"
#include "core/memory_array.h"
#include "core/resilience.h"

namespace fefet::core {

struct ControllerStats {
  int wordWrites = 0;
  int wordReads = 0;
  int bitRetries = 0;        ///< verify-after-write retries issued
  int uncorrectable = 0;     ///< bits that failed even after retries
  double totalEnergy = 0.0;  ///< line-driver energy across all ops [J]
};

/// Resilience knobs of the word path.
struct ControllerConfig {
  int wordWidth = 8;   ///< data bits per word (1..32)
  RetryPolicy retry;
  /// Store SECDED check bits in extra columns and correct on read.
  bool eccEnabled = false;
  /// Rows at the top of the array reserved as remap spares; logical
  /// addresses cover rows() - spareRows.
  int spareRows = 0;
};

class MemoryController {
 public:
  /// The controller owns the array.  Word `w` of row `r` occupies columns
  /// [w*width, (w+1)*width) — plus the check-bit columns with ECC on.
  MemoryController(const ArrayConfig& config, int wordWidth,
                   int maxRetries = 2);
  MemoryController(const ArrayConfig& config,
                   const ControllerConfig& controller);

  /// Logical (remappable) rows.
  int rows() const { return array_.rows() - controller_.spareRows; }
  int wordsPerRow() const { return array_.cols() / bitsPerWord(); }
  int wordWidth() const { return controller_.wordWidth; }
  /// Stored bits per word: data plus check bits when ECC is on.
  int bitsPerWord() const;

  /// Write a word with verify-after-write and drive escalation; returns
  /// true when every bit landed (possibly after retries / a row remap).
  bool writeWord(int row, int word, std::uint32_t value);

  /// Read a word by per-bit current sensing (ECC-corrected when enabled).
  std::uint32_t readWord(int row, int word);

  const ControllerStats& stats() const { return stats_; }
  const ResilienceReport& report() const { return report_; }
  MemoryArray& array() { return array_; }

 private:
  /// Physical row after remapping.
  int physicalRow(int row) const;
  /// Write one bit with the escalation ladder; true on verified success.
  bool writeBitWithRetry(int physRow, int col, bool target);
  /// Try to migrate a failing row to a spare; returns the new physical
  /// row, or nullopt when no spare absorbed it.
  std::optional<int> remapRow(int logicalRow, int failedPhysRow);

  MemoryArray array_;
  ControllerConfig controller_;
  std::optional<SecdedCodec> codec_;
  ControllerStats stats_;
  ResilienceReport report_;
  std::map<int, int> remap_;   ///< logical row -> spare physical row
  int nextSpare_ = 0;          ///< spares handed out so far
};

}  // namespace fefet::core
