#include "core/ecc.h"

#include "common/error.h"

namespace fefet::core {

namespace {
bool isPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int parityOf64(std::uint64_t v) {
  v ^= v >> 32;
  v ^= v >> 16;
  v ^= v >> 8;
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return static_cast<int>(v & 1u);
}
}  // namespace

SecdedCodec::SecdedCodec(int dataBits) : dataBits_(dataBits) {
  FEFET_REQUIRE(dataBits >= 1 && dataBits <= 64,
                "SECDED data width must be 1..64 bits");
  checkBits_ = 0;
  while ((1 << checkBits_) < dataBits_ + checkBits_ + 1) ++checkBits_;

  const int n = dataBits_ + checkBits_;
  positionOfDataBit_.reserve(static_cast<std::size_t>(dataBits_));
  dataBitOfPosition_.assign(static_cast<std::size_t>(n) + 1, -1);
  int bit = 0;
  for (int pos = 1; pos <= n && bit < dataBits_; ++pos) {
    if (isPowerOfTwo(pos)) continue;  // check-bit slot
    positionOfDataBit_.push_back(pos);
    dataBitOfPosition_[static_cast<std::size_t>(pos)] = bit++;
  }
}

std::uint16_t SecdedCodec::encode(std::uint64_t data) const {
  std::uint16_t parity = 0;
  for (int c = 0; c < checkBits_; ++c) {
    std::uint64_t covered = 0;
    for (int b = 0; b < dataBits_; ++b) {
      if (positionOfDataBit_[static_cast<std::size_t>(b)] & (1 << c)) {
        covered ^= (data >> b) & 1u;
      }
    }
    parity |= static_cast<std::uint16_t>((covered & 1u) << c);
  }
  // Overall parity makes the full codeword (data + checks + itself) even.
  const int overall =
      parityOf64(data) ^ parityOf64(static_cast<std::uint64_t>(parity));
  parity |= static_cast<std::uint16_t>(overall << checkBits_);
  return parity;
}

EccDecode SecdedCodec::decode(std::uint64_t data, std::uint16_t parity) const {
  EccDecode out;
  out.data = data;

  int syndrome = 0;
  for (int c = 0; c < checkBits_; ++c) {
    int covered = (parity >> c) & 1;
    for (int b = 0; b < dataBits_; ++b) {
      if (positionOfDataBit_[static_cast<std::size_t>(b)] & (1 << c)) {
        covered ^= static_cast<int>((data >> b) & 1u);
      }
    }
    if (covered) syndrome |= 1 << c;
  }
  const int overallError =
      parityOf64(data) ^ parityOf64(static_cast<std::uint64_t>(parity));

  if (syndrome == 0 && overallError == 0) return out;  // kClean

  if (overallError) {
    // Odd number of flips across the codeword: assume exactly one.
    out.status = EccStatus::kCorrectedSingle;
    if (syndrome == 0) {
      out.correctedBit = dataBits_ + checkBits_;  // the overall parity bit
    } else if (syndrome <= dataBits_ + checkBits_ && isPowerOfTwo(syndrome)) {
      int c = 0;
      while ((1 << c) != syndrome) ++c;
      out.correctedBit = dataBits_ + c;  // a Hamming check bit
    } else if (syndrome <= dataBits_ + checkBits_ &&
               dataBitOfPosition_[static_cast<std::size_t>(syndrome)] >= 0) {
      const int b = dataBitOfPosition_[static_cast<std::size_t>(syndrome)];
      out.data ^= std::uint64_t{1} << b;
      out.correctedBit = b;
    } else {
      // Syndrome points outside the codeword: more than two flips.
      out.status = EccStatus::kDetectedDouble;
      out.correctedBit = -1;
    }
    return out;
  }

  out.status = EccStatus::kDetectedDouble;
  return out;
}

}  // namespace fefet::core
