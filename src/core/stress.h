// stress.h — systematic disturb-stress patterns on the FEFET array.
//
// The paper argues its bias scheme makes unaccessed cells disturb-free;
// single operations confirm tiny polarization drift, but the engineering
// question is *accumulation*: does hammering one row/column/bit thousands
// of operation-equivalents walk a neighbour across the basin boundary?
// This module runs the classic stress patterns and tracks per-cell drift
// against the stored pattern.
#pragma once

#include <string>
#include <vector>

#include "core/memory_array.h"

namespace fefet::core {

enum class StressPattern {
  kColumnHammer,       ///< alternating writes to (0, 0); victims share col 0
  kRowHammer,          ///< alternating writes across row 0; victims in row 1
  kReadHammer,         ///< repeated reads of (0, 0)
  kCheckerboardToggle  ///< rewrite the full checkerboard repeatedly
};

std::string toString(StressPattern pattern);

struct StressReport {
  StressPattern pattern;
  int operations = 0;        ///< array operations issued
  bool statesIntact = true;  ///< every victim still holds its bit
  double maxDrift = 0.0;     ///< worst |P - P_initial| over victims [C/m^2]
  double meanDrift = 0.0;
  /// Worst drift normalized to the ON/OFF separation (1.0 = flipped).
  double maxDriftFraction = 0.0;
};

/// Run `cycles` iterations of the pattern on a fresh array and report the
/// victim-cell statistics.  The array starts with a checkerboard so every
/// stress has both '1' and '0' victims.
StressReport runStress(const ArrayConfig& config, StressPattern pattern,
                       int cycles);

/// All four patterns at the same cycle count.
std::vector<StressReport> runAllStressPatterns(const ArrayConfig& config,
                                               int cycles);

}  // namespace fefet::core
