#include "core/design_space.h"

#include <cmath>

#include "common/error.h"
#include "sim/sweep_engine.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

DesignPoint characterizeThickness(const FefetParams& base, double thickness,
                                  double vread) {
  const ferro::LandauKhalatnikov lk(base.lk);
  FefetParams p = base;
  p.feThickness = thickness;
  DesignPoint dp;
  dp.feThickness = thickness;
  dp.standaloneCoerciveVoltage = lk.coerciveField() * thickness;
  const auto window = analyzeHysteresis(p);
  dp.hysteretic = window.hysteretic;
  dp.nonvolatile = window.nonvolatile;
  if (window.hysteretic) {
    dp.upSwitchVoltage = window.upSwitchVoltage;
    dp.downSwitchVoltage = window.downSwitchVoltage;
    dp.windowWidth = window.width();
  }
  if (window.nonvolatile) {
    dp.onOffRatio = distinguishability(p, vread);
  }
  return dp;
}

std::vector<DesignPoint> sweepThickness(const FefetParams& base,
                                        const std::vector<double>& thicknesses,
                                        double vread) {
  std::vector<DesignPoint> out;
  out.reserve(thicknesses.size());
  for (double t : thicknesses) {
    out.push_back(characterizeThickness(base, t, vread));
  }
  return out;
}

std::vector<DesignPoint> sweepThicknessParallel(
    const FefetParams& base, const std::vector<double>& thicknesses,
    double vread, int threads) {
  sim::SweepOptions options;
  options.threads = threads;
  sim::SweepEngine engine(options);
  // Each point is a pure function of its thickness — no RNG, so the sweep
  // seed plays no role and the result matches sweepThickness exactly.
  return engine.run(thicknesses,
                    [&](double t, const sim::SweepContext&) {
                      return characterizeThickness(base, t, vread);
                    });
}

double recommendThickness(const FefetParams& base, double vWrite,
                          double voltageMargin, double tMin, double tMax,
                          int samples) {
  FEFET_REQUIRE(samples >= 2, "recommendThickness: too few samples");
  for (int i = 0; i <= samples; ++i) {
    const double t = tMin + (tMax - tMin) * i / samples;
    FefetParams p = base;
    p.feThickness = t;
    const auto window = analyzeHysteresis(p);
    if (!window.nonvolatile) continue;
    const bool writableOne = vWrite >= window.upSwitchVoltage + voltageMargin;
    const bool writableZero =
        -vWrite <= window.downSwitchVoltage - voltageMargin;
    const bool stableHold = window.downSwitchVoltage <= -voltageMargin * 0.5 &&
                            window.upSwitchVoltage >= voltageMargin * 0.5;
    if (writableOne && writableZero && stableHold) return t;
  }
  throw SimulationError(
      "no thickness in the range satisfies the write/stability margins");
}

RetentionComparison compareRetention(const FefetParams& fefetParams,
                                     double feramCoerciveVoltage,
                                     double feramArea, double targetYears) {
  const ferro::LandauKhalatnikov lk(fefetParams.lk);
  const double pr = lk.remnantPolarization();
  const double secondsPerYear = 365.25 * 24.0 * 3600.0;

  ferro::RetentionModel model;
  RetentionComparison cmp;
  cmp.activationEfficiency = model.calibrateToReference(
      feramCoerciveVoltage, pr, feramArea, targetYears * secondsPerYear);
  cmp.feramLog10Seconds =
      model.log10RetentionSeconds(feramCoerciveVoltage, pr, feramArea);

  // FEFET device-level coercive voltage: half the hysteresis window.
  const auto window = analyzeHysteresis(fefetParams);
  FEFET_REQUIRE(window.nonvolatile, "retention study needs nonvolatile FEFET");
  const double vcDevice = 0.5 * window.width();
  const double area = fefetParams.feGeometry().area;
  cmp.fefetLog10Seconds = model.log10RetentionSeconds(vcDevice, pr, area);
  cmp.fefetWidthForParity = ferro::RetentionModel::widthForMatchedRetention(
      feramCoerciveVoltage, feramArea, vcDevice, area, fefetParams.width);
  return cmp;
}

}  // namespace fefet::core
