#include "core/bias_scheme.h"

#include <sstream>

#include "common/strings.h"
#include "common/table.h"

namespace fefet::core {

BiasCondition biasFor(ArrayOp op, RowKind row, const BiasLevels& levels,
                      bool writeOne) {
  BiasCondition c;
  switch (op) {
    case ArrayOp::kWrite:
      c.readSelect = 0.0;
      c.senseLine = 0.0;
      c.bitLine = writeOne ? levels.vWrite : -levels.vWrite;
      c.writeSelect = (row == RowKind::kAccessed) ? levels.writeBoost
                                                  : -levels.vdd;
      break;
    case ArrayOp::kRead:
      c.bitLine = 0.0;
      c.senseLine = 0.0;
      if (row == RowKind::kAccessed) {
        c.readSelect = levels.vRead;
        c.writeSelect = levels.vdd;  // holds the FEFET gate at the 0V bit line
      } else {
        c.readSelect = 0.0;
        c.writeSelect = 0.0;
      }
      break;
    case ArrayOp::kHold:
      break;  // everything grounded
  }
  return c;
}

std::string describeBiasTable(const BiasLevels& levels) {
  TextTable table({"Operation", "Row", "Read select", "Write select",
                   "Bit line", "Sense line"});
  const auto volt = [](double v) {
    return strings::fixedFormat(v, 2) + " V";
  };
  const auto addRow = [&](const std::string& op, const std::string& row,
                          const BiasCondition& c) {
    table.addRow({op, row, volt(c.readSelect), volt(c.writeSelect),
                  volt(c.bitLine), volt(c.senseLine)});
  };
  addRow("Write", "Accessed",
         biasFor(ArrayOp::kWrite, RowKind::kAccessed, levels));
  addRow("Write", "Unaccessed",
         biasFor(ArrayOp::kWrite, RowKind::kUnaccessed, levels));
  addRow("Read", "Accessed",
         biasFor(ArrayOp::kRead, RowKind::kAccessed, levels));
  addRow("Read", "Unaccessed",
         biasFor(ArrayOp::kRead, RowKind::kUnaccessed, levels));
  addRow("Hold", "All", biasFor(ArrayOp::kHold, RowKind::kAccessed, levels));
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace fefet::core
