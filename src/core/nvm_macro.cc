#include "core/nvm_macro.h"

#include <algorithm>

#include "common/error.h"
#include "ferro/material_db.h"

namespace fefet::core {

NvmMacro::NvmMacro(MacroTechnology technology, const MacroConfig& config)
    : technology_(technology),
      config_(config),
      numbers_(technology == MacroTechnology::kFefet
                   ? MacroEnergyModel(config).fefet()
                   : MacroEnergyModel(config).feram()),
      fatigue_(technology == MacroTechnology::kFefet
                   ? ferro::findMaterial("dac16-table2").fatigue
                   : ferro::sbtFatigue()) {
  FEFET_REQUIRE(config_.wordBits > 0 && config_.wordBits <= 32,
                "macro word width must be 1..32 bits");
  wordCount_ = config_.rows * config_.cols / config_.wordBits;
  FEFET_REQUIRE(wordCount_ > 0, "macro too small for one word");
  store_.assign(static_cast<std::size_t>(wordCount_), 0u);
  cycles_.assign(static_cast<std::size_t>(wordCount_), 0u);
}

MacroAccess NvmMacro::writeWord(int address, std::uint32_t value) {
  FEFET_REQUIRE(address >= 0 && address < wordCount_,
                "macro write address out of range");
  store_[static_cast<std::size_t>(address)] = value;
  ++cycles_[static_cast<std::size_t>(address)];
  ++writes_;
  totalEnergy_ += numbers_.writeEnergy;
  MacroAccess access;
  access.value = value;
  access.energy = numbers_.writeEnergy;
  access.latency = numbers_.writeTime;
  return access;
}

MacroAccess NvmMacro::readWord(int address) {
  FEFET_REQUIRE(address >= 0 && address < wordCount_,
                "macro read address out of range");
  ++reads_;
  totalEnergy_ += numbers_.readEnergy;
  if (technology_ == MacroTechnology::kFeram) {
    // Destructive read: the cell switches and is written back — a full
    // program/erase cycle against the fatigue budget.
    ++cycles_[static_cast<std::size_t>(address)];
  }
  MacroAccess access;
  access.value = store_[static_cast<std::size_t>(address)];
  access.energy = numbers_.readEnergy;
  access.latency = ReadTimingModel{}.readTimeSum();
  return access;
}

double NvmMacro::arrayArea() const {
  const auto cell =
      technology_ == MacroTechnology::kFefet
          ? layout::fefet2TCell(config_.rules, config_.transistorWidth)
          : layout::feram1T1CCell(config_.rules, config_.transistorWidth);
  return layout::tileArray(cell, config_.rows, config_.cols).area();
}

double NvmMacro::worstCaseCycles() const {
  return static_cast<double>(
      *std::max_element(cycles_.begin(), cycles_.end()));
}

double NvmMacro::enduranceMarginRemaining(double requiredFraction) const {
  const double worst = worstCaseCycles();
  if (worst == 0.0) return 1.0;
  const double retained = fatigue_.retainedFraction(worst);
  const double floor = requiredFraction;
  return std::max(0.0, (retained - floor) / (1.0 - floor));
}

}  // namespace fefet::core
