#include "core/nvm_macro.h"

#include <algorithm>

#include "common/error.h"
#include "ferro/material_db.h"
#include "obs/metrics.h"

namespace fefet::core {

namespace {

/// Registry mirrors of the macro resilience tallies under fefet.macro.* —
/// same rationale as the controller's: macro instances are per-point and
/// die with the point, the registry counters survive the run.
struct MacroTelemetry {
  obs::Counter& writeRetries;
  obs::Counter& spareRemaps;
  obs::Counter& sparePoolExhausted;
  obs::Counter& uncorrectableBits;
  obs::Counter& eccCorrections;
  obs::Counter& detectedDoubleBits;
};

MacroTelemetry& macroTelemetry() {
  static MacroTelemetry t{
      obs::Metrics::counter("fefet.macro.write_retries"),
      obs::Metrics::counter("fefet.macro.spare_remaps"),
      obs::Metrics::counter("fefet.macro.spare_pool_exhausted"),
      obs::Metrics::counter("fefet.macro.uncorrectable_bits"),
      obs::Metrics::counter("fefet.macro.ecc_corrections"),
      obs::Metrics::counter("fefet.macro.detected_double_bits")};
  return t;
}

}  // namespace

NvmMacro::NvmMacro(MacroTechnology technology, const MacroConfig& config)
    : NvmMacro(technology, config, MacroResilience{}) {}

NvmMacro::NvmMacro(MacroTechnology technology, const MacroConfig& config,
                   const MacroResilience& resilience)
    : technology_(technology),
      config_(config),
      numbers_(technology == MacroTechnology::kFefet
                   ? MacroEnergyModel(config).fefet()
                   : MacroEnergyModel(config).feram()),
      fatigue_(technology == MacroTechnology::kFefet
                   ? ferro::findMaterial("dac16-table2").fatigue
                   : ferro::sbtFatigue()),
      resilience_(resilience),
      injector_(resilience.faults) {
  FEFET_REQUIRE(config_.wordBits > 0 && config_.wordBits <= 32,
                "macro word width must be 1..32 bits");
  if (resilience_.enabled) {
    FEFET_REQUIRE(resilience_.spareWords >= 0,
                  "macro spare word count must be nonnegative");
    FEFET_REQUIRE(resilience_.retry.maxRetries >= 0,
                  "negative retry budget");
    if (resilience_.eccEnabled) codec_.emplace(config_.wordBits);
    const int stored = storedBitsPerWord();
    physicalWordCount_ = config_.rows * config_.cols / stored;
    wordCount_ = physicalWordCount_ - resilience_.spareWords;
    FEFET_REQUIRE(wordCount_ > 0,
                  "macro too small for one word plus spares");
    cellBits_.assign(
        static_cast<std::size_t>(physicalWordCount_ * stored), 0u);
  } else {
    wordCount_ = config_.rows * config_.cols / config_.wordBits;
    FEFET_REQUIRE(wordCount_ > 0, "macro too small for one word");
  }
  store_.assign(static_cast<std::size_t>(wordCount_), 0u);
  cycles_.assign(static_cast<std::size_t>(wordCount_), 0u);
}

int NvmMacro::storedBitsPerWord() const {
  return config_.wordBits + (codec_ ? codec_->parityBits() : 0);
}

int NvmMacro::physicalWord(int address) const {
  const auto it = remap_.find(address);
  return it == remap_.end() ? address : it->second;
}

CellFault NvmMacro::cellFaultAt(int physWord, int bit) const {
  // Stored words stream across the array row-major; the fault map is
  // addressed by the cell's geometric coordinates.
  const int idx = physWord * storedBitsPerWord() + bit;
  return injector_.cellFault(idx / config_.cols, idx % config_.cols);
}

bool NvmMacro::writeStoredBit(int physWord, int bit, bool target) {
  const auto fault = cellFaultAt(physWord, bit);
  auto& cell =
      cellBits_[static_cast<std::size_t>(physWord * storedBitsPerWord() +
                                         bit)];
  for (int k = 0; k <= resilience_.retry.maxRetries; ++k) {
    const double vScale = resilience_.retry.voltageScaleFor(k);
    if (k > 0) {
      ++report_.writeRetries;
      if (obs::Metrics::enabled()) macroTelemetry().writeRetries.increment();
      // Escalated pulse: CV^2 drive at boosted voltage, stretched width.
      const double extra = numbers_.writeEnergy / config_.wordBits *
                           vScale * vScale *
                           resilience_.retry.pulseScaleFor(k);
      totalEnergy_ += extra;
      report_.retryEnergy += extra;
    }
    bool landed = target;
    if (fault == CellFault::kStuckAtZero) {
      landed = false;
    } else if (fault == CellFault::kStuckAtOne) {
      landed = true;
    } else if (injector_.nextWriteFails(vScale)) {
      continue;  // pulse failed to switch; the cell retains its old state
    }
    cell = landed ? 1u : 0u;
    if (landed == target) return true;
  }
  return (cell != 0u) == target;
}

std::optional<int> NvmMacro::allocateSpare(int address) {
  if (nextSpare_ >= resilience_.spareWords) {
    // Graceful degradation, not an unclassified error: the burst that
    // drained the pool is recorded in the ledger, and the caller falls
    // back to the uncorrected-bit accounting below.
    ++report_.sparePoolExhausted;
    if (obs::Metrics::enabled()) {
      macroTelemetry().sparePoolExhausted.increment();
    }
    return std::nullopt;
  }
  const int spare = physicalWordCount_ - resilience_.spareWords +
                    nextSpare_;
  ++nextSpare_;
  remap_[address] = spare;
  ++report_.remappedRows;
  if (obs::Metrics::enabled()) macroTelemetry().spareRemaps.increment();
  return spare;
}

MacroAccess NvmMacro::writeWord(int address, std::uint32_t value) {
  FEFET_REQUIRE(address >= 0 && address < wordCount_,
                "macro write address out of range");
  store_[static_cast<std::size_t>(address)] = value;
  ++cycles_[static_cast<std::size_t>(address)];
  ++writes_;
  totalEnergy_ += numbers_.writeEnergy;
  MacroAccess access;
  access.value = value;
  access.energy = numbers_.writeEnergy;
  access.latency = numbers_.writeTime;
  if (!resilience_.enabled) return access;

  ++report_.wordWrites;
  std::uint64_t image = value;
  if (config_.wordBits < 32) image &= (1u << config_.wordBits) - 1u;
  if (codec_) {
    image |= static_cast<std::uint64_t>(codec_->encode(image))
             << config_.wordBits;
  }
  const int n = storedBitsPerWord();
  int physWord = physicalWord(address);
  for (int bit = 0; bit < n; ++bit) {
    if (writeStoredBit(physWord, bit, (image >> bit) & 1u)) continue;
    // Hard-failed cell (or exhausted ladder): retire the word to a spare
    // and restart the image there.  A spare with its own bad cells burns
    // through to the next spare on the same path.
    if (const auto spare = allocateSpare(address)) {
      physWord = *spare;
      bit = -1;
      continue;
    }
    ++report_.uncorrectedBits;
    if (obs::Metrics::enabled()) {
      macroTelemetry().uncorrectableBits.increment();
    }
  }
  return access;
}

MacroAccess NvmMacro::readWord(int address) {
  FEFET_REQUIRE(address >= 0 && address < wordCount_,
                "macro read address out of range");
  ++reads_;
  totalEnergy_ += numbers_.readEnergy;
  if (technology_ == MacroTechnology::kFeram) {
    // Destructive read: the cell switches and is written back — a full
    // program/erase cycle against the fatigue budget.
    ++cycles_[static_cast<std::size_t>(address)];
  }
  MacroAccess access;
  access.energy = numbers_.readEnergy;
  access.latency = ReadTimingModel{}.readTimeSum();
  if (!resilience_.enabled) {
    access.value = store_[static_cast<std::size_t>(address)];
    return access;
  }

  ++report_.wordReads;
  const int n = storedBitsPerWord();
  const int physWord = physicalWord(address);
  std::uint64_t image = 0;
  for (int bit = 0; bit < n; ++bit) {
    bool v = cellBits_[static_cast<std::size_t>(physWord * n + bit)] != 0u;
    // Weak cells upset individual reads; ECC is what absorbs these.
    if (injector_.nextReadFlips(cellFaultAt(physWord, bit))) v = !v;
    if (v) image |= std::uint64_t{1} << bit;
  }
  if (!codec_) {
    access.value = static_cast<std::uint32_t>(
        image & ((config_.wordBits >= 32)
                     ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << config_.wordBits) - 1));
    return access;
  }
  const std::uint64_t dataMask =
      config_.wordBits >= 32 ? 0xFFFFFFFFull
                             : (std::uint64_t{1} << config_.wordBits) - 1;
  const auto decoded = codec_->decode(
      image & dataMask,
      static_cast<std::uint16_t>(image >> config_.wordBits));
  if (decoded.status == EccStatus::kCorrectedSingle) {
    ++report_.correctedBits;
    if (obs::Metrics::enabled()) macroTelemetry().eccCorrections.increment();
  }
  if (decoded.status == EccStatus::kDetectedDouble) {
    ++report_.detectedDoubleBits;
    if (obs::Metrics::enabled()) {
      macroTelemetry().detectedDoubleBits.increment();
    }
  }
  access.value = static_cast<std::uint32_t>(decoded.data);
  return access;
}

double NvmMacro::arrayArea() const {
  const auto cell =
      technology_ == MacroTechnology::kFefet
          ? layout::fefet2TCell(config_.rules, config_.transistorWidth)
          : layout::feram1T1CCell(config_.rules, config_.transistorWidth);
  return layout::tileArray(cell, config_.rows, config_.cols).area();
}

double NvmMacro::worstCaseCycles() const {
  return static_cast<double>(
      *std::max_element(cycles_.begin(), cycles_.end()));
}

double NvmMacro::enduranceMarginRemaining(double requiredFraction) const {
  const double worst = worstCaseCycles();
  if (worst == 0.0) return 1.0;
  const double retained = fatigue_.retainedFraction(worst);
  const double floor = requiredFraction;
  return std::max(0.0, (retained - floor) / (1.0 - floor));
}

}  // namespace fefet::core
