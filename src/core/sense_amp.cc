#include "core/sense_amp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

SenseAmpCircuit::SenseAmpCircuit(const SenseAmpConfig& config)
    : config_(config) {
  const auto stable = stableInternalVoltages(config_.fefet, 0.0);
  FEFET_REQUIRE(stable.size() >= 2, "sense circuit requires nonvolatile FEFET");
  psiOff_ = stable.front();
  for (double s : stable) {
    if (std::abs(s) < std::abs(psiOff_)) psiOff_ = s;
  }
  psiOn_ = *std::max_element(stable.begin(), stable.end());
  const xtor::MosfetModel mos(config_.fefet.mos, config_.fefet.width);
  pOn_ = mos.gateChargeDensity(psiOn_);
  pOff_ = mos.gateChargeDensity(psiOff_);
  buildNetlist();
}

void SenseAmpCircuit::buildNetlist() {
  auto& n = netlist_;
  const auto& mosP = xtor::pmos45();
  const auto& mosN = xtor::nmos45();

  // --- cell and its select lines ---------------------------------------
  vRs_ = n.add<spice::VoltageSource>("Vrs", n.node("rs"), n.ground(), dc(0.0));
  vWs_ = n.add<spice::VoltageSource>("Vws", n.node("ws"), n.ground(), dc(0.0));
  vWbl_ = n.add<spice::VoltageSource>("Vwbl", n.node("wbl"), n.ground(),
                                      dc(0.0));
  n.add<spice::MosfetDevice>("Macc", n.node("wbl"), n.node("ws"), n.node("g"),
                             config_.accessMos, config_.accessWidth);
  fefet_ = attachFefet(n, "cell", "g", "rs", "sl", config_.fefet, pOff_);

  // --- clamping driver: PMOS source follower into the mirror ------------
  // The cell pushes its read current INTO the sense line; the follower
  // conveys it down to the NMOS mirror (referenced to -VDD, which the
  // Table 1 biasing already distributes).  A follower self-limits: it cuts
  // off once V_SL drops to V_CG + |V_T|, so the sense line is regulated
  // near 0 V at any cell current instead of being overpulled at I ~ 0.
  vNeg_ = n.add<spice::VoltageSource>("Vneg", n.node("vneg"), n.ground(),
                                      dc(-config_.vddSense));
  // Feedback clamp: an inverter (supplies +VDD/-VDD, trip ~ 0 V) senses
  // V_SL and drives the follower gate, pinning the sense line to the trip
  // point across the full 1e6 cell-current range.  Vcg powers the feedback
  // inverter so the clamp can be EN-gated.
  vCg_ = n.add<spice::VoltageSource>("Vcg", n.node("cg"), n.ground(),
                                     dc(config_.vddSense));
  n.add<spice::MosfetDevice>("Pfb", n.node("fbg"), n.node("sl"),
                             n.node("cg"), mosP, 8.0 * config_.refWidth);
  n.add<spice::MosfetDevice>("Nfb", n.node("fbg"), n.node("sl"),
                             n.node("vneg"), mosN, 4.0 * config_.refWidth);
  n.add<spice::Capacitor>("Cfbg", n.node("fbg"), n.ground(), 1e-15);
  n.add<spice::MosfetDevice>("Pclamp", n.node("m1"), n.node("fbg"),
                             n.node("sl"), mosP, config_.conveyorWidth);

  // --- mirrors: N1/N2 (referenced to -VDD) then P1/P2 -------------------
  n.add<spice::MosfetDevice>("N1", n.node("m1"), n.node("m1"),
                             n.node("vneg"), mosN, config_.mirrorWidth);
  n.add<spice::MosfetDevice>("N2", n.node("m2"), n.node("m1"),
                             n.node("vneg"), mosN, config_.mirrorWidth);
  vDdSa_ = n.add<spice::VoltageSource>("Vddsa", n.node("vddsa"), n.ground(),
                                       dc(config_.vddSense));
  n.add<spice::MosfetDevice>("P1", n.node("m2"), n.node("m2"),
                             n.node("vddsa"), mosP, config_.mirrorWidth);
  n.add<spice::MosfetDevice>("P2", n.node("vsense"), n.node("m2"),
                             n.node("vddsa"), mosP, config_.mirrorWidth);

  // --- reference sink, pre-charge driver, sense-node parasitics --------
  vRef_ = n.add<spice::VoltageSource>("Vref", n.node("vrefg"), n.ground(),
                                      dc(0.0));
  n.add<spice::MosfetDevice>("Nref", n.node("vsense"), n.node("vrefg"),
                             n.ground(), mosN, config_.refWidth);
  vPreSrc_ = n.add<spice::VoltageSource>("Vpre", n.node("vpre"), n.ground(),
                                         dc(config_.vPre));
  preSwitch_ = n.add<spice::TimedSwitch>("Spre", n.node("vpre"),
                                         n.node("vsense"), dc(0.0), 2000.0);
  n.add<spice::Capacitor>("Csense", n.node("vsense"), n.ground(),
                          config_.senseCap);
  // "V_BL was grounded before the onset of read": the sense line is held
  // at ground until the clamping driver takes over.
  slGround_ = n.add<spice::TimedSwitch>("Sslg", n.node("sl"), n.ground(),
                                        dc(1.0), 200.0);

  // --- output digitization: two inverters ------------------------------
  const auto inverter = [&](const std::string& id, const std::string& in,
                            const std::string& out) {
    n.add<spice::MosfetDevice>(id + "p", n.node(out), n.node(in),
                               n.node("vddsa"), mosP, config_.invPmosWidth);
    n.add<spice::MosfetDevice>(id + "n", n.node(out), n.node(in), n.ground(),
                               mosN, config_.invNmosWidth);
    n.add<spice::Capacitor>(id + "cl", n.node(out), n.ground(), 0.2e-15);
  };
  inverter("inv1", "vsense", "sa1");
  inverter("inv2", "sa1", "vsa");

  sim_ = std::make_unique<spice::Simulator>(netlist_);
}

SenseReadResult SenseAmpCircuit::simulateRead(bool storedOne) {
  return simulateReadAtPolarization(storedOne ? pOn_ : pOff_);
}

SenseReadResult SenseAmpCircuit::simulateReadAtPolarization(
    double polarization) {
  // Set the stored state; seed the internal node at the gate voltage that
  // holds this charge (quasi-static consistency).
  const xtor::MosfetModel mos(config_.fefet.mos, config_.fefet.width);
  fefet_.fe->setPolarization(polarization);
  sim_->setNodeVoltage(netlist_.nodeName(fefet_.internalNode),
                       mos.gateVoltageForCharge(polarization));
  sim_->setNodeVoltage("vddsa", config_.vddSense);
  sim_->setNodeVoltage("vpre", config_.vPre);
  sim_->setNodeVoltage("cg", config_.vddSense);
  sim_->setNodeVoltage("fbg", 0.0);
  sim_->setNodeVoltage("vneg", -config_.vddSense);
  sim_->setNodeVoltage("m1", -config_.vddSense);
  sim_->setNodeVoltage("vsense", 0.0);
  sim_->setNodeVoltage("sl", 0.0);
  // Seed the SA internal nodes at their quiescent values so the UIC start
  // does not inject spurious charge (mirror diodes off, inverter 1 high).
  sim_->setNodeVoltage("m2", config_.vddSense);
  sim_->setNodeVoltage("sa1", config_.vddSense);
  sim_->setNodeVoltage("vsa", 0.0);
  sim_->initializeUic();

  const double t0 = config_.enableDelay;
  const double edge = 20e-12;
  const double window = config_.duration;

  // EN-gated shapes.  The clamp/conveyor and reference enable slightly
  // before the read voltage so the sense line never floats while driven.
  vRs_->setShape(pulse(0.0, config_.levels.vRead, t0, edge,
                       window - t0 - 4.0 * edge, edge));
  vWs_->setShape(pulse(0.0, config_.levels.vdd, t0 * 0.5, edge,
                       window - t0 - 4.0 * edge, edge));
  vWbl_->setShape(dc(0.0));
  // Feedback-inverter supply stays on: with the sense line grounded and
  // no cell current the feedback settles at its trip point and the clamp
  // conducts nothing, so there is no pre-enable path.
  vCg_->setShape(dc(config_.vddSense));
  vRef_->setShape(pulse(0.0, config_.refGateBias, t0 * 0.5, edge,
                        window - t0 - 4.0 * edge, edge));
  preSwitch_->setControl(pulse(0.0, 1.0, t0, 1e-12, config_.tPre, 1e-12));
  // Release the hard ground once the clamp is active.
  slGround_->setControl(pulse(1.0, 0.0, t0 * 0.5 + edge, 1e-12, window,
                              1e-12));

  for (auto* s : {vRs_, vWs_, vWbl_, vDdSa_, vCg_, vRef_, vPreSrc_, vNeg_}) {
    s->resetEnergy();
  }

  spice::TransientOptions options;
  options.duration = window;
  options.dtMax = window / 400.0;
  options.dtInitial = 1e-12;
  const std::vector<Probe> probes = {
      Probe::v("sl"),     Probe::v("vsense"), Probe::v("vsa"),
      Probe::v("m1"),     Probe::v("m2"),     Probe::v("rs"),
      Probe::deviceState("cell:fe", "P"),
      Probe::deviceState("cell:mos", "id"),
  };
  auto transient = sim_->runTransient(options, probes);

  SenseReadResult result;
  result.waveform = std::move(transient.waveform);
  result.bitRead =
      result.waveform.finalValue("v(vsa)") > 0.5 * config_.vddSense;
  result.senseLineMax = result.waveform.maximum("v(sl)");
  try {
    result.tPreAchieved =
        result.waveform.firstCrossing("v(vsense)", 0.95 * config_.vPre,
                                      /*rising=*/true) -
        t0;
  } catch (const SimulationError&) {
    // pre-charge target never reached in this read
  }
  try {
    result.tSa = result.waveform.firstCrossing(
                     "v(vsa)", 0.5 * config_.vddSense, /*rising=*/true) -
                 t0;
  } catch (const SimulationError&) {
    // VSA never rose: a read of '0'
  }
  for (auto* s : {vRs_, vWs_, vWbl_, vDdSa_, vCg_, vRef_, vPreSrc_, vNeg_}) {
    result.readEnergy += s->energyDelivered();
  }
  return result;
}

}  // namespace fefet::core
