// sense_amp.h — transistor-level current-sensing read circuit (paper Fig. 8).
//
// Topology (functionally the paper's clamp + pre-charge + current SA):
//
//   RS --[FEFET cell]-- SL --[P_C conveyor, gate=V_CG when enabled]-- m1
//   m1: N1 diode to ground, mirrored by N2 -> m2
//   m2: P1 diode from VDD, mirrored by P2 -> VSENSE   (copies cell current)
//   VSENSE: N_REF sinks I_REF; pre-charge driver forces VPRE for t_pre;
//           C_SENSE models the large M1/M2 parasitics
//   VSENSE -> INV1 -> INV2 -> VSA (digitized output, VSA = VDD reads '1')
//
// The conveyor PMOS holds the sense line at V_CG + |V_SG| ~ 0 V — the
// paper's "virtual ground" clamp — while conveying the cell current into
// the mirrors.  A stored '1' copies ~I_on >> I_REF into VSENSE which rises
// past the inverter threshold; a stored '0' leaves only leakage, so I_REF
// discharges VSENSE and VSA stays low.  Matches the Fig. 8(b) waveforms.
#pragma once

#include <memory>

#include "core/cell2t.h"
#include "spice/passives.h"
#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::core {

struct SenseAmpConfig {
  FefetParams fefet;
  xtor::MosParams accessMos = xtor::nmos45();
  double accessWidth = 65e-9;
  BiasLevels levels;

  double vddSense = 0.68;     ///< SA supply
  double vPre = 0.30;         ///< pre-charge target on VSENSE
  double tPre = 0.5e-9;       ///< pre-charge window (paper: 0.50 ns)
  double conveyorGateBias = -0.45;  ///< clamp gate bias when enabled
  double conveyorWidth = 4.0e-6;    ///< "large-size" M1/M2-class devices
  double mirrorWidth = 2.0e-6;
  double refGateBias = 0.42;  ///< sets I_REF on the reference sink
  double refWidth = 65e-9;
  double senseCap = 5e-15;    ///< parasitic at the charging node
  double invNmosWidth = 130e-9;
  double invPmosWidth = 260e-9;
  double enableDelay = 0.4e-9;  ///< t0: EN assertion time
  double duration = 4.0e-9;     ///< simulated read window
};

struct SenseReadResult {
  spice::Waveform waveform;   ///< v(sl), v(vsense), v(vsa), P, currents
  bool bitRead = false;       ///< VSA digitized at the end of the window
  double senseLineMax = 0.0;  ///< worst excursion of the virtual ground [V]
  double tPreAchieved = -1.0; ///< time for VSENSE to reach vPre [s]
  double tSa = -1.0;          ///< EN -> VSA 50% crossing (reads of '1') [s]
  double readEnergy = 0.0;    ///< all supplies, over the window [J]
};

/// One cell plus the full read chain, simulated at transistor level.
class SenseAmpCircuit {
 public:
  explicit SenseAmpCircuit(const SenseAmpConfig& config);

  /// Set the stored bit and simulate one full read.
  SenseReadResult simulateRead(bool storedOne);

  /// Simulate a read with the cell forced to an arbitrary polarization
  /// (internal node seeded at its quasi-static value).  Used for sense-
  /// margin analysis: sweeping P between the two states locates the
  /// digitization boundary of the whole read chain.
  SenseReadResult simulateReadAtPolarization(double polarization);

  /// Quasi-static state targets of the attached cell.
  double onPolarization() const { return pOn_; }
  double offPolarization() const { return pOff_; }

  const SenseAmpConfig& config() const { return config_; }

 private:
  void buildNetlist();

  SenseAmpConfig config_;
  spice::Netlist netlist_;
  FefetInstance fefet_;
  spice::VoltageSource* vRs_ = nullptr;
  spice::VoltageSource* vWs_ = nullptr;
  spice::VoltageSource* vWbl_ = nullptr;
  spice::VoltageSource* vDdSa_ = nullptr;
  spice::VoltageSource* vCg_ = nullptr;
  spice::VoltageSource* vNeg_ = nullptr;
  spice::VoltageSource* vRef_ = nullptr;
  spice::VoltageSource* vPreSrc_ = nullptr;
  spice::TimedSwitch* preSwitch_ = nullptr;
  spice::TimedSwitch* slGround_ = nullptr;
  std::unique_ptr<spice::Simulator> sim_;
  double pOn_ = 0.0, pOff_ = 0.0, psiOn_ = 0.0, psiOff_ = 0.0;
};

}  // namespace fefet::core
