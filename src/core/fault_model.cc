#include "core/fault_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::core {

namespace {
/// splitmix64: a well-mixed 64-bit finalizer, used to derive a stateless
/// per-cell uniform draw from (seed, row, col).
std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double cellUniform(std::uint64_t seed, int row, int col) {
  std::uint64_t h = splitmix64(seed ^ 0xfe37a17ull);
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32 |
                      static_cast<std::uint32_t>(col)));
  // 53-bit mantissa to uniform [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), eventRng_(splitmix64(spec.seed ^ 0x5eedull)) {
  FEFET_REQUIRE(spec_.stuckAtZeroRate >= 0.0 && spec_.stuckAtOneRate >= 0.0 &&
                    spec_.weakCellRate >= 0.0,
                "fault rates must be non-negative");
  FEFET_REQUIRE(spec_.stuckAtZeroRate + spec_.stuckAtOneRate +
                        spec_.weakCellRate <=
                    1.0,
                "per-cell fault rates must sum to at most 1");
  FEFET_REQUIRE(spec_.writeFailureProbability >= 0.0 &&
                    spec_.writeFailureProbability <= 1.0,
                "write failure probability must be in [0, 1]");
  FEFET_REQUIRE(spec_.weakAlphaFraction > 0.0 && spec_.weakAlphaFraction <= 1.0,
                "weak alpha fraction must be in (0, 1]");
}

CellFault FaultInjector::cellFault(int row, int col) const {
  if (!spec_.anyCellFaults()) return CellFault::kNone;
  const double u = cellUniform(spec_.seed, row, col);
  if (u < spec_.stuckAtZeroRate) return CellFault::kStuckAtZero;
  if (u < spec_.stuckAtZeroRate + spec_.stuckAtOneRate) {
    return CellFault::kStuckAtOne;
  }
  if (u < spec_.stuckAtZeroRate + spec_.stuckAtOneRate + spec_.weakCellRate) {
    return CellFault::kWeak;
  }
  return CellFault::kNone;
}

FefetParams FaultInjector::apply(const FefetParams& nominal,
                                 CellFault fault) const {
  if (fault != CellFault::kWeak) return nominal;
  FefetParams p = nominal;
  // Window collapse: |alpha| shrinks (P_r and the double-well barrier
  // collapse together — the memory-window/endurance scaling picture) and
  // the transistor threshold drifts.
  p.lk.alpha = nominal.lk.alpha * spec_.weakAlphaFraction;
  p.mos.vt0 = nominal.mos.vt0 + spec_.weakVtShift;
  return p;
}

bool FaultInjector::nextWriteFails(double boostScale) {
  if (spec_.writeFailureProbability <= 0.0) return false;
  const double scale = std::max(1.0, boostScale);
  const double p = spec_.writeFailureProbability / (scale * scale);
  return eventRng_.bernoulli(p);
}

double FaultInjector::retentionFactor(double seconds, CellFault fault) const {
  if (spec_.retentionDecayPerSecond <= 0.0 || seconds <= 0.0) return 1.0;
  double rate = spec_.retentionDecayPerSecond;
  if (fault == CellFault::kWeak) rate *= spec_.weakRetentionMultiplier;
  return std::exp(-rate * seconds);
}

bool FaultInjector::nextReadFlips(CellFault fault) {
  if (fault != CellFault::kWeak || spec_.weakReadFlipProbability <= 0.0) {
    return false;
  }
  return eventRng_.bernoulli(spec_.weakReadFlipProbability);
}

}  // namespace fefet::core
