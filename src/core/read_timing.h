// read_timing.h — the paper's read-time budget, eq. (2):
//
//     t_read = max{t_pre, t_dec} + t_sa + t_buffer
//
// with the paper's estimates t_pre = t_dec = t_buffer = 0.50 ns and
// t_sa = 1.5 ns.  Note: eq. (2) evaluates to 2.5 ns with these numbers;
// the paper's text quotes "a total read time of 3.0 ns", which is the
// plain sum of all four terms.  Both are exposed (and the discrepancy is
// recorded in EXPERIMENTS.md).
#pragma once

namespace fefet::core {

struct ReadTimingModel {
  double tPre = 0.50e-9;     ///< pre-charge
  double tDec = 0.50e-9;     ///< address decode (overlaps pre-charge)
  double tSa = 1.5e-9;       ///< sense amplifier
  double tBuffer = 0.50e-9;  ///< output buffer

  /// Paper eq. (2) as written.
  double readTimeEq2() const {
    return (tPre > tDec ? tPre : tDec) + tSa + tBuffer;
  }

  /// Plain sum of all four components (reproduces the quoted 3.0 ns).
  double readTimeSum() const { return tPre + tDec + tSa + tBuffer; }
};

}  // namespace fefet::core
