// variability.h — process-variation analysis of the FEFET memory.
//
// The paper's claims (1e6 distinguishability, 0.68 V writes, window
// spanning 0 V) are nominal-corner statements; this module quantifies how
// they hold up under local mismatch and global process corners:
//
//  * Monte Carlo over device parameters (V_T mismatch, FE thickness and
//    Landau-coefficient spread, width variation) using the fast
//    quasi-static window analysis — thousands of samples per second;
//  * transient write-yield sampling on the full 2T cell (slower);
//  * classic TT/FF/SS corner analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/cell2t.h"
#include "core/fefet.h"

namespace fefet::core {

/// 1-sigma variation magnitudes.  Defaults are 45 nm-class local mismatch
/// plus typical ferroelectric film non-uniformity.
struct VariationSpec {
  double vtSigma = 20e-3;            ///< [V] threshold mismatch
  double feThicknessSigmaRel = 0.02; ///< 2 % film thickness spread
  double widthSigmaRel = 0.03;       ///< 3 % CD variation
  double alphaSigmaRel = 0.03;       ///< Landau alpha spread
  std::uint64_t seed = 1;
};

/// Draw one perturbed device instance.
FefetParams perturbDevice(const FefetParams& nominal,
                          const VariationSpec& spec, stats::Rng& rng);

/// Quasi-static Monte Carlo summary over the device population.
struct DeviceMonteCarlo {
  int samples = 0;
  int nonvolatileCount = 0;      ///< devices whose window still spans 0 V
  int writableCount = 0;         ///< windows writable at the nominal levels
  double windowWidthMean = 0.0;  ///< [V]
  double windowWidthSigma = 0.0;
  double upSwitchMin = 0.0;      ///< worst-case up fold (stability margin)
  double downSwitchMax = 0.0;    ///< worst-case down fold
  double log10RatioMean = 0.0;   ///< on/off distinguishability, log10
  double log10RatioMin = 0.0;
};

DeviceMonteCarlo runDeviceMonteCarlo(const FefetParams& nominal,
                                     const VariationSpec& spec, int samples,
                                     double vWrite = 0.68,
                                     double vRead = 0.40);

/// Combine per-chunk Monte Carlo summaries into one, using Chan's parallel
/// moment merge (stats::Accumulator) for the width statistics.  Counts sum,
/// worst-case folds take min/max, and the merged mean/sigma equal a
/// single-pass reduction over the union of samples up to rounding.
DeviceMonteCarlo mergeMonteCarlo(std::span<const DeviceMonteCarlo> parts);

/// runDeviceMonteCarlo fanned across a sim::SweepEngine pool.  The sample
/// budget is split into fixed chunks of ~`chunkSamples`; chunk i draws its
/// RNG stream from SweepEngine::pointSeed(spec.seed, i), so the result is
/// identical for every thread count (`threads` = 0 uses the default).  The
/// chunked estimator is not sample-for-sample identical to the serial
/// single-stream runDeviceMonteCarlo, but is an equally valid draw of the
/// same population and is itself fully deterministic.
DeviceMonteCarlo runDeviceMonteCarloParallel(
    const FefetParams& nominal, const VariationSpec& spec, int samples,
    int threads = 0, double vWrite = 0.68, double vRead = 0.40,
    int chunkSamples = 125);

/// Transient write yield: fraction of sampled cells that complete both
/// polarities at the given voltage/pulse.  Uses full cell transients, so
/// keep `samples` modest (tens).
struct WriteYield {
  int samples = 0;
  int passes = 0;
  double yield() const { return samples ? static_cast<double>(passes) / samples : 0.0; }
};

WriteYield runWriteYield(const Cell2TConfig& nominal,
                         const VariationSpec& spec, int samples,
                         double vWrite, double pulseWidth);

/// runWriteYield with one sweep point per sampled cell (full transients are
/// expensive, so per-sample granularity keeps all workers busy).  Sample i
/// is seeded from SweepEngine::pointSeed(spec.seed, i): deterministic for
/// every thread count, though not stream-identical to the serial runner.
WriteYield runWriteYieldParallel(const Cell2TConfig& nominal,
                                 const VariationSpec& spec, int samples,
                                 double vWrite, double pulseWidth,
                                 int threads = 0);

/// Global process corners.
enum class Corner { kTypical, kFast, kSlow };

struct CornerResult {
  Corner corner;
  double upSwitchVoltage = 0.0;
  double downSwitchVoltage = 0.0;
  bool nonvolatile = false;
  double onOffRatio = 0.0;
};

/// Evaluate the device window across TT/FF/SS (VT -/+30 mV, mobility
/// +/-10 %, T_FE -/+2 %).
std::vector<CornerResult> runCorners(const FefetParams& nominal,
                                     double vRead = 0.40);

}  // namespace fefet::core
