// feram_cell.h — the 1T-1C FERAM baseline (paper Fig. 9, §6.1).
//
//   BL --[access NMOS, gate=WL]-- X --[FE capacitor]-- PL
//
// Write '1': BL = V_write, PL = 0 (polarization toward +P_r).
// Write '0': BL = 0, PL = V_write (polarization toward -P_r).
// Read (destructive): pre-charge BL to 0, float it, pulse PL high; a
// stored '1' switches and dumps ~2 P_r A of charge on the bit line, a '0'
// responds only linearly.  Sense the bit-line swing, then write back.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ferro/lk_model.h"
#include "spice/passives.h"
#include "spice/fecap_device.h"
#include "spice/mosfet_device.h"
#include "spice/simulator.h"
#include "spice/sources.h"
#include "xtor/mosfet_model.h"

namespace fefet::core {

struct FeRamConfig {
  /// FE material; default Landau set from Table 2 with the FERAM-calibrated
  /// kinetic coefficient (see core::feramMaterial()).
  ferro::LkCoefficients lk{.rho = 0.816};
  double feThickness = 1e-9;      ///< optimal FERAM thickness (paper §6.2.2)
  double capWidth = 65e-9;        ///< FE capacitor width
  double capLength = 45e-9;       ///< FE capacitor length
  xtor::MosParams accessMos = xtor::nmos45();
  double accessWidth = 65e-9;
  double vWrite = 1.64;           ///< bit/plate line write level
  double wordLineBoost = 2.4;     ///< WL level (passes vWrite fully)
  double bitLineCap = 5e-15;      ///< lumped bit-line capacitance
  double senseThreshold = 0.15;   ///< BL swing that reads as '1' [V]
  double edgeTime = 20e-12;
  double settleTime = 450e-12;  ///< long enough for P to reach +/-P_r

  ferro::FeGeometry feGeometry() const {
    return {feThickness, capWidth * capLength};
  }
};

struct FeRamOpResult {
  spice::Waveform waveform;
  bool bitAfter = false;
  bool bitRead = false;             ///< sensed value (reads only)
  double finalPolarization = 0.0;
  double writeLatency = -1.0;
  double bitLineSwing = 0.0;        ///< peak BL voltage during read [V]
  std::map<std::string, double> sourceEnergy;
  double totalEnergy = 0.0;
};

class FeRamCell {
 public:
  explicit FeRamCell(const FeRamConfig& config);

  void setStoredBit(bool one);
  bool storedBit() const;
  double polarization() const { return fe_->polarization(); }

  /// Drive a write pulse (optionally overriding the line voltage).
  FeRamOpResult write(bool one, double pulseWidth,
                      std::optional<double> voltageOverride = {});

  /// Destructive read followed by automatic write-back of the sensed bit.
  /// The reported energy covers the full read + restore sequence.
  FeRamOpResult read();

  FeRamOpResult hold(double duration);

  /// Minimum successful write pulse width at a given voltage (bisection).
  double minimumWritePulse(bool one, double vWrite, double maxPulse = 4e-9,
                           double resolution = 5e-12);

  const FeRamConfig& config() const { return config_; }
  double remnantPolarization() const;

 private:
  FeRamOpResult runOp(double duration, bool isWrite);

  FeRamConfig config_;
  spice::Netlist netlist_;
  spice::VoltageSource* vBl_ = nullptr;
  spice::VoltageSource* vWl_ = nullptr;
  spice::VoltageSource* vPl_ = nullptr;
  spice::TimedSwitch* blSwitch_ = nullptr;  ///< BL driver connect/float
  spice::FeCapDevice* fe_ = nullptr;
  std::unique_ptr<spice::Simulator> sim_;
};

}  // namespace fefet::core
