// fefet.h — the ferroelectric FET: an FE capacitor (LK dynamics) stacked on
// the gate of a 45nm MOSFET, plus device-level analysis utilities
// (paper §2–§3: hysteresis, non-volatility, load lines, fold voltages).
#pragma once

#include <string>
#include <vector>

#include "ferro/lk_model.h"
#include "ferro/fe_capacitor.h"
#include "spice/fecap_device.h"
#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "xtor/technology.h"

namespace fefet::core {

/// Parameters of one FEFET instance.
struct FefetParams {
  ferro::LkCoefficients lk;          ///< ferroelectric material
  double feThickness = 2.25e-9;      ///< T_FE [m] (paper design point)
  double width = 65e-9;              ///< transistor and FE width [m]
  xtor::MosParams mos = xtor::nmos45();
  double backgroundEpsR = 0.0;       ///< linear FE background permittivity

  /// FE film geometry (area = W x L of the gate).
  ferro::FeGeometry feGeometry() const {
    return {feThickness, width * mos.length};
  }
};

/// Handles to the sub-devices of one FEFET instantiated in a netlist.
struct FefetInstance {
  spice::FeCapDevice* fe = nullptr;    ///< gate stack FE (state = stored bit)
  spice::MosfetDevice* mos = nullptr;  ///< underlying transistor
  spice::NodeId internalNode = 0;      ///< metal node between FE and gate

  /// Committed polarization [C/m^2].
  double polarization() const { return fe->polarization(); }
};

/// Instantiate an FEFET: FE cap from `gate` to a fresh internal node, MOS
/// gate on the internal node, channel between `drain` and `source`.
FefetInstance attachFefet(spice::Netlist& netlist, const std::string& name,
                          const std::string& gate, const std::string& drain,
                          const std::string& source, const FefetParams& params,
                          double initialPolarization = 0.0);

// ---------------------------------------------------------------------------
// Quasi-static device analysis (no circuit solver needed).
// ---------------------------------------------------------------------------

/// One fold (saddle-node) of the quasi-static V_G(psi) characteristic.
struct Fold {
  double internalVoltage = 0.0;  ///< psi at the fold [V]
  double gateVoltage = 0.0;      ///< external V_G at the fold [V]
  bool isMaximum = false;        ///< local max (up-switch) vs min (down-switch)
};

/// The hysteresis analysis of a device at V_DS ~ 0.
struct HysteresisWindow {
  std::vector<Fold> folds;       ///< all folds in the swept psi range
  bool hysteretic = false;       ///< any fold pair exists
  bool nonvolatile = false;      ///< the inversion-branch window spans V_G=0
  double upSwitchVoltage = 0.0;  ///< V_G that destabilizes the OFF state
  double downSwitchVoltage = 0.0;///< V_G that destabilizes the ON state
  double width() const { return upSwitchVoltage - downSwitchVoltage; }
};

/// Quasi-static external gate voltage for a given internal node voltage:
/// V_G(psi) = psi + T_FE * E_s(Q_G(psi)).
double gateVoltageOfInternal(const FefetParams& params, double psi);

/// Scan V_G(psi) for folds and classify the memory window.  The inversion
/// branch window is the fold pair with the largest psi values (the pair
/// between the OFF state and the inversion ON state); accumulation-side
/// folds are reported but not used for the window.
HysteresisWindow analyzeHysteresis(const FefetParams& params,
                                   double psiMin = -4.0, double psiMax = 4.0,
                                   int samples = 16000);

/// Stable internal-node solutions at a given external V_G (quasi-static).
std::vector<double> stableInternalVoltages(const FefetParams& params,
                                           double gateVoltage,
                                           double psiMin = -4.0,
                                           double psiMax = 4.0,
                                           int samples = 16000);

/// Drain current of the stored state: solves the quasi-static equilibrium
/// nearest to `psiSeed` at V_G = vgs and evaluates the MOS current at the
/// given drain bias.
double stateCurrent(const FefetParams& params, double vgs, double vds,
                    double psiSeed);

/// ON/OFF current ratio at V_GS = 0 with the given read drain bias —
/// the paper's "distinguishability" (~1e6).
double distinguishability(const FefetParams& params, double vread);

/// Smallest T_FE for which the device is nonvolatile (window spans V_G=0).
/// Bisection over [tLow, tHigh].  Paper: just above 1.9 nm.
double minimumNonvolatileThickness(const FefetParams& params, double tLow,
                                   double tHigh, double tolerance = 1e-12);

/// One quasi-static branch of the transfer characteristic (Figs. 2a/3a):
/// sweep V_GS while tracking the continuously-connected equilibrium; at a
/// fold the state snaps to the surviving branch (the hysteretic jump).
struct TransferPoint {
  double vgs = 0.0;
  double internalVoltage = 0.0;
  double drainCurrent = 0.0;
  double polarization = 0.0;
};
std::vector<TransferPoint> sweepTransfer(const FefetParams& params,
                                         double vFrom, double vTo, int steps,
                                         double vds, double startPsi);

}  // namespace fefet::core
