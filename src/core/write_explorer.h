// write_explorer.h — write-voltage / write-time / write-energy trade-off
// sweeps for both memory types (paper Fig. 10 and Table 3).
//
// "Write access time" at a given voltage is the minimum pulse width that
// reliably flips the cell (worst polarity of the two); "write failure"
// means even a long pulse cannot flip it (the voltage is inside the
// device's hysteresis window / below the coercive wall).
#pragma once

#include <optional>
#include <vector>

#include "core/cell2t.h"
#include "core/feram_cell.h"

namespace fefet::core {

/// One sweep sample.
struct WritePoint {
  double voltage = 0.0;      ///< bit-line magnitude [V]
  double writeTime = -1.0;   ///< worst-polarity minimum pulse [s]; <0 = fail
  double writeEnergy = 0.0;  ///< all line drivers, at that pulse width [J]
  bool failed = false;
};

/// Sweep the FEFET 2T cell across bit-line voltages.
std::vector<WritePoint> sweepFefetWrite(const Cell2TConfig& config,
                                        const std::vector<double>& voltages,
                                        double maxPulse = 4e-9);

/// Sweep the FERAM 1T-1C cell across write voltages.
std::vector<WritePoint> sweepFeramWrite(const FeRamConfig& config,
                                        const std::vector<double>& voltages,
                                        double maxPulse = 4e-9);

/// Iso-write-time solve: the voltage at which the cell writes in exactly
/// `targetTime` (bisection on the sweep function).  Returns the achieved
/// point (voltage, time, energy).  Used to regenerate Table 3.
WritePoint isoWriteFefet(const Cell2TConfig& config, double targetTime,
                         double vLo = 0.45, double vHi = 1.2);
WritePoint isoWriteFeram(const FeRamConfig& config, double targetTime,
                         double vLo = 1.30, double vHi = 2.6);

/// Smallest voltage at which a write (worst polarity) succeeds at all
/// within `maxPulse` — the paper's write-failure wall (~0.5 V FEFET,
/// ~1.5 V FERAM in Fig. 10(a)).
double fefetWriteWall(const Cell2TConfig& config, double vLo = 0.3,
                      double vHi = 1.0, double maxPulse = 4e-9,
                      double tolerance = 5e-3);
double feramWriteWall(const FeRamConfig& config, double vLo = 1.0,
                      double vHi = 2.2, double maxPulse = 4e-9,
                      double tolerance = 5e-3);

}  // namespace fefet::core
