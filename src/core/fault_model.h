// fault_model.h — seedable fault injection for FEFET memory cells.
//
// Real FeFET arrays live with weak cells and write failures: the memory
// window shrinks with endurance cycling, film non-uniformity leaves a
// tail of cells with collapsed P_r, and marginal cells fail individual
// write pulses.  `FaultInjector` models four fault classes:
//
//   * stuck-at-0 / stuck-at-1: the cell's stored state is pinned and
//     ignores writes (a shorted or dead FE film);
//   * weak cells: memory-window collapse — remnant polarization reduced
//     and V_T shifted, reusing the variability machinery's parameter
//     perturbation so circuit-level reads genuinely see a degraded cell;
//   * transient write failures: an individual write pulse fails to switch
//     the cell with a configurable probability (the cell itself is fine);
//   * retention / depolarization decay: stored polarization relaxes toward
//     the basin boundary during unpowered holds, faster for weak cells.
//
// The per-cell fault class is a pure hash of (seed, row, col), so a given
// seed always yields the same fault map regardless of access order; only
// the transient write-failure draws consume mutable RNG state.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "core/fefet.h"

namespace fefet::core {

enum class CellFault { kNone, kStuckAtZero, kStuckAtOne, kWeak };

/// Rates are per-cell probabilities (fault map) or per-attempt
/// probabilities (transient write failures).  All-zero defaults inject
/// nothing, which keeps fault-free paths bit-identical to the unfaulted
/// code.
struct FaultSpec {
  double stuckAtZeroRate = 0.0;
  double stuckAtOneRate = 0.0;
  double weakCellRate = 0.0;
  /// Weak-cell window collapse: Landau alpha scaled toward zero (P_r and
  /// barrier shrink together) plus a V_T shift.  The paper's T_FE =
  /// 2.25 nm design point sits only ~18% above the minimum nonvolatile
  /// thickness, so bistability at V_G = 0 is lost below a fraction of
  /// ~0.92; the default keeps weak cells bistable but visibly degraded.
  /// Push below 0.92 to model cells whose window has fully collapsed
  /// (the circuit layer will then reject them as volatile).
  double weakAlphaFraction = 0.94;
  double weakVtShift = 40e-3;  ///< [V]
  /// Probability that any single write pulse fails to commit.
  double writeFailureProbability = 0.0;
  /// Fractional polarization loss per second of unpowered hold (healthy
  /// cells); weak cells decay `weakRetentionMultiplier` times faster.
  double retentionDecayPerSecond = 0.0;
  double weakRetentionMultiplier = 20.0;
  /// Behavioral-layer read upset probability of a weak cell (used by the
  /// word-level macro model, where no circuit read exists).
  double weakReadFlipProbability = 0.02;
  std::uint64_t seed = 1;

  bool anyCellFaults() const {
    return stuckAtZeroRate > 0.0 || stuckAtOneRate > 0.0 ||
           weakCellRate > 0.0;
  }
  bool anything() const {
    return anyCellFaults() || writeFailureProbability > 0.0 ||
           retentionDecayPerSecond > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultSpec{}) {}
  explicit FaultInjector(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }

  /// Deterministic fault class of cell (row, col): depends only on the
  /// seed and the coordinates, never on access order.
  CellFault cellFault(int row, int col) const;

  /// Device parameters as degraded by `fault` (identity for kNone and the
  /// stuck classes — stuck cells are pinned behaviorally, not physically).
  FefetParams apply(const FefetParams& nominal, CellFault fault) const;

  /// Draw one transient write-failure event.  `boostScale` >= 1 is the
  /// write-drive voltage scale of this attempt: boosted retries push a
  /// marginal cell harder, so the failure probability shrinks with the
  /// square of the overdrive (empirical nucleation-limited switching).
  bool nextWriteFails(double boostScale = 1.0);

  /// Fraction of (P - P_saddle) retained after `seconds` of unpowered
  /// hold for a cell of the given fault class.
  double retentionFactor(double seconds, CellFault fault) const;

  /// Behavioral read upset draw (weak cells only).
  bool nextReadFlips(CellFault fault);

 private:
  FaultSpec spec_;
  stats::Rng eventRng_;
};

}  // namespace fefet::core
