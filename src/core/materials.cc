#include "core/materials.h"

#include <algorithm>
#include <cmath>

#include "core/cell2t.h"
#include "core/feram_cell.h"
#include "ferro/calibrate.h"

namespace fefet::core {

ferro::LkCoefficients fefetMaterial() {
  ferro::LkCoefficients c;  // Table 2 Landau set
  c.rho = 0.885;            // calibrateFefetRho() = 0.891; shipped with a
                            // ~0.7% kinetic margin so writes at exactly the
                            // 550 ps anchor land robustly inside the basin
  return c;
}

ferro::LkCoefficients feramMaterial() {
  ferro::LkCoefficients c;  // Table 2 Landau set
  c.rho = 0.822;            // calibrateFeramRho() result
  return c;
}

namespace {
double bisectRho(const std::function<double(double)>& worstPulse,
                 double targetTime) {
  const auto calibration = ferro::calibrateRho(
      worstPulse, targetTime, /*rhoMin=*/0.3, /*rhoMax=*/20.0,
      /*relTolerance=*/2e-4);
  return calibration.rho;
}
}  // namespace

double calibrateFefetRho(double vWrite, double targetTime) {
  return bisectRho(
      [&](double rho) {
        Cell2TConfig cfg;
        cfg.fefet.lk.rho = rho;
        Cell2T cell(cfg);
        const double a = cell.minimumWritePulse(true, vWrite, 8e-9, 2e-12);
        const double b = cell.minimumWritePulse(false, vWrite, 8e-9, 2e-12);
        if (a < 0.0 || b < 0.0) return 1.0;  // "infinite" (fails even at max)
        return std::max(a, b);
      },
      targetTime);
}

double calibrateFeramRho(double vWrite, double targetTime) {
  return bisectRho(
      [&](double rho) {
        FeRamConfig cfg;
        cfg.lk.rho = rho;
        FeRamCell cell(cfg);
        const double a = cell.minimumWritePulse(true, vWrite, 8e-9, 2e-12);
        const double b = cell.minimumWritePulse(false, vWrite, 8e-9, 2e-12);
        if (a < 0.0 || b < 0.0) return 1.0;
        return std::max(a, b);
      },
      targetTime);
}

}  // namespace fefet::core
