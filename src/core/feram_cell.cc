#include "core/feram_cell.h"

#include <cmath>

#include "common/error.h"
#include "common/math.h"

namespace fefet::core {

using spice::Probe;
using spice::shapes::dc;
using spice::shapes::pulse;

FeRamCell::FeRamCell(const FeRamConfig& config) : config_(config) {
  auto& n = netlist_;
  // Bit-line driver behind a switch so the BL can float during reads.
  vBl_ = n.add<spice::VoltageSource>("Vbl", n.node("bld"), n.ground(),
                                     dc(0.0));
  blSwitch_ = n.add<spice::TimedSwitch>("Sbl", n.node("bld"), n.node("bl"),
                                        dc(1.0), 50.0);
  vWl_ = n.add<spice::VoltageSource>("Vwl", n.node("wl"), n.ground(),
                                     dc(0.0));
  vPl_ = n.add<spice::VoltageSource>("Vpl", n.node("pl"), n.ground(),
                                     dc(0.0));
  n.add<spice::Capacitor>("Cbl", n.node("bl"), n.ground(),
                          config_.bitLineCap);
  n.add<spice::MosfetDevice>("Macc", n.node("bl"), n.node("wl"), n.node("x"),
                             config_.accessMos, config_.accessWidth);
  const ferro::LandauKhalatnikov lk(config_.lk);
  fe_ = n.add<spice::FeCapDevice>("Cfe", n.node("x"), n.node("pl"),
                                  config_.lk, config_.feGeometry(),
                                  -lk.remnantPolarization());
  sim_ = std::make_unique<spice::Simulator>(netlist_);
  setStoredBit(false);
}

double FeRamCell::remnantPolarization() const {
  return ferro::LandauKhalatnikov(config_.lk).remnantPolarization();
}

void FeRamCell::setStoredBit(bool one) {
  const double pr = remnantPolarization();
  fe_->setPolarization(one ? pr : -pr);
  sim_->initializeUic();
}

bool FeRamCell::storedBit() const { return fe_->polarization() > 0.0; }

FeRamOpResult FeRamCell::runOp(double duration, bool isWrite) {
  for (auto* src : {vBl_, vWl_, vPl_}) src->resetEnergy();
  spice::TransientOptions options;
  options.duration = duration;
  options.dtMax = duration / 200.0;
  options.dtInitial = std::min(1e-12, options.dtMax);
  const std::vector<Probe> probes = {
      Probe::v("bl"), Probe::v("wl"), Probe::v("pl"), Probe::v("x"),
      Probe::deviceState("Cfe", "P"),
  };
  auto transient = sim_->runTransient(options, probes);

  FeRamOpResult result;
  result.waveform = std::move(transient.waveform);
  result.finalPolarization = fe_->polarization();
  result.bitAfter = storedBit();
  for (auto* src : {vBl_, vWl_, vPl_}) {
    result.sourceEnergy[src->name()] = src->energyDelivered();
    result.totalEnergy += src->energyDelivered();
  }
  if (isWrite) {
    const auto p = result.waveform.column("P(Cfe)");
    if (math::hasCrossing(p, 0.0)) {
      result.writeLatency = math::firstCrossing(result.waveform.time(), p,
                                                0.0, p.front() < 0.0);
    }
  }
  return result;
}

FeRamOpResult FeRamCell::write(bool one, double pulseWidth,
                               std::optional<double> voltageOverride) {
  const double vw = voltageOverride.value_or(config_.vWrite);
  const double edge = config_.edgeTime;
  const double lead = 2.0 * edge;
  blSwitch_->setControl(dc(1.0));  // BL driven throughout
  // Word line covers the drive pulse plus write recovery: with BL and PL
  // back at 0 the storage node is held driven while P saturates to +/-P_r.
  vWl_->setShape(pulse(0.0, config_.wordLineBoost, edge, edge,
                       pulseWidth + 4.0 * edge + 0.8 * config_.settleTime,
                       edge));
  if (one) {
    vBl_->setShape(pulse(0.0, vw, lead + edge, edge, pulseWidth, edge));
    vPl_->setShape(dc(0.0));
  } else {
    vBl_->setShape(dc(0.0));
    vPl_->setShape(pulse(0.0, vw, lead + edge, edge, pulseWidth, edge));
  }
  const double duration = lead + pulseWidth + 6.0 * edge + config_.settleTime;
  return runOp(duration, /*isWrite=*/true);
}

FeRamOpResult FeRamCell::read() {
  const double edge = config_.edgeTime;
  // Phase 1: sense.  BL floats after t0; WL on; PL pulses to vWrite.
  const double t0 = 4.0 * edge;
  const double plWidth = 1.2e-9;
  const double senseAt = t0 + edge + 0.8 * plWidth;
  const double phase1 = t0 + plWidth + 6.0 * edge;

  blSwitch_->setControl(
      pulse(1.0, 0.0, t0 - edge, 1e-12, phase1, 1e-12));  // float window
  vBl_->setShape(dc(0.0));
  vWl_->setShape(pulse(0.0, config_.wordLineBoost, edge, edge, phase1, edge));
  vPl_->setShape(pulse(0.0, config_.vWrite, t0, edge, plWidth, edge));

  auto sense = runOp(phase1 + config_.settleTime, /*isWrite=*/false);
  sense.bitLineSwing = sense.waveform.maximum("v(bl)");
  const bool readOne =
      sense.waveform.valueAt("v(bl)", senseAt) > config_.senseThreshold;
  sense.bitRead = readOne;

  // Phase 2: write back the sensed value (a read of '0' leaves -P_r in
  // place, but the restore drive also recovers any depolarization).
  auto restore = write(readOne, 0.8e-9);
  FeRamOpResult result;
  result.waveform = std::move(sense.waveform);
  result.bitRead = readOne;
  result.bitLineSwing = sense.bitLineSwing;
  result.finalPolarization = restore.finalPolarization;
  result.bitAfter = restore.bitAfter;
  for (const auto& [name, e] : sense.sourceEnergy) {
    result.sourceEnergy[name] += e;
  }
  for (const auto& [name, e] : restore.sourceEnergy) {
    result.sourceEnergy[name] += e;
  }
  result.totalEnergy = sense.totalEnergy + restore.totalEnergy;
  return result;
}

FeRamOpResult FeRamCell::hold(double duration) {
  blSwitch_->setControl(dc(1.0));
  vBl_->setShape(dc(0.0));
  vWl_->setShape(dc(0.0));
  vPl_->setShape(dc(0.0));
  return runOp(duration, /*isWrite=*/false);
}

double FeRamCell::minimumWritePulse(bool one, double vWrite, double maxPulse,
                                    double resolution) {
  const auto attempt = [&](double width) {
    setStoredBit(!one);
    const auto r = write(one, width, vWrite);
    return r.bitAfter == one;
  };
  if (!attempt(maxPulse)) return -1.0;
  double lo = 0.0, hi = maxPulse;
  while (hi - lo > resolution) {
    const double mid = 0.5 * (lo + hi);
    (attempt(mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace fefet::core
