#include "core/macro_energy.h"

#include <sstream>

#include "common/strings.h"

namespace fefet::core {

MacroEnergyModel::MacroEnergyModel(const MacroConfig& config)
    : config_(config) {}

MacroNumbers MacroEnergyModel::fefet() const {
  const auto& c = config_;
  const auto cell = layout::fefet2TCell(c.rules, c.transistorWidth);
  const auto arr = layout::tileArray(cell, c.rows, c.cols);

  // Line capacitances.
  const double cRow = arr.rowWireLength * c.metalCapPerLength +
                      c.cols * c.fefetGateLoadPerCell;
  const double cCol = arr.colWireLength * c.metalCapPerLength +
                      c.rows * c.fefetJunctionPerCell;

  // Write: accessed WS boosts, unaccessed WS at -VDD (amortized over the
  // burst), word bit lines swing +/-V_write, cells switch.
  const double eWsAccessed = cRow * c.writeBoost * c.writeBoost;
  const double eWsUnaccessed = (c.rows - 1) * cRow * c.vddFefet * c.vddFefet /
                               c.writeBurstLength;
  const double eBitLines = c.wordBits * cCol * c.vddFefet * c.vddFefet;
  const double eCells = c.wordBits * c.fefetCellWriteEnergy;
  const double writePhysics = eWsAccessed + eWsUnaccessed + eBitLines + eCells;

  // Read: RS line to V_read, current-limited sensing on each word bit.
  const double eRsLine = cRow * c.vRead * c.vRead;
  const double eSense =
      c.wordBits * c.fefetReadCurrent * c.vRead * c.fefetReadWindow;
  const double readPhysics = eRsLine + eSense;

  MacroNumbers m;
  m.bitLineVoltage = c.vddFefet;
  m.writeTime = 550e-12;  // calibrated cell anchor
  m.writeEnergy = writePhysics * c.peripheralOverhead;
  // Peripheral overhead applies to switched lines/drivers; the DC sense
  // current is cell-level physics and is not multiplied.
  m.readEnergy = eRsLine * c.peripheralOverhead + eSense;
  (void)readPhysics;
  std::ostringstream os;
  os << "FEFET write/word: WSacc=" << strings::siFormat(eWsAccessed, "J")
     << " WSunacc=" << strings::siFormat(eWsUnaccessed, "J")
     << " WBL=" << strings::siFormat(eBitLines, "J")
     << " cells=" << strings::siFormat(eCells, "J") << " x overhead "
     << c.peripheralOverhead << "; read/word: RS="
     << strings::siFormat(eRsLine, "J") << " sense="
     << strings::siFormat(eSense, "J");
  m.breakdown = os.str();
  return m;
}

MacroNumbers MacroEnergyModel::feram() const {
  const auto& c = config_;
  const auto cell = layout::feram1T1CCell(c.rules, c.transistorWidth);
  const auto arr = layout::tileArray(cell, c.rows, c.cols);

  const double cWl = arr.rowWireLength * c.metalCapPerLength +
                     c.cols * c.feramGateLoadPerCell;
  const double cPl = arr.rowWireLength * c.metalCapPerLength +
                     c.cols * c.feramFeCapLinearPerCell;
  const double cBl = arr.colWireLength * c.metalCapPerLength +
                     c.rows * c.feramJunctionPerCell;

  // Write: boosted WL, bipolar plate pulsing (feramPlatePhases phases of
  // PL and BL activity), cells switch 2 P_r A of charge.
  const double eWl = cWl * c.wordLineBoost * c.wordLineBoost;
  const double eBl =
      c.feramPlatePhases * c.wordBits * cBl * c.vddFeram * c.vddFeram;
  const double ePl = c.feramPlatePhases * cPl * c.vddFeram * c.vddFeram;
  const double eCells = c.wordBits * c.feramCellWriteEnergy;
  const double writePhysics = eWl + eBl + ePl + eCells;

  // Read: destructive — the develop plate pulse is the first half of the
  // restore plate cycle, so read + write-back together cost one full write
  // cycle plus the voltage sense amplifier.
  const double readPhysics =
      writePhysics + c.feramSenseEnergy / c.peripheralOverhead;

  MacroNumbers m;
  m.bitLineVoltage = c.vddFeram;
  m.writeTime = 550e-12;
  m.writeEnergy = writePhysics * c.peripheralOverhead;
  m.readEnergy = readPhysics * c.peripheralOverhead;
  std::ostringstream os;
  os << "FERAM write/word: WL=" << strings::siFormat(eWl, "J")
     << " BL=" << strings::siFormat(eBl, "J")
     << " PL=" << strings::siFormat(ePl, "J")
     << " cells=" << strings::siFormat(eCells, "J") << " x overhead "
     << c.peripheralOverhead << "; read = develop + restore";
  m.breakdown = os.str();
  return m;
}

double MacroEnergyModel::writeEnergySavings() const {
  return 1.0 - fefet().writeEnergy / feram().writeEnergy;
}

double MacroEnergyModel::writeVoltageReduction() const {
  return 1.0 - config_.vddFefet / config_.vddFeram;
}

}  // namespace fefet::core
