// ecc.h — SECDED (single-error-correct, double-error-detect) Hamming codes
// over memory words.
//
// A `SecdedCodec` is parameterized by the data width k: it chooses the
// smallest m with 2^m >= k + m + 1 Hamming check bits and adds one overall
// parity bit, giving the classic (k + m + 1, k) extended Hamming code —
// (72, 64) for 64-bit words, (39, 32) for 32-bit words.  Data and check
// bits are kept separate (the array stores them in dedicated columns), so
// encode() returns just the check-bit word and decode() takes both.
//
// Decode semantics:
//   * syndrome 0, overall parity good  -> kClean
//   * overall parity bad               -> exactly one bit flipped; the
//     syndrome locates it (0 = the overall parity bit itself) and it is
//     corrected, in data or check bits -> kCorrectedSingle
//   * syndrome != 0, overall good      -> two bits flipped; uncorrectable
//     but detected                     -> kDetectedDouble
#pragma once

#include <cstdint>
#include <vector>

namespace fefet::core {

enum class EccStatus { kClean, kCorrectedSingle, kDetectedDouble };

struct EccDecode {
  std::uint64_t data = 0;      ///< corrected data word
  EccStatus status = EccStatus::kClean;
  /// Corrected bit location: data-bit index for data errors, or
  /// dataBits()+j for check-bit j, dataBits()+checkBits() for the overall
  /// parity bit.  -1 when nothing was corrected.
  int correctedBit = -1;
};

class SecdedCodec {
 public:
  /// `dataBits` in 1..64.
  explicit SecdedCodec(int dataBits);

  int dataBits() const { return dataBits_; }
  /// Hamming check bits (excluding the overall parity bit).
  int checkBits() const { return checkBits_; }
  /// All redundant bits: Hamming checks + overall parity.
  int parityBits() const { return checkBits_ + 1; }
  /// Total stored bits per codeword.
  int codewordBits() const { return dataBits_ + parityBits(); }

  /// Check-bit word for `data`: Hamming checks in bits [0, checkBits()),
  /// overall parity in bit checkBits().
  std::uint16_t encode(std::uint64_t data) const;

  /// Decode a possibly corrupted (data, parity) pair.
  EccDecode decode(std::uint64_t data, std::uint16_t parity) const;

 private:
  int dataBits_;
  int checkBits_;
  /// Hamming codeword position (1-based, power-of-two slots are check
  /// bits) of each data bit.
  std::vector<int> positionOfDataBit_;
  /// Inverse map: data bit index per position (-1 for check positions).
  std::vector<int> dataBitOfPosition_;
};

}  // namespace fefet::core
