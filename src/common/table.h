// table.h — console table and CSV writers used by the benchmark harnesses to
// print the paper's tables and figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fefet {

/// A simple column-aligned text table.  Build with addRow(); print() pads
/// every column to its widest cell and draws a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Render to a stream.
  void print(std::ostream& os) const;

  /// Render to a string (convenience for tests).
  std::string toString() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming CSV writer; `row({"a","b"})` quotes cells containing commas.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void row(const std::vector<std::string>& cells);
  void numericRow(const std::vector<double>& values, int digits = 9);

 private:
  std::ostream& os_;
};

}  // namespace fefet
