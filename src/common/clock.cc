#include "common/clock.h"

#include <atomic>
#include <chrono>

namespace fefet {

namespace {
std::chrono::steady_clock::time_point processStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the anchor during static initialization so monotonicNanos() is
// measured from (approximately) process start even if the first explicit
// call happens late.
const auto g_anchor = processStart();
}  // namespace

std::uint64_t monotonicNanos() {
  (void)g_anchor;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processStart())
          .count());
}

int currentThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace fefet
