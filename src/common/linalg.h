// linalg.h — dense and sparse linear algebra for the MNA solver.
//
// DenseMatrix + LU with partial pivoting covers small circuits (cells,
// sense amplifiers).  SparseMatrix with a row-map LU covers memory arrays,
// where the MNA matrix is extremely sparse.  CsrView lets the compiled
// stamp pipeline hand its fixed-pattern slot storage to the factorizers
// without copying, and the LinearSolver facade at the bottom picks the
// right backend for a given size/assembly combination.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace fefet::linalg {

/// Read-only compressed-sparse-row view of a square matrix whose storage
/// lives elsewhere (the compiled stamp pipeline's slot buffer).  rowPtr has
/// n + 1 entries; colIdx is ascending within each row; values parallels
/// colIdx.  Entries may hold explicit 0.0 — like the row-map path with
/// structure reuse, explicit zeros are numerically inert in the LU.
struct CsrView {
  std::size_t n = 0;
  std::span<const std::size_t> rowPtr;
  std::span<const std::size_t> colIdx;
  std::span<const double> values;
};

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void setZero();

  /// Raw row-major storage (size rows*cols).
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// y = A x.
  std::vector<double> multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

namespace detail {
/// In-place dense LU with partial pivoting: eliminates `lu`, records the
/// row permutation in `perm` (resized to n) and returns the max/min pivot
/// magnitude ratio.  Shared by DenseLu and DenseLuFactorizer so the two
/// produce bit-identical factors by construction.
double denseLuFactorInPlace(DenseMatrix& lu, std::vector<std::size_t>& perm);
/// Permute + forward/backward substitution with a factor from above.
void denseLuSolve(const DenseMatrix& lu, const std::vector<std::size_t>& perm,
                  std::span<const double> b, std::span<double> x);
}  // namespace detail

/// LU factorization with partial pivoting of a square dense matrix.
/// Throws NumericalError when the matrix is numerically singular.
class DenseLu {
 public:
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b for x.
  std::vector<double> solve(std::span<const double> b) const;

  /// Largest pivot magnitude ratio encountered (diagnostic).
  double conditionEstimate() const { return pivotRatio_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivotRatio_ = 0.0;
};

/// Dense LU with a reusable workspace: factor() copies the input into a
/// preallocated matrix and eliminates in place, so refactoring a
/// same-sized matrix performs no heap allocation.  Runs the same kernel as
/// DenseLu — results are bit-identical to constructing a fresh DenseLu.
class DenseLuFactorizer {
 public:
  /// Factor an n x n matrix given in row-major order.
  /// Throws NumericalError when the matrix is numerically singular.
  void factor(std::size_t n, std::span<const double> rowMajor);
  void factor(const DenseMatrix& a) { factor(a.rows(), a.data()); }

  /// Solve A x = b with the most recent factorization (x sized n).
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Multi-RHS solve: b and x hold `nrhs` column-contiguous right-hand
  /// sides / solutions (column c occupies [c*n, (c+1)*n)).  The blocked
  /// substitution walks the factor once and applies every elimination step
  /// to all columns, so each column's arithmetic sequence — and therefore
  /// its IEEE result — is bit-identical to a scalar solve() of that column.
  void solveMulti(std::span<const double> b, std::span<double> x,
                  std::size_t nrhs) const;

  bool factored() const { return factored_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  bool factored_ = false;
  double pivotRatio_ = 0.0;
};

/// Square sparse matrix stored as one std::map<col,double> per row.
/// Assembly-friendly (random add), solvable with a fill-in-tolerant LU.
/// This trades peak speed for simplicity and robustness, which is the right
/// call for array-scale MNA systems (thousands of nodes, ~5 entries/row).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(std::size_t n) : rows_(n) {}

  std::size_t size() const { return rows_.size(); }

  void add(std::size_t r, std::size_t c, double v) { rows_[r][c] += v; }
  void setZero();

  /// Zero every stored value but keep the sparsity pattern (map nodes).
  /// Re-assembling the same circuit then touches existing nodes instead of
  /// re-allocating them, and downstream structure caches see a stable
  /// pattern.  Entries that receive no contribution stay as explicit 0.0,
  /// which is numerically inert for LU (zero multipliers are skipped and
  /// zero updates do not change values).
  void setZeroKeepStructure();

  const std::map<std::size_t, double>& row(std::size_t r) const {
    return rows_[r];
  }

  std::vector<double> multiply(std::span<const double> x) const;
  std::size_t nonZeros() const;

 private:
  std::vector<std::map<std::size_t, double>> rows_;
};

/// Sparse LU with partial (threshold) pivoting over the row maps.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  std::vector<double> solve(std::span<const double> b) const;

 private:
  std::vector<std::map<std::size_t, double>> lower_;  // unit diagonal implied
  std::vector<std::map<std::size_t, double>> upper_;
  std::vector<std::size_t> perm_;  // row permutation: perm_[k] = original row
};

/// Sparse LU with a reusable symbolic structure.
///
/// The MNA pattern of a frozen netlist is fixed, but `SparseLu` rediscovers
/// it from scratch on every Newton iteration: it copies the row maps, finds
/// fill-in positions by map insertion, and rebuilds the L/U maps.  This
/// class performs that symbolic analysis once and caches
///  * the full per-row fill pattern (original entries + fill),
///  * the pivot sequence the magnitude-based partial pivoting chose,
/// so later factorizations of a same-pattern matrix run *numerically only*
/// on preallocated contiguous arrays.
///
/// Correctness contract: `factor()` + `solve()` produce solutions that are
/// bit-identical to constructing a fresh `SparseLu` each time.  The numeric
/// refactorization replays the identical elimination arithmetic in the
/// identical order, and it re-runs the pivot *search* each call: if the
/// values have drifted enough that partial pivoting would pick a different
/// row (or the assembled pattern changed), the cache is discarded and a
/// full symbolic factorization runs instead — so pivot quality is never
/// sacrificed for speed.
class SparseLuFactorizer {
 public:
  SparseLuFactorizer() = default;

  /// Factor `a`, reusing the cached structure when possible.
  /// Throws NumericalError when the matrix is numerically singular.
  void factor(const SparseMatrix& a);

  /// Factor a CSR matrix with external value storage (compiled stamp
  /// pipeline).  The CSR pattern of a frozen netlist never changes, so
  /// after the first call every factorization takes the fast
  /// position-exact value-scatter path — no heap allocation unless the
  /// pivot sequence drifts and a full symbolic pass must rerun.
  void factor(const CsrView& a);

  /// Solve A x = b with the most recent factorization.
  std::vector<double> solve(std::span<const double> b) const;
  /// Allocation-free overload: x must be sized n.
  void solve(std::span<const double> b, std::span<double> x) const;

  /// Multi-RHS solve over `nrhs` column-contiguous right-hand sides (see
  /// DenseLuFactorizer::solveMulti).  One traversal of the cached factor
  /// serves all columns; per-column results are bit-identical to solve().
  void solveMulti(std::span<const double> b, std::span<double> x,
                  std::size_t nrhs) const;

  bool factored() const { return factored_; }

  /// Diagnostics: how many full (symbolic + numeric) factorizations and
  /// how many structure-reusing numeric refactorizations have run.
  long fullFactorizations() const { return fullFactorizations_; }
  long numericRefactorizations() const { return numericRefactorizations_; }
  /// Numeric refactorizations abandoned because partial pivoting chose a
  /// different row than the cached sequence (each one also counts a full
  /// factorization).
  long pivotFallbacks() const { return pivotFallbacks_; }

 private:
  bool loadValues(const SparseMatrix& a);
  bool loadValues(const CsrView& a);
  bool refactorNumeric();
  void factorFull(const SparseMatrix& a);

  std::size_t n_ = 0;
  bool factored_ = false;
  bool structureValid_ = false;

  // Cached structure, one entry per original row r:
  //  origCols_[r]  — assembled (pre-fill) pattern, ascending;
  //  fullCols_[r]  — assembled + fill pattern, ascending;
  //  origPos_[r]   — position of origCols_[r][k] inside fullCols_[r].
  std::vector<std::vector<std::size_t>> origCols_;
  std::vector<std::vector<std::size_t>> fullCols_;
  std::vector<std::vector<std::size_t>> origPos_;
  std::vector<std::size_t> cachedPerm_;  ///< pivot sequence of the cache

  // Current factorization (in-place LU over the full pattern): vals_[r][j]
  // holds, for column fullCols_[r][j], the L multiplier (col < pivot step
  // of row r) or the U value (col >= pivot step).
  std::vector<std::vector<double>> vals_;
  std::vector<std::size_t> perm_;  ///< position k -> original row
  /// Scratch for refactorNumeric's position -> row table; a member so a
  /// structure-reusing refactorization performs no heap allocation.
  std::vector<std::size_t> rowOfScratch_;

  long fullFactorizations_ = 0;
  long numericRefactorizations_ = 0;
  long pivotFallbacks_ = 0;
};

/// Facade unifying the direct solvers behind one interface: dense LU below
/// the crossover, sparse LU above it, with or without symbolic-structure
/// reuse.  One instance owns the reusable factorizers, so callers (legacy
/// MnaSystem and the compiled Assembler alike) get structure caching and
/// allocation-free refactorization without knowing which backend runs.
/// Every overload is bit-identical to calling the underlying factorizer
/// directly.
class LinearSolver {
 public:
  LinearSolver(std::size_t n, bool sparse) : n_(n), sparse_(sparse) {}

  std::size_t size() const { return n_; }
  bool sparse() const { return sparse_; }

  /// Solve A x = b for row-map assembly (legacy path).  With
  /// reuseStructure the cached-pattern factorizer runs; without it a
  /// fresh SparseLu factors from scratch (diagnostic A/B path).
  void solve(const SparseMatrix& a, std::span<const double> b,
             std::vector<double>& x, bool reuseStructure);

  /// Solve A x = b for dense assembly.  The reusable-workspace dense LU
  /// always runs (it is bit-identical to a fresh DenseLu and allocates
  /// nothing after the first call), so reuseStructure is irrelevant here.
  void solve(const DenseMatrix& a, std::span<const double> b,
             std::vector<double>& x);
  /// Same, for an n x n row-major matrix in external storage.
  void solve(std::span<const double> rowMajor, std::span<const double> b,
             std::vector<double>& x);

  /// Solve A x = b for CSR assembly with external values (compiled path).
  /// With reuseStructure the steady state performs no heap allocation;
  /// without it the matrix is copied into a row-map and factored fresh.
  void solve(const CsrView& a, std::span<const double> b,
             std::vector<double>& x, bool reuseStructure);

  /// Multi-RHS variants: factor A once and solve `nrhs` column-contiguous
  /// right-hand sides in one blocked substitution pass.  Each column is
  /// bit-identical to the corresponding single-RHS solve() call.
  void solveMulti(const CsrView& a, std::span<const double> b,
                  std::vector<double>& x, std::size_t nrhs,
                  bool reuseStructure);
  void solveMulti(std::span<const double> rowMajor, std::span<const double> b,
                  std::vector<double>& x, std::size_t nrhs);

  /// Structure-cache diagnostics (zeros on the dense path).
  const SparseLuFactorizer& sparseFactorizer() const { return sparseFactor_; }

 private:
  std::size_t n_;
  bool sparse_;
  SparseLuFactorizer sparseFactor_;
  DenseLuFactorizer denseFactor_;
};

/// Infinity norm of a vector.
double normInf(std::span<const double> v);

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

}  // namespace fefet::linalg
