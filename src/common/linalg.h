// linalg.h — dense and sparse linear algebra for the MNA solver.
//
// DenseMatrix + LU with partial pivoting covers small circuits (cells,
// sense amplifiers).  SparseMatrix with a row-map LU covers memory arrays,
// where the MNA matrix is extremely sparse.  The spice::LinearSolver picks
// between them by size.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace fefet::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void setZero();

  /// y = A x.
  std::vector<double> multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square dense matrix.
/// Throws NumericalError when the matrix is numerically singular.
class DenseLu {
 public:
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b for x.
  std::vector<double> solve(std::span<const double> b) const;

  /// Largest pivot magnitude ratio encountered (diagnostic).
  double conditionEstimate() const { return pivotRatio_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivotRatio_ = 0.0;
};

/// Square sparse matrix stored as one std::map<col,double> per row.
/// Assembly-friendly (random add), solvable with a fill-in-tolerant LU.
/// This trades peak speed for simplicity and robustness, which is the right
/// call for array-scale MNA systems (thousands of nodes, ~5 entries/row).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(std::size_t n) : rows_(n) {}

  std::size_t size() const { return rows_.size(); }

  void add(std::size_t r, std::size_t c, double v) { rows_[r][c] += v; }
  void setZero();

  /// Zero every stored value but keep the sparsity pattern (map nodes).
  /// Re-assembling the same circuit then touches existing nodes instead of
  /// re-allocating them, and downstream structure caches see a stable
  /// pattern.  Entries that receive no contribution stay as explicit 0.0,
  /// which is numerically inert for LU (zero multipliers are skipped and
  /// zero updates do not change values).
  void setZeroKeepStructure();

  const std::map<std::size_t, double>& row(std::size_t r) const {
    return rows_[r];
  }

  std::vector<double> multiply(std::span<const double> x) const;
  std::size_t nonZeros() const;

 private:
  std::vector<std::map<std::size_t, double>> rows_;
};

/// Sparse LU with partial (threshold) pivoting over the row maps.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  std::vector<double> solve(std::span<const double> b) const;

 private:
  std::vector<std::map<std::size_t, double>> lower_;  // unit diagonal implied
  std::vector<std::map<std::size_t, double>> upper_;
  std::vector<std::size_t> perm_;  // row permutation: perm_[k] = original row
};

/// Sparse LU with a reusable symbolic structure.
///
/// The MNA pattern of a frozen netlist is fixed, but `SparseLu` rediscovers
/// it from scratch on every Newton iteration: it copies the row maps, finds
/// fill-in positions by map insertion, and rebuilds the L/U maps.  This
/// class performs that symbolic analysis once and caches
///  * the full per-row fill pattern (original entries + fill),
///  * the pivot sequence the magnitude-based partial pivoting chose,
/// so later factorizations of a same-pattern matrix run *numerically only*
/// on preallocated contiguous arrays.
///
/// Correctness contract: `factor()` + `solve()` produce solutions that are
/// bit-identical to constructing a fresh `SparseLu` each time.  The numeric
/// refactorization replays the identical elimination arithmetic in the
/// identical order, and it re-runs the pivot *search* each call: if the
/// values have drifted enough that partial pivoting would pick a different
/// row (or the assembled pattern changed), the cache is discarded and a
/// full symbolic factorization runs instead — so pivot quality is never
/// sacrificed for speed.
class SparseLuFactorizer {
 public:
  SparseLuFactorizer() = default;

  /// Factor `a`, reusing the cached structure when possible.
  /// Throws NumericalError when the matrix is numerically singular.
  void factor(const SparseMatrix& a);

  /// Solve A x = b with the most recent factorization.
  std::vector<double> solve(std::span<const double> b) const;

  bool factored() const { return factored_; }

  /// Diagnostics: how many full (symbolic + numeric) factorizations and
  /// how many structure-reusing numeric refactorizations have run.
  long fullFactorizations() const { return fullFactorizations_; }
  long numericRefactorizations() const { return numericRefactorizations_; }
  /// Numeric refactorizations abandoned because partial pivoting chose a
  /// different row than the cached sequence (each one also counts a full
  /// factorization).
  long pivotFallbacks() const { return pivotFallbacks_; }

 private:
  bool loadValues(const SparseMatrix& a);
  bool refactorNumeric();
  void factorFull(const SparseMatrix& a);

  std::size_t n_ = 0;
  bool factored_ = false;
  bool structureValid_ = false;

  // Cached structure, one entry per original row r:
  //  origCols_[r]  — assembled (pre-fill) pattern, ascending;
  //  fullCols_[r]  — assembled + fill pattern, ascending;
  //  origPos_[r]   — position of origCols_[r][k] inside fullCols_[r].
  std::vector<std::vector<std::size_t>> origCols_;
  std::vector<std::vector<std::size_t>> fullCols_;
  std::vector<std::vector<std::size_t>> origPos_;
  std::vector<std::size_t> cachedPerm_;  ///< pivot sequence of the cache

  // Current factorization (in-place LU over the full pattern): vals_[r][j]
  // holds, for column fullCols_[r][j], the L multiplier (col < pivot step
  // of row r) or the U value (col >= pivot step).
  std::vector<std::vector<double>> vals_;
  std::vector<std::size_t> perm_;  ///< position k -> original row

  long fullFactorizations_ = 0;
  long numericRefactorizations_ = 0;
  long pivotFallbacks_ = 0;
};

/// Infinity norm of a vector.
double normInf(std::span<const double> v);

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

}  // namespace fefet::linalg
