// linalg.h — dense and sparse linear algebra for the MNA solver.
//
// DenseMatrix + LU with partial pivoting covers small circuits (cells,
// sense amplifiers).  SparseMatrix with a row-map LU covers memory arrays,
// where the MNA matrix is extremely sparse.  The spice::LinearSolver picks
// between them by size.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace fefet::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void setZero();

  /// y = A x.
  std::vector<double> multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square dense matrix.
/// Throws NumericalError when the matrix is numerically singular.
class DenseLu {
 public:
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b for x.
  std::vector<double> solve(std::span<const double> b) const;

  /// Largest pivot magnitude ratio encountered (diagnostic).
  double conditionEstimate() const { return pivotRatio_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  double pivotRatio_ = 0.0;
};

/// Square sparse matrix stored as one std::map<col,double> per row.
/// Assembly-friendly (random add), solvable with a fill-in-tolerant LU.
/// This trades peak speed for simplicity and robustness, which is the right
/// call for array-scale MNA systems (thousands of nodes, ~5 entries/row).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(std::size_t n) : rows_(n) {}

  std::size_t size() const { return rows_.size(); }

  void add(std::size_t r, std::size_t c, double v) { rows_[r][c] += v; }
  void setZero();

  const std::map<std::size_t, double>& row(std::size_t r) const {
    return rows_[r];
  }

  std::vector<double> multiply(std::span<const double> x) const;
  std::size_t nonZeros() const;

 private:
  std::vector<std::map<std::size_t, double>> rows_;
};

/// Sparse LU with partial (threshold) pivoting over the row maps.
class SparseLu {
 public:
  explicit SparseLu(const SparseMatrix& a);

  std::vector<double> solve(std::span<const double> b) const;

 private:
  std::vector<std::map<std::size_t, double>> lower_;  // unit diagonal implied
  std::vector<std::map<std::size_t, double>> upper_;
  std::vector<std::size_t> perm_;  // row permutation: perm_[k] = original row
};

/// Infinity norm of a vector.
double normInf(std::span<const double> v);

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

}  // namespace fefet::linalg
