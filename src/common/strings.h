// strings.h — formatting helpers: engineering/SI notation for the benchmark
// tables ("0.68 V", "550 ps", "4.82 pJ") and small string utilities.
#pragma once

#include <string>
#include <vector>

namespace fefet::strings {

/// Format `value` with an SI prefix and the given unit, e.g.
/// siFormat(5.5e-10, "s") -> "550 ps"; siFormat(0.68, "V") -> "680 mV".
/// `digits` controls significant digits of the mantissa.
std::string siFormat(double value, const std::string& unit, int digits = 3);

/// Fixed-precision decimal, e.g. fixed(0.6789, 2) -> "0.68".
std::string fixedFormat(double value, int decimals);

/// printf-style %g with the given significant digits.
std::string generalFormat(double value, int digits = 6);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& separator);

/// Left/right pad to a width with spaces.
std::string padLeft(const std::string& s, std::size_t width);
std::string padRight(const std::string& s, std::size_t width);

/// Escape a string for embedding inside JSON double quotes: quotes,
/// backslashes and control characters become \", \\, \n, \uXXXX, ….
/// Shared by the structured log sink, the metrics snapshot serializer and
/// the trace exporter (obs/), so every JSON emitter escapes identically.
std::string jsonEscape(const std::string& s);

/// JSON-safe number rendering: round-trippable %.17g for finite values;
/// NaN and infinities (not representable in JSON) render as 0 with the
/// sign preserved for -inf.
std::string jsonNumber(double value);

}  // namespace fefet::strings
