// clock.h — shared monotonic clock and thread-id helpers.
//
// Telemetry (obs/trace), structured logging (common/log) and any other
// subsystem that timestamps events read the same monotonic nanosecond
// clock, so spans and log lines interleave consistently in one timeline.
// Thread ids are small dense integers assigned on first use — stable for
// the thread's lifetime and friendly to trace viewers (tid 0, 1, 2 …
// instead of opaque pthread handles).
#pragma once

#include <cstdint>

namespace fefet {

/// Nanoseconds on the monotonic clock since process start (first call).
/// Never decreases; unaffected by wall-clock adjustments.
std::uint64_t monotonicNanos();

/// Small dense id of the calling thread (0 for the first thread that
/// asks, 1 for the next, …).  Stable for the thread's lifetime.
int currentThreadId();

}  // namespace fefet
