#include "common/error.h"

#include <sstream>

namespace fefet {

std::string SolverDiagnostics::summary() const {
  std::ostringstream os;
  if (time >= 0.0) os << "t=" << time << " s, ";
  os << "smallest dt=" << smallestDt << " s, " << dtCuts << " dt cuts, "
     << gminEscalations << " gmin escalations, " << steps << " steps, "
     << newtonIterations << " Newton iterations";
  if (finalResidualNorm > 0.0) os << ", residual=" << finalResidualNorm;
  return os.str();
}

NumericalError::NumericalError(const std::string& what,
                               const SolverDiagnostics& diag)
    : Error(what + " [" + diag.summary() + "]"),
      diagnostics_(diag),
      hasDiagnostics_(true) {}

SimulationError::SimulationError(const std::string& what,
                                 const SolverDiagnostics& diag)
    : Error(what + " [" + diag.summary() + "]"),
      diagnostics_(diag),
      hasDiagnostics_(true) {}

namespace detail {

void throwRequireFailure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << message << " [" << expr << "] at " << file
     << ":" << line;
  throw InvalidArgumentError(os.str());
}

}  // namespace detail
}  // namespace fefet
