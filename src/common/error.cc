#include "common/error.h"

#include <sstream>

namespace fefet::detail {

void throwRequireFailure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << message << " [" << expr << "] at " << file
     << ":" << line;
  throw InvalidArgumentError(os.str());
}

}  // namespace fefet::detail
