// math.h — scalar numerical utilities: root finding, quadrature, ODE steps,
// interpolation.  These are the building blocks for the ferroelectric
// physics (static solves of the Landau polynomial) and for measurement
// post-processing (threshold crossings, energy integrals).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace fefet::math {

/// Sign of x as -1.0, 0.0 or +1.0.
double sign(double x);

/// Smooth softplus: log(1 + exp(x)) computed without overflow.
double softplus(double x);

/// Derivative of softplus, i.e. the logistic function 1/(1+exp(-x)).
double logistic(double x);

/// Evaluate a polynomial with coefficients in ascending order
/// (c[0] + c[1] x + c[2] x^2 + ...).
double polyval(std::span<const double> ascendingCoefficients, double x);

struct RootOptions {
  double xTolerance = 1e-14;
  double fTolerance = 0.0;   ///< also accept |f| <= fTolerance
  int maxIterations = 200;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs
/// (or one of them to be zero).  Throws NumericalError otherwise.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& options = {});

/// Brent's method (inverse-quadratic + secant + bisection) on [lo, hi].
/// Same bracketing requirement as bisect(); converges much faster on smooth
/// functions.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& options = {});

/// Find all sign changes of f sampled at `samples` uniformly spaced points in
/// [lo, hi], then polish each bracket with Brent.  Returns roots in
/// ascending order.  Useful for multi-valued load-line intersections.
std::vector<double> findAllRoots(const std::function<double(double)>& f,
                                 double lo, double hi, int samples = 400,
                                 const RootOptions& options = {});

/// Trapezoidal integral of samples y(x) over possibly non-uniform x.
/// x and y must have equal size >= 2.
double trapz(std::span<const double> x, std::span<const double> y);

/// Cumulative trapezoidal integral; result[i] = integral of y up to x[i],
/// result[0] = 0.
std::vector<double> cumtrapz(std::span<const double> x,
                             std::span<const double> y);

/// Linear interpolation of tabulated (x, y) at query point q.  x must be
/// strictly increasing.  Queries outside [x.front(), x.back()] clamp to
/// the boundary sample (q <= x.front() returns y.front(), q >= x.back()
/// returns y.back()) — this never extrapolates.
double interp1(std::span<const double> x, std::span<const double> y, double q);

/// First time/abscissa at which the sampled waveform y(x) crosses `level`
/// moving in direction `rising` (true: from below to >= level).  Linear
/// interpolation between samples.  Throws SimulationError when no crossing
/// exists.
double firstCrossing(std::span<const double> x, std::span<const double> y,
                     double level, bool rising);

/// Does the sampled waveform cross `level` at all (either direction)?
bool hasCrossing(std::span<const double> y, double level);

/// One classic RK4 step for dy/dt = f(t, y) on a scalar state.
double rk4Step(const std::function<double(double, double)>& f, double t,
               double y, double dt);

/// Integrate dy/dt = f(t, y) from t0 to t1 with fixed-step RK4 and record the
/// trajectory.  Returns (t, y) samples including both endpoints.
struct Trajectory {
  std::vector<double> t;
  std::vector<double> y;
};
Trajectory integrateRk4(const std::function<double(double, double)>& f,
                        double t0, double t1, double y0, int steps);

}  // namespace fefet::math
