// deadline.h — wall-clock budgets and cooperative cancellation.
//
// Long runs (Monte-Carlo sweeps, design-space grids, bench suites) need one
// wall-clock budget that governs the whole job, with each layer below it —
// sweep point, transient run, Newton iteration — observing its share.  A
// Deadline is a cheap value type over the monotonic clock:
//
//  * expired() is a sub-microsecond poll safe to call every Newton
//    iteration;
//  * child(seconds) derives a tighter deadline (min of the parent's
//    remaining budget and the child's own share), so a per-point timeout
//    can never outlive the sweep budget it nests inside;
//  * a Deadline carries CancelTokens: withToken() attaches one, and
//    expired() also fires when ANY attached token has been cancelled.
//    Children inherit their parent's tokens, so cancelling a sweep cancels
//    every point, while a point's own token (added by the straggler
//    watchdog) cancels just that point.
//
// Deadlines never throw by themselves — callers poll expired() and raise
// DeadlineExceeded (common/error.h) with whatever diagnostics they hold.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

namespace fefet {

/// Shared cancellation flag.  Copies refer to the same flag; cancelling is
/// sticky and thread-safe (relaxed atomics — a cancel only needs to become
/// visible eventually, not synchronize data).
class CancelToken {
 public:
  CancelToken();

  void requestCancel() const;
  bool cancelled() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: unlimited, no tokens — expired() is always false.
  Deadline() = default;

  /// Expires `seconds` from now (monotonic clock).  Non-positive budgets
  /// are already expired.
  static Deadline after(double seconds);
  /// Never expires by time (tokens may still cancel it).
  static Deadline unlimited() { return Deadline(); }

  bool hasTimeLimit() const { return limited_; }
  /// True once the time budget has elapsed or any attached token was
  /// cancelled.  Cheap enough to poll per Newton iteration.
  bool expired() const;
  /// Seconds left before the time limit; +infinity when unlimited, 0 when
  /// already past it.  Token cancellation does not change this value.
  double remainingSeconds() const;

  /// A deadline `seconds` from now, clipped to this deadline's remaining
  /// budget, inheriting every attached token.  child(infinity) just copies
  /// the parent (useful when a layer has no budget of its own).
  Deadline child(double seconds) const;
  /// This deadline with `token` attached as one more cancellation source.
  Deadline withToken(const CancelToken& token) const;

 private:
  bool limited_ = false;
  Clock::time_point end_{};
  std::vector<CancelToken> tokens_;  ///< expired when ANY is cancelled
};

}  // namespace fefet
