#include "common/linalg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace fefet::linalg {

void DenseMatrix::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(std::span<const double> x) const {
  FEFET_REQUIRE(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

namespace detail {

double denseLuFactorInPlace(DenseMatrix& lu, std::vector<std::size_t>& perm) {
  FEFET_REQUIRE(lu.rows() == lu.cols(), "DenseLu: matrix not square");
  const std::size_t n = lu.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  double maxPivot = 0.0, minPivot = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude in column k at/below k.
    std::size_t pivotRow = k;
    double pivotMag = std::abs(lu.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu.at(r, k));
      if (mag > pivotMag) {
        pivotMag = mag;
        pivotRow = r;
      }
    }
    if (pivotMag < 1e-300) {
      std::ostringstream os;
      os << "DenseLu: singular matrix at elimination step " << k << " of "
         << n;
      throw NumericalError(os.str());
    }
    if (pivotRow != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu.at(k, c), lu.at(pivotRow, c));
      }
      std::swap(perm[k], perm[pivotRow]);
    }
    if (k == 0) {
      maxPivot = minPivot = pivotMag;
    } else {
      maxPivot = std::max(maxPivot, pivotMag);
      minPivot = std::min(minPivot, pivotMag);
    }
    const double pivot = lu.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu.at(r, k) / pivot;
      lu.at(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu.at(r, c) -= factor * lu.at(k, c);
      }
    }
  }
  return (minPivot > 0.0) ? maxPivot / minPivot : 0.0;
}

void denseLuSolve(const DenseMatrix& lu, const std::vector<std::size_t>& perm,
                  std::span<const double> b, std::span<double> x) {
  const std::size_t n = lu.rows();
  FEFET_REQUIRE(b.size() == n && x.size() == n,
                "DenseLu::solve: size mismatch");
  // Apply permutation, then forward substitution on unit-lower L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu.at(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution on U.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu.at(i, j) * x[j];
    x[i] = acc / lu.at(i, i);
  }
}

}  // namespace detail

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  pivotRatio_ = detail::denseLuFactorInPlace(lu_, perm_);
}

std::vector<double> DenseLu::solve(std::span<const double> b) const {
  std::vector<double> x(lu_.rows());
  detail::denseLuSolve(lu_, perm_, b, x);
  return x;
}

void DenseLuFactorizer::factor(std::size_t n, std::span<const double> rowMajor) {
  FEFET_REQUIRE(rowMajor.size() == n * n,
                "DenseLuFactorizer: matrix storage size mismatch");
  factored_ = false;
  if (lu_.rows() != n) lu_ = DenseMatrix(n, n);
  std::copy(rowMajor.begin(), rowMajor.end(), lu_.data().begin());
  pivotRatio_ = detail::denseLuFactorInPlace(lu_, perm_);
  factored_ = true;
}

void DenseLuFactorizer::solve(std::span<const double> b,
                              std::span<double> x) const {
  FEFET_REQUIRE(factored_, "DenseLuFactorizer::solve called before factor()");
  detail::denseLuSolve(lu_, perm_, b, x);
}

void DenseLuFactorizer::solveMulti(std::span<const double> b,
                                   std::span<double> x,
                                   std::size_t nrhs) const {
  FEFET_REQUIRE(factored_,
                "DenseLuFactorizer::solveMulti called before factor()");
  const std::size_t n = lu_.rows();
  FEFET_REQUIRE(b.size() == n * nrhs && x.size() == n * nrhs,
                "DenseLuFactorizer::solveMulti: size mismatch");
  // Permutation, column by column.
  for (std::size_t c = 0; c < nrhs; ++c) {
    for (std::size_t i = 0; i < n; ++i) x[c * n + i] = b[c * n + perm_[i]];
  }
  // Forward substitution on unit-lower L, blocked over columns.  For every
  // column the updates to x[c*n + i] happen in the same j order as the
  // scalar kernel's register accumulation, so the results are
  // bit-identical per column.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double l = lu_.at(i, j);
      for (std::size_t c = 0; c < nrhs; ++c) {
        x[c * n + i] -= l * x[c * n + j];
      }
    }
  }
  // Backward substitution on U.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double u = lu_.at(i, j);
      for (std::size_t c = 0; c < nrhs; ++c) {
        x[c * n + i] -= u * x[c * n + j];
      }
    }
    const double diag = lu_.at(i, i);
    for (std::size_t c = 0; c < nrhs; ++c) x[c * n + i] /= diag;
  }
}

void SparseMatrix::setZero() {
  for (auto& row : rows_) row.clear();
}

void SparseMatrix::setZeroKeepStructure() {
  for (auto& row : rows_) {
    for (auto& [c, v] : row) v = 0.0;
  }
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  FEFET_REQUIRE(x.size() == rows_.size(), "SparseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_.size(), 0.0);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    double acc = 0.0;
    for (const auto& [c, v] : rows_[r]) acc += v * x[c];
    y[r] = acc;
  }
  return y;
}

std::size_t SparseMatrix::nonZeros() const {
  std::size_t nz = 0;
  for (const auto& row : rows_) nz += row.size();
  return nz;
}

SparseLu::SparseLu(const SparseMatrix& a) {
  const std::size_t n = a.size();
  // Working copy of the rows; we eliminate in place.
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) rows[r] = a.row(r);

  perm_.resize(n);
  std::vector<std::size_t> rowOf(n);  // position k -> original row index
  for (std::size_t i = 0; i < n; ++i) rowOf[i] = i;

  lower_.assign(n, {});
  upper_.assign(n, {});

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot: among remaining rows, pick the one with the largest |entry| in
    // column k (partial pivoting, like the dense path).
    std::size_t best = n;
    double bestMag = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double mag = std::abs(it->second);
      if (mag > bestMag) {
        bestMag = mag;
        best = i;
      }
    }
    if (best == n || bestMag < 1e-300) {
      std::ostringstream os;
      os << "SparseLu: singular matrix at elimination step " << k << " of "
         << n;
      throw NumericalError(os.str());
    }
    std::swap(rowOf[k], rowOf[best]);
    const std::size_t prow = rowOf[k];
    const double pivot = rows[prow][k];

    // Record U row k (entries at columns >= k).
    upper_[k] = rows[prow];

    // Eliminate column k from all remaining rows that contain it.
    for (std::size_t i = k + 1; i < n; ++i) {
      auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double factor = it->second / pivot;
      row.erase(it);
      lower_[rowOf[i]][k] = factor;
      if (factor == 0.0) continue;
      for (auto uit = upper_[k].upper_bound(k); uit != upper_[k].end();
           ++uit) {
        row[uit->first] -= factor * uit->second;
      }
    }
  }
  perm_ = rowOf;

  // Re-key lower_ so that lower_[k] holds the multipliers of the row placed
  // at position k (in elimination order).
  std::vector<std::map<std::size_t, double>> lowerByPos(n);
  for (std::size_t k = 0; k < n; ++k) lowerByPos[k] = lower_[perm_[k]];
  lower_ = std::move(lowerByPos);
}

std::vector<double> SparseLu::solve(std::span<const double> b) const {
  const std::size_t n = perm_.size();
  FEFET_REQUIRE(b.size() == n, "SparseLu::solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution: L has unit diagonal; lower_[i] keys are column
  // positions (< i) in elimination order.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (const auto& [j, v] : lower_[i]) acc -= v * x[j];
    x[i] = acc;
  }
  // Backward substitution on U.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    double diag = 0.0;
    for (const auto& [j, v] : upper_[i]) {
      if (j == i) {
        diag = v;
      } else if (j > i) {
        acc -= v * x[j];
      }
    }
    x[i] = acc / diag;
  }
  return x;
}

void SparseLuFactorizer::factor(const SparseMatrix& a) {
  if (loadValues(a)) {
    if (refactorNumeric()) {
      ++numericRefactorizations_;
      return;
    }
    ++pivotFallbacks_;
  }
  factorFull(a);
}

void SparseLuFactorizer::factor(const CsrView& a) {
  if (loadValues(a)) {
    if (refactorNumeric()) {
      ++numericRefactorizations_;
      return;
    }
    ++pivotFallbacks_;
  }
  // Full symbolic pass: copy the CSR entries (explicit zeros included, so
  // the harvested origCols_ pattern matches the view exactly and the next
  // loadValues(CsrView) takes the fast path) into the row-map form the
  // symbolic factorization works on.  This runs once per pattern — and
  // again only on pivot drift.
  SparseMatrix rowMap(a.n);
  for (std::size_t r = 0; r < a.n; ++r) {
    for (std::size_t p = a.rowPtr[r]; p < a.rowPtr[r + 1]; ++p) {
      rowMap.add(r, a.colIdx[p], a.values[p]);
    }
  }
  factorFull(rowMap);
}

bool SparseLuFactorizer::loadValues(const SparseMatrix& a) {
  if (!structureValid_ || a.size() != n_) return false;
  for (std::size_t r = 0; r < n_; ++r) {
    const auto& row = a.row(r);
    if (row.size() != origCols_[r].size()) return false;
    auto& v = vals_[r];
    std::fill(v.begin(), v.end(), 0.0);
    std::size_t q = 0;
    for (const auto& [c, val] : row) {
      if (origCols_[r][q] != c) return false;
      v[origPos_[r][q]] = val;
      ++q;
    }
  }
  return true;
}

bool SparseLuFactorizer::loadValues(const CsrView& a) {
  if (!structureValid_ || a.n != n_) return false;
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t begin = a.rowPtr[r];
    const std::size_t count = a.rowPtr[r + 1] - begin;
    const auto& cols = origCols_[r];
    if (count != cols.size()) return false;
    auto& v = vals_[r];
    std::fill(v.begin(), v.end(), 0.0);
    const auto& pos = origPos_[r];
    for (std::size_t q = 0; q < count; ++q) {
      if (a.colIdx[begin + q] != cols[q]) return false;
      v[pos[q]] = a.values[begin + q];
    }
  }
  return true;
}

bool SparseLuFactorizer::refactorNumeric() {
  // Replays the elimination of factorFull() on the cached fill pattern.
  // The pivot *search* is identical (largest magnitude in column k among
  // remaining rows, first-wins ties, same scan order), so whenever the
  // search agrees with the cached pivot sequence the arithmetic — values
  // and evaluation order both — matches a fresh factorization exactly.
  // Cached fill slots that a fresh run has not created yet hold 0.0 and
  // are inert: a zero can never win the pivot scan, a zero multiplier
  // skips its update loop, and zero update terms do not change values.
  rowOfScratch_.resize(n_);
  std::vector<std::size_t>& rowOf = rowOfScratch_;
  for (std::size_t i = 0; i < n_; ++i) rowOf[i] = i;

  const auto findCol = [this](std::size_t r, std::size_t c) -> std::ptrdiff_t {
    const auto& cols = fullCols_[r];
    const auto it = std::lower_bound(cols.begin(), cols.end(), c);
    if (it == cols.end() || *it != c) return -1;
    return it - cols.begin();
  };

  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t best = n_;
    double bestMag = 0.0;
    for (std::size_t i = k; i < n_; ++i) {
      const std::ptrdiff_t p = findCol(rowOf[i], k);
      if (p < 0) continue;
      const double mag = std::abs(vals_[rowOf[i]][static_cast<std::size_t>(p)]);
      if (mag > bestMag) {
        bestMag = mag;
        best = i;
      }
    }
    if (best == n_ || bestMag < 1e-300) {
      // Cached fill entries are explicit zeros and cannot be selected, so
      // a fresh factorization of this matrix is singular here too.
      factored_ = false;
      std::ostringstream os;
      os << "SparseLu: singular matrix at elimination step " << k << " of "
         << n_;
      throw NumericalError(os.str());
    }
    if (rowOf[best] != cachedPerm_[k]) return false;  // pivot drift
    std::swap(rowOf[k], rowOf[best]);
    const std::size_t prow = rowOf[k];
    const auto& pcols = fullCols_[prow];
    auto& pvals = vals_[prow];
    const std::size_t pk = static_cast<std::size_t>(findCol(prow, k));
    const double pivot = pvals[pk];

    for (std::size_t i = k + 1; i < n_; ++i) {
      const std::size_t r2 = rowOf[i];
      const std::ptrdiff_t pos = findCol(r2, k);
      if (pos < 0) continue;
      auto& rv = vals_[r2];
      const double factor = rv[static_cast<std::size_t>(pos)] / pivot;
      rv[static_cast<std::size_t>(pos)] = factor;  // now the L multiplier
      if (factor == 0.0) continue;
      const auto& rcols = fullCols_[r2];
      std::size_t ai = static_cast<std::size_t>(pos) + 1;
      for (std::size_t bi = pk + 1; bi < pcols.size(); ++bi) {
        const std::size_t c = pcols[bi];
        while (ai < rcols.size() && rcols[ai] < c) ++ai;
        if (ai >= rcols.size() || rcols[ai] != c) return false;  // bad cache
        rv[ai] -= factor * pvals[bi];
        ++ai;
      }
    }
  }
  perm_ = cachedPerm_;
  factored_ = true;
  return true;
}

void SparseLuFactorizer::factorFull(const SparseMatrix& a) {
  const std::size_t n = a.size();
  n_ = n;
  structureValid_ = false;
  factored_ = false;
  ++fullFactorizations_;

  // Same elimination as SparseLu's constructor, with the original pattern
  // recorded up front and the final fill pattern harvested afterwards.
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) rows[r] = a.row(r);
  std::vector<std::map<std::size_t, double>> lower(n);

  origCols_.assign(n, {});
  for (std::size_t r = 0; r < n; ++r) {
    origCols_[r].reserve(rows[r].size());
    for (const auto& [c, v] : rows[r]) origCols_[r].push_back(c);
  }

  std::vector<std::size_t> rowOf(n);
  for (std::size_t i = 0; i < n; ++i) rowOf[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = n;
    double bestMag = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double mag = std::abs(it->second);
      if (mag > bestMag) {
        bestMag = mag;
        best = i;
      }
    }
    if (best == n || bestMag < 1e-300) {
      std::ostringstream os;
      os << "SparseLu: singular matrix at elimination step " << k << " of "
         << n;
      throw NumericalError(os.str());
    }
    std::swap(rowOf[k], rowOf[best]);
    const std::size_t prow = rowOf[k];
    const double pivot = rows[prow][k];
    for (std::size_t i = k + 1; i < n; ++i) {
      auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double factor = it->second / pivot;
      row.erase(it);
      lower[rowOf[i]][k] = factor;
      if (factor == 0.0) continue;
      const auto& urow = rows[prow];
      for (auto uit = urow.upper_bound(k); uit != urow.end(); ++uit) {
        row[uit->first] -= factor * uit->second;
      }
    }
  }
  perm_ = rowOf;
  cachedPerm_ = rowOf;

  // Harvest the in-place layout: row r keeps its L multipliers (columns
  // below its pivot position) followed by its U entries — both maps are
  // already sorted and L columns all precede U columns.
  fullCols_.assign(n, {});
  vals_.assign(n, {});
  origPos_.assign(n, {});
  for (std::size_t r = 0; r < n; ++r) {
    auto& cols = fullCols_[r];
    auto& v = vals_[r];
    cols.reserve(lower[r].size() + rows[r].size());
    v.reserve(cols.capacity());
    for (const auto& [c, val] : lower[r]) {
      cols.push_back(c);
      v.push_back(val);
    }
    for (const auto& [c, val] : rows[r]) {
      cols.push_back(c);
      v.push_back(val);
    }
    origPos_[r].resize(origCols_[r].size());
    std::size_t j = 0;
    for (std::size_t q = 0; q < origCols_[r].size(); ++q) {
      while (cols[j] != origCols_[r][q]) ++j;
      origPos_[r][q] = j;
    }
  }
  structureValid_ = true;
  factored_ = true;
}

std::vector<double> SparseLuFactorizer::solve(
    std::span<const double> b) const {
  std::vector<double> x(n_);
  solve(b, x);
  return x;
}

void SparseLuFactorizer::solve(std::span<const double> b,
                               std::span<double> x) const {
  FEFET_REQUIRE(factored_, "SparseLuFactorizer::solve called before factor()");
  FEFET_REQUIRE(b.size() == n_ && x.size() == n_,
                "SparseLuFactorizer::solve: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward substitution: row perm_[i] pivoted at position i, so its
  // entries at columns < i are the unit-lower multipliers.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = perm_[i];
    const auto& cols = fullCols_[r];
    const auto& v = vals_[r];
    double acc = x[i];
    for (std::size_t j = 0; j < cols.size() && cols[j] < i; ++j) {
      acc -= v[j] * x[cols[j]];
    }
    x[i] = acc;
  }
  // Backward substitution on U (columns >= i of row perm_[i]).
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t r = perm_[i];
    const auto& cols = fullCols_[r];
    const auto& v = vals_[r];
    double acc = x[i];
    double diag = 0.0;
    const std::size_t start = static_cast<std::size_t>(
        std::lower_bound(cols.begin(), cols.end(), i) - cols.begin());
    for (std::size_t j = start; j < cols.size(); ++j) {
      if (cols[j] == i) {
        diag = v[j];
      } else {
        acc -= v[j] * x[cols[j]];
      }
    }
    x[i] = acc / diag;
  }
}

void SparseLuFactorizer::solveMulti(std::span<const double> b,
                                    std::span<double> x,
                                    std::size_t nrhs) const {
  FEFET_REQUIRE(factored_,
                "SparseLuFactorizer::solveMulti called before factor()");
  FEFET_REQUIRE(b.size() == n_ * nrhs && x.size() == n_ * nrhs,
                "SparseLuFactorizer::solveMulti: size mismatch");
  for (std::size_t c = 0; c < nrhs; ++c) {
    for (std::size_t i = 0; i < n_; ++i) x[c * n_ + i] = b[c * n_ + perm_[i]];
  }
  // Forward substitution, blocked over columns: every (i, j) elimination
  // step is applied to all right-hand sides before moving on, so each
  // column sees the identical operation sequence as the scalar solve().
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = perm_[i];
    const auto& cols = fullCols_[r];
    const auto& v = vals_[r];
    for (std::size_t j = 0; j < cols.size() && cols[j] < i; ++j) {
      const double l = v[j];
      const std::size_t cj = cols[j];
      for (std::size_t c = 0; c < nrhs; ++c) {
        x[c * n_ + i] -= l * x[c * n_ + cj];
      }
    }
  }
  // Backward substitution on U.
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t r = perm_[i];
    const auto& cols = fullCols_[r];
    const auto& v = vals_[r];
    double diag = 0.0;
    const std::size_t start = static_cast<std::size_t>(
        std::lower_bound(cols.begin(), cols.end(), i) - cols.begin());
    for (std::size_t j = start; j < cols.size(); ++j) {
      if (cols[j] == i) {
        diag = v[j];
        continue;
      }
      const double u = v[j];
      const std::size_t cj = cols[j];
      for (std::size_t c = 0; c < nrhs; ++c) {
        x[c * n_ + i] -= u * x[c * n_ + cj];
      }
    }
    for (std::size_t c = 0; c < nrhs; ++c) x[c * n_ + i] /= diag;
  }
}

void LinearSolver::solve(const SparseMatrix& a, std::span<const double> b,
                         std::vector<double>& x, bool reuseStructure) {
  x.resize(n_);
  if (reuseStructure) {
    sparseFactor_.factor(a);
    sparseFactor_.solve(b, x);
    return;
  }
  SparseLu lu(a);
  x = lu.solve(b);
}

void LinearSolver::solve(const DenseMatrix& a, std::span<const double> b,
                         std::vector<double>& x) {
  solve(a.data(), b, x);
}

void LinearSolver::solve(std::span<const double> rowMajor,
                         std::span<const double> b, std::vector<double>& x) {
  x.resize(n_);
  denseFactor_.factor(n_, rowMajor);
  denseFactor_.solve(b, x);
}

void LinearSolver::solve(const CsrView& a, std::span<const double> b,
                         std::vector<double>& x, bool reuseStructure) {
  x.resize(n_);
  if (reuseStructure) {
    sparseFactor_.factor(a);
    sparseFactor_.solve(b, x);
    return;
  }
  // A/B diagnostic path: factor from scratch every call, exactly like the
  // legacy row-map assembly with structure reuse off.
  SparseMatrix rowMap(a.n);
  for (std::size_t r = 0; r < a.n; ++r) {
    for (std::size_t p = a.rowPtr[r]; p < a.rowPtr[r + 1]; ++p) {
      rowMap.add(r, a.colIdx[p], a.values[p]);
    }
  }
  SparseLu lu(rowMap);
  x = lu.solve(b);
}

void LinearSolver::solveMulti(const CsrView& a, std::span<const double> b,
                              std::vector<double>& x, std::size_t nrhs,
                              bool reuseStructure) {
  x.resize(n_ * nrhs);
  if (reuseStructure) {
    sparseFactor_.factor(a);
    sparseFactor_.solveMulti(b, x, nrhs);
    return;
  }
  // Diagnostic path: one fresh factorization, column-at-a-time solves —
  // still factor-once, matching the scalar no-reuse path per column.
  SparseMatrix rowMap(a.n);
  for (std::size_t r = 0; r < a.n; ++r) {
    for (std::size_t p = a.rowPtr[r]; p < a.rowPtr[r + 1]; ++p) {
      rowMap.add(r, a.colIdx[p], a.values[p]);
    }
  }
  SparseLu lu(rowMap);
  for (std::size_t c = 0; c < nrhs; ++c) {
    const std::vector<double> col = lu.solve(b.subspan(c * n_, n_));
    std::copy(col.begin(), col.end(), x.begin() + static_cast<std::ptrdiff_t>(c * n_));
  }
}

void LinearSolver::solveMulti(std::span<const double> rowMajor,
                              std::span<const double> b,
                              std::vector<double>& x, std::size_t nrhs) {
  x.resize(n_ * nrhs);
  denseFactor_.factor(n_, rowMajor);
  denseFactor_.solveMulti(b, x, nrhs);
}

double normInf(std::span<const double> v) {
  double m = 0.0;
  for (double e : v) m = std::max(m, std::abs(e));
  return m;
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double e : v) acc += e * e;
  return std::sqrt(acc);
}

}  // namespace fefet::linalg
