#include "common/linalg.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace fefet::linalg {

void DenseMatrix::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> DenseMatrix::multiply(std::span<const double> x) const {
  FEFET_REQUIRE(x.size() == cols_, "DenseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  FEFET_REQUIRE(lu_.rows() == lu_.cols(), "DenseLu: matrix not square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  double maxPivot = 0.0, minPivot = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude in column k at/below k.
    std::size_t pivotRow = k;
    double pivotMag = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, k));
      if (mag > pivotMag) {
        pivotMag = mag;
        pivotRow = r;
      }
    }
    if (pivotMag < 1e-300) {
      std::ostringstream os;
      os << "DenseLu: singular matrix at elimination step " << k << " of "
         << n;
      throw NumericalError(os.str());
    }
    if (pivotRow != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_.at(k, c), lu_.at(pivotRow, c));
      }
      std::swap(perm_[k], perm_[pivotRow]);
    }
    if (k == 0) {
      maxPivot = minPivot = pivotMag;
    } else {
      maxPivot = std::max(maxPivot, pivotMag);
      minPivot = std::min(minPivot, pivotMag);
    }
    const double pivot = lu_.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.at(r, k) / pivot;
      lu_.at(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_.at(r, c) -= factor * lu_.at(k, c);
      }
    }
  }
  pivotRatio_ = (minPivot > 0.0) ? maxPivot / minPivot : 0.0;
}

std::vector<double> DenseLu::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  FEFET_REQUIRE(b.size() == n, "DenseLu::solve: size mismatch");
  std::vector<double> x(n);
  // Apply permutation, then forward substitution on unit-lower L.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_.at(i, j) * x[j];
    x[i] = acc;
  }
  // Backward substitution on U.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu_.at(i, j) * x[j];
    x[i] = acc / lu_.at(i, i);
  }
  return x;
}

void SparseMatrix::setZero() {
  for (auto& row : rows_) row.clear();
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  FEFET_REQUIRE(x.size() == rows_.size(), "SparseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_.size(), 0.0);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    double acc = 0.0;
    for (const auto& [c, v] : rows_[r]) acc += v * x[c];
    y[r] = acc;
  }
  return y;
}

std::size_t SparseMatrix::nonZeros() const {
  std::size_t nz = 0;
  for (const auto& row : rows_) nz += row.size();
  return nz;
}

SparseLu::SparseLu(const SparseMatrix& a) {
  const std::size_t n = a.size();
  // Working copy of the rows; we eliminate in place.
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) rows[r] = a.row(r);

  perm_.resize(n);
  std::vector<std::size_t> rowOf(n);  // position k -> original row index
  for (std::size_t i = 0; i < n; ++i) rowOf[i] = i;

  lower_.assign(n, {});
  upper_.assign(n, {});

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot: among remaining rows, pick the one with the largest |entry| in
    // column k (partial pivoting, like the dense path).
    std::size_t best = n;
    double bestMag = 0.0;
    for (std::size_t i = k; i < n; ++i) {
      const auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double mag = std::abs(it->second);
      if (mag > bestMag) {
        bestMag = mag;
        best = i;
      }
    }
    if (best == n || bestMag < 1e-300) {
      std::ostringstream os;
      os << "SparseLu: singular matrix at elimination step " << k << " of "
         << n;
      throw NumericalError(os.str());
    }
    std::swap(rowOf[k], rowOf[best]);
    const std::size_t prow = rowOf[k];
    const double pivot = rows[prow][k];

    // Record U row k (entries at columns >= k).
    upper_[k] = rows[prow];

    // Eliminate column k from all remaining rows that contain it.
    for (std::size_t i = k + 1; i < n; ++i) {
      auto& row = rows[rowOf[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double factor = it->second / pivot;
      row.erase(it);
      lower_[rowOf[i]][k] = factor;
      if (factor == 0.0) continue;
      for (auto uit = upper_[k].upper_bound(k); uit != upper_[k].end();
           ++uit) {
        row[uit->first] -= factor * uit->second;
      }
    }
  }
  perm_ = rowOf;

  // Re-key lower_ so that lower_[k] holds the multipliers of the row placed
  // at position k (in elimination order).
  std::vector<std::map<std::size_t, double>> lowerByPos(n);
  for (std::size_t k = 0; k < n; ++k) lowerByPos[k] = lower_[perm_[k]];
  lower_ = std::move(lowerByPos);
}

std::vector<double> SparseLu::solve(std::span<const double> b) const {
  const std::size_t n = perm_.size();
  FEFET_REQUIRE(b.size() == n, "SparseLu::solve: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution: L has unit diagonal; lower_[i] keys are column
  // positions (< i) in elimination order.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (const auto& [j, v] : lower_[i]) acc -= v * x[j];
    x[i] = acc;
  }
  // Backward substitution on U.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    double diag = 0.0;
    for (const auto& [j, v] : upper_[i]) {
      if (j == i) {
        diag = v;
      } else if (j > i) {
        acc -= v * x[j];
      }
    }
    x[i] = acc / diag;
  }
  return x;
}

double normInf(std::span<const double> v) {
  double m = 0.0;
  for (double e : v) m = std::max(m, std::abs(e));
  return m;
}

double norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double e : v) acc += e * e;
  return std::sqrt(acc);
}

}  // namespace fefet::linalg
