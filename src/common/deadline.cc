#include "common/deadline.h"

#include <algorithm>
#include <limits>

namespace fefet {

CancelToken::CancelToken()
    : flag_(std::make_shared<std::atomic<bool>>(false)) {}

void CancelToken::requestCancel() const {
  flag_->store(true, std::memory_order_relaxed);
}

bool CancelToken::cancelled() const {
  return flag_->load(std::memory_order_relaxed);
}

Deadline Deadline::after(double seconds) {
  Deadline d;
  d.limited_ = true;
  if (seconds <= 0.0) {
    d.end_ = Clock::now();
    return d;
  }
  // Clamp absurd budgets so the duration arithmetic cannot overflow.
  const double capped =
      std::min(seconds, 1e9);  // ~31 years: effectively unlimited
  d.end_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(capped));
  return d;
}

bool Deadline::expired() const {
  for (const auto& token : tokens_) {
    if (token.cancelled()) return true;
  }
  return limited_ && Clock::now() >= end_;
}

double Deadline::remainingSeconds() const {
  if (!limited_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(end_ - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

Deadline Deadline::child(double seconds) const {
  if (!(seconds < std::numeric_limits<double>::infinity())) return *this;
  Deadline d = Deadline::after(std::min(seconds, remainingSeconds()));
  d.tokens_ = tokens_;
  return d;
}

Deadline Deadline::withToken(const CancelToken& token) const {
  Deadline d = *this;
  d.tokens_.push_back(token);
  return d;
}

}  // namespace fefet
