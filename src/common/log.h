// log.h — tiny leveled logger.
//
// The simulator emits progress/diagnostic messages through this singleton so
// tests can silence them and benches can raise verbosity.  The logger itself
// is thread-compatible: the level is atomic, the sink is mutex-guarded so
// concurrent lines never interleave, and each thread can carry a prefix
// (sweep workers tag their lines with the point being simulated).  Each
// *simulation* remains single-threaded; only independent sweep points run
// concurrently (see sim/sweep_engine.h).
//
// Output format: human-readable "[LEVEL] prefix message" lines by default;
// with FEFET_LOG_JSON=1 in the environment each line is instead one JSON
// object {"ts":seconds,"level":...,"thread":N,"prefix":...,"msg":...}
// with ts/thread taken from common/clock.h — the same monotonic clock and
// thread ids the trace collector (obs/trace.h) stamps spans with, so log
// lines and spans line up on one timeline.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace fefet {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logger.  Default level is kWarn so library users see problems but
/// not chatter.
class Log {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void setLevel(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Per-thread line prefix (e.g. "sweep[3] "); empty by default.  Sweep
  /// workers set this so concurrent simulations stay attributable.
  /// Prefer ScopedThreadPrefix: pooled threads outlive the task that set
  /// the prefix, and a prefix that is not cleared leaks into whatever the
  /// thread runs next.
  static void setThreadPrefix(std::string prefix);
  static const std::string& threadPrefix();

  /// True when the JSON sink is active (FEFET_LOG_JSON=1 at startup, or
  /// setJsonSink).  For tests.
  static bool jsonSink();
  /// Override the sink format at runtime (tests; benches normally rely on
  /// the environment variable).
  static void setJsonSink(bool json);

  /// Emit one line at `level` (no-op when below the global threshold).
  /// Serialized across threads.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::atomic<LogLevel> level_;
};

/// RAII thread prefix: sets on construction, restores the previous prefix
/// on destruction.  The sweep worker loops wrap each task in one of these
/// so pooled threads never leak a stale "sweep[N] " prefix into later
/// work (the bug this class exists to prevent).
class ScopedThreadPrefix {
 public:
  explicit ScopedThreadPrefix(std::string prefix)
      : previous_(Log::threadPrefix()) {
    Log::setThreadPrefix(std::move(prefix));
  }
  ~ScopedThreadPrefix() { Log::setThreadPrefix(std::move(previous_)); }

  ScopedThreadPrefix(const ScopedThreadPrefix&) = delete;
  ScopedThreadPrefix& operator=(const ScopedThreadPrefix&) = delete;

 private:
  std::string previous_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define FEFET_LOG(levelArg)                               \
  if (::fefet::Log::level() > (levelArg)) {               \
  } else                                                  \
    ::fefet::detail::LogLine(levelArg)

#define FEFET_TRACE() FEFET_LOG(::fefet::LogLevel::kTrace)
#define FEFET_DEBUG() FEFET_LOG(::fefet::LogLevel::kDebug)
#define FEFET_INFO() FEFET_LOG(::fefet::LogLevel::kInfo)
#define FEFET_WARN() FEFET_LOG(::fefet::LogLevel::kWarn)
#define FEFET_ERROR() FEFET_LOG(::fefet::LogLevel::kError)

}  // namespace fefet
