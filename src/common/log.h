// log.h — tiny leveled logger.
//
// The simulator emits progress/diagnostic messages through this singleton so
// tests can silence them and benches can raise verbosity.  Not thread-safe by
// design: the library is single-threaded per simulation.
#pragma once

#include <sstream>
#include <string>

namespace fefet {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logger.  Default level is kWarn so library users see problems but
/// not chatter.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void setLevel(LogLevel level) { level_ = level; }

  /// Emit one line at `level` (no-op when below the global threshold).
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define FEFET_LOG(levelArg)                               \
  if (::fefet::Log::level() > (levelArg)) {               \
  } else                                                  \
    ::fefet::detail::LogLine(levelArg)

#define FEFET_TRACE() FEFET_LOG(::fefet::LogLevel::kTrace)
#define FEFET_DEBUG() FEFET_LOG(::fefet::LogLevel::kDebug)
#define FEFET_INFO() FEFET_LOG(::fefet::LogLevel::kInfo)
#define FEFET_WARN() FEFET_LOG(::fefet::LogLevel::kWarn)
#define FEFET_ERROR() FEFET_LOG(::fefet::LogLevel::kError)

}  // namespace fefet
