#include "common/math.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace fefet::math {

double sign(double x) { return (x > 0.0) - (x < 0.0); }

double softplus(double x) {
  if (x > 35.0) return x;           // exp(x) overflows double's useful range
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double logistic(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double polyval(std::span<const double> c, double x) {
  double acc = 0.0;
  for (std::size_t i = c.size(); i-- > 0;) acc = acc * x + c[i];
  return acc;
}

namespace {
void requireBracket(double flo, double fhi, double lo, double hi) {
  if (flo * fhi > 0.0) {
    std::ostringstream os;
    os << "root not bracketed on [" << lo << ", " << hi << "]: f(lo)=" << flo
       << ", f(hi)=" << fhi;
    throw NumericalError(os.str());
  }
}
}  // namespace

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& options) {
  FEFET_REQUIRE(lo < hi, "bisect: empty interval");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  requireBracket(flo, fhi, lo, hi);
  for (int i = 0; i < options.maxIterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || std::abs(fmid) <= options.fTolerance ||
        (hi - lo) < options.xTolerance * std::max(1.0, std::abs(mid))) {
      return mid;
    }
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& options) {
  FEFET_REQUIRE(lo < hi, "brent: empty interval");
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  requireBracket(fa, fb, lo, hi);
  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol =
        2.0 * 1e-16 * std::abs(b) + 0.5 * options.xTolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0 ||
        std::abs(fb) <= options.fTolerance) {
      return b;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {           // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {                // inverse quadratic
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  return b;
}

std::vector<double> findAllRoots(const std::function<double(double)>& f,
                                 double lo, double hi, int samples,
                                 const RootOptions& options) {
  FEFET_REQUIRE(samples >= 2, "findAllRoots: need at least 2 samples");
  std::vector<double> roots;
  double xPrev = lo;
  double fPrev = f(lo);
  for (int i = 1; i <= samples; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / samples;
    const double fx = f(x);
    if (fPrev == 0.0) {
      roots.push_back(xPrev);
    } else if (fPrev * fx < 0.0) {
      roots.push_back(brent(f, xPrev, x, options));
    }
    xPrev = x;
    fPrev = fx;
  }
  if (fPrev == 0.0) roots.push_back(xPrev);
  return roots;
}

double trapz(std::span<const double> x, std::span<const double> y) {
  FEFET_REQUIRE(x.size() == y.size() && x.size() >= 2,
                "trapz: mismatched or short inputs");
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    acc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return acc;
}

std::vector<double> cumtrapz(std::span<const double> x,
                             std::span<const double> y) {
  FEFET_REQUIRE(x.size() == y.size() && !x.empty(),
                "cumtrapz: mismatched or empty inputs");
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return out;
}

double interp1(std::span<const double> x, std::span<const double> y,
               double q) {
  FEFET_REQUIRE(x.size() == y.size() && x.size() >= 2,
                "interp1: mismatched or short inputs");
  if (q <= x.front()) return y.front();
  if (q >= x.back()) return y.back();
  const auto it = std::upper_bound(x.begin(), x.end(), q);
  const std::size_t i = static_cast<std::size_t>(it - x.begin());
  const double t = (q - x[i - 1]) / (x[i] - x[i - 1]);
  return y[i - 1] + t * (y[i] - y[i - 1]);
}

double firstCrossing(std::span<const double> x, std::span<const double> y,
                     double level, bool rising) {
  FEFET_REQUIRE(x.size() == y.size() && x.size() >= 2,
                "firstCrossing: mismatched or short inputs");
  for (std::size_t i = 1; i < y.size(); ++i) {
    const bool crossed = rising ? (y[i - 1] < level && y[i] >= level)
                                : (y[i - 1] > level && y[i] <= level);
    if (crossed) {
      const double t = (level - y[i - 1]) / (y[i] - y[i - 1]);
      return x[i - 1] + t * (x[i] - x[i - 1]);
    }
  }
  std::ostringstream os;
  os << "waveform never crosses level " << level << " ("
     << (rising ? "rising" : "falling") << ")";
  throw SimulationError(os.str());
}

bool hasCrossing(std::span<const double> y, double level) {
  for (std::size_t i = 1; i < y.size(); ++i) {
    if ((y[i - 1] < level && y[i] >= level) ||
        (y[i - 1] > level && y[i] <= level)) {
      return true;
    }
  }
  return false;
}

double rk4Step(const std::function<double(double, double)>& f, double t,
               double y, double dt) {
  const double k1 = f(t, y);
  const double k2 = f(t + 0.5 * dt, y + 0.5 * dt * k1);
  const double k3 = f(t + 0.5 * dt, y + 0.5 * dt * k2);
  const double k4 = f(t + dt, y + dt * k3);
  return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
}

Trajectory integrateRk4(const std::function<double(double, double)>& f,
                        double t0, double t1, double y0, int steps) {
  FEFET_REQUIRE(steps >= 1, "integrateRk4: steps must be positive");
  FEFET_REQUIRE(t1 > t0, "integrateRk4: empty time span");
  Trajectory tr;
  tr.t.reserve(static_cast<std::size_t>(steps) + 1);
  tr.y.reserve(static_cast<std::size_t>(steps) + 1);
  const double dt = (t1 - t0) / steps;
  double t = t0, y = y0;
  tr.t.push_back(t);
  tr.y.push_back(y);
  for (int i = 0; i < steps; ++i) {
    y = rk4Step(f, t, y, dt);
    t = t0 + (t1 - t0) * static_cast<double>(i + 1) / steps;
    tr.t.push_back(t);
    tr.y.push_back(y);
  }
  return tr;
}

}  // namespace fefet::math
