// units.h — SI unit helpers, physical constants and user-defined literals.
//
// The whole library works in plain SI doubles (volts, amperes, seconds,
// farads, metres, coulombs per square metre).  These literals exist so that
// configuration code reads like the paper: `0.68_V`, `550_ps`, `2.25_nm`,
// `0.2_fF / 1.0_um`.
#pragma once

namespace fefet {

// ---------------------------------------------------------------------------
// Physical constants (SI).
// ---------------------------------------------------------------------------
namespace constants {
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;
/// Thermal voltage kT/q at 300 K [V].
inline constexpr double kThermalVoltage300K =
    kBoltzmann * 300.0 / kElementaryCharge;
/// Relative permittivity of SiO2.
inline constexpr double kEpsSiO2 = 3.9;
/// Relative permittivity of silicon.
inline constexpr double kEpsSi = 11.7;
}  // namespace constants

// ---------------------------------------------------------------------------
// User-defined literals.  Each returns a plain double in base SI units.
// ---------------------------------------------------------------------------
namespace literals {
// Voltage.
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }

// Current.
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }

// Time.
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_ps(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// Capacitance.
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_aF(long double v) { return static_cast<double>(v) * 1e-18; }

// Resistance.
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }

// Length.
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

// Energy.
constexpr double operator""_J(long double v) { return static_cast<double>(v); }
constexpr double operator""_pJ(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_aJ(long double v) { return static_cast<double>(v) * 1e-18; }
}  // namespace literals

}  // namespace fefet
