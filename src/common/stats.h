// stats.h — small descriptive-statistics helpers used by the NVP evaluator
// and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace fefet::stats {

double mean(std::span<const double> v);
double stddev(std::span<const double> v);  ///< sample (n-1) std deviation
double minOf(std::span<const double> v);
double maxOf(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> v, double p);

/// Geometric mean (all entries must be positive).
double geomean(std::span<const double> v);

/// Deterministic pseudo-random source for workload/trace synthesis.
/// A thin wrapper over std::mt19937_64 with convenience draws; every
/// stochastic component takes an explicit seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform(double lo, double hi);
  double normal(double mean, double sigma);
  double exponential(double rate);  ///< mean 1/rate
  int uniformInt(int lo, int hi);   ///< inclusive bounds
  bool bernoulli(double p);

 private:
  std::mt19937_64 engine_;
};

}  // namespace fefet::stats
