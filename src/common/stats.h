// stats.h — small descriptive-statistics helpers used by the NVP evaluator
// and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace fefet::stats {

double mean(std::span<const double> v);
double stddev(std::span<const double> v);  ///< sample (n-1) std deviation
double minOf(std::span<const double> v);
double maxOf(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> v, double p);

/// Geometric mean (all entries must be positive).
double geomean(std::span<const double> v);

/// Streaming moment accumulator (Welford) with exact min/max, designed for
/// per-thread partials: each sweep worker feeds its own Accumulator and the
/// collector combines them with merge() (Chan's parallel update), so the
/// merged mean/variance equal the single-pass result up to rounding
/// regardless of how samples were split across threads.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  long count() const { return count_; }
  double mean() const;          ///< requires count() >= 1
  double stddev() const;        ///< sample (n-1) deviation; count() >= 2
  double sumSquaredDeviations() const { return m2_; }
  double minimum() const;       ///< requires count() >= 1
  double maximum() const;       ///< requires count() >= 1

  /// Reconstruct an accumulator from precomputed moments (n, mean, and the
  /// sum of squared deviations m2 = sigma^2 * (n-1)) — the bridge for
  /// merging summaries that only kept mean/sigma/min/max.
  static Accumulator fromMoments(long count, double mean, double m2,
                                 double minimum, double maximum);

 private:
  long count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// splitmix64 finalizer: a well-mixed 64-bit hash used wherever a
/// deterministic, order-independent seed must be derived from (base seed,
/// index) — per-cell fault draws, per-point sweep seeds.
std::uint64_t splitmix64(std::uint64_t z);

/// Deterministic pseudo-random source for workload/trace synthesis.
/// A thin wrapper over std::mt19937_64 with convenience draws; every
/// stochastic component takes an explicit seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  double uniform(double lo, double hi);
  double normal(double mean, double sigma);
  double exponential(double rate);  ///< mean 1/rate
  int uniformInt(int lo, int hi);   ///< inclusive bounds
  bool bernoulli(double p);

 private:
  std::mt19937_64 engine_;
};

}  // namespace fefet::stats
