// plot.h — ASCII chart rendering for the benchmark harnesses, so figure
// reproductions look like figures in a terminal: line charts for waveforms
// and sweeps, scatter for hysteresis loops, horizontal bars for the NVP
// comparison.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fefet::plot {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
  char marker = '*';
};

struct ChartOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  std::string xLabel;
  std::string yLabel;
  std::string title;
  bool logY = false;  ///< log10 the y axis (values must be positive)
};

/// Render one or more (x, y) series on shared axes.  Each series gets its
/// own marker; a legend line lists label -> marker.
void renderChart(std::ostream& os, const std::vector<Series>& series,
                 const ChartOptions& options = {});

/// Horizontal bar chart: one labelled bar per entry, scaled to the widest.
struct Bar {
  std::string label;
  double value = 0.0;
};
void renderBars(std::ostream& os, const std::vector<Bar>& bars,
                const std::string& title = "", int width = 50);

}  // namespace fefet::plot
