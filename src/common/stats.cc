#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::stats {

double mean(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "mean: empty input");
  double acc = 0.0;
  for (double e : v) acc += e;
  return acc / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  FEFET_REQUIRE(v.size() >= 2, "stddev: need at least 2 samples");
  const double m = mean(v);
  double acc = 0.0;
  for (double e : v) acc += (e - m) * (e - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double minOf(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "minOf: empty input");
  return *std::min_element(v.begin(), v.end());
}

double maxOf(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "maxOf: empty input");
  return *std::max_element(v.begin(), v.end());
}

double percentile(std::span<const double> v, double p) {
  FEFET_REQUIRE(!v.empty(), "percentile: empty input");
  FEFET_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0,100]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

double geomean(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "geomean: empty input");
  double acc = 0.0;
  for (double e : v) {
    FEFET_REQUIRE(e > 0.0, "geomean: non-positive entry");
    acc += std::log(e);
  }
  return std::exp(acc / static_cast<double>(v.size()));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double sigma) {
  std::normal_distribution<double> d(mean, sigma);
  return d(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

int Rng::uniformInt(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace fefet::stats
