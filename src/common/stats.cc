#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::stats {

double mean(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "mean: empty input");
  double acc = 0.0;
  for (double e : v) acc += e;
  return acc / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) {
  FEFET_REQUIRE(v.size() >= 2, "stddev: need at least 2 samples");
  const double m = mean(v);
  double acc = 0.0;
  for (double e : v) acc += (e - m) * (e - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double minOf(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "minOf: empty input");
  return *std::min_element(v.begin(), v.end());
}

double maxOf(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "maxOf: empty input");
  return *std::max_element(v.begin(), v.end());
}

double percentile(std::span<const double> v, double p) {
  FEFET_REQUIRE(!v.empty(), "percentile: empty input");
  FEFET_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0,100]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - t) + sorted[hi] * t;
}

double geomean(std::span<const double> v) {
  FEFET_REQUIRE(!v.empty(), "geomean: empty input");
  double acc = 0.0;
  for (double e : v) {
    FEFET_REQUIRE(e > 0.0, "geomean: non-positive entry");
    acc += std::log(e);
  }
  return std::exp(acc / static_cast<double>(v.size()));
}

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double nA = static_cast<double>(count_);
  const double nB = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = nA + nB;
  mean_ += delta * nB / n;
  m2_ += other.m2_ + delta * delta * nA * nB / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const {
  FEFET_REQUIRE(count_ >= 1, "Accumulator::mean: no samples");
  return mean_;
}

double Accumulator::stddev() const {
  FEFET_REQUIRE(count_ >= 2, "Accumulator::stddev: need at least 2 samples");
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double Accumulator::minimum() const {
  FEFET_REQUIRE(count_ >= 1, "Accumulator::minimum: no samples");
  return min_;
}

double Accumulator::maximum() const {
  FEFET_REQUIRE(count_ >= 1, "Accumulator::maximum: no samples");
  return max_;
}

Accumulator Accumulator::fromMoments(long count, double mean, double m2,
                                     double minimum, double maximum) {
  FEFET_REQUIRE(count >= 0, "Accumulator::fromMoments: negative count");
  Accumulator a;
  a.count_ = count;
  a.mean_ = mean;
  a.m2_ = m2;
  a.min_ = minimum;
  a.max_ = maximum;
  return a;
}

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double sigma) {
  std::normal_distribution<double> d(mean, sigma);
  return d(engine_);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

int Rng::uniformInt(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace fefet::stats
