#include "common/plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "common/strings.h"

namespace fefet::plot {

namespace {
constexpr char kMarkers[] = {'*', '+', 'o', 'x', '#', '@'};
}

void renderChart(std::ostream& os, const std::vector<Series>& seriesList,
                 const ChartOptions& options) {
  FEFET_REQUIRE(!seriesList.empty(), "chart needs at least one series");
  FEFET_REQUIRE(options.width >= 16 && options.height >= 6,
                "chart area too small");

  double xMin = std::numeric_limits<double>::infinity();
  double xMax = -xMin, yMin = xMin, yMax = -xMin;
  for (const auto& s : seriesList) {
    FEFET_REQUIRE(s.x.size() == s.y.size(), "series size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double yv = s.y[i];
      if (options.logY) {
        if (yv <= 0.0) continue;
        yv = std::log10(yv);
      }
      xMin = std::min(xMin, s.x[i]);
      xMax = std::max(xMax, s.x[i]);
      yMin = std::min(yMin, yv);
      yMax = std::max(yMax, yv);
    }
  }
  FEFET_REQUIRE(std::isfinite(xMin) && std::isfinite(yMin),
                "chart has no plottable points");
  if (xMax == xMin) xMax = xMin + 1.0;
  if (yMax == yMin) yMax = yMin + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));

  int markerIndex = 0;
  for (const auto& s : seriesList) {
    const char marker =
        s.marker == '*' && markerIndex > 0
            ? kMarkers[markerIndex % (sizeof(kMarkers) / sizeof(char))]
            : s.marker;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double yv = s.y[i];
      if (options.logY) {
        if (yv <= 0.0) continue;
        yv = std::log10(yv);
      }
      const int col = static_cast<int>(
          std::lround((s.x[i] - xMin) / (xMax - xMin) * (w - 1)));
      const int row = static_cast<int>(
          std::lround((yv - yMin) / (yMax - yMin) * (h - 1)));
      if (col >= 0 && col < w && row >= 0 && row < h) {
        canvas[static_cast<std::size_t>(h - 1 - row)]
              [static_cast<std::size_t>(col)] = marker;
      }
    }
    ++markerIndex;
  }

  if (!options.title.empty()) os << options.title << '\n';
  const auto yTick = [&](int row) {
    const double v = yMin + (yMax - yMin) * (h - 1 - row) / (h - 1);
    return strings::generalFormat(options.logY ? std::pow(10.0, v) : v, 3);
  };
  for (int row = 0; row < h; ++row) {
    const bool labelled = row == 0 || row == h - 1 || row == h / 2;
    char left[16];
    std::snprintf(left, sizeof(left), "%9s |",
                  labelled ? yTick(row).c_str() : "");
    os << left << canvas[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  char xAxis[160];
  std::snprintf(xAxis, sizeof(xAxis), "%10s %-12s%*s", " ",
                strings::generalFormat(xMin, 3).c_str(), w - 12,
                strings::generalFormat(xMax, 3).c_str());
  os << xAxis << "  " << options.xLabel << '\n';
  if (!options.yLabel.empty() || seriesList.size() > 1) {
    os << "          ";
    if (!options.yLabel.empty()) os << "y: " << options.yLabel << "  ";
    if (seriesList.size() > 1) {
      int idx = 0;
      for (const auto& s : seriesList) {
        const char marker =
            s.marker == '*' && idx > 0
                ? kMarkers[idx % (sizeof(kMarkers) / sizeof(char))]
                : s.marker;
        os << "[" << marker << "] " << s.label << "  ";
        ++idx;
      }
    }
    os << '\n';
  }
}

void renderBars(std::ostream& os, const std::vector<Bar>& bars,
                const std::string& title, int width) {
  FEFET_REQUIRE(!bars.empty(), "bar chart needs entries");
  if (!title.empty()) os << title << '\n';
  double maxVal = 0.0;
  std::size_t maxLabel = 0;
  for (const auto& b : bars) {
    maxVal = std::max(maxVal, std::abs(b.value));
    maxLabel = std::max(maxLabel, b.label.size());
  }
  if (maxVal == 0.0) maxVal = 1.0;
  for (const auto& b : bars) {
    const int len = static_cast<int>(
        std::lround(std::abs(b.value) / maxVal * width));
    os << strings::padRight(b.label, maxLabel) << " |"
       << std::string(static_cast<std::size_t>(len), '#') << ' '
       << strings::generalFormat(b.value, 4) << '\n';
  }
}

}  // namespace fefet::plot
