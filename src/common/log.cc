#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/clock.h"
#include "common/strings.h"

namespace fefet {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

namespace {
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

std::string& threadPrefixSlot() {
  thread_local std::string prefix;
  return prefix;
}

std::atomic<bool>& jsonSinkFlag() {
  static std::atomic<bool> json{[] {
    const char* env = std::getenv("FEFET_LOG_JSON");
    return env != nullptr && std::strcmp(env, "1") == 0;
  }()};
  return json;
}

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off";
  }
  return "?";
}
}  // namespace

void Log::setThreadPrefix(std::string prefix) {
  threadPrefixSlot() = std::move(prefix);
}

const std::string& Log::threadPrefix() { return threadPrefixSlot(); }

bool Log::jsonSink() {
  return jsonSinkFlag().load(std::memory_order_relaxed);
}

void Log::setJsonSink(bool json) {
  jsonSinkFlag().store(json, std::memory_order_relaxed);
}

void Log::write(LogLevel level, const std::string& message) {
  if (level < Log::level()) return;
  const std::string& prefix = threadPrefixSlot();
  if (jsonSink()) {
    // Structured sink: one JSON object per line.  ts and thread come from
    // common/clock.h — the clock/thread-id helpers shared with the trace
    // collector, so log lines correlate with spans.
    const double ts = static_cast<double>(monotonicNanos()) / 1e9;
    const int thread = currentThreadId();
    const std::string line =
        "{\"ts\":" + strings::jsonNumber(ts) + ",\"level\":\"" +
        levelName(level) + "\",\"thread\":" + std::to_string(thread) +
        ",\"prefix\":\"" + strings::jsonEscape(prefix) + "\",\"msg\":\"" +
        strings::jsonEscape(message) + "\"}";
    const std::lock_guard<std::mutex> guard(sinkMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  const std::lock_guard<std::mutex> guard(sinkMutex());
  std::fprintf(stderr, "[%s] %s%s\n", levelTag(level), prefix.c_str(),
               message.c_str());
}

}  // namespace fefet
