#include "common/log.h"

#include <cstdio>
#include <mutex>

namespace fefet {

std::atomic<LogLevel> Log::level_{LogLevel::kWarn};

namespace {
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

std::string& threadPrefixSlot() {
  thread_local std::string prefix;
  return prefix;
}

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::setThreadPrefix(std::string prefix) {
  threadPrefixSlot() = std::move(prefix);
}

const std::string& Log::threadPrefix() { return threadPrefixSlot(); }

void Log::write(LogLevel level, const std::string& message) {
  if (level < Log::level()) return;
  const std::string& prefix = threadPrefixSlot();
  const std::lock_guard<std::mutex> guard(sinkMutex());
  std::fprintf(stderr, "[%s] %s%s\n", levelTag(level), prefix.c_str(),
               message.c_str());
}

}  // namespace fefet
