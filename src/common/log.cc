#include "common/log.h"

#include <cstdio>

namespace fefet {

LogLevel Log::level_ = LogLevel::kWarn;

namespace {
const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  if (level < level_) return;
  std::fprintf(stderr, "[%s] %s\n", levelTag(level), message.c_str());
}

}  // namespace fefet
