// error.h — exception hierarchy used across the library.
//
// All failures raise exceptions derived from fefet::Error.  Numerical
// failures (non-convergence, singular matrices) carry enough context to
// diagnose the offending circuit or sweep.
#pragma once

#include <stdexcept>
#include <string>

namespace fefet {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: unknown node, bad parameter, inconsistent config.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Retry history attached to solver failures: what the rescue ladder
/// attempted before giving up, so a non-converged run is diagnosable
/// without re-running it under a debugger.
struct SolverDiagnostics {
  double time = -1.0;        ///< [s] transient time point of the failure
  double smallestDt = 0.0;   ///< [s] smallest step attempted
  int dtCuts = 0;            ///< step-size reductions applied
  int gminEscalations = 0;   ///< gmin rescue levels tried
  int steps = 0;             ///< accepted steps before the failure
  int newtonIterations = 0;  ///< cumulative Newton iterations
  double finalResidualNorm = 0.0;

  /// One-line "t=..., dt=..., N cuts, M gmin escalations" rendering.
  std::string summary() const;
};

/// A numerical routine failed: Newton did not converge, matrix singular,
/// root not bracketed, time step underflow.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
  NumericalError(const std::string& what, const SolverDiagnostics& diag);

  bool hasDiagnostics() const { return hasDiagnostics_; }
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  SolverDiagnostics diagnostics_;
  bool hasDiagnostics_ = false;
};

/// A wall-clock budget ran out: a transient blew its Deadline, a sweep
/// point was cancelled by the straggler watchdog, or a whole sweep
/// exhausted its run budget.  Subclasses NumericalError so existing
/// "solver gave up" handlers keep working, and carries the same
/// SolverDiagnostics retry history when the abort happened inside a run.
class DeadlineExceeded : public NumericalError {
 public:
  explicit DeadlineExceeded(const std::string& what) : NumericalError(what) {}
  DeadlineExceeded(const std::string& what, const SolverDiagnostics& diag)
      : NumericalError(what, diag) {}
};

/// A simulation-level failure: write did not complete, sense amplifier did
/// not resolve, measurement target never crossed.
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& what) : Error(what) {}
  SimulationError(const std::string& what, const SolverDiagnostics& diag);

  bool hasDiagnostics() const { return hasDiagnostics_; }
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  SolverDiagnostics diagnostics_;
  bool hasDiagnostics_ = false;
};

namespace detail {
[[noreturn]] void throwRequireFailure(const char* expr, const char* file,
                                      int line, const std::string& message);
}  // namespace detail

/// Precondition check used at public API boundaries.  Throws
/// InvalidArgumentError with location info when `expr` is false.
#define FEFET_REQUIRE(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fefet::detail::throwRequireFailure(#expr, __FILE__, __LINE__,       \
                                           (message));                     \
    }                                                                       \
  } while (false)

}  // namespace fefet
