// error.h — exception hierarchy used across the library.
//
// All failures raise exceptions derived from fefet::Error.  Numerical
// failures (non-convergence, singular matrices) carry enough context to
// diagnose the offending circuit or sweep.
#pragma once

#include <stdexcept>
#include <string>

namespace fefet {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: unknown node, bad parameter, inconsistent config.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed: Newton did not converge, matrix singular,
/// root not bracketed, time step underflow.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// A simulation-level failure: write did not complete, sense amplifier did
/// not resolve, measurement target never crossed.
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwRequireFailure(const char* expr, const char* file,
                                      int line, const std::string& message);
}  // namespace detail

/// Precondition check used at public API boundaries.  Throws
/// InvalidArgumentError with location info when `expr` is false.
#define FEFET_REQUIRE(expr, message)                                        \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::fefet::detail::throwRequireFailure(#expr, __FILE__, __LINE__,       \
                                           (message));                     \
    }                                                                       \
  } while (false)

}  // namespace fefet
