#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace fefet {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FEFET_REQUIRE(!header_.empty(), "TextTable: empty header");
}

void TextTable::addRow(std::vector<std::string> cells) {
  FEFET_REQUIRE(cells.size() == header_.size(),
                "TextTable: row arity does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << strings::padRight(row[c], widths[c]);
    }
    os << '\n';
  };
  printRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string TextTable::toString() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    const bool needsQuote =
        cells[i].find_first_of(",\"\n") != std::string::npos;
    if (needsQuote) {
      os_ << '"';
      for (char ch : cells[i]) {
        if (ch == '"') os_ << '"';
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << cells[i];
    }
  }
  os_ << '\n';
}

void CsvWriter::numericRow(const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(strings::generalFormat(v, digits));
  row(cells);
}

}  // namespace fefet
