#include "common/strings.h"

#include <cmath>
#include <cstdio>

namespace fefet::strings {

std::string siFormat(double value, const std::string& unit, int digits) {
  static const struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
      {1e-18, "a"},
  };
  if (value == 0.0) return "0 " + unit;
  const double mag = std::abs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9995) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g %s%s", digits, value / p.scale,
                    p.prefix, unit.c_str());
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e %s", digits, value, unit.c_str());
  return buf;
}

std::string fixedFormat(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string generalFormat(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += separator;
    out += parts[i];
  }
  return out;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double value) {
  if (std::isnan(value)) return "0";
  if (std::isinf(value)) return value > 0 ? "0" : "-0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string padLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string padRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace fefet::strings
