// layout.h — lambda-rule area estimation for the two memory cells
// (paper Fig. 11: 2x2 layouts; the FEFET 2T cell is 2.4x the minimum-area
// 1T-1C FERAM cell) and wire-length extraction for the macro energy model.
//
// The estimator composes cells from process primitives (contacted gate
// pitch, metal pitch, diffusion margins) instead of hard-coding areas, so
// the same rules also give line lengths/pitches for array wire
// capacitance.  The FERAM baseline uses a stacked capacitor in the
// back-end (paper Fig. 9(b)), so its footprint is the access transistor
// plus contacts only — the paper's "worst-case" (minimum-area) comparison.
#pragma once

#include <string>

namespace fefet::layout {

/// 45 nm-class lambda design rules (lambda = half the drawn gate length).
struct DesignRules {
  double lambda = 22.5e-9;     ///< [m]
  double gateLength = 2.0;     ///< drawn gate length [lambda]
  double contactSize = 2.0;    ///< contact/via edge [lambda]
  double gateToContact = 1.5;  ///< poly to contact spacing [lambda]
  double diffusionMargin = 2.0;///< active overhang beyond gate [lambda]
  double activeSpacing = 3.0;  ///< active-to-active isolation [lambda]
  double metalPitch = 6.0;     ///< routing track pitch [lambda]
  double plateMargin = 2.0;    ///< stacked-cap plate contact margin [lambda]

  double contactedGatePitch() const {
    return gateLength + 2.0 * gateToContact + contactSize;  // [lambda]
  }
  double meters(double lambdas) const { return lambdas * lambda; }
};

/// A composed rectangular cell footprint.
struct CellFootprint {
  double width = 0.0;   ///< bit-line direction [m]
  double height = 0.0;  ///< word-line direction [m]
  std::string breakdown;  ///< human-readable derivation

  double area() const { return width * height; }
};

/// The 2T FEFET cell: access NMOS and FEFET side by side (shared gate-node
/// diffusion), one extra routing track for the second row line (the RS
/// line doubles as read supply, saving a further track — paper §6.2.3).
CellFootprint fefet2TCell(const DesignRules& rules, double transistorWidth);

/// The 1T-1C FERAM cell with a back-end stacked capacitor over the access
/// transistor (minimum-area flavour of paper Fig. 9(b)).
CellFootprint feram1T1CCell(const DesignRules& rules, double transistorWidth);

/// A 3T variant with a dedicated read access transistor — the design the
/// paper's array organization avoids ("eliminates the need for read access
/// transistors and limits the number of transistors in a cell to two").
/// Used by the area ablation to quantify what the co-design saves.
CellFootprint fefet3TCell(const DesignRules& rules, double transistorWidth);

/// Array-level footprint and wire geometry.
struct ArrayFootprint {
  int rows = 0;
  int cols = 0;
  double width = 0.0;      ///< [m]
  double height = 0.0;     ///< [m]
  double rowWireLength = 0.0;  ///< length of one WS/RS (or WL) line [m]
  double colWireLength = 0.0;  ///< length of one WBL/SL (or BL/PL) line [m]

  double area() const { return width * height; }
};

ArrayFootprint tileArray(const CellFootprint& cell, int rows, int cols);

/// FEFET-vs-FERAM cell area ratio at the given transistor width (the paper
/// reports 2.4x at W = 65 nm).
double cellAreaRatio(const DesignRules& rules, double transistorWidth);

}  // namespace fefet::layout
