#include "layout/layout.h"

#include <sstream>

#include "common/error.h"

namespace fefet::layout {

namespace {
double widthLambdas(const DesignRules& rules, double transistorWidth) {
  return transistorWidth / rules.lambda;
}
}  // namespace

CellFootprint fefet2TCell(const DesignRules& rules, double transistorWidth) {
  FEFET_REQUIRE(transistorWidth > 0.0, "transistor width must be positive");
  const double cgp = rules.contactedGatePitch();
  // Two contacted gates side by side (access NMOS + FEFET) sharing the
  // gate-node diffusion, plus isolation to the neighbour cell.
  const double widthL = 2.0 * cgp + rules.activeSpacing;
  // Active region + margins + isolation + one extra routing track for the
  // second row line (WS and RS; RS doubling as the read supply avoids a
  // further track) + the FE-stack via landing pad on the internal node.
  const double internalNodeContact = 1.0;
  const double heightL = widthLambdas(rules, transistorWidth) +
                         2.0 * rules.diffusionMargin + rules.activeSpacing +
                         rules.metalPitch + internalNodeContact;
  CellFootprint cell;
  cell.width = rules.meters(widthL);
  cell.height = rules.meters(heightL);
  std::ostringstream os;
  os << "2T FEFET: width = 2*CGP(" << cgp << "L) + iso("
     << rules.activeSpacing << "L) = " << widthL << "L; height = W("
     << widthLambdas(rules, transistorWidth) << "L) + 2*margin("
     << rules.diffusionMargin << "L) + iso(" << rules.activeSpacing
     << "L) + track(" << rules.metalPitch << "L) + FE via("
     << internalNodeContact << "L) = " << heightL << "L";
  cell.breakdown = os.str();
  return cell;
}

CellFootprint feram1T1CCell(const DesignRules& rules,
                            double transistorWidth) {
  FEFET_REQUIRE(transistorWidth > 0.0, "transistor width must be positive");
  const double cgp = rules.contactedGatePitch();
  // One contacted gate plus isolation; the FE capacitor is stacked in the
  // back-end directly above the transistor (minimum-area flavour).
  const double widthL = cgp + rules.activeSpacing;
  const double heightL = widthLambdas(rules, transistorWidth) +
                         2.0 * rules.diffusionMargin + rules.activeSpacing +
                         rules.plateMargin;
  CellFootprint cell;
  cell.width = rules.meters(widthL);
  cell.height = rules.meters(heightL);
  std::ostringstream os;
  os << "1T-1C FERAM: width = CGP(" << cgp << "L) + iso("
     << rules.activeSpacing << "L) = " << widthL << "L; height = W("
     << widthLambdas(rules, transistorWidth) << "L) + 2*margin("
     << rules.diffusionMargin << "L) + iso(" << rules.activeSpacing
     << "L) + plate(" << rules.plateMargin << "L) = " << heightL << "L";
  cell.breakdown = os.str();
  return cell;
}

CellFootprint fefet3TCell(const DesignRules& rules, double transistorWidth) {
  FEFET_REQUIRE(transistorWidth > 0.0, "transistor width must be positive");
  const double cgp = rules.contactedGatePitch();
  // Three contacted gates plus isolation, one further routing track for
  // the dedicated read word line, plus the FE via.
  const double widthL = 3.0 * cgp + rules.activeSpacing;
  const double internalNodeContact = 1.0;
  const double heightL = widthLambdas(rules, transistorWidth) +
                         2.0 * rules.diffusionMargin + rules.activeSpacing +
                         2.0 * rules.metalPitch + internalNodeContact;
  CellFootprint cell;
  cell.width = rules.meters(widthL);
  cell.height = rules.meters(heightL);
  std::ostringstream os;
  os << "3T FEFET (ablation): width = 3*CGP(" << cgp << "L) + iso("
     << rules.activeSpacing << "L) = " << widthL
     << "L; height adds a second routing track (" << rules.metalPitch
     << "L) for the read word line = " << heightL << "L";
  cell.breakdown = os.str();
  return cell;
}

ArrayFootprint tileArray(const CellFootprint& cell, int rows, int cols) {
  FEFET_REQUIRE(rows >= 1 && cols >= 1, "array needs at least one cell");
  ArrayFootprint a;
  a.rows = rows;
  a.cols = cols;
  a.width = cell.width * cols;
  a.height = cell.height * rows;
  a.rowWireLength = a.width;
  a.colWireLength = a.height;
  return a;
}

double cellAreaRatio(const DesignRules& rules, double transistorWidth) {
  return fefet2TCell(rules, transistorWidth).area() /
         feram1T1CCell(rules, transistorWidth).area();
}

}  // namespace fefet::layout
