#include "spice/assembler.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "spice/device_batch.h"

namespace fefet::spice {

namespace {

/// Assembly-rate telemetry.  Deliberately counter-only — no clock reads
/// inside assemble(): bench_assembly times this code directly, and the
/// observability budget caps telemetry overhead there at 2%.
struct AssemblerTelemetry {
  obs::Counter& assemblies;
  obs::Counter& stamps;
  obs::Counter& patternReuseHits;
  obs::Counter& batchedAssemblies;
};

AssemblerTelemetry& assemblerTelemetry() {
  static AssemblerTelemetry t{
      obs::Metrics::counter("fefet.assembler.assemblies"),
      obs::Metrics::counter("fefet.assembler.stamps"),
      obs::Metrics::counter("fefet.assembler.pattern_reuse_hits"),
      obs::Metrics::counter("fefet.assembler.batched_assemblies")};
  return t;
}

}  // namespace

void StampBuffer::throwSlotOverrun(int row, int col) const {
  std::ostringstream os;
  os << "compiled stamp pipeline: device emitted more Jacobian entries than "
        "recorded (next call at row "
     << row << ", col " << col
     << ") — a device's stamp sequence must be a fixed function of "
        "(dc, method) for a frozen netlist";
  throw NumericalError(os.str());
}

Assembler::Assembler(const StampPattern& pattern, bool useSparse)
    : pattern_(pattern),
      sparseStorage_(useSparse),
      n_(pattern.unknowns()),
      values_(1 + pattern.nonZeros(), 0.0),
      residual_(1 + static_cast<std::size_t>(n_), 0.0),
      rowScale_(1 + static_cast<std::size_t>(n_), 0.0),
      rhs_(static_cast<std::size_t>(n_), 0.0),
      solver_(static_cast<std::size_t>(n_), useSparse) {
  FEFET_REQUIRE(n_ > 0, "MNA system needs at least one unknown");
  if (!sparseStorage_) {
    dense_.assign(1 + static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                  0.0);
  }
  // Compile the per-mode slot programs: CSR position + 1 per recorded
  // call, ground entries to the trash slot 0.
  for (int m = 0; m < kStampModeCount; ++m) {
    const auto& calls = pattern_.jacobianCalls(static_cast<StampMode>(m));
    auto& slots = slots_[m];
    slots.reserve(calls.size());
    for (const StampEntry& e : calls) {
      const std::size_t idx = pattern_.csrIndex(e.row, e.col);
      slots.push_back(idx == StampPattern::npos ? 0 : idx + 1);
    }
  }
  diagSlots_.reserve(pattern_.nodeDiagonals().size());
  for (const std::size_t idx : pattern_.nodeDiagonals()) {
    diagSlots_.push_back(idx + 1);
  }
}

void Assembler::assemble(const Netlist& netlist, const SystemView& view,
                         bool dc, double time, double dt,
                         IntegrationMethod method, double gmin,
                         bool useBatchedKernels) {
  const auto& devices = netlist.devices();
  FEFET_REQUIRE(devices.size() == pattern_.deviceCount(),
                "compiled stamp pipeline: netlist device list changed after "
                "the pattern was recorded");
  const int m = static_cast<int>(stampModeFor(dc, method));
  const auto& slots = slots_[m];
  const auto& ends = pattern_.deviceJacobianEnds(static_cast<StampMode>(m));

  std::fill(values_.begin(), values_.end(), 0.0);
  std::fill(residual_.begin(), residual_.end(), 0.0);
  std::fill(rowScale_.begin(), rowScale_.end(), 0.0);

  buffer_.values_ = values_.data();
  buffer_.residual_ = residual_.data();
  buffer_.rowScale_ = rowScale_.data();
  buffer_.slotBegin_ = slots.data();
  buffer_.slotCursor_ = slots.data();
  buffer_.slotEnd_ = slots.data() + slots.size();

  EvalContext ctx{view, dc, time, dt, method, gmin, &buffer_, nullptr};
  if (useBatchedKernels) {
    netlist.deviceBatches().stampAll(ctx, ends);
  } else {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      devices[i]->stamp(ctx);
      if (buffer_.jacobianCalls() != ends[i]) {
        std::ostringstream os;
        os << "compiled stamp pipeline: device '" << devices[i]->name()
           << "' emitted "
           << buffer_.jacobianCalls() - (i > 0 ? ends[i - 1] : 0)
           << " Jacobian entries but the recorded pattern has "
           << ends[i] - (i > 0 ? ends[i - 1] : 0)
           << " — stamp sequences must be a fixed function of (dc, method)";
        throw NumericalError(os.str());
      }
    }
  }

  if (obs::Metrics::enabled()) {
    AssemblerTelemetry& t = assemblerTelemetry();
    t.assemblies.increment();
    t.stamps.add(devices.size());
    if (modeUsed_[static_cast<std::size_t>(m)]) t.patternReuseHits.increment();
    if (useBatchedKernels) t.batchedAssemblies.increment();
  }
  modeUsed_[static_cast<std::size_t>(m)] = true;

  // gmin regularization, same ordering as the legacy path: after the
  // device loop, residual through the same accumulation (so the row scale
  // sees the gmin current), diagonal through the precompiled slots.
  if (gmin > 0.0) {
    const int nodes = pattern_.nodeCount();
    for (int row = 0; row < nodes; ++row) {
      const double v = view.nodeVoltage(row + 1);
      buffer_.addResidual(row, gmin * v);
      values_[diagSlots_[static_cast<std::size_t>(row)]] += gmin;
    }
  }
}

void Assembler::solveForUpdate(std::vector<double>& dx,
                               bool reuseLuStructure) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const double* res = residual_.data() + 1;
  for (std::size_t i = 0; i < n; ++i) rhs_[i] = -res[i];

  if (sparseStorage_) {
    solver_.solve(csr(), rhs_, dx, reuseLuStructure);
    return;
  }
  // Dense: scatter the CSR accumulation into the row-major scratch.  The
  // values were accumulated in the same order as the legacy direct dense
  // stamping, so the matrix is bit-identical to the oracle's.
  std::fill(dense_.begin(), dense_.end(), 0.0);
  const auto& rowPtr = pattern_.rowPtr();
  const auto& colIdx = pattern_.colIdx();
  double* a = dense_.data() + 1;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = rowPtr[r]; p < rowPtr[r + 1]; ++p) {
      a[r * n + colIdx[p]] = values_[p + 1];
    }
  }
  solver_.solve(std::span<const double>(a, n * n), rhs_, dx);
}

std::span<const double> Assembler::denseValues() const {
  FEFET_REQUIRE(!sparseStorage_,
                "Assembler::denseValues: sparse storage active");
  return {dense_.data() + 1,
          static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_)};
}

}  // namespace fefet::spice
