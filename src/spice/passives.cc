#include "spice/passives.h"

#include "common/error.h"

namespace fefet::spice {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  FEFET_REQUIRE(resistance_ > 0.0, "resistance must be positive");
}

void Resistor::stamp(const EvalContext& ctx) {
  const double g = 1.0 / resistance_;
  const double va = ctx.view.nodeVoltage(a_);
  const double vb = ctx.view.nodeVoltage(b_);
  const double i = g * (va - vb);
  const int ra = Stamper::rowOfNode(a_);
  const int rb = Stamper::rowOfNode(b_);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

double Resistor::current(const SystemView& view) const {
  return (view.nodeVoltage(a_) - view.nodeVoltage(b_)) / resistance_;
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance)
    : Device(std::move(name)), a_(a), b_(b), capacitance_(capacitance) {
  FEFET_REQUIRE(capacitance_ > 0.0, "capacitance must be positive");
}

void Capacitor::stamp(const EvalContext& ctx) {
  if (ctx.dc) return;
  const double v = ctx.view.nodeVoltage(a_) - ctx.view.nodeVoltage(b_);
  const double q = capacitance_ * v;
  const auto [i, dIdQ] = charge_.currentFor(q, ctx);
  const double g = dIdQ * capacitance_;
  const int ra = Stamper::rowOfNode(a_);
  const int rb = Stamper::rowOfNode(b_);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

void Capacitor::initializeState(const SystemView& view) {
  const double v = view.nodeVoltage(a_) - view.nodeVoltage(b_);
  charge_.initialize(capacitance_ * v);
}

void Capacitor::commitStep(const SystemView& view, double /*time*/,
                           double dt, IntegrationMethod method) {
  const double v = view.nodeVoltage(a_) - view.nodeVoltage(b_);
  charge_.commitFrom(capacitance_ * v, dt, method);
}

std::vector<DeviceState> Capacitor::reportState(const SystemView& view) const {
  const double v = view.nodeVoltage(a_) - view.nodeVoltage(b_);
  return {{"q", capacitance_ * v}};
}

TimedSwitch::TimedSwitch(std::string name, NodeId a, NodeId b,
                         Control control, double ron, double roff)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      control_(std::move(control)),
      ron_(ron),
      roff_(roff) {
  FEFET_REQUIRE(ron_ > 0.0 && roff_ > ron_, "switch needs 0 < Ron < Roff");
  FEFET_REQUIRE(static_cast<bool>(control_), "switch needs a control shape");
}

void TimedSwitch::stamp(const EvalContext& ctx) {
  const double g = (control_(ctx.time) > 0.5) ? 1.0 / ron_ : 1.0 / roff_;
  const double va = ctx.view.nodeVoltage(a_);
  const double vb = ctx.view.nodeVoltage(b_);
  const double i = g * (va - vb);
  const int ra = Stamper::rowOfNode(a_);
  const int rb = Stamper::rowOfNode(b_);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

}  // namespace fefet::spice
