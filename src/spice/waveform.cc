#include "spice/waveform.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"
#include "common/math.h"
#include "common/strings.h"

namespace fefet::spice {

void Waveform::addColumn(const std::string& name) {
  FEFET_REQUIRE(index_.find(name) == index_.end(),
                "duplicate waveform column: " + name);
  FEFET_REQUIRE(time_.empty(), "cannot add columns after sampling started");
  index_[name] = names_.size();
  names_.push_back(name);
  columns_.emplace_back();
}

void Waveform::appendSample(double time, const std::vector<double>& values) {
  FEFET_REQUIRE(values.size() == names_.size(),
                "waveform sample arity mismatch");
  time_.push_back(time);
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].push_back(values[i]);
  }
}

bool Waveform::hasColumn(const std::string& name) const {
  return index_.find(name) != index_.end();
}

std::span<const double> Waveform::column(const std::string& name) const {
  const auto it = index_.find(name);
  FEFET_REQUIRE(it != index_.end(), "no such waveform column: " + name);
  return columns_[it->second];
}

std::vector<std::string> Waveform::columnNames() const { return names_; }

std::span<const double> Waveform::nonEmptyColumn(const std::string& name)
    const {
  const auto col = column(name);
  // col.back()/front() on an empty column is UB; this happens when a probe
  // is evaluated before any accepted timestep (e.g. a transient aborted on
  // its first step), so fail with the diagnosis instead.
  FEFET_REQUIRE(!col.empty(),
                "waveform column '" + name +
                    "' has no samples (probe evaluated before any accepted "
                    "timestep?)");
  return col;
}

double Waveform::finalValue(const std::string& name) const {
  return nonEmptyColumn(name).back();
}

double Waveform::valueAt(const std::string& name, double t) const {
  const auto col = nonEmptyColumn(name);
  // A single accepted sample is a degenerate but valid trace: clamping
  // semantics make every query return that sample.
  if (col.size() == 1) return col.front();
  return math::interp1(time_, col, t);
}

double Waveform::firstCrossing(const std::string& name, double level,
                               bool rising) const {
  return math::firstCrossing(time_, nonEmptyColumn(name), level, rising);
}

double Waveform::minimum(const std::string& name) const {
  const auto col = nonEmptyColumn(name);
  return *std::min_element(col.begin(), col.end());
}

double Waveform::maximum(const std::string& name) const {
  const auto col = nonEmptyColumn(name);
  return *std::max_element(col.begin(), col.end());
}

double Waveform::integral(const std::string& name) const {
  return math::trapz(time_, nonEmptyColumn(name));
}

void Waveform::writeCsv(std::ostream& os) const {
  os << "time";
  for (const auto& n : names_) os << ',' << n;
  os << '\n';
  for (std::size_t s = 0; s < time_.size(); ++s) {
    os << strings::generalFormat(time_[s], 9);
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ',' << strings::generalFormat(columns_[c][s], 9);
    }
    os << '\n';
  }
}

}  // namespace fefet::spice
