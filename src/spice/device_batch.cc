#include "spice/device_batch.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/units.h"
#include "ferro/lk_model.h"
#include "spice/extras.h"
#include "spice/fecap_device.h"
#include "spice/mosfet_device.h"
#include "spice/netlist.h"
#include "spice/passives.h"
#include "spice/sources.h"

namespace fefet::spice {

DeviceBatches::DeviceBatches(const Netlist& netlist) {
  const auto& devices = netlist.devices();
  order_.reserve(devices.size());
  refs_.reserve(devices.size());

  const auto lane = [](std::size_t size) {
    return static_cast<std::uint32_t>(size);
  };
  for (const auto& owned : devices) {
    Device* device = owned.get();
    order_.push_back(device);
    Ref ref;
    if (auto* r = dynamic_cast<Resistor*>(device)) {
      ref = {Kind::kResistor, lane(resistors_.a.size())};
      resistors_.a.push_back(r->a_);
      resistors_.b.push_back(r->b_);
      resistors_.g.push_back(1.0 / r->resistance_);
    } else if (auto* c = dynamic_cast<Capacitor*>(device)) {
      ref = {Kind::kCapacitor, lane(capacitors_.a.size())};
      capacitors_.dev.push_back(c);
      capacitors_.a.push_back(c->a_);
      capacitors_.b.push_back(c->b_);
      capacitors_.c.push_back(c->capacitance_);
    } else if (auto* v = dynamic_cast<VoltageSource*>(device)) {
      ref = {Kind::kVoltageSource, lane(vsources_.plus.size())};
      vsources_.dev.push_back(v);
      vsources_.plus.push_back(v->plus_);
      vsources_.minus.push_back(v->minus_);
      vsources_.auxRow.push_back(v->auxRow_);
    } else if (auto* i = dynamic_cast<CurrentSource*>(device)) {
      ref = {Kind::kCurrentSource, lane(isources_.from.size())};
      isources_.dev.push_back(i);
      isources_.from.push_back(i->from_);
      isources_.to.push_back(i->to_);
    } else if (auto* d = dynamic_cast<Diode*>(device)) {
      ref = {Kind::kDiode, lane(diodes_.anode.size())};
      diodes_.anode.push_back(d->anode_);
      diodes_.cathode.push_back(d->cathode_);
      // Same expression sequence as Diode::stamp, evaluated once.
      const double vt = constants::kBoltzmann * d->params_.temperature /
                        constants::kElementaryCharge *
                        d->params_.idealityFactor;
      diodes_.isat.push_back(d->params_.saturationCurrent);
      diodes_.vt.push_back(vt);
      diodes_.vmax.push_back(40.0 * vt);
    } else if (auto* m = dynamic_cast<MosfetDevice*>(device)) {
      ref = {Kind::kMosfet, lane(mosfets_.dev.size())};
      mosfets_.dev.push_back(m);
      mosfets_.drain.push_back(m->drain_);
      mosfets_.gate.push_back(m->gate_);
      mosfets_.source.push_back(m->source_);
      mosfets_.model.push_back(&m->model_);
      mosfets_.gateLeak.push_back(m->gateLeak_);
      mosfets_.overlapCap.push_back(m->overlapCap_);
      mosfets_.junctionCap.push_back(m->junctionCap_);
      mosfets_.gateArea.push_back(m->model_.gateArea());
    } else if (auto* f = dynamic_cast<FeCapDevice*>(device)) {
      ref = {Kind::kFeCap, lane(fecaps_.dev.size())};
      fecaps_.dev.push_back(f);
      fecaps_.a.push_back(f->a_);
      fecaps_.b.push_back(f->b_);
      fecaps_.auxRow.push_back(f->auxRow_);
      fecaps_.tFe.push_back(f->geom_.thickness);
      fecaps_.area.push_back(f->geom_.area);
      fecaps_.rho.push_back(f->lk_.coefficients().rho);
      fecaps_.backgroundCap.push_back(f->backgroundCap_);
      fecaps_.lk.push_back(&f->lk_);
    } else {
      ref = {Kind::kGeneric, 0};
    }
    if (ref.kind != Kind::kGeneric) ++batchedCount_;
    refs_.push_back(ref);
  }

  // Size the scratch lanes once — assemble-time phases never allocate.
  resistors_.i.resize(resistors_.a.size());
  capacitors_.i.resize(capacitors_.a.size());
  capacitors_.g.resize(capacitors_.a.size());
  vsources_.v.resize(vsources_.plus.size());
  isources_.i.resize(isources_.from.size());
  diodes_.i.resize(diodes_.anode.size());
  diodes_.g.resize(diodes_.anode.size());
  const std::size_t nm = mosfets_.dev.size();
  mosfets_.vd.resize(nm);
  mosfets_.vg.resize(nm);
  mosfets_.vs.resize(nm);
  mosfets_.op.resize(nm);
  mosfets_.qDensity.resize(nm);
  mosfets_.cDensity.resize(nm);
  mosfets_.chanI.resize(nm);
  mosfets_.chanG.resize(nm);
  mosfets_.ovlGdI.resize(nm);
  mosfets_.ovlGdG.resize(nm);
  mosfets_.ovlGsI.resize(nm);
  mosfets_.ovlGsG.resize(nm);
  mosfets_.junDI.resize(nm);
  mosfets_.junDG.resize(nm);
  mosfets_.junSI.resize(nm);
  mosfets_.junSG.resize(nm);
  const std::size_t nf = fecaps_.dev.size();
  fecaps_.p.resize(nf);
  fecaps_.pPrev.resize(nf);
  fecaps_.field.resize(nf);
  fecaps_.slope.resize(nf);
  fecaps_.dPdt.resize(nf);
  fecaps_.dRatedP.resize(nf);
  fecaps_.bgI.resize(nf);
  fecaps_.bgG.resize(nf);
}

void DeviceBatches::stampAll(const EvalContext& ctx,
                             std::span<const std::size_t> jacobianEnds) {
  // Phase 1: type-major kernels into scratch.
  evalResistors(ctx);
  evalCapacitors(ctx);
  evalVoltageSources(ctx);
  evalCurrentSources(ctx);
  evalDiodes(ctx);
  evalMosfets(ctx);
  evalFeCaps(ctx);

  // Phase 2: scatter in netlist order — the accumulation order (and
  // therefore the floating-point result) matches the scalar engine.
  StampBuffer* buffer = ctx.buffer;
  for (std::size_t i = 0; i < refs_.size(); ++i) {
    const Ref ref = refs_[i];
    switch (ref.kind) {
      case Kind::kResistor: scatterResistor(ref.lane, ctx); break;
      case Kind::kCapacitor: scatterCapacitor(ref.lane, ctx); break;
      case Kind::kVoltageSource: scatterVoltageSource(ref.lane, ctx); break;
      case Kind::kCurrentSource: scatterCurrentSource(ref.lane, ctx); break;
      case Kind::kDiode: scatterDiode(ref.lane, ctx); break;
      case Kind::kMosfet: scatterMosfet(ref.lane, ctx); break;
      case Kind::kFeCap: scatterFeCap(ref.lane, ctx); break;
      case Kind::kGeneric: order_[i]->stamp(ctx); break;
    }
    if (buffer != nullptr && buffer->jacobianCalls() != jacobianEnds[i]) {
      throwCountMismatch(i, buffer->jacobianCalls(), jacobianEnds);
    }
  }
}

void DeviceBatches::throwCountMismatch(
    std::size_t deviceIndex, std::size_t consumed,
    std::span<const std::size_t> jacobianEnds) const {
  const std::size_t before =
      deviceIndex > 0 ? jacobianEnds[deviceIndex - 1] : 0;
  std::ostringstream os;
  os << "compiled stamp pipeline: device '" << order_[deviceIndex]->name()
     << "' emitted " << consumed - before
     << " Jacobian entries but the recorded pattern has "
     << jacobianEnds[deviceIndex] - before
     << " — stamp sequences must be a fixed function of (dc, method)";
  throw NumericalError(os.str());
}

// ---------------------------------------------------------------------------
// Phase 1: batch kernels.  Every lane evaluates the same expression
// sequence as the corresponding scalar Device::stamp — bit-identity
// depends on it.

void DeviceBatches::evalResistors(const EvalContext& ctx) {
  ResistorBatch& batch = resistors_;
  const SystemView& view = ctx.view;
  const std::size_t n = batch.a.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double va = view.nodeVoltage(batch.a[k]);
    const double vb = view.nodeVoltage(batch.b[k]);
    batch.i[k] = batch.g[k] * (va - vb);
  }
}

void DeviceBatches::evalCapacitors(const EvalContext& ctx) {
  if (ctx.dc) return;  // scalar Capacitor::stamp is a no-op in DC
  CapacitorBatch& batch = capacitors_;
  const SystemView& view = ctx.view;
  const std::size_t n = batch.a.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double v =
        view.nodeVoltage(batch.a[k]) - view.nodeVoltage(batch.b[k]);
    const double q = batch.c[k] * v;
    const auto [i, dIdQ] = batch.dev[k]->charge_.currentFor(q, ctx);
    batch.i[k] = i;
    batch.g[k] = dIdQ * batch.c[k];
  }
}

void DeviceBatches::evalVoltageSources(const EvalContext& ctx) {
  VoltageSourceBatch& batch = vsources_;
  const std::size_t n = batch.plus.size();
  for (std::size_t k = 0; k < n; ++k) {
    batch.v[k] = batch.dev[k]->shape_(ctx.time);
  }
}

void DeviceBatches::evalCurrentSources(const EvalContext& ctx) {
  CurrentSourceBatch& batch = isources_;
  const std::size_t n = batch.from.size();
  for (std::size_t k = 0; k < n; ++k) {
    batch.i[k] = batch.dev[k]->shape_(ctx.time);
  }
}

void DeviceBatches::evalDiodes(const EvalContext& ctx) {
  DiodeBatch& batch = diodes_;
  const SystemView& view = ctx.view;
  const std::size_t n = batch.anode.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double v = view.nodeVoltage(batch.anode[k]) -
                     view.nodeVoltage(batch.cathode[k]);
    const double isat = batch.isat[k];
    const double vt = batch.vt[k];
    const double vmax = batch.vmax[k];
    // Exponential with linear continuation above vmax (Diode::currentAt).
    if (v <= vmax) {
      batch.i[k] = isat * (std::exp(v / vt) - 1.0);
      batch.g[k] = isat * std::exp(v / vt) / vt;
    } else {
      const double iMax = isat * (std::exp(vmax / vt) - 1.0);
      const double gMax = isat * std::exp(vmax / vt) / vt;
      batch.i[k] = iMax + gMax * (v - vmax);
      batch.g[k] = gMax;
    }
  }
}

void DeviceBatches::evalMosfets(const EvalContext& ctx) {
  MosfetBatch& batch = mosfets_;
  const SystemView& view = ctx.view;
  const std::size_t n = batch.dev.size();
  if (n == 0) return;
  for (std::size_t k = 0; k < n; ++k) {
    batch.vd[k] = view.nodeVoltage(batch.drain[k]);
    batch.vg[k] = view.nodeVoltage(batch.gate[k]);
    batch.vs[k] = view.nodeVoltage(batch.source[k]);
  }
  xtor::MosfetModel::evaluateBatch(n, batch.model.data(), batch.vd.data(),
                                   batch.vg.data(), batch.vs.data(),
                                   batch.op.data());
  if (ctx.dc) return;  // charge elements vanish in DC

  // Intrinsic gate charge: vgs lanes reuse the qDensity scratch before the
  // kernel overwrites it with the charge density.
  for (std::size_t k = 0; k < n; ++k) {
    batch.qDensity[k] = batch.vg[k] - batch.vs[k];
  }
  xtor::MosfetModel::gateChargeBatch(n, batch.model.data(),
                                     batch.qDensity.data(),
                                     batch.qDensity.data(),
                                     batch.cDensity.data());
  for (std::size_t k = 0; k < n; ++k) {
    const MosfetDevice& dev = *batch.dev[k];
    const double q = batch.gateArea[k] * batch.qDensity[k];
    const auto [i, dIdQ] = dev.chanCharge_.currentFor(q, ctx);
    batch.chanI[k] = i;
    batch.chanG[k] = dIdQ * (batch.gateArea[k] * batch.cDensity[k]);
  }
  // Linear charge elements (same companion arithmetic as stampLinearCap).
  for (std::size_t k = 0; k < n; ++k) {
    const MosfetDevice& dev = *batch.dev[k];
    const double vd = batch.vd[k];
    const double vg = batch.vg[k];
    const double vs = batch.vs[k];
    const double ovl = batch.overlapCap[k];
    const double jun = batch.junctionCap[k];
    {
      const auto [i, dIdQ] = dev.ovlGd_.currentFor(ovl * (vg - vd), ctx);
      batch.ovlGdI[k] = i;
      batch.ovlGdG[k] = dIdQ * ovl;
    }
    {
      const auto [i, dIdQ] = dev.ovlGs_.currentFor(ovl * (vg - vs), ctx);
      batch.ovlGsI[k] = i;
      batch.ovlGsG[k] = dIdQ * ovl;
    }
    {
      const auto [i, dIdQ] = dev.junD_.currentFor(jun * vd, ctx);
      batch.junDI[k] = i;
      batch.junDG[k] = dIdQ * jun;
    }
    {
      const auto [i, dIdQ] = dev.junS_.currentFor(jun * vs, ctx);
      batch.junSI[k] = i;
      batch.junSG[k] = dIdQ * jun;
    }
  }
}

void DeviceBatches::evalFeCaps(const EvalContext& ctx) {
  FeCapBatch& batch = fecaps_;
  const SystemView& view = ctx.view;
  const std::size_t n = batch.dev.size();
  if (n == 0) return;
  for (std::size_t k = 0; k < n; ++k) {
    batch.p[k] = view.aux(batch.auxRow[k]);
    batch.pPrev[k] = batch.dev[k]->pCommitted_;
  }
  // dP/dt companion form: the LK state always integrates backward Euler
  // (FeCapDevice::rateFor — trapezoidal rings on the negative-capacitance
  // branch).
  if (ctx.dc || ctx.dt <= 0.0) {
    for (std::size_t k = 0; k < n; ++k) {
      batch.dPdt[k] = 0.0;
      batch.dRatedP[k] = 0.0;
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      batch.dPdt[k] = (batch.p[k] - batch.pPrev[k]) / ctx.dt;
      batch.dRatedP[k] = 1.0 / ctx.dt;
    }
  }
  ferro::LandauKhalatnikov::staticFieldBatch(n, batch.lk.data(),
                                             batch.p.data(),
                                             batch.field.data(),
                                             batch.slope.data());
  if (!ctx.dc) {
    for (std::size_t k = 0; k < n; ++k) {
      const double bc = batch.backgroundCap[k];
      if (bc <= 0.0) continue;
      const double v =
          view.nodeVoltage(batch.a[k]) - view.nodeVoltage(batch.b[k]);
      const auto [ib, dIdQ] =
          batch.dev[k]->background_.currentFor(bc * v, ctx);
      batch.bgI[k] = ib;
      batch.bgG[k] = dIdQ * bc;
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 2: netlist-order scatter.  Call sequences mirror the scalar stamp
// implementations entry for entry.

void DeviceBatches::scatterResistor(std::uint32_t lane,
                                    const EvalContext& ctx) const {
  const ResistorBatch& batch = resistors_;
  const double g = batch.g[lane];
  const double i = batch.i[lane];
  const int ra = Stamper::rowOfNode(batch.a[lane]);
  const int rb = Stamper::rowOfNode(batch.b[lane]);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

void DeviceBatches::scatterCapacitor(std::uint32_t lane,
                                     const EvalContext& ctx) const {
  if (ctx.dc) return;
  const CapacitorBatch& batch = capacitors_;
  const double i = batch.i[lane];
  const double g = batch.g[lane];
  const int ra = Stamper::rowOfNode(batch.a[lane]);
  const int rb = Stamper::rowOfNode(batch.b[lane]);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

void DeviceBatches::scatterVoltageSource(std::uint32_t lane,
                                         const EvalContext& ctx) const {
  const VoltageSourceBatch& batch = vsources_;
  const int rp = Stamper::rowOfNode(batch.plus[lane]);
  const int rm = Stamper::rowOfNode(batch.minus[lane]);
  const int aux = batch.auxRow[lane];
  const double i = ctx.view.aux(aux);
  const double vp = ctx.view.nodeVoltage(batch.plus[lane]);
  const double vm = ctx.view.nodeVoltage(batch.minus[lane]);
  ctx.addResidual(rp, i);
  ctx.addResidual(rm, -i);
  ctx.addJacobian(rp, aux, 1.0);
  ctx.addJacobian(rm, aux, -1.0);
  ctx.addResidual(aux, vp - vm - batch.v[lane]);
  ctx.addJacobian(aux, rp, 1.0);
  ctx.addJacobian(aux, rm, -1.0);
}

void DeviceBatches::scatterCurrentSource(std::uint32_t lane,
                                         const EvalContext& ctx) const {
  const CurrentSourceBatch& batch = isources_;
  const double i = batch.i[lane];
  ctx.addResidual(Stamper::rowOfNode(batch.from[lane]), i);
  ctx.addResidual(Stamper::rowOfNode(batch.to[lane]), -i);
}

void DeviceBatches::scatterDiode(std::uint32_t lane,
                                 const EvalContext& ctx) const {
  const DiodeBatch& batch = diodes_;
  const double i = batch.i[lane];
  const double g = batch.g[lane];
  const int ra = Stamper::rowOfNode(batch.anode[lane]);
  const int rb = Stamper::rowOfNode(batch.cathode[lane]);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

void DeviceBatches::scatterMosfet(std::uint32_t lane,
                                  const EvalContext& ctx) const {
  const MosfetBatch& batch = mosfets_;
  const int rd = Stamper::rowOfNode(batch.drain[lane]);
  const int rg = Stamper::rowOfNode(batch.gate[lane]);
  const int rs = Stamper::rowOfNode(batch.source[lane]);

  const xtor::MosOperatingPoint& op = batch.op[lane];
  const double gms = -(op.gm + op.gds);
  ctx.addResidual(rd, op.ids);
  ctx.addResidual(rs, -op.ids);
  ctx.addJacobian(rd, rd, op.gds);
  ctx.addJacobian(rd, rg, op.gm);
  ctx.addJacobian(rd, rs, gms);
  ctx.addJacobian(rs, rd, -op.gds);
  ctx.addJacobian(rs, rg, -op.gm);
  ctx.addJacobian(rs, rs, -gms);

  const double gateLeak = batch.gateLeak[lane];
  if (gateLeak > 0.0) {
    const double il = gateLeak * (batch.vg[lane] - batch.vs[lane]);
    ctx.addResidual(rg, il);
    ctx.addResidual(rs, -il);
    ctx.addJacobian(rg, rg, gateLeak);
    ctx.addJacobian(rg, rs, -gateLeak);
    ctx.addJacobian(rs, rg, -gateLeak);
    ctx.addJacobian(rs, rs, gateLeak);
  }

  if (ctx.dc) return;

  {
    const double i = batch.chanI[lane];
    const double g = batch.chanG[lane];
    ctx.addResidual(rg, i);
    ctx.addResidual(rs, -i);
    ctx.addJacobian(rg, rg, g);
    ctx.addJacobian(rg, rs, -g);
    ctx.addJacobian(rs, rg, -g);
    ctx.addJacobian(rs, rs, g);
  }
  const auto scatterCap = [&ctx](double i, double g, int ra, int rb) {
    ctx.addResidual(ra, i);
    ctx.addResidual(rb, -i);
    ctx.addJacobian(ra, ra, g);
    ctx.addJacobian(ra, rb, -g);
    ctx.addJacobian(rb, ra, -g);
    ctx.addJacobian(rb, rb, g);
  };
  const int rground = Stamper::rowOfNode(kGround);
  if (batch.overlapCap[lane] > 0.0) {
    scatterCap(batch.ovlGdI[lane], batch.ovlGdG[lane], rg, rd);
    scatterCap(batch.ovlGsI[lane], batch.ovlGsG[lane], rg, rs);
  }
  if (batch.junctionCap[lane] > 0.0) {
    scatterCap(batch.junDI[lane], batch.junDG[lane], rd, rground);
    scatterCap(batch.junSI[lane], batch.junSG[lane], rs, rground);
  }
}

void DeviceBatches::scatterFeCap(std::uint32_t lane,
                                 const EvalContext& ctx) const {
  const FeCapBatch& batch = fecaps_;
  const int ra = Stamper::rowOfNode(batch.a[lane]);
  const int rb = Stamper::rowOfNode(batch.b[lane]);
  const int aux = batch.auxRow[lane];
  const double tFe = batch.tFe[lane];
  const double rho = batch.rho[lane];
  const double dPdt = batch.dPdt[lane];
  const double dRatedP = batch.dRatedP[lane];
  const double va = ctx.view.nodeVoltage(batch.a[lane]);
  const double vb = ctx.view.nodeVoltage(batch.b[lane]);

  ctx.addResidual(aux, va - vb - tFe * (batch.field[lane] + rho * dPdt));
  ctx.addJacobian(aux, ra, 1.0);
  ctx.addJacobian(aux, rb, -1.0);
  ctx.addJacobian(aux, aux, -tFe * (batch.slope[lane] + rho * dRatedP));

  if (!ctx.dc) {
    const double i = batch.area[lane] * dPdt;
    ctx.addResidual(ra, i);
    ctx.addResidual(rb, -i);
    const double dIdP = batch.area[lane] * dRatedP;
    ctx.addJacobian(ra, aux, dIdP);
    ctx.addJacobian(rb, aux, -dIdP);

    if (batch.backgroundCap[lane] > 0.0) {
      const double ib = batch.bgI[lane];
      const double g = batch.bgG[lane];
      ctx.addResidual(ra, ib);
      ctx.addResidual(rb, -ib);
      ctx.addJacobian(ra, ra, g);
      ctx.addJacobian(ra, rb, -g);
      ctx.addJacobian(rb, ra, -g);
      ctx.addJacobian(rb, rb, g);
    }
  }
}

}  // namespace fefet::spice
