// newton.h — damped Newton–Raphson over the MNA residual system, with
// per-unknown step limiting and optional gmin continuation for hard DC
// operating points.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "spice/assembler.h"
#include "spice/mna.h"
#include "spice/netlist.h"

namespace fefet::spice {

/// Dense -> sparse crossover: systems with more unknowns than this use the
/// sparse matrix + sparse LU; at or below it dense LU wins.  MNA rows only
/// carry a handful of entries, but dense factorization of a small system
/// still beats the pointer-chasing of the sparse path; the value was
/// picked from solver benchmarks (see bench_perf_solver / bench_assembly)
/// around where array netlists overtake cell netlists.
inline constexpr int kDenseToSparseCrossover = 160;

/// Session default for NewtonOptions::useCompiledStamps: true unless the
/// environment sets FEFET_COMPILED_STAMPS=0 (A/B runs of entire sweeps
/// without recompiling or threading an option through every harness).
bool defaultUseCompiledStamps();

/// Session default for NewtonOptions::useBatchedKernels: true unless the
/// environment sets FEFET_BATCHED_KERNELS=0.
bool defaultUseBatchedKernels();

struct NewtonOptions {
  int maxIterations = 80;
  double voltageAbsTol = 1e-6;    ///< [V] update tolerance on node voltages
  double auxAbsTol = 1e-9;        ///< update tolerance on aux unknowns
  double relTol = 1e-4;           ///< relative part of both checks
  double residualAbsTol = 1e-9;   ///< [A]/[V] absolute residual floor
  double residualRelTol = 1e-6;   ///< residual vs row activity scale
  double maxVoltageStep = 0.6;    ///< [V] damping clamp per iteration
  double maxAuxStep = 0.1;        ///< damping clamp on aux unknowns
  double gmin = 1e-12;            ///< [S] node-to-ground regularization
  /// Cache the sparse LU symbolic structure (fill pattern + pivot order)
  /// across Newton iterations and timesteps, refactoring numerically only.
  /// Bit-identical to the uncached path (pivoting is re-verified every
  /// solve); off exists for A/B testing and diagnostics.
  bool reuseLuStructure = true;
  /// Assemble through the compiled stamp pipeline (pattern-once CSR with
  /// slot-based device stamping, see assembler.h) instead of per-entry
  /// virtual dispatch into MnaSystem.  The two engines produce bit-
  /// identical waveforms; the legacy path remains as the parity oracle.
  bool useCompiledStamps = defaultUseCompiledStamps();
  /// Evaluate homogeneous devices through the structure-of-arrays batch
  /// kernels (see device_batch.h) instead of per-device virtual stamp()
  /// dispatch.  Only effective with useCompiledStamps (the batched path
  /// scatters through the compiled slot programs).  Bit-identical to the
  /// scalar path: evaluation is type-major but the scatter into the shared
  /// slots/rows happens in original netlist order.
  bool useBatchedKernels = defaultUseBatchedKernels();
};

struct NewtonStats {
  int iterations = 0;
  bool converged = false;
  double finalResidualNorm = 0.0;
  /// Gmin rescue levels applied before this solve converged (0 when the
  /// nominal gmin sufficed).
  int gminEscalations = 0;
  /// Gmin actually used by the converged solve (options.gmin nominally).
  double gminUsed = 0.0;
};

/// Solve F(x) = 0 for the frozen netlist at one (DC or transient) instant.
/// `x` holds the initial guess and receives the solution.
class NewtonSolver {
 public:
  NewtonSolver(Netlist& netlist, const NewtonOptions& options);

  /// One full Newton solve with the supplied stamp-context template (its
  /// view/stamper fields are filled per iteration).  Returns stats;
  /// `converged == false` means the caller should cut dt / apply gmin.
  NewtonStats solve(std::vector<double>& x, bool dc, double time, double dt,
                    IntegrationMethod method);

  /// Like solve(), but on non-convergence retries with gmin raised by
  /// x100 per level, up to `maxEscalations` levels capped at `gminMax`.
  /// A rescue that converges reports the escalation count and the gmin it
  /// needed; x is only updated by the converging attempt.
  NewtonStats solveWithEscalation(std::vector<double>& x, bool dc,
                                  double time, double dt,
                                  IntegrationMethod method,
                                  int maxEscalations, double gminMax);

  /// DC solve with gmin stepping fallback: tries a direct solve, then a
  /// sequence of decreasing gmin values.  Throws NumericalError when even
  /// the continuation fails.
  NewtonStats solveDcWithContinuation(std::vector<double>& x);

  /// True when the compiled stamp pipeline assembles (vs the legacy
  /// virtual-dispatch oracle).
  bool usesCompiledStamps() const { return assembler_.has_value(); }

  /// Sparse-LU structure-cache diagnostics of whichever assembly engine
  /// is active (zeros on the dense path).
  const linalg::SparseLuFactorizer& sparseFactorizer() const {
    return assembler_ ? assembler_->solver().sparseFactorizer()
                      : system_->sparseFactorizer();
  }

  /// Wall-clock budget observed by the iteration loop: every iteration
  /// polls it and an expired deadline raises DeadlineExceeded (carrying
  /// the iteration count and last residual).  Set by Simulator per
  /// transient run; defaults to unlimited.
  void setDeadline(const Deadline& deadline) { deadline_ = deadline; }

 private:
  NewtonStats solveWithGmin(std::vector<double>& x, bool dc, double time,
                            double dt, IntegrationMethod method, double gmin);

  Netlist& netlist_;
  NewtonOptions options_;
  // Exactly one assembly engine is engaged, per options_.useCompiledStamps.
  std::optional<MnaSystem> system_;      ///< legacy parity oracle
  std::optional<Assembler> assembler_;   ///< compiled stamp pipeline
  // Reused across iterations/escalation levels: the Newton update and the
  // trial vector of escalation/continuation attempts (no per-iteration
  // heap churn).
  std::vector<double> dx_;
  std::vector<double> attempt_;
  Deadline deadline_;  ///< unlimited unless a transient run set one
};

}  // namespace fefet::spice
