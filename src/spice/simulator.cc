#include "spice/simulator.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fefet::spice {

namespace {

/// Transient retry-history telemetry under fefet.transient.*.  Flushed
/// once per run — on clean completion AND on throw exits — so dt cuts and
/// gmin escalations from successful runs land in the registry too, not
/// only the copies carried by SolverDiagnostics on failure.
struct TransientTelemetry {
  obs::Counter& runs;
  obs::Counter& failedRuns;
  obs::Counter& steps;
  obs::Counter& newtonIterations;
  obs::Counter& dtCuts;
  obs::Counter& rejectedSteps;
  obs::Counter& gminEscalations;
};

TransientTelemetry& transientTelemetry() {
  static TransientTelemetry t{
      obs::Metrics::counter("fefet.transient.runs"),
      obs::Metrics::counter("fefet.transient.failed_runs"),
      obs::Metrics::counter("fefet.transient.steps"),
      obs::Metrics::counter("fefet.transient.newton_iterations"),
      obs::Metrics::counter("fefet.transient.dt_cuts"),
      obs::Metrics::counter("fefet.transient.rejected_steps"),
      obs::Metrics::counter("fefet.transient.gmin_escalations")};
  return t;
}

}  // namespace

Simulator::Simulator(Netlist& netlist, const NewtonOptions& newton)
    : netlist_(netlist), newtonOptions_(newton), newton_(netlist, newton) {
  // The NewtonSolver constructor froze the netlist (freeze() is where the
  // unknown layout and the compiled stamp pattern are fixed).
}

NewtonStats Simulator::solveDc() {
  initializeUic();
  newton_.setDeadline(Deadline::unlimited());  // clear any stale run budget
  const NewtonStats stats = newton_.solveDcWithContinuation(x_);
  SystemView view(x_, netlist_.nodeCount());
  for (const auto& device : netlist_.devices()) device->initializeState(view);
  stateValid_ = true;
  return stats;
}

void Simulator::initializeUic() {
  const std::size_t n = static_cast<std::size_t>(netlist_.unknownCount());
  if (x_.size() != n) x_.assign(n, 0.0);
  for (const auto& device : netlist_.devices()) device->seedUnknowns(x_);
  SystemView view(x_, netlist_.nodeCount());
  for (const auto& device : netlist_.devices()) device->initializeState(view);
  stateValid_ = true;
}

double Simulator::nodeVoltage(const std::string& name) const {
  FEFET_REQUIRE(!x_.empty(), "no solution available yet");
  FEFET_REQUIRE(netlist_.hasNode(name), "no such node: " + name);
  const NodeId id = const_cast<Netlist&>(netlist_).node(name);
  SystemView view(x_, netlist_.nodeCount());
  return view.nodeVoltage(id);
}

void Simulator::setNodeVoltage(const std::string& name, double value) {
  const std::size_t n = static_cast<std::size_t>(netlist_.unknownCount());
  if (x_.size() != n) x_.assign(n, 0.0);
  const NodeId id = netlist_.node(name);
  if (id != kGround) x_[static_cast<std::size_t>(id - 1)] = value;
}

double Simulator::measure(const Probe& probe) const {
  FEFET_REQUIRE(!x_.empty(), "no solution available yet");
  SystemView view(x_, netlist_.nodeCount());
  return probeValue(probe, view);
}

double Simulator::probeValue(const Probe& probe,
                             const SystemView& view) const {
  if (probe.kind == Probe::Kind::kNodeVoltage) {
    const NodeId id = const_cast<Netlist&>(netlist_).node(probe.target);
    return view.nodeVoltage(id);
  }
  const Device* device = netlist_.find(probe.target);
  FEFET_REQUIRE(device != nullptr, "no such device: " + probe.target);
  for (const auto& st : device->reportState(view)) {
    if (st.name == probe.state) return st.value;
  }
  throw InvalidArgumentError("device " + probe.target + " has no state '" +
                             probe.state + "'");
}

TransientResult Simulator::runTransient(const TransientOptions& options,
                                        const std::vector<Probe>& probes) {
  FEFET_REQUIRE(options.duration > 0.0, "transient duration must be positive");
  FEFET_REQUIRE(options.dtCutFactor > 0.0 && options.dtCutFactor < 1.0,
                "dtCutFactor must be in (0, 1)");
  if (!stateValid_) initializeUic();

  const double dtMax =
      options.dtMax > 0.0 ? options.dtMax : options.duration / 50.0;
  double dt = std::min(options.dtInitial, dtMax);

  TransientResult result;
  for (const auto& probe : probes) result.waveform.addColumn(probe.label);

  const obs::Span transientSpan("transient");
  // Destructor-driven flush: counts the run whether it returns or throws.
  struct TelemetryFlush {
    const TransientResult& result;
    bool ok = false;
    ~TelemetryFlush() {
      if (!obs::Metrics::enabled()) return;
      TransientTelemetry& t = transientTelemetry();
      t.runs.increment();
      if (!ok) t.failedRuns.increment();
      t.steps.add(static_cast<std::uint64_t>(result.stats.steps));
      t.newtonIterations.add(
          static_cast<std::uint64_t>(result.stats.newtonIterations));
      t.dtCuts.add(static_cast<std::uint64_t>(result.stats.dtCuts));
      t.rejectedSteps.add(
          static_cast<std::uint64_t>(result.stats.rejectedSteps));
      t.gminEscalations.add(
          static_cast<std::uint64_t>(result.stats.gminEscalations));
    }
  } telemetryFlush{result};

  const int nodes = netlist_.nodeCount();
  const auto record = [&](double t) {
    SystemView view(x_, nodes);
    std::vector<double> values;
    values.reserve(probes.size());
    for (const auto& probe : probes) values.push_back(probeValue(probe, view));
    result.waveform.appendSample(t, values);
  };
  record(0.0);

  const auto wallStart = std::chrono::steady_clock::now();
  const auto wallElapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wallStart)
        .count();
  };
  // One effective deadline governs the run: the caller's (sweep-point)
  // deadline clipped by the per-run maxWallSeconds convenience budget.
  const Deadline deadline =
      options.maxWallSeconds > 0.0
          ? options.deadline.child(options.maxWallSeconds)
          : options.deadline;
  newton_.setDeadline(deadline);
  double t = 0.0;
  double lastResidual = 0.0;
  result.stats.smallestDt = dt;

  // Retry-history snapshot for budget/underflow aborts.
  const auto diagnose = [&] {
    SolverDiagnostics diag;
    diag.time = t;
    diag.smallestDt = result.stats.smallestDt;
    diag.dtCuts = result.stats.dtCuts;
    diag.gminEscalations = result.stats.gminEscalations;
    diag.steps = result.stats.steps;
    diag.newtonIterations = result.stats.newtonIterations;
    diag.finalResidualNorm = lastResidual;
    return diag;
  };

  long solves = 0;
  bool firstStep = true;
  while (t < options.duration * (1.0 - 1e-12)) {
    if (options.maxSteps > 0 && solves >= options.maxSteps) {
      std::ostringstream os;
      os << "transient exceeded its step budget of " << options.maxSteps
         << " solves at t=" << t << " s";
      throw NumericalError(os.str(), diagnose());
    }
    result.stats.wallSeconds = wallElapsed();
    if (deadline.expired()) {
      std::ostringstream os;
      os << "transient exceeded its wall-clock deadline at t=" << t << " s";
      throw DeadlineExceeded(os.str(), diagnose());
    }

    dt = std::min(dt, options.duration - t);
    // Honor device step-size hints (e.g. fast polarization switching).
    {
      SystemView view(x_, nodes);
      for (const auto& device : netlist_.devices()) {
        const double hint = device->maxStepHint(view);
        if (hint > 0.0) dt = std::min(dt, std::max(hint, options.dtMin * 10));
      }
    }
    // Underflow guard: a step so small it cannot advance t is an infinite
    // loop, not progress.
    if (dt <= 0.0 || t + dt == t) {
      std::ostringstream os;
      os << "transient step underflow at t=" << t << " s (dt=" << dt
         << " s cannot advance time)";
      throw NumericalError(os.str(), diagnose());
    }
    result.stats.smallestDt = std::min(result.stats.smallestDt, dt);
    const IntegrationMethod method =
        firstStep ? IntegrationMethod::kBackwardEuler : options.method;

    std::vector<double> trial = x_;
    ++solves;
    NewtonStats stats;
    try {
      stats = newton_.solve(trial, /*dc=*/false, t + dt, dt, method);
    } catch (const DeadlineExceeded&) {
      // Rethrow with the full transient retry history, not just the
      // iteration count the Newton loop could see.
      std::ostringstream os;
      os << "transient exceeded its wall-clock deadline at t=" << t << " s";
      throw DeadlineExceeded(os.str(), diagnose());
    }
    result.stats.newtonIterations += stats.iterations;
    lastResidual = stats.finalResidualNorm;
    if (!stats.converged) {
      ++result.stats.rejectedSteps;
      const double cut = dt * options.dtCutFactor;
      if (cut >= options.dtMin) {
        ++result.stats.dtCuts;
        dt = cut;
        continue;
      }
      // dt exhausted: last-resort gmin escalation at the floor step.
      if (options.maxGminEscalations > 0) {
        trial = x_;
        ++solves;
        try {
          stats = newton_.solveWithEscalation(
              trial, /*dc=*/false, t + dt, dt, method,
              options.maxGminEscalations, options.gminMax);
        } catch (const DeadlineExceeded&) {
          std::ostringstream os;
          os << "transient exceeded its wall-clock deadline at t=" << t
             << " s";
          throw DeadlineExceeded(os.str(), diagnose());
        }
        result.stats.newtonIterations += stats.iterations;
        result.stats.gminEscalations += stats.gminEscalations;
        lastResidual = stats.finalResidualNorm;
      }
      if (!stats.converged) {
        std::ostringstream os;
        os << "transient step underflow at t=" << t
           << " s (smallest dt attempted " << result.stats.smallestDt
           << " s, residual=" << stats.finalResidualNorm << ")";
        throw NumericalError(os.str(), diagnose());
      }
    }

    x_ = std::move(trial);
    t += dt;
    ++result.stats.steps;
    firstStep = false;
    {
      SystemView view(x_, nodes);
      for (const auto& device : netlist_.devices()) {
        device->commitStep(view, t, dt, method);
      }
    }
    record(t);
    if (stats.iterations <= options.easyIterations) {
      dt = std::min(dt * options.growthFactor, dtMax);
    }
  }
  result.stats.wallSeconds = wallElapsed();
  telemetryFlush.ok = true;
  return result;
}

}  // namespace fefet::spice
