#include "spice/newton.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/clock.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fefet::spice {

namespace {

/// Per-engine solver telemetry under fefet.newton.*: every solve exit —
/// converged or not — lands in these, so convergence-health histograms
/// cover whole runs rather than only the failures that used to surface
/// through NumericalError's SolverDiagnostics.  Registered once; the hot
/// loop only touches preallocated atomics.
struct NewtonTelemetry {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Counter& nonconverged;
  obs::Counter& gminEscalations;
  obs::Counter& escalationAttempts;
  obs::Counter& assembleNs;
  obs::Counter& solveNs;
  obs::Histogram& iterationsPerSolve;

  static NewtonTelemetry make(const char* engine) {
    static constexpr double kIterEdges[] = {1,  2,  3,  4,  6,  8, 12,
                                            16, 24, 32, 48, 64, 80};
    const std::string p = "fefet.newton.";
    const std::string e = std::string(".") + engine;
    return NewtonTelemetry{
        obs::Metrics::counter(p + "solves" + e),
        obs::Metrics::counter(p + "iterations" + e),
        obs::Metrics::counter(p + "nonconverged" + e),
        obs::Metrics::counter(p + "gmin_escalations" + e),
        obs::Metrics::counter(p + "escalation_attempts" + e),
        obs::Metrics::counter(p + "assemble_ns" + e),
        obs::Metrics::counter(p + "solve_ns" + e),
        obs::Metrics::histogram("fefet.newton.iterations_per_solve",
                                kIterEdges)};
  }
};

NewtonTelemetry& newtonTelemetry(bool compiledEngine) {
  static NewtonTelemetry compiled = NewtonTelemetry::make("compiled");
  static NewtonTelemetry legacy = NewtonTelemetry::make("legacy");
  return compiledEngine ? compiled : legacy;
}

}  // namespace

bool defaultUseCompiledStamps() {
  static const bool value = [] {
    const char* env = std::getenv("FEFET_COMPILED_STAMPS");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return value;
}

bool defaultUseBatchedKernels() {
  static const bool value = [] {
    const char* env = std::getenv("FEFET_BATCHED_KERNELS");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return value;
}

NewtonSolver::NewtonSolver(Netlist& netlist, const NewtonOptions& options)
    : netlist_(netlist), options_(options) {
  const int unknowns = netlist_.freeze();
  const bool sparse = unknowns > kDenseToSparseCrossover;
  if (options_.useCompiledStamps) {
    assembler_.emplace(netlist_.stampPattern(), sparse);
  } else {
    system_.emplace(unknowns, sparse);
    system_->setLuStructureReuse(options_.reuseLuStructure);
  }
}

NewtonStats NewtonSolver::solve(std::vector<double>& x, bool dc, double time,
                                double dt, IntegrationMethod method) {
  return solveWithGmin(x, dc, time, dt, method, options_.gmin);
}

NewtonStats NewtonSolver::solveWithEscalation(std::vector<double>& x, bool dc,
                                              double time, double dt,
                                              IntegrationMethod method,
                                              int maxEscalations,
                                              double gminMax) {
  NewtonTelemetry& telemetry = newtonTelemetry(assembler_.has_value());
  int totalIters = 0;
  double gmin = options_.gmin;
  for (int level = 0; level <= maxEscalations; ++level) {
    if (level > 0 && obs::Metrics::enabled()) {
      telemetry.escalationAttempts.increment();
    }
    attempt_ = x;  // member buffer: reuses capacity across levels/solves
    NewtonStats stats = solveWithGmin(attempt_, dc, time, dt, method, gmin);
    totalIters += stats.iterations;
    if (stats.converged) {
      x = attempt_;
      stats.iterations = totalIters;
      stats.gminEscalations = level;
      stats.gminUsed = gmin;
      if (level > 0 && obs::Metrics::enabled()) {
        telemetry.gminEscalations.add(static_cast<std::uint64_t>(level));
      }
      return stats;
    }
    if (level == maxEscalations) {
      stats.iterations = totalIters;
      stats.gminEscalations = level;
      stats.gminUsed = gmin;
      return stats;
    }
    gmin = std::min(std::max(gmin * 100.0, options_.gmin * 100.0), gminMax);
  }
  return {};  // unreachable
}

NewtonStats NewtonSolver::solveWithGmin(std::vector<double>& x, bool dc,
                                        double time, double dt,
                                        IntegrationMethod method,
                                        double gmin) {
  const int n = netlist_.unknownCount();
  const int nodes = netlist_.nodeCount();
  FEFET_REQUIRE(static_cast<int>(x.size()) == n,
                "newton: solution vector size mismatch");

  // Telemetry for this solve: locals accumulate in the loop and flush to
  // the registry once per solve (one atomic add per counter, not per
  // iteration).  The clock reads for the assemble-vs-solve split are
  // skipped entirely when metrics are disabled.
  NewtonTelemetry& telemetry = newtonTelemetry(assembler_.has_value());
  const bool timed = obs::Metrics::enabled();
  std::uint64_t assembleNs = 0;
  std::uint64_t luSolveNs = 0;
  const auto flushTelemetry = [&](const NewtonStats& s) {
    if (!obs::Metrics::enabled()) return;
    telemetry.solves.increment();
    telemetry.iterations.add(static_cast<std::uint64_t>(s.iterations));
    if (!s.converged) telemetry.nonconverged.increment();
    telemetry.assembleNs.add(assembleNs);
    telemetry.solveNs.add(luSolveNs);
    telemetry.iterationsPerSolve.observe(static_cast<double>(s.iterations));
  };
  const obs::Span solveSpan("newton.solve");

  NewtonStats stats;
  for (int iter = 0; iter < options_.maxIterations; ++iter) {
    // The deadline poll is ~ns against a matrix assemble+solve, so per-
    // iteration granularity costs nothing and bounds even a single hard
    // solve that would otherwise burn its full maxIterations budget.
    if (deadline_.expired()) {
      flushTelemetry(stats);
      SolverDiagnostics diag;
      diag.newtonIterations = stats.iterations;
      diag.finalResidualNorm = stats.finalResidualNorm;
      throw DeadlineExceeded("newton iteration exceeded its deadline", diag);
    }
    stats.iterations = iter + 1;
    SystemView view(x, nodes);
    {
      const obs::Span span("newton.assemble");
      const std::uint64_t t0 = timed ? monotonicNanos() : 0;
      if (assembler_) {
        assembler_->assemble(netlist_, view, dc, time, dt, method, gmin,
                             options_.useBatchedKernels);
      } else {
        system_->clear();
        EvalContext ctx{view, dc, time, dt, method, gmin, nullptr, &*system_};
        for (const auto& device : netlist_.devices()) device->stamp(ctx);
        system_->addGmin(gmin, view, nodes);
      }
      if (timed) assembleNs += monotonicNanos() - t0;
    }

    std::vector<double>& dx = dx_;  // member buffer: no per-iteration alloc
    try {
      const obs::Span span("newton.lu_solve");
      const std::uint64_t t0 = timed ? monotonicNanos() : 0;
      if (assembler_) {
        assembler_->solveForUpdate(dx, options_.reuseLuStructure);
      } else {
        system_->solveForUpdate(dx);
      }
      if (timed) luSolveNs += monotonicNanos() - t0;
    } catch (const NumericalError&) {
      // Singular Jacobian mid-iteration: report non-convergence so the
      // caller can cut the time step or raise gmin.
      stats.converged = false;
      flushTelemetry(stats);
      return stats;
    }

    // Damping: clamp per-unknown updates.
    bool clamped = false;
    for (int i = 0; i < n; ++i) {
      const double limit =
          i < nodes ? options_.maxVoltageStep : options_.maxAuxStep;
      if (dx[static_cast<std::size_t>(i)] > limit) {
        dx[static_cast<std::size_t>(i)] = limit;
        clamped = true;
      } else if (dx[static_cast<std::size_t>(i)] < -limit) {
        dx[static_cast<std::size_t>(i)] = -limit;
        clamped = true;
      }
    }
    double maxUpdate = 0.0;
    bool updateOk = true;
    for (int i = 0; i < n; ++i) {
      const double xi = x[static_cast<std::size_t>(i)];
      const double di = dx[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(i)] = xi + di;
      const double tol =
          (i < nodes ? options_.voltageAbsTol : options_.auxAbsTol) +
          options_.relTol * std::abs(xi);
      if (std::abs(di) > tol) updateOk = false;
      maxUpdate = std::max(maxUpdate, std::abs(di));
    }

    // Residual check on the pre-update residual (already assembled).
    const std::span<const double> residual =
        assembler_ ? assembler_->residual()
                   : std::span<const double>(system_->residual());
    const std::span<const double> rowScale =
        assembler_ ? assembler_->rowScale()
                   : std::span<const double>(system_->rowScale());
    double resNorm = 0.0;
    bool residualOk = true;
    for (int i = 0; i < n; ++i) {
      const double r = residual[static_cast<std::size_t>(i)];
      const double scale = rowScale[static_cast<std::size_t>(i)];
      resNorm = std::max(resNorm, std::abs(r));
      if (std::abs(r) >
          options_.residualAbsTol + options_.residualRelTol * scale) {
        residualOk = false;
      }
    }
    stats.finalResidualNorm = resNorm;

    if (updateOk && residualOk && !clamped) {
      stats.converged = true;
      flushTelemetry(stats);
      return stats;
    }
  }
  stats.converged = false;
  flushTelemetry(stats);
  return stats;
}

NewtonStats NewtonSolver::solveDcWithContinuation(std::vector<double>& x) {
  // Direct attempt first (attempt_ is the reused member trial buffer).
  attempt_ = x;
  NewtonStats stats = solveWithGmin(attempt_, /*dc=*/true, 0.0, 0.0,
                                    IntegrationMethod::kBackwardEuler,
                                    options_.gmin);
  if (stats.converged) {
    x = attempt_;
    return stats;
  }
  // Gmin stepping: start heavily regularized, then relax.
  FEFET_DEBUG() << "DC: direct solve failed; starting gmin continuation";
  attempt_ = x;
  int totalIters = stats.iterations;
  int levels = 0;
  const auto diagnose = [&](double gmin) {
    SolverDiagnostics diag;
    diag.gminEscalations = levels;
    diag.newtonIterations = totalIters;
    diag.finalResidualNorm = stats.finalResidualNorm;
    diag.smallestDt = 0.0;
    return NumericalError(
        "DC operating point failed during gmin continuation at gmin=" +
            std::to_string(gmin),
        diag);
  };
  for (double gmin = 1e-2; gmin >= options_.gmin * 0.99; gmin *= 0.1) {
    stats = solveWithGmin(attempt_, true, 0.0, 0.0,
                          IntegrationMethod::kBackwardEuler, gmin);
    totalIters += stats.iterations;
    ++levels;
    if (!stats.converged) throw diagnose(gmin);
  }
  stats = solveWithGmin(attempt_, true, 0.0, 0.0,
                        IntegrationMethod::kBackwardEuler, options_.gmin);
  totalIters += stats.iterations;
  ++levels;
  if (!stats.converged) throw diagnose(options_.gmin);
  x = attempt_;
  stats.iterations = totalIters;
  stats.gminEscalations = levels;
  stats.gminUsed = options_.gmin;
  if (obs::Metrics::enabled()) {
    NewtonTelemetry& telemetry = newtonTelemetry(assembler_.has_value());
    telemetry.escalationAttempts.add(static_cast<std::uint64_t>(levels));
    telemetry.gminEscalations.add(static_cast<std::uint64_t>(levels));
  }
  return stats;
}

}  // namespace fefet::spice
