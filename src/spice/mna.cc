#include "spice/mna.h"

#include <cmath>

#include "common/error.h"

namespace fefet::spice {

MnaSystem::MnaSystem(int unknowns, bool useSparse)
    : n_(unknowns),
      useSparse_(useSparse),
      solver_(static_cast<std::size_t>(unknowns), useSparse),
      residual_(static_cast<std::size_t>(unknowns), 0.0),
      rowScale_(static_cast<std::size_t>(unknowns), 0.0),
      rhs_(static_cast<std::size_t>(unknowns), 0.0) {
  FEFET_REQUIRE(unknowns > 0, "MNA system needs at least one unknown");
  if (useSparse_) {
    sparseM_ = linalg::SparseMatrix(static_cast<std::size_t>(unknowns));
  } else {
    dense_ = linalg::DenseMatrix(static_cast<std::size_t>(unknowns),
                                 static_cast<std::size_t>(unknowns));
  }
}

void MnaSystem::clear() {
  std::fill(residual_.begin(), residual_.end(), 0.0);
  std::fill(rowScale_.begin(), rowScale_.end(), 0.0);
  if (useSparse_) {
    if (reuseLuStructure_) {
      // Keep the map nodes so re-stamping the same circuit reuses them and
      // the factorizer sees a stable pattern; stale positions hold an
      // explicit 0.0, which is numerically inert in the LU.
      sparseM_.setZeroKeepStructure();
    } else {
      sparseM_.setZero();
    }
  } else {
    dense_.setZero();
  }
}

void MnaSystem::addResidual(int row, double value) {
  if (row < 0) return;  // ground
  residual_[static_cast<std::size_t>(row)] += value;
  rowScale_[static_cast<std::size_t>(row)] += std::abs(value);
}

void MnaSystem::addJacobian(int row, int col, double value) {
  if (row < 0 || col < 0) return;  // ground
  if (value == 0.0) return;
  if (useSparse_) {
    sparseM_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col),
                 value);
  } else {
    dense_.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
        value;
  }
}

void MnaSystem::addGmin(double gmin, const SystemView& view, int nodeCount) {
  if (gmin <= 0.0) return;
  for (int row = 0; row < nodeCount; ++row) {
    const double v = view.nodeVoltage(row + 1);
    // Through addResidual, not residual_ directly: the row-scale that the
    // relative residual convergence test divides by must include the gmin
    // current, otherwise escalated gmin injects residual that the scaled
    // check never accounts for.
    addResidual(row, gmin * v);
    addJacobian(row, row, gmin);
  }
}

std::vector<double> MnaSystem::solveForUpdate() {
  std::vector<double> dx;
  solveForUpdate(dx);
  return dx;
}

void MnaSystem::solveForUpdate(std::vector<double>& dx) {
  for (std::size_t i = 0; i < rhs_.size(); ++i) rhs_[i] = -residual_[i];
  if (useSparse_) {
    solver_.solve(sparseM_, rhs_, dx, reuseLuStructure_);
    return;
  }
  solver_.solve(dense_, rhs_, dx);
}

}  // namespace fefet::spice
