// assembler.h — numeric phase of the compiled stamp pipeline.
//
// Owns the preallocated slot storage the StampBuffer writes into and the
// per-mode slot programs compiled from the recorded StampPattern:
//
//   pattern (symbolic, built once at freeze)
//     -> slot program: one CSR value position per recorded addJacobian
//        call, padded by one so ground entries map to the trash bin at
//        index 0 (branch-free ground dropping)
//     -> per iteration: zero the values, replay every device through the
//        program, verify per-device call counts, apply gmin, solve.
//        Below the dense/sparse crossover the accumulated CSR values are
//        scattered into a row-major scratch and dense LU runs; above it
//        the CSR view goes straight to the sparse factorizer.
//
// The steady state of assemble() + solveForUpdate() performs no heap
// allocation (with LU structure reuse on): everything was sized at
// construction and the factorizers keep their own workspaces.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/linalg.h"
#include "spice/netlist.h"
#include "spice/stamp_buffer.h"
#include "spice/stamp_pattern.h"

namespace fefet::spice {

class Assembler {
 public:
  /// `pattern` must outlive the assembler (the netlist owns it).
  Assembler(const StampPattern& pattern, bool useSparse);

  /// Assemble one Newton evaluation: zero the storage, stamp every device
  /// through the slot program of (dc, method) and apply gmin.  Throws
  /// NumericalError naming the culprit device if a call sequence deviates
  /// from the recorded pattern.  With useBatchedKernels the device loop is
  /// replaced by the SoA batch path (netlist.deviceBatches().stampAll) —
  /// bit-identical scatter order, type-major evaluation.
  void assemble(const Netlist& netlist, const SystemView& view, bool dc,
                double time, double dt, IntegrationMethod method,
                double gmin, bool useBatchedKernels = false);

  /// Solve J dx = -F into dx (resized to the system size).  Throws
  /// NumericalError when the Jacobian is singular.
  void solveForUpdate(std::vector<double>& dx, bool reuseLuStructure);

  // Unpadded views of the last assembly (row i = unknown i).
  std::span<const double> residual() const {
    return {residual_.data() + 1, static_cast<std::size_t>(n_)};
  }
  std::span<const double> rowScale() const {
    return {rowScale_.data() + 1, static_cast<std::size_t>(n_)};
  }

  bool sparse() const { return sparseStorage_; }
  const StampPattern& pattern() const { return pattern_; }
  const linalg::LinearSolver& solver() const { return solver_; }

  /// Assembled Jacobian as CSR (valid for sparse and dense storage alike —
  /// devices always accumulate into the CSR slots).  For parity tests and
  /// benches.
  linalg::CsrView csr() const {
    return {static_cast<std::size_t>(n_), pattern_.rowPtr(),
            pattern_.colIdx(),
            {values_.data() + 1, pattern_.nonZeros()}};
  }
  /// Row-major dense view (dense storage only; the scatter happens inside
  /// solveForUpdate, so this reflects the last solved system).
  std::span<const double> denseValues() const;

 private:
  const StampPattern& pattern_;
  bool sparseStorage_;
  int n_;
  /// Per-mode slot programs (padded indices into values_/dense_).
  std::array<std::vector<std::size_t>, kStampModeCount> slots_;
  /// Padded CSR slot of each node diagonal (for gmin).
  std::vector<std::size_t> diagSlots_;
  // Padded storage: index 0 is the trash bin ground entries write into.
  std::vector<double> values_;    ///< CSR values (1 + nnz)
  std::vector<double> dense_;     ///< row-major matrix (1 + n*n), dense only
  std::vector<double> residual_;  ///< 1 + n
  std::vector<double> rowScale_;  ///< 1 + n
  std::vector<double> rhs_;       ///< n (negated residual)
  linalg::LinearSolver solver_;
  StampBuffer buffer_;
  /// Which modes have already replayed their compiled slot program at
  /// least once — every assemble after that is a pattern-reuse hit for
  /// the fefet.assembler.pattern_reuse_hits counter.
  std::array<bool, kStampModeCount> modeUsed_{};
};

}  // namespace fefet::spice
