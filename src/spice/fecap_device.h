// fecap_device.h — circuit-level ferroelectric capacitor governed by the
// time-dependent LK equation (paper eq. 1).
//
// The polarization P is an auxiliary MNA unknown with constraint equation
//
//     v(a) - v(b) = t_FE * ( E_s(P) + rho * dP/dt )
//
// and terminal current  i = A * dP/dt  (plus an optional linear background
// dielectric).  dP/dt is discretized with the step's companion form, so the
// LK dynamics integrate implicitly together with the circuit — this is the
// key piece that lets the same solver run FERAM cells and FEFET gate stacks.
//
// In DC the viscous term vanishes and the constraint becomes the static
// load-line equation; Newton converges to the solution in the basin of the
// committed polarization state, which is exactly the memory semantics.
#pragma once

#include "ferro/fe_capacitor.h"
#include "spice/device.h"

namespace fefet::spice {

class FeCapDevice final : public Device {
 public:
  /// `a` is the positive plate (field from a to b is positive for P > 0).
  /// `backgroundEpsR` adds a linear parallel dielectric of the same
  /// geometry (0 disables it).
  FeCapDevice(std::string name, NodeId a, NodeId b,
              const ferro::LkCoefficients& coefficients,
              const ferro::FeGeometry& geometry, double initialPolarization,
              double backgroundEpsR = 0.0);

  void setup(SetupContext& ctx) override;
  void seedUnknowns(std::vector<double>& x) const override;
  void stamp(const EvalContext& ctx) override;
  void initializeState(const SystemView& view) override;
  void commitStep(const SystemView& view, double time, double dt,
                  IntegrationMethod method) override;
  double maxStepHint(const SystemView& view) const override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

  /// Committed polarization state [C/m^2].
  double polarization() const { return pCommitted_; }
  /// Override the committed polarization (set the stored bit directly).
  void setPolarization(double p);

  const ferro::LandauKhalatnikov& lk() const { return lk_; }
  const ferro::FeGeometry& geometry() const { return geom_; }
  int auxRow() const { return auxRow_; }

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  /// dP/dt and its dP-derivative factor for the current companion form.
  std::pair<double, double> rateFor(double p, const EvalContext& ctx) const;

  NodeId a_, b_;
  ferro::LandauKhalatnikov lk_;
  ferro::FeGeometry geom_;
  double backgroundCap_;
  int auxRow_ = -1;
  double pCommitted_;
  double rateCommitted_ = 0.0;  ///< dP/dt at the last commit (for TRAP)
  ChargeIntegrator background_;
};

}  // namespace fefet::spice
