// device.h — the device abstraction of the MNA circuit simulator.
//
// The solver works in residual form: for the unknown vector x (node
// voltages followed by auxiliary unknowns such as source branch currents
// and ferroelectric polarizations), every device adds its KCL /
// constraint-equation contributions to the residual F(x) and its partial
// derivatives to the Jacobian J(x).  Newton–Raphson then solves
// J·dx = -F.  Dynamic devices keep committed history (charges,
// polarization) and discretize d/dt with backward Euler or trapezoidal
// companion forms supplied through the EvalContext.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "spice/stamp_buffer.h"

namespace fefet::spice {

/// Node handle.  0 is ground; positive values index named circuit nodes.
using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

/// Read access to the current Newton iterate.
/// Indexing convention (audited, PR 7): the unknown vector is laid out as
/// node rows first, aux rows after —
///   x[row] with row = node - 1        for node voltages (node 1 -> row 0;
///                                     ground is node 0 and has no row), and
///   x[auxRow]                         for auxiliary unknowns, where auxRow
///                                     is ABSOLUTE (>= nodeCount): the
///                                     AuxAllocator starts at nodeCount(),
///                                     so allocated rows are passed through
///                                     unshifted.
/// nodeVoltage() applies the -1 shift; aux() does not.  Passing a node id
/// to aux() or an aux row to nodeVoltage() is therefore always a bug —
/// rowOfNode(node) == node - 1 is the only node-to-row mapping, and
/// SetupContext::allocateAux() results are the only valid aux() inputs.
class SystemView {
 public:
  SystemView(std::span<const double> x, int nodeCount)
      : x_(x), nodeCount_(nodeCount) {}

  /// Voltage of a node (ground returns 0).  `node` is a node id, not a
  /// row: the -1 shift happens here.
  double nodeVoltage(NodeId node) const {
    return node == kGround ? 0.0 : x_[static_cast<std::size_t>(node - 1)];
  }
  /// Value of an auxiliary unknown by absolute row index (as returned by
  /// SetupContext::allocateAux — already >= nodeCount, no shift applied).
  double aux(int auxRow) const { return x_[static_cast<std::size_t>(auxRow)]; }

  int nodeCount() const { return nodeCount_; }
  std::span<const double> raw() const { return x_; }

 private:
  std::span<const double> x_;
  int nodeCount_;
};

/// Write access to the Jacobian and residual being assembled.  Rows/columns
/// attached to ground are silently dropped.  The stamper also accumulates a
/// per-row magnitude scale used for relative convergence checks.
class Stamper {
 public:
  virtual ~Stamper() = default;
  virtual void addResidual(int row, double value) = 0;
  virtual void addJacobian(int row, int col, double value) = 0;

  /// Residual row of a node (-1 for ground = dropped).
  static int rowOfNode(NodeId node) { return node - 1; }
};

/// Per-evaluation context handed to Device::stamp().  One signature serves
/// the DC, transient and gmin-escalation paths (gmin rides along so the
/// whole evaluation state lives in one place), and exactly one of two
/// sinks receives the entries:
///  * compiled path (buffer != nullptr): inlined slot writes into the
///    preallocated StampBuffer — no virtual dispatch per entry;
///  * legacy path (stamper != nullptr): virtual Stamper calls — the parity
///    oracle, and the recording pass that builds the StampPattern.
struct EvalContext {
  const SystemView& view;
  bool dc = false;                ///< DC operating point: d/dt == 0
  double time = 0.0;              ///< evaluation time (end of step) [s]
  double dt = 0.0;                ///< step size (0 in DC) [s]
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  /// Node-to-ground regularization applied by the assembly engine after
  /// the device loop (informational for devices; escalation raises it).
  double gmin = 0.0;
  StampBuffer* buffer = nullptr;
  Stamper* stamper = nullptr;

  void addResidual(int row, double value) const {
    if (buffer != nullptr) {
      buffer->addResidual(row, value);
      return;
    }
    stamper->addResidual(row, value);
  }
  void addJacobian(int row, int col, double value) const {
    if (buffer != nullptr) {
      buffer->addJacobian(row, col, value);
      return;
    }
    stamper->addJacobian(row, col, value);
  }
};

/// Allocation interface passed to Device::setup().
class SetupContext {
 public:
  virtual ~SetupContext() = default;
  /// Allocate one auxiliary unknown; returns its absolute row index.
  virtual int allocateAux(const std::string& label) = 0;
};

/// Helper implementing the companion form of a two-terminal charge element
/// i = dQ/dt.  Devices own one instance per independent charge.
///
/// The "trapezoidal" branch is actually a theta-method with theta = 0.60:
/// pure trapezoidal (theta = 0.5) has no numerical damping, so the branch
/// current of a capacitor rings forever at +/-constant amplitude after a
/// sharp edge; theta slightly above 0.5 damps the ring by (1-theta)/theta
/// per step while staying near second-order accurate.
class ChargeIntegrator {
 public:
  static constexpr double kTheta = 0.60;

  /// Current and dI/dQ for charge value q at the present iterate.
  std::pair<double, double> currentFor(double q,
                                       const EvalContext& ctx) const {
    if (ctx.dc || ctx.dt <= 0.0) return {0.0, 0.0};
    if (ctx.method == IntegrationMethod::kBackwardEuler) {
      return {(q - qPrev_) / ctx.dt, 1.0 / ctx.dt};
    }
    const double a = 1.0 / (kTheta * ctx.dt);
    return {(q - qPrev_) * a - (1.0 - kTheta) / kTheta * iPrev_, a};
  }

  /// Accept the converged end-of-step values.
  void commit(double q, double i) {
    qPrev_ = q;
    iPrev_ = i;
  }

  /// Accept a converged end-of-step charge, recomputing the branch current
  /// with the same companion form used during stamping.
  void commitFrom(double q, double dt, IntegrationMethod method) {
    double i = 0.0;
    if (dt > 0.0) {
      i = (method == IntegrationMethod::kBackwardEuler)
              ? (q - qPrev_) / dt
              : (q - qPrev_) / (kTheta * dt) -
                    (1.0 - kTheta) / kTheta * iPrev_;
    }
    qPrev_ = q;
    iPrev_ = i;
  }

  /// Set history without recording a current (initial conditions).
  void initialize(double q) {
    qPrev_ = q;
    iPrev_ = 0.0;
  }

  double charge() const { return qPrev_; }

 private:
  double qPrev_ = 0.0;
  double iPrev_ = 0.0;
};

/// A named (state, value) pair reported by a device for probing.
struct DeviceState {
  std::string name;
  double value;
};

/// Base class of all circuit devices.  Devices are owned by the Netlist.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Allocate auxiliary unknowns.  Called once when the netlist freezes.
  virtual void setup(SetupContext&) {}

  /// Write initial guesses for this device's auxiliary unknowns into the
  /// full solution vector (e.g. the committed polarization).
  virtual void seedUnknowns(std::vector<double>&) const {}

  /// Add residual/Jacobian contributions for the current iterate.
  virtual void stamp(const EvalContext& ctx) = 0;

  /// Initialize dynamic history from a consistent solution (t = tstart).
  virtual void initializeState(const SystemView&) {}

  /// Accept the converged solution of the step ending at `time`.
  virtual void commitStep(const SystemView&, double /*time*/, double /*dt*/,
                          IntegrationMethod /*method*/) {}

  /// Largest tolerable next step given internal state rates (0 = no limit).
  virtual double maxStepHint(const SystemView&) const { return 0.0; }

  /// Named internal states for probing (polarization, charges, energies).
  virtual std::vector<DeviceState> reportState(const SystemView&) const {
    return {};
  }

 private:
  std::string name_;
};

}  // namespace fefet::spice
