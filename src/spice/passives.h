// passives.h — linear resistor and capacitor.
#pragma once

#include <functional>

#include "spice/device.h"

namespace fefet::spice {

/// Linear resistor between two nodes.
class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);

  void stamp(const EvalContext& ctx) override;
  double resistance() const { return resistance_; }
  double current(const SystemView& view) const;

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  NodeId a_, b_;
  double resistance_;
};

/// Linear capacitor between two nodes (companion-model transient; open in
/// DC).  Supports an initial voltage for UIC starts.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance);

  void stamp(const EvalContext& ctx) override;
  void initializeState(const SystemView& view) override;
  void commitStep(const SystemView& view, double time, double dt,
                  IntegrationMethod method) override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

  double capacitance() const { return capacitance_; }

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  NodeId a_, b_;
  double capacitance_;
  ChargeIntegrator charge_;
};

/// Time-scheduled ideal switch: a resistor whose value is Ron while the
/// control shape exceeds 0.5 and Roff otherwise.  Used to float bit lines
/// (FERAM charge-share read) and gate pre-charge pulses without adding
/// transistors to every test circuit.
class TimedSwitch final : public Device {
 public:
  using Control = std::function<double(double)>;

  TimedSwitch(std::string name, NodeId a, NodeId b, Control control,
              double ron = 100.0, double roff = 1e12);

  void stamp(const EvalContext& ctx) override;
  void setControl(Control control) { control_ = std::move(control); }

 private:
  NodeId a_, b_;
  Control control_;
  double ron_, roff_;
};

}  // namespace fefet::spice
