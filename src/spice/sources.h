// sources.h — independent sources and their time-shapes.
#pragma once

#include <functional>
#include <vector>

#include "spice/device.h"

namespace fefet::spice {

/// A source waveform: value as a function of time.
using Shape = std::function<double(double)>;

namespace shapes {

/// Constant value.
Shape dc(double value);

/// SPICE-style pulse: v0 before delay, ramp to v1 over `rise`, hold for
/// `width`, ramp back over `fall`; repeats with `period` when period > 0.
Shape pulse(double v0, double v1, double delay, double rise, double width,
            double fall, double period = 0.0);

/// Piecewise-linear through (t, v) points (sorted by t); clamps outside.
Shape pwl(std::vector<std::pair<double, double>> points);

/// Sine: offset + amplitude * sin(2 pi f (t - delay)).
Shape sine(double offset, double amplitude, double frequency,
           double delay = 0.0);

}  // namespace shapes

/// Ideal voltage source between plus and minus nodes.  Adds one auxiliary
/// unknown: the branch current flowing plus -> (through source) -> minus.
/// Tracks delivered energy (integral of v * i_out dt) across a transient.
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Shape shape);

  void setup(SetupContext& ctx) override;
  void stamp(const EvalContext& ctx) override;
  void commitStep(const SystemView& view, double time, double dt,
                  IntegrationMethod method) override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

  /// Branch current at the given solution (positive = out of + terminal
  /// into the external circuit).
  double current(const SystemView& view) const;

  /// Cumulative energy delivered to the circuit since the last reset [J].
  double energyDelivered() const { return energy_; }
  void resetEnergy() { energy_ = 0.0; }

  /// Replace the waveform (e.g. between operations on the same netlist).
  void setShape(Shape shape) { shape_ = std::move(shape); }
  double valueAt(double time) const { return shape_(time); }

  int auxRow() const { return auxRow_; }

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  NodeId plus_, minus_;
  Shape shape_;
  int auxRow_ = -1;
  double energy_ = 0.0;
};

/// Ideal current source pushing `shape(t)` amperes from plus node, through
/// the source, into minus node (i.e. conventional current flows out of the
/// minus terminal through the external circuit back into plus... in short:
/// a positive value pulls current out of `from` and pushes it into `to`).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId from, NodeId to, Shape shape);

  void stamp(const EvalContext& ctx) override;
  void setShape(Shape shape) { shape_ = std::move(shape); }

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  NodeId from_, to_;
  Shape shape_;
};

}  // namespace fefet::spice
