// dc_sweep.h — swept DC analysis with continuation.
//
// Steps a voltage source through a range, re-solving the operating point
// at each value while warm-starting Newton from the previous solution, so
// nonlinear transfer curves (inverter VTCs, diode I-V) come out in one
// call.  Note: DC is the true steady state — for hysteretic devices whose
// memory depends on charge history (the FEFET's floating internal gate),
// DC is the leakage-equilibrated limit, not the quasi-static memory curve;
// measure those with a slow transient sweep instead.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/simulator.h"
#include "spice/sources.h"

namespace fefet::spice {

struct DcSweepResult {
  std::vector<double> sweepValues;
  std::map<std::string, std::vector<double>> probes;  ///< label -> values

  const std::vector<double>& probe(const std::string& label) const;
};

/// Sweep `source` from `from` to `to` in `steps` increments (inclusive of
/// both endpoints), solving DC at each point and recording the probes.
/// The source's shape is left at the final value.
DcSweepResult dcSweep(Simulator& simulator, VoltageSource& source,
                      double from, double to, int steps,
                      const std::vector<Probe>& probes);

}  // namespace fefet::spice
