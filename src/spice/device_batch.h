// device_batch.h — structure-of-arrays device batches for the compiled
// stamp pipeline.
//
// Netlist::freeze() groups homogeneous devices (resistors, capacitors,
// sources, diodes, MOSFETs, FE capacitors) into SoA parameter/state
// arrays.  Each assembly then runs in two phases:
//
//  1. eval — type-major batch kernels sweep the SoA arrays and write every
//     lane's currents/conductances into preallocated scratch.  The model
//     evaluations (xtor::MosfetModel::evaluateBatch, gateChargeBatch,
//     ferro::LandauKhalatnikov::staticFieldBatch) run as tight non-virtual
//     loops in the model translation units, so the scalar kernels inline
//     into them.
//  2. scatter — devices replay in netlist order through the slot program
//     (or legacy Stamper), reading their scratch lanes.
//
// The phase split is what keeps the batched engine bit-identical to the
// scalar one: every lane's arithmetic is the same expression sequence the
// scalar Device::stamp evaluates (phase 1 calls the same inline helpers,
// e.g. ChargeIntegrator::currentFor), and phase 2 accumulates into shared
// CSR slots / residual rows in the original device order, so the
// floating-point accumulation order never changes.  A type-major single
// pass would reorder those additions and drift in the last ulp.
//
// Devices with mutable call-sequence behaviour or no batch kernel
// (TimedSwitch, Inductor, Vcvs, Vccs, custom test devices) fall back to
// their virtual stamp() inside the scatter loop, preserving order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spice/device.h"
#include "xtor/mosfet_model.h"

namespace fefet::ferro {
class LandauKhalatnikov;
}  // namespace fefet::ferro

namespace fefet::spice {

class Netlist;
class Resistor;
class Capacitor;
class VoltageSource;
class CurrentSource;
class Diode;
class MosfetDevice;
class FeCapDevice;

class DeviceBatches {
 public:
  /// Build the batches for a frozen netlist (auxiliary rows assigned).
  /// The netlist owns both; device pointers stay valid for its lifetime.
  explicit DeviceBatches(const Netlist& netlist);

  DeviceBatches(const DeviceBatches&) = delete;
  DeviceBatches& operator=(const DeviceBatches&) = delete;

  /// One full batched assembly pass: eval every batch kernel at the
  /// iterate, then scatter all devices in netlist order through the
  /// context's sink.  `jacobianEnds` is the active mode's cumulative
  /// per-device Jacobian call count (StampPattern::deviceJacobianEnds);
  /// on the compiled path every device's consumed slot count is verified
  /// against it, naming the culprit on mismatch.  Performs no heap
  /// allocation (scratch was sized at construction).
  void stampAll(const EvalContext& ctx,
                std::span<const std::size_t> jacobianEnds);

  /// Devices covered by a typed batch kernel (the rest use the generic
  /// virtual fallback inside the scatter loop).
  std::size_t batchedDeviceCount() const { return batchedCount_; }
  std::size_t deviceCount() const { return order_.size(); }

 private:
  enum class Kind : std::uint8_t {
    kGeneric,
    kResistor,
    kCapacitor,
    kVoltageSource,
    kCurrentSource,
    kDiode,
    kMosfet,
    kFeCap,
  };
  /// Per-device dispatch record, netlist order: which batch, which lane.
  struct Ref {
    Kind kind = Kind::kGeneric;
    std::uint32_t lane = 0;
  };

  struct ResistorBatch {
    std::vector<NodeId> a, b;
    std::vector<double> g;  ///< 1/R, precomputed at freeze
    std::vector<double> i;  ///< scratch: branch current per lane
  };

  struct CapacitorBatch {
    std::vector<const Capacitor*> dev;  ///< integrator state access
    std::vector<NodeId> a, b;
    std::vector<double> c;
    std::vector<double> i, g;  ///< scratch: companion current/conductance
  };

  struct VoltageSourceBatch {
    std::vector<const VoltageSource*> dev;  ///< shape evaluation
    std::vector<NodeId> plus, minus;
    std::vector<int> auxRow;
    std::vector<double> v;  ///< scratch: shape(t) per lane
  };

  struct CurrentSourceBatch {
    std::vector<const CurrentSource*> dev;  ///< shape evaluation
    std::vector<NodeId> from, to;
    std::vector<double> i;  ///< scratch: shape(t) per lane
  };

  struct DiodeBatch {
    std::vector<NodeId> anode, cathode;
    std::vector<double> isat, vt, vmax;  ///< precomputed at freeze
    std::vector<double> i, g;            ///< scratch
  };

  struct MosfetBatch {
    std::vector<const MosfetDevice*> dev;  ///< integrator state access
    std::vector<NodeId> drain, gate, source;
    std::vector<const xtor::MosfetModel*> model;
    std::vector<double> gateLeak, overlapCap, junctionCap, gateArea;
    // Scratch, one lane per device:
    std::vector<double> vd, vg, vs;
    std::vector<xtor::MosOperatingPoint> op;
    std::vector<double> qDensity, cDensity;  ///< gate charge model
    std::vector<double> chanI, chanG;        ///< intrinsic charge companion
    std::vector<double> ovlGdI, ovlGdG, ovlGsI, ovlGsG;
    std::vector<double> junDI, junDG, junSI, junSG;
  };

  struct FeCapBatch {
    std::vector<const FeCapDevice*> dev;  ///< committed state access
    std::vector<NodeId> a, b;
    std::vector<int> auxRow;
    std::vector<double> tFe, area, rho, backgroundCap;
    std::vector<const ferro::LandauKhalatnikov*> lk;
    // Scratch, one lane per device:
    std::vector<double> p, pPrev;
    std::vector<double> field, slope;  ///< E_s(P), dE_s/dP
    std::vector<double> dPdt, dRatedP;
    std::vector<double> bgI, bgG;  ///< background dielectric companion
  };

  void evalResistors(const EvalContext& ctx);
  void evalCapacitors(const EvalContext& ctx);
  void evalVoltageSources(const EvalContext& ctx);
  void evalCurrentSources(const EvalContext& ctx);
  void evalDiodes(const EvalContext& ctx);
  void evalMosfets(const EvalContext& ctx);
  void evalFeCaps(const EvalContext& ctx);

  void scatterResistor(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterCapacitor(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterVoltageSource(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterCurrentSource(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterDiode(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterMosfet(std::uint32_t lane, const EvalContext& ctx) const;
  void scatterFeCap(std::uint32_t lane, const EvalContext& ctx) const;

  [[noreturn]] void throwCountMismatch(
      std::size_t deviceIndex, std::size_t consumed,
      std::span<const std::size_t> jacobianEnds) const;

  std::vector<Device*> order_;  ///< netlist order (generic fallback + names)
  std::vector<Ref> refs_;       ///< parallel to order_
  std::size_t batchedCount_ = 0;

  ResistorBatch resistors_;
  CapacitorBatch capacitors_;
  VoltageSourceBatch vsources_;
  CurrentSourceBatch isources_;
  DiodeBatch diodes_;
  MosfetBatch mosfets_;
  FeCapBatch fecaps_;
};

}  // namespace fefet::spice
