// mna.h — per-entry virtual-dispatch assembly of the MNA Jacobian/residual.
//
// Small systems use dense LU; larger systems (memory arrays) switch to the
// sparse row-map LU — both behind the common linalg::LinearSolver facade.
// The assembler also tracks a per-row magnitude scale (sum of |residual
// contributions|) so Newton can test convergence relative to the size of
// the currents actually flowing in each node.
//
// This is the *legacy* assembly engine: the compiled stamp pipeline
// (stamp_pattern.h + assembler.h) replaces it on the hot path, and this
// class remains as the bit-identical parity oracle behind
// NewtonOptions::useCompiledStamps = false (and for direct use in tests).
#pragma once

#include <vector>

#include "common/linalg.h"
#include "spice/device.h"

namespace fefet::spice {

/// One assembled Newton iteration system.
class MnaSystem final : public Stamper {
 public:
  explicit MnaSystem(int unknowns, bool useSparse);

  void clear();

  void addResidual(int row, double value) override;
  void addJacobian(int row, int col, double value) override;

  /// Add gmin leakage to ground on every node row (regularization).
  /// Contributions go through addResidual so the per-row convergence
  /// scale sees them like any other device current.
  void addGmin(double gmin, const SystemView& view, int nodeCount);

  /// Solve J dx = -F.  Throws NumericalError if singular.
  std::vector<double> solveForUpdate();
  /// Allocation-light overload reusing the caller's dx buffer.
  void solveForUpdate(std::vector<double>& dx);

  /// Reuse the cached sparse symbolic structure (pattern + pivot order)
  /// across solves.  The MNA pattern of a frozen netlist is fixed, so the
  /// default is on; turning it off restores the fully independent
  /// factor-from-scratch path (results are bit-identical either way).
  void setLuStructureReuse(bool reuse) { reuseLuStructure_ = reuse; }
  bool luStructureReuse() const { return reuseLuStructure_; }
  /// Structure-cache diagnostics (zeros on the dense path).
  const linalg::SparseLuFactorizer& sparseFactorizer() const {
    return solver_.sparseFactorizer();
  }

  const std::vector<double>& residual() const { return residual_; }
  const std::vector<double>& rowScale() const { return rowScale_; }
  int size() const { return n_; }
  bool sparse() const { return useSparse_; }

  // Assembled-matrix access for the stamp-parity suite.
  const linalg::DenseMatrix& denseMatrix() const { return dense_; }
  const linalg::SparseMatrix& sparseMatrix() const { return sparseM_; }

 private:
  int n_;
  bool useSparse_;
  bool reuseLuStructure_ = true;
  linalg::DenseMatrix dense_;
  linalg::SparseMatrix sparseM_;
  linalg::LinearSolver solver_;
  std::vector<double> residual_;
  std::vector<double> rowScale_;
  std::vector<double> rhs_;
};

}  // namespace fefet::spice
