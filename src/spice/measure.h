// measure.h — .measure-style waveform post-processing: edge timing,
// settling, overshoot, averages over windows.  Complements the raw
// accessors on Waveform with the derived quantities circuit benches need.
#pragma once

#include <string>

#include "spice/waveform.h"

namespace fefet::spice::measure {

/// 10%-90% rise time of the first rising edge between `low` and `high`
/// levels.  Throws SimulationError when no such edge exists.
double riseTime(const Waveform& waveform, const std::string& column,
                double low, double high);

/// 90%-10% fall time of the first falling edge.
double fallTime(const Waveform& waveform, const std::string& column,
                double high, double low);

/// Delay from `fromColumn` crossing `fromLevel` to `toColumn` crossing
/// `toLevel` (both first crossings, given directions).
double delay(const Waveform& waveform, const std::string& fromColumn,
             double fromLevel, bool fromRising, const std::string& toColumn,
             double toLevel, bool toRising);

/// Time after which the column stays within +/-tolerance of `target`
/// until the end of the trace.  Throws if it never settles.
double settlingTime(const Waveform& waveform, const std::string& column,
                    double target, double tolerance);

/// Peak overshoot above `target` (0 when the signal never exceeds it).
double overshoot(const Waveform& waveform, const std::string& column,
                 double target);

/// Mean of the column over [t0, t1].
double average(const Waveform& waveform, const std::string& column,
               double t0, double t1);

/// RMS of the column over [t0, t1].
double rms(const Waveform& waveform, const std::string& column, double t0,
           double t1);

}  // namespace fefet::spice::measure
