// deck_parser.h — a SPICE-flavoured text netlist front end.
//
// Lets circuits be written as decks instead of C++:
//
//     * 2T cell write path
//     Vws  ws  0 PULSE(0 1.36 20p 20p 600p 20p)
//     Vwbl wbl 0 PULSE(0 0.68 60p 20p 550p 20p)
//     Macc wbl ws g NMOS W=65n
//     XFE  g  int FECAP T=2.25n P0=0 W=65n L=45n
//     Mfet rs int sl NMOS W=65n
//     Vrs  rs  0 DC 0
//     Vsl  sl  0 DC 0
//     .end
//
// Supported cards:
//   R<name> a b <value>                      resistor
//   C<name> a b <value>                      capacitor
//   L<name> a b <value>                      inductor
//   D<name> a b [IS=..] [N=..]               diode
//   V<name> a b DC <v> | PULSE(...) | PWL(t v ...) | SIN(off amp freq)
//   I<name> a b DC <v>                       current source
//   M<name> d g s NMOS|PMOS [W=..] [L=..] [VT=..]
//   E<name> o+ o- c+ c- <gain>               VCVS
//   G<name> o+ o- c+ c- <gm>                 VCCS
//   X<name> a b FECAP [T=..] [W=..] [L=..] [P0=..] [RHO=..]
//   X<name> n1 n2 ... <subckt>               subcircuit instance
//   .subckt NAME p1 p2 ... / .ends           hierarchical definitions
//   * or ; comment, .end terminator, blank lines ignored.
//
// Subcircuit internals are instance-scoped: device "R1" inside instance
// "Xc1" becomes "Xc1:R1" and private nodes become "Xc1:<node>".
//
// Engineering suffixes: f p n u m k meg g t (e.g. 2.25n, 1meg, 0.2f).
// Node "0" (or gnd/GND) is ground.  Errors carry the line number.
#pragma once

#include <istream>
#include <string>

#include "spice/netlist.h"

namespace fefet::spice {

struct DeckStats {
  int deviceCount = 0;
  int lineCount = 0;
};

/// Parse a deck into the netlist.  Throws InvalidArgumentError with the
/// offending line number/content on malformed input.
DeckStats parseDeck(std::istream& input, Netlist& netlist);
DeckStats parseDeckString(const std::string& text, Netlist& netlist);

/// Parse one engineering-notation value ("2.25n", "1meg", "-0.68").
/// Throws InvalidArgumentError on garbage.
double parseEngineeringValue(const std::string& token);

}  // namespace fefet::spice
