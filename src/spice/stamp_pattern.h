// stamp_pattern.h — symbolic phase of the compiled stamp pipeline.
//
// When a netlist freezes, a recording Stamper runs one stamp pass per
// assembly mode and captures the exact (row, col) sequence every device
// emits.  From the union of all modes a fixed CSR pattern is built once;
// the Assembler (assembler.h) then maps each recorded call to a stable
// slot index so the per-iteration hot path is a branch-free value scatter.
//
// Devices may stamp different entry sets in DC vs transient (capacitors
// are open in DC, the FeCap terminal current only exists in transient,
// the inductor's branch row changes with the companion form), so call
// sequences are recorded per StampMode — but within one mode the sequence
// must be a pure function of the frozen netlist.  Every device in this
// repository satisfies that: guards depend only on construction-time
// constants (gateLeak > 0, backgroundCap > 0) or on the mode itself.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "spice/device.h"

namespace fefet::spice {

/// Assembly mode of one Newton evaluation.  BE and trapezoidal transient
/// evaluations are distinct modes because the inductor stamps a different
/// aux-row pattern per companion form.
enum class StampMode : int { kDc = 0, kTransientBe = 1, kTransientTrap = 2 };
inline constexpr int kStampModeCount = 3;

inline StampMode stampModeFor(bool dc, IntegrationMethod method) {
  if (dc) return StampMode::kDc;
  return method == IntegrationMethod::kBackwardEuler
             ? StampMode::kTransientBe
             : StampMode::kTransientTrap;
}

/// Recorded stamp structure of a frozen netlist: per-mode Jacobian call
/// sequences with per-device boundaries, plus the union CSR sparsity.
class StampPattern {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Run the recording pass.  Devices must be set up (aux rows assigned);
  /// the pass evaluates each device at the seeded initial iterate with a
  /// representative small timestep — values are discarded, only call
  /// positions are kept.
  StampPattern(const std::vector<std::unique_ptr<Device>>& devices,
               int unknowns, int nodeCount);

  int unknowns() const { return unknowns_; }
  int nodeCount() const { return nodeCount_; }
  std::size_t deviceCount() const { return deviceCount_; }

  /// Recorded Jacobian (row, col) call sequence of a mode, ground entries
  /// included (the Assembler maps those to the trash slot).
  const std::vector<StampEntry>& jacobianCalls(StampMode mode) const {
    return calls_[static_cast<int>(mode)];
  }
  /// jacobianCalls() index one past device i's last call (cumulative; the
  /// Assembler's per-device integrity check compares against these).
  const std::vector<std::size_t>& deviceJacobianEnds(StampMode mode) const {
    return deviceEnds_[static_cast<int>(mode)];
  }

  // Union CSR sparsity over all modes (non-ground entries only) plus every
  // node-row diagonal — gmin regularization needs those even when no
  // device touches them.  Ascending columns within each row.
  const std::vector<std::size_t>& rowPtr() const { return rowPtr_; }
  const std::vector<std::size_t>& colIdx() const { return colIdx_; }
  std::size_t nonZeros() const { return colIdx_.size(); }

  /// CSR position of (row, col); npos when outside the pattern.
  std::size_t csrIndex(int row, int col) const;
  /// CSR positions of the node diagonals (row, row), row < nodeCount.
  const std::vector<std::size_t>& nodeDiagonals() const {
    return nodeDiagonals_;
  }

 private:
  int unknowns_ = 0;
  int nodeCount_ = 0;
  std::size_t deviceCount_ = 0;
  std::array<std::vector<StampEntry>, kStampModeCount> calls_;
  std::array<std::vector<std::size_t>, kStampModeCount> deviceEnds_;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::size_t> colIdx_;
  std::vector<std::size_t> nodeDiagonals_;
};

}  // namespace fefet::spice
