#include "spice/fecap_device.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace fefet::spice {

FeCapDevice::FeCapDevice(std::string name, NodeId a, NodeId b,
                         const ferro::LkCoefficients& coefficients,
                         const ferro::FeGeometry& geometry,
                         double initialPolarization, double backgroundEpsR)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      lk_(coefficients),
      geom_(geometry),
      backgroundCap_(backgroundEpsR > 0.0
                         ? constants::kEpsilon0 * backgroundEpsR *
                               geometry.area / geometry.thickness
                         : 0.0),
      pCommitted_(initialPolarization) {}

void FeCapDevice::setup(SetupContext& ctx) {
  auxRow_ = ctx.allocateAux("P(" + name() + ")");
}

void FeCapDevice::seedUnknowns(std::vector<double>& x) const {
  x[static_cast<std::size_t>(auxRow_)] = pCommitted_;
}

std::pair<double, double> FeCapDevice::rateFor(double p,
                                               const EvalContext& ctx) const {
  // The LK state always integrates with backward Euler: trapezoidal
  // companion forms ring on the stiff negative-capacitance branch and the
  // oscillation can hop shallow polarization barriers.  BE is L-stable.
  if (ctx.dc || ctx.dt <= 0.0) return {0.0, 0.0};
  return {(p - pCommitted_) / ctx.dt, 1.0 / ctx.dt};
}

void FeCapDevice::stamp(const EvalContext& ctx) {
  const auto& view = ctx.view;
  const double va = view.nodeVoltage(a_);
  const double vb = view.nodeVoltage(b_);
  const double p = view.aux(auxRow_);
  const int ra = Stamper::rowOfNode(a_);
  const int rb = Stamper::rowOfNode(b_);

  const auto [dPdt, dRatedP] = rateFor(p, ctx);
  const double tFe = geom_.thickness;
  const double rho = lk_.coefficients().rho;

  // Constraint row: va - vb - tFe*(Es(P) + rho*dP/dt) = 0.
  ctx.addResidual(auxRow_,
                          va - vb - tFe * (lk_.staticField(p) + rho * dPdt));
  ctx.addJacobian(auxRow_, ra, 1.0);
  ctx.addJacobian(auxRow_, rb, -1.0);
  ctx.addJacobian(auxRow_, auxRow_,
                          -tFe * (lk_.staticFieldSlope(p) + rho * dRatedP));

  // Terminal current from polarization displacement: i = A * dP/dt.
  if (!ctx.dc) {
    const double i = geom_.area * dPdt;
    ctx.addResidual(ra, i);
    ctx.addResidual(rb, -i);
    const double dIdP = geom_.area * dRatedP;
    ctx.addJacobian(ra, auxRow_, dIdP);
    ctx.addJacobian(rb, auxRow_, -dIdP);

    // Linear background dielectric.
    if (backgroundCap_ > 0.0) {
      const double q = backgroundCap_ * (va - vb);
      const auto [ib, dIdQ] = background_.currentFor(q, ctx);
      const double g = dIdQ * backgroundCap_;
      ctx.addResidual(ra, ib);
      ctx.addResidual(rb, -ib);
      ctx.addJacobian(ra, ra, g);
      ctx.addJacobian(ra, rb, -g);
      ctx.addJacobian(rb, ra, -g);
      ctx.addJacobian(rb, rb, g);
    }
  }
}

void FeCapDevice::initializeState(const SystemView& view) {
  // Committed polarization is a device property (the stored bit); node
  // voltages initialize the background dielectric only.
  const double v = view.nodeVoltage(a_) - view.nodeVoltage(b_);
  background_.initialize(backgroundCap_ * v);
  rateCommitted_ = 0.0;
}

void FeCapDevice::commitStep(const SystemView& view, double /*time*/,
                             double dt, IntegrationMethod method) {
  const double p = view.aux(auxRow_);
  rateCommitted_ = dt > 0.0 ? (p - pCommitted_) / dt : 0.0;
  pCommitted_ = p;
  (void)method;
  const double v = view.nodeVoltage(a_) - view.nodeVoltage(b_);
  background_.commitFrom(backgroundCap_ * v, dt, method);
}

double FeCapDevice::maxStepHint(const SystemView& view) const {
  // Keep the per-step polarization change below a fraction of P_r so the
  // stiff switching trajectory stays resolved.
  const double pr = lk_.remnantPolarization();
  const double va = view.nodeVoltage(a_);
  const double vb = view.nodeVoltage(b_);
  const double rate = std::abs((va - vb) / geom_.thickness -
                               lk_.staticField(pCommitted_)) /
                      lk_.coefficients().rho;
  if (rate <= 0.0) return 0.0;
  return (pr / 40.0) / rate;
}

void FeCapDevice::setPolarization(double p) {
  pCommitted_ = p;
  rateCommitted_ = 0.0;
}

std::vector<DeviceState> FeCapDevice::reportState(
    const SystemView& view) const {
  return {{"P", view.aux(auxRow_)},
          {"v", view.nodeVoltage(a_) - view.nodeVoltage(b_)}};
}

}  // namespace fefet::spice
