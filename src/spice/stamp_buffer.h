// stamp_buffer.h — the per-iteration write target of the compiled stamp
// pipeline.
//
// After Netlist::freeze() records every device's (row, col) call sequence
// (see stamp_pattern.h), the Assembler turns each Jacobian call into one
// precomputed slot index into a flat value array.  During a Newton
// iteration the devices replay their calls in the recorded order, and the
// buffer consumes one slot per addJacobian — no virtual dispatch, no map
// lookups, no branching on ground rows:
//
//  * every array is padded with a trash element at index 0, and entries
//    attached to ground map to slot 0, so ground dropping is a plain
//    store into a byte nobody reads instead of a per-call branch;
//  * residual rows are offset-indexed the same way (row -1 -> index 0).
//
// The contract this relies on: a device's call sequence is a pure function
// of (dc, method) for a frozen netlist — values change per iterate,
// positions never do.  The Assembler checks the consumed slot count after
// every device, so a device that violates the contract is named in the
// error instead of silently corrupting the matrix.
#pragma once

#include <cmath>
#include <cstddef>

namespace fefet::spice {

/// One recorded stamp call: the (row, col) a device passed, before ground
/// dropping (-1 = ground).
struct StampEntry {
  int row = 0;
  int col = 0;
};

class Assembler;

/// Slot-write sink for Device::stamp on the compiled path.  Configured and
/// owned by the Assembler; devices only ever see it through EvalContext.
class StampBuffer {
 public:
  void addResidual(int row, double value) {
    // Padded store: ground (row -1) lands in the trash element at 0.
    const std::size_t i = static_cast<std::size_t>(row + 1);
    residual_[i] += value;
    rowScale_[i] += std::abs(value);
  }

  void addJacobian(int row, int col, double value) {
    if (slotCursor_ == slotEnd_) throwSlotOverrun(row, col);
    values_[*slotCursor_++] += value;
  }

  /// Jacobian calls consumed so far this iteration (the Assembler compares
  /// this against the recorded per-device boundaries).
  std::size_t jacobianCalls() const {
    return static_cast<std::size_t>(slotCursor_ - slotBegin_);
  }

 private:
  friend class Assembler;

  [[noreturn]] void throwSlotOverrun(int row, int col) const;

  // Padded storage views (index 0 = trash), owned by the Assembler.
  double* values_ = nullptr;
  double* residual_ = nullptr;
  double* rowScale_ = nullptr;
  // Slot program of the active mode: one index per recorded addJacobian.
  const std::size_t* slotBegin_ = nullptr;
  const std::size_t* slotCursor_ = nullptr;
  const std::size_t* slotEnd_ = nullptr;
};

}  // namespace fefet::spice
