#include "spice/stamp_pattern.h"

#include <algorithm>

#include "common/error.h"

namespace fefet::spice {

namespace {

/// Stamper that records call positions and discards values.
class RecordingStamper final : public Stamper {
 public:
  explicit RecordingStamper(std::vector<StampEntry>& calls) : calls_(calls) {}

  void addResidual(int, double) override {}
  void addJacobian(int row, int col, double) override {
    calls_.push_back({row, col});
  }

 private:
  std::vector<StampEntry>& calls_;
};

}  // namespace

StampPattern::StampPattern(
    const std::vector<std::unique_ptr<Device>>& devices, int unknowns,
    int nodeCount)
    : unknowns_(unknowns), nodeCount_(nodeCount), deviceCount_(devices.size()) {
  FEFET_REQUIRE(unknowns >= nodeCount && nodeCount >= 0,
                "StampPattern: inconsistent unknown/node counts");

  // Evaluation point for the recording pass: the seeded initial iterate
  // (devices with aux unknowns, e.g. the FeCap polarization, expect a
  // sensible value there) and a representative small dt so transient
  // companion terms are live.  Call *positions* must not depend on the
  // iterate — only values do — so any point works; this one avoids
  // evaluating models at garbage inputs.
  std::vector<double> x(static_cast<std::size_t>(unknowns), 0.0);
  for (const auto& device : devices) device->seedUnknowns(x);
  const SystemView view(x, nodeCount);
  constexpr double kRecordDt = 1e-12;

  for (int m = 0; m < kStampModeCount; ++m) {
    const StampMode mode = static_cast<StampMode>(m);
    const bool dc = mode == StampMode::kDc;
    const IntegrationMethod method = mode == StampMode::kTransientTrap
                                         ? IntegrationMethod::kTrapezoidal
                                         : IntegrationMethod::kBackwardEuler;
    RecordingStamper recorder(calls_[m]);
    EvalContext ctx{view,          dc,      /*time=*/0.0,
                    dc ? 0.0 : kRecordDt,   method,
                    /*gmin=*/0.0,  nullptr, &recorder};
    deviceEnds_[m].reserve(devices.size());
    for (const auto& device : devices) {
      device->stamp(ctx);
      deviceEnds_[m].push_back(calls_[m].size());
    }
  }

  // Union sparsity: all recorded non-ground entries plus the node-row
  // diagonals (gmin).  Sorted-unique per row gives the CSR layout.
  std::vector<std::vector<std::size_t>> cols(
      static_cast<std::size_t>(unknowns));
  for (int row = 0; row < nodeCount; ++row) {
    cols[static_cast<std::size_t>(row)].push_back(
        static_cast<std::size_t>(row));
  }
  for (const auto& calls : calls_) {
    for (const StampEntry& e : calls) {
      if (e.row < 0 || e.col < 0) continue;
      FEFET_REQUIRE(e.row < unknowns && e.col < unknowns,
                    "StampPattern: device stamped outside the system");
      cols[static_cast<std::size_t>(e.row)].push_back(
          static_cast<std::size_t>(e.col));
    }
  }
  rowPtr_.assign(static_cast<std::size_t>(unknowns) + 1, 0);
  for (std::size_t r = 0; r < cols.size(); ++r) {
    auto& rowCols = cols[r];
    std::sort(rowCols.begin(), rowCols.end());
    rowCols.erase(std::unique(rowCols.begin(), rowCols.end()), rowCols.end());
    colIdx_.insert(colIdx_.end(), rowCols.begin(), rowCols.end());
    rowPtr_[r + 1] = colIdx_.size();
  }

  nodeDiagonals_.resize(static_cast<std::size_t>(nodeCount));
  for (int row = 0; row < nodeCount; ++row) {
    nodeDiagonals_[static_cast<std::size_t>(row)] = csrIndex(row, row);
  }
}

std::size_t StampPattern::csrIndex(int row, int col) const {
  if (row < 0 || col < 0) return npos;
  const std::size_t r = static_cast<std::size_t>(row);
  const std::size_t c = static_cast<std::size_t>(col);
  const auto begin = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  const auto end = colIdx_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return npos;
  return static_cast<std::size_t>(it - colIdx_.begin());
}

}  // namespace fefet::spice
