#include "spice/deck_parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "ferro/lk_model.h"
#include "spice/extras.h"
#include "spice/fecap_device.h"
#include "spice/mosfet_device.h"
#include "spice/passives.h"
#include "spice/sources.h"
#include "xtor/mosfet_model.h"

namespace fefet::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "deck line " << line << ": " << message;
  throw InvalidArgumentError(os.str());
}

/// Split a card into tokens; parentheses become their own groups, so
/// "PULSE(0 1 1n)" tokenizes to {"PULSE", "(", "0", "1", "1n", ")"}.
std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      flush();
    } else if (c == '(' || c == ')') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (c == '=') {
      flush();
      tokens.push_back("=");
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

/// key=value options collected from the tail of a card.
struct Options {
  std::vector<std::pair<std::string, double>> entries;

  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : entries) {
      if (k == key) return v;
    }
    return fallback;
  }
};

/// Consume trailing KEY = VALUE triples from tokens[from...].
Options parseOptions(const std::vector<std::string>& tokens,
                     std::size_t from, int line) {
  Options options;
  std::size_t i = from;
  while (i < tokens.size()) {
    if (i + 2 >= tokens.size() + 1 && tokens[i] == "=") {
      fail(line, "dangling '='");
    }
    if (i + 2 < tokens.size() + 1 && i + 1 < tokens.size() &&
        tokens[i + 1] == "=") {
      if (i + 2 >= tokens.size()) fail(line, "missing value after '='");
      options.entries.emplace_back(lower(tokens[i]),
                                   parseEngineeringValue(tokens[i + 2]));
      i += 3;
    } else {
      fail(line, "unexpected token '" + tokens[i] + "'");
    }
  }
  return options;
}

/// Parse a source waveform starting at tokens[i].
Shape parseSourceShape(const std::vector<std::string>& tokens, std::size_t i,
                       int line) {
  if (i >= tokens.size()) fail(line, "missing source value");
  const std::string kind = lower(tokens[i]);
  const auto args = [&](std::size_t minCount) {
    FEFET_REQUIRE(i + 1 < tokens.size() && tokens[i + 1] == "(",
                  "expected '(' after " + kind);
    std::vector<double> values;
    for (std::size_t j = i + 2; j < tokens.size() && tokens[j] != ")"; ++j) {
      values.push_back(parseEngineeringValue(tokens[j]));
    }
    if (values.size() < minCount) {
      fail(line, kind + " needs at least " + std::to_string(minCount) +
                     " arguments");
    }
    return values;
  };
  if (kind == "dc") {
    if (i + 1 >= tokens.size()) fail(line, "DC needs a value");
    return shapes::dc(parseEngineeringValue(tokens[i + 1]));
  }
  if (kind == "pulse") {
    const auto v = args(6);
    return shapes::pulse(v[0], v[1], v[2], v[3], v[4], v[5],
                         v.size() > 6 ? v[6] : 0.0);
  }
  if (kind == "pwl") {
    const auto v = args(2);
    if (v.size() % 2 != 0) fail(line, "PWL needs (t v) pairs");
    std::vector<std::pair<double, double>> points;
    for (std::size_t j = 0; j < v.size(); j += 2) {
      points.emplace_back(v[j], v[j + 1]);
    }
    return shapes::pwl(std::move(points));
  }
  if (kind == "sin") {
    const auto v = args(3);
    return shapes::sine(v[0], v[1], v[2], v.size() > 3 ? v[3] : 0.0);
  }
  // Bare number: DC level.
  return shapes::dc(parseEngineeringValue(tokens[i]));
}

}  // namespace

double parseEngineeringValue(const std::string& token) {
  FEFET_REQUIRE(!token.empty(), "empty numeric token");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw InvalidArgumentError("not a number: '" + token + "'");
  }
  const std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return value;
  if (suffix == "f") return value * 1e-15;
  if (suffix == "p") return value * 1e-12;
  if (suffix == "n") return value * 1e-9;
  if (suffix == "u") return value * 1e-6;
  if (suffix == "m") return value * 1e-3;
  if (suffix == "k") return value * 1e3;
  if (suffix == "meg") return value * 1e6;
  if (suffix == "g") return value * 1e9;
  if (suffix == "t") return value * 1e12;
  throw InvalidArgumentError("unknown unit suffix on '" + token + "'");
}

namespace {

struct Subckt {
  std::vector<std::string> ports;
  std::vector<std::pair<int, std::string>> body;  ///< (line no, card)
};

struct ParseEnv {
  const std::map<std::string, Subckt>* subckts = nullptr;
  std::string prefix;  ///< instance path ("X1:") for internal names
  std::map<std::string, std::string> portMap;  ///< formal -> actual node
  int depth = 0;
};

/// Map a node name through the environment: ports map to the caller's
/// nodes, ground stays global, everything else becomes instance-local.
std::string mapNode(const ParseEnv& env, const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return name;
  const auto it = env.portMap.find(name);
  if (it != env.portMap.end()) return it->second;
  return env.prefix + name;
}

void processCard(const std::vector<std::string>& tokens, int lineNo,
                 Netlist& netlist, DeckStats& stats, const ParseEnv& env);

void expandSubckt(const std::string& instanceName,
                  const std::vector<std::string>& actualNodes,
                  const Subckt& definition, Netlist& netlist,
                  DeckStats& stats, const ParseEnv& env, int lineNo) {
  if (env.depth >= 8) fail(lineNo, "subcircuit nesting too deep");
  if (actualNodes.size() != definition.ports.size()) {
    fail(lineNo, "subcircuit instance " + instanceName + " expects " +
                     std::to_string(definition.ports.size()) + " nodes");
  }
  ParseEnv inner;
  inner.subckts = env.subckts;
  inner.prefix = env.prefix + instanceName + ":";
  inner.depth = env.depth + 1;
  for (std::size_t i = 0; i < definition.ports.size(); ++i) {
    inner.portMap[definition.ports[i]] = actualNodes[i];
  }
  for (const auto& [bodyLine, card] : definition.body) {
    const auto bodyTokens = tokenize(card);
    if (!bodyTokens.empty()) {
      processCard(bodyTokens, bodyLine, netlist, stats, inner);
    }
  }
}

}  // namespace

DeckStats parseDeck(std::istream& input, Netlist& netlist) {
  DeckStats stats;
  std::map<std::string, Subckt> subckts;
  std::vector<std::pair<int, std::string>> topCards;
  Subckt* openSubckt = nullptr;

  std::string rawLine;
  int lineNo = 0;
  while (std::getline(input, rawLine)) {
    ++lineNo;
    ++stats.lineCount;
    // Strip comments.
    const std::size_t semi = rawLine.find(';');
    std::string text =
        semi == std::string::npos ? rawLine : rawLine.substr(0, semi);
    // Trim.
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    text = text.substr(first);
    if (text[0] == '*') continue;
    if (text[0] == '.') {
      const std::string dot = lower(text);
      if (dot.rfind(".subckt", 0) == 0) {
        if (openSubckt != nullptr) fail(lineNo, "nested .subckt definition");
        const auto tokens = tokenize(text);
        if (tokens.size() < 3) fail(lineNo, ".subckt needs a name and ports");
        Subckt& def = subckts[tokens[1]];
        def.ports.assign(tokens.begin() + 2, tokens.end());
        openSubckt = &def;
        continue;
      }
      if (dot.rfind(".ends", 0) == 0) {
        if (openSubckt == nullptr) fail(lineNo, ".ends without .subckt");
        openSubckt = nullptr;
        continue;
      }
      if (dot.rfind(".end", 0) == 0) break;
      continue;  // other dot-cards ignored
    }
    if (openSubckt != nullptr) {
      openSubckt->body.emplace_back(lineNo, text);
      continue;
    }
    topCards.emplace_back(lineNo, text);
  }
  if (openSubckt != nullptr) {
    throw InvalidArgumentError("deck: unterminated .subckt definition");
  }

  ParseEnv env;
  env.subckts = &subckts;
  for (const auto& [cardLine, card] : topCards) {
    const auto tokens = tokenize(card);
    if (!tokens.empty()) processCard(tokens, cardLine, netlist, stats, env);
  }
  return stats;
}

namespace {

void processCard(const std::vector<std::string>& tokens, int lineNo,
                 Netlist& netlist, DeckStats& stats, const ParseEnv& env) {
  {
    const std::string name = env.prefix + tokens[0];
    const char type = static_cast<char>(
        std::toupper(static_cast<unsigned char>(tokens[0][0])));
    const auto node = [&](std::size_t idx) -> NodeId {
      if (idx >= tokens.size()) fail(lineNo, "missing node on " + name);
      return netlist.node(mapNode(env, tokens[idx]));
    };

    switch (type) {
      case 'R': {
        if (tokens.size() < 4) fail(lineNo, "R needs: name a b value");
        netlist.add<Resistor>(name, node(1), node(2),
                              parseEngineeringValue(tokens[3]));
        break;
      }
      case 'C': {
        if (tokens.size() < 4) fail(lineNo, "C needs: name a b value");
        netlist.add<Capacitor>(name, node(1), node(2),
                               parseEngineeringValue(tokens[3]));
        break;
      }
      case 'L': {
        if (tokens.size() < 4) fail(lineNo, "L needs: name a b value");
        netlist.add<Inductor>(name, node(1), node(2),
                              parseEngineeringValue(tokens[3]));
        break;
      }
      case 'D': {
        if (tokens.size() < 3) fail(lineNo, "D needs: name a b");
        Diode::Params params;
        const auto options = parseOptions(tokens, 3, lineNo);
        params.saturationCurrent =
            options.get("is", params.saturationCurrent);
        params.idealityFactor = options.get("n", params.idealityFactor);
        netlist.add<Diode>(name, node(1), node(2), params);
        break;
      }
      case 'V': {
        if (tokens.size() < 4) fail(lineNo, "V needs: name a b waveform");
        netlist.add<VoltageSource>(name, node(1), node(2),
                                   parseSourceShape(tokens, 3, lineNo));
        break;
      }
      case 'I': {
        if (tokens.size() < 4) fail(lineNo, "I needs: name a b waveform");
        netlist.add<CurrentSource>(name, node(1), node(2),
                                   parseSourceShape(tokens, 3, lineNo));
        break;
      }
      case 'M': {
        if (tokens.size() < 5) fail(lineNo, "M needs: name d g s NMOS|PMOS");
        const std::string flavour = lower(tokens[4]);
        xtor::MosParams params;
        if (flavour == "nmos") {
          params = xtor::nmos45();
        } else if (flavour == "pmos") {
          params = xtor::pmos45();
        } else {
          fail(lineNo, "unknown transistor flavour '" + tokens[4] + "'");
        }
        const auto options = parseOptions(tokens, 5, lineNo);
        const double width = options.get("w", 65e-9);
        params.length = options.get("l", params.length);
        params.vt0 = options.get("vt", params.vt0);
        netlist.add<MosfetDevice>(name, node(1), node(2), node(3), params,
                                  width);
        break;
      }
      case 'E': {
        if (tokens.size() < 6) fail(lineNo, "E needs: name o+ o- c+ c- gain");
        netlist.add<Vcvs>(name, node(1), node(2), node(3), node(4),
                          parseEngineeringValue(tokens[5]));
        break;
      }
      case 'G': {
        if (tokens.size() < 6) fail(lineNo, "G needs: name o+ o- c+ c- gm");
        netlist.add<Vccs>(name, node(1), node(2), node(3), node(4),
                          parseEngineeringValue(tokens[5]));
        break;
      }
      case 'X': {
        if (tokens.size() >= 4 && lower(tokens[3]) == "fecap") {
          // fallthrough to the FECAP special case below
        } else {
          // Subcircuit instance: last token is the definition name.
          if (tokens.size() < 2) fail(lineNo, "X needs nodes and a name");
          const std::string& defName = tokens.back();
          if (env.subckts == nullptr ||
              env.subckts->find(defName) == env.subckts->end()) {
            fail(lineNo, "unknown subcircuit '" + defName + "'");
          }
          std::vector<std::string> actual;
          for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
            actual.push_back(mapNode(env, tokens[i]));
          }
          expandSubckt(tokens[0], actual, env.subckts->at(defName), netlist,
                       stats, env, lineNo);
          return;  // expansion already counted its devices
        }
        const auto options = parseOptions(tokens, 4, lineNo);
        ferro::LkCoefficients lk;
        lk.rho = options.get("rho", lk.rho);
        ferro::FeGeometry geometry;
        geometry.thickness = options.get("t", 2.25e-9);
        geometry.area =
            options.get("w", 65e-9) * options.get("l", 45e-9);
        netlist.add<FeCapDevice>(name, node(1), node(2), lk, geometry,
                                 options.get("p0", 0.0));
        break;
      }
      default:
        fail(lineNo, "unknown card '" + name + "'");
    }
    ++stats.deviceCount;
  }
}

}  // namespace

DeckStats parseDeckString(const std::string& text, Netlist& netlist) {
  std::istringstream stream(text);
  return parseDeck(stream, netlist);
}

}  // namespace fefet::spice
