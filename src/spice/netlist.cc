#include "spice/netlist.h"

#include "spice/device_batch.h"
#include "spice/stamp_pattern.h"

namespace fefet::spice {

// Out of line so the unique_ptr<StampPattern> member compiles against the
// complete type.
Netlist::Netlist() = default;
Netlist::~Netlist() = default;

NodeId Netlist::node(const std::string& name) {
  FEFET_REQUIRE(!name.empty(), "node name must be nonempty");
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = nodeIndex_.find(name);
  if (it != nodeIndex_.end()) return it->second;
  FEFET_REQUIRE(!frozen_, "netlist is frozen; cannot create node " + name);
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodeNames_.push_back(name);
  nodeIndex_[name] = id;
  return id;
}

bool Netlist::hasNode(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return true;
  return nodeIndex_.count(name) > 0;
}

const std::string& Netlist::nodeName(NodeId id) const {
  FEFET_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodeNames_.size()),
                "node id out of range");
  return nodeNames_[static_cast<std::size_t>(id)];
}

Device* Netlist::find(const std::string& name) const {
  const auto it = deviceIndex_.find(name);
  if (it == deviceIndex_.end()) return nullptr;
  return devices_[it->second].get();
}

class Netlist::AuxAllocator final : public SetupContext {
 public:
  AuxAllocator(int firstRow, std::vector<std::string>& labels)
      : nextRow_(firstRow), labels_(labels) {}

  int allocateAux(const std::string& label) override {
    labels_.push_back(label);
    return nextRow_++;
  }

 private:
  int nextRow_;
  std::vector<std::string>& labels_;
};

int Netlist::freeze() {
  if (!frozen_) {
    AuxAllocator allocator(nodeCount(), auxLabels_);
    for (const auto& device : devices_) device->setup(allocator);
    frozen_ = true;
    if (unknownCount() > 0) {
      pattern_ = std::make_unique<StampPattern>(devices_, unknownCount(),
                                                nodeCount());
    }
    batches_ = std::make_unique<DeviceBatches>(*this);
  }
  return unknownCount();
}

DeviceBatches& Netlist::deviceBatches() const {
  FEFET_REQUIRE(frozen_ && batches_ != nullptr,
                "deviceBatches() requires a frozen netlist");
  return *batches_;
}

const StampPattern& Netlist::stampPattern() const {
  FEFET_REQUIRE(frozen_ && pattern_ != nullptr,
                "stampPattern() requires a frozen, non-empty netlist");
  return *pattern_;
}

int Netlist::unknownCount() const {
  return nodeCount() + static_cast<int>(auxLabels_.size());
}

}  // namespace fefet::spice
