// mosfet_device.h — circuit-level MOSFET wrapping xtor::MosfetModel.
//
// Stamps the nonlinear channel current with analytic partials and four
// charge elements: the intrinsic gate-channel charge (lumped gate-source),
// the two overlap capacitances and the source/drain junction capacitances
// to ground.  A small gate leakage conductance gives internal gate nodes a
// DC path (needed for FEFET internal nodes).
#pragma once

#include "spice/device.h"
#include "xtor/mosfet_model.h"

namespace fefet::spice {

class MosfetDevice final : public Device {
 public:
  MosfetDevice(std::string name, NodeId drain, NodeId gate, NodeId source,
               const xtor::MosParams& params, double width,
               double gateLeak = 1e-12);

  void stamp(const EvalContext& ctx) override;
  void initializeState(const SystemView& view) override;
  void commitStep(const SystemView& view, double time, double dt,
                  IntegrationMethod method) override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

  const xtor::MosfetModel& model() const { return model_; }
  double drainCurrent(const SystemView& view) const;

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  double channelCharge(const SystemView& view) const;

  NodeId drain_, gate_, source_;
  xtor::MosfetModel model_;
  double gateLeak_;
  double overlapCap_;   ///< per side [F]
  double junctionCap_;  ///< per S/D terminal [F]
  ChargeIntegrator chanCharge_;  // gate <-> source (intrinsic)
  ChargeIntegrator ovlGd_;       // gate <-> drain overlap
  ChargeIntegrator ovlGs_;       // gate <-> source overlap
  ChargeIntegrator junD_;        // drain <-> ground
  ChargeIntegrator junS_;        // source <-> ground
};

}  // namespace fefet::spice
