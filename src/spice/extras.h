// extras.h — additional circuit devices rounding out the substrate:
// diode, inductor, and the linear controlled sources (VCVS, VCCS).
// None are required by the headline experiments, but they make the
// simulator a complete general-purpose tool (and the diode exercises the
// Newton damping on a second exponential nonlinearity).
#pragma once

#include "spice/device.h"

namespace fefet::spice {

/// Junction diode: i = Is (exp(v/(n Vt)) - 1), with a series conductance
/// limit to keep Newton iterations bounded.
class Diode final : public Device {
 public:
  struct Params {
    double saturationCurrent = 1e-14;  ///< Is [A]
    double idealityFactor = 1.0;       ///< n
    double temperature = 300.0;        ///< [K]
  };

  Diode(std::string name, NodeId anode, NodeId cathode, Params params);
  Diode(std::string name, NodeId anode, NodeId cathode)
      : Diode(std::move(name), anode, cathode, Params{}) {}

  void stamp(const EvalContext& ctx) override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

  /// Diode current at a given junction voltage.
  double currentAt(double v) const;

 private:
  friend class DeviceBatches;  // SoA batching (device_batch.h)

  NodeId anode_, cathode_;
  Params params_;
};

/// Linear inductor (companion model; short in DC).
class Inductor final : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance);

  void setup(SetupContext& ctx) override;
  void stamp(const EvalContext& ctx) override;
  void initializeState(const SystemView& view) override;
  void commitStep(const SystemView& view, double time, double dt,
                  IntegrationMethod method) override;
  std::vector<DeviceState> reportState(const SystemView& view) const override;

 private:
  NodeId a_, b_;
  double inductance_;
  int auxRow_ = -1;       ///< branch current unknown
  double iPrev_ = 0.0;    ///< committed branch current
  double vPrev_ = 0.0;    ///< committed branch voltage (for trapezoidal)
};

/// Voltage-controlled voltage source: v(out+) - v(out-) = gain * v(c+, c-).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId outPlus, NodeId outMinus, NodeId ctrlPlus,
       NodeId ctrlMinus, double gain);

  void setup(SetupContext& ctx) override;
  void stamp(const EvalContext& ctx) override;

 private:
  NodeId op_, om_, cp_, cm_;
  double gain_;
  int auxRow_ = -1;
};

/// Voltage-controlled current source: i(out+ -> out-) = gm * v(c+, c-).
class Vccs final : public Device {
 public:
  Vccs(std::string name, NodeId outPlus, NodeId outMinus, NodeId ctrlPlus,
       NodeId ctrlMinus, double transconductance);

  void stamp(const EvalContext& ctx) override;

 private:
  NodeId op_, om_, cp_, cm_;
  double gm_;
};

}  // namespace fefet::spice
