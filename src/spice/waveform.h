// waveform.h — recorded simulation traces and measurement helpers.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

namespace fefet::spice {

/// A set of named signals sampled on a shared time axis.
class Waveform {
 public:
  /// Register a signal column (order of registration = column order).
  void addColumn(const std::string& name);

  /// Append one time sample; `values` must match the registered columns.
  void appendSample(double time, const std::vector<double>& values);

  bool hasColumn(const std::string& name) const;
  std::span<const double> time() const { return time_; }
  std::span<const double> column(const std::string& name) const;
  std::vector<std::string> columnNames() const;
  std::size_t sampleCount() const { return time_.size(); }

  /// Value of a column at its last sample.  Throws InvalidArgumentError
  /// (like every reducer here) when the column has no samples yet.
  double finalValue(const std::string& name) const;
  /// Linear interpolation of a column at time t.  Queries outside
  /// [time().front(), time().back()] clamp to the first/last sample — no
  /// extrapolation; a single-sample trace returns that sample for any t.
  double valueAt(const std::string& name, double t) const;
  /// First time the column crosses `level` in the given direction.
  double firstCrossing(const std::string& name, double level,
                       bool rising) const;
  /// Min / max of a column.
  double minimum(const std::string& name) const;
  double maximum(const std::string& name) const;
  /// Trapezoidal integral of the column over the full trace.
  double integral(const std::string& name) const;

  /// Write all columns as CSV (time first).
  void writeCsv(std::ostream& os) const;

 private:
  std::span<const double> nonEmptyColumn(const std::string& name) const;

  std::vector<double> time_;
  std::vector<std::string> names_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<double>> columns_;
};

/// What to record during a transient.
struct Probe {
  enum class Kind { kNodeVoltage, kDeviceState };
  Kind kind;
  std::string target;  ///< node name, or device name
  std::string state;   ///< state name for kDeviceState ("P", "i", "id", ...)
  std::string label;   ///< column label in the waveform

  static Probe v(const std::string& node) {
    return {Kind::kNodeVoltage, node, "", "v(" + node + ")"};
  }
  static Probe deviceState(const std::string& device,
                           const std::string& stateName) {
    return {Kind::kDeviceState, device, stateName,
            stateName + "(" + device + ")"};
  }
  /// Current delivered by a voltage source (device state "i").
  static Probe i(const std::string& source) {
    return {Kind::kDeviceState, source, "i", "i(" + source + ")"};
  }
};

}  // namespace fefet::spice
