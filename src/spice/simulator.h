// simulator.h — DC operating point and adaptive transient analysis.
//
// The Simulator is stateful: node voltages and device history persist
// across runTransient() calls, so memory operations (write, hold, read)
// can be simulated back-to-back on one netlist by swapping source shapes
// between runs.  Each run uses its own local time axis starting at 0.
#pragma once

#include <vector>

#include "common/deadline.h"
#include "spice/netlist.h"
#include "spice/newton.h"
#include "spice/waveform.h"

namespace fefet::spice {

struct TransientOptions {
  double duration = 0.0;        ///< [s] (required)
  double dtInitial = 1e-12;     ///< first step
  double dtMin = 1e-17;         ///< below this the run aborts
  double dtMax = 0.0;           ///< 0 = duration / 50
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  /// Grow dt by this factor after an easy step (few Newton iterations).
  double growthFactor = 1.4;
  /// Newton iteration count considered "easy" (eligible for growth).
  int easyIterations = 8;
  /// Backoff: dt is multiplied by this on every rejected step (exponential
  /// schedule; must be in (0, 1)).
  double dtCutFactor = 0.5;
  /// Last-resort rescue once dt has been cut to dtMin: retry the step with
  /// gmin raised x100 per level, up to this many levels (0 disables).
  int maxGminEscalations = 3;
  double gminMax = 1e-6;  ///< [S] escalation ceiling
  /// Hard budgets — exceeding either aborts the run with an error carrying
  /// the retry history (NumericalError for the step budget,
  /// DeadlineExceeded for wall clock).  0 means unlimited.
  long maxSteps = 0;  ///< accepted + rejected Newton solves
  /// Convenience wall-clock ceiling for THIS run: shorthand for
  /// deadline.child(maxWallSeconds) anchored at run start.  0 = unlimited.
  double maxWallSeconds = 0.0;
  /// Wall-clock budget shared with the caller's enclosing job (sweep
  /// point, bench run).  Combined with maxWallSeconds via child(); both
  /// the step loop and every Newton iteration poll the result, so an
  /// expired deadline (or a cancelled token, e.g. the sweep watchdog)
  /// aborts promptly with DeadlineExceeded.
  Deadline deadline;
};

struct TransientStats {
  int steps = 0;
  int rejectedSteps = 0;
  int newtonIterations = 0;
  int dtCuts = 0;            ///< step-size reductions (backoff events)
  int gminEscalations = 0;   ///< cumulative rescue levels applied
  double smallestDt = 0.0;   ///< [s] smallest step attempted
  double wallSeconds = 0.0;  ///< wall-clock time of the run
};

struct TransientResult {
  Waveform waveform;
  TransientStats stats;
};

class Simulator {
 public:
  explicit Simulator(Netlist& netlist, const NewtonOptions& newton = {});

  /// Solve the DC operating point and make it the current state.  Device
  /// dynamic history is (re)initialized from the solution.
  NewtonStats solveDc();

  /// Initialize all node voltages / aux unknowns for a UIC start: node
  /// voltages zero (or values previously set via setNodeVoltage), device
  /// aux unknowns seeded by the devices, histories initialized.
  void initializeUic();

  /// Run a transient continuing from the current state.  Sources are
  /// evaluated on the local time axis of this run (0 .. duration).
  TransientResult runTransient(const TransientOptions& options,
                               const std::vector<Probe>& probes);

  /// Current voltage of a node.
  double nodeVoltage(const std::string& name) const;
  /// Evaluate any probe against the current solution.
  double measure(const Probe& probe) const;
  /// Force a node voltage into the current state (before initializeUic /
  /// a UIC transient; has no effect on constraint rows).
  void setNodeVoltage(const std::string& name, double value);

  Netlist& netlist() { return netlist_; }
  const std::vector<double>& solution() const { return x_; }
  /// Newton solver (read-only; LU structure-reuse diagnostics).
  const NewtonSolver& newton() const { return newton_; }

 private:
  double probeValue(const Probe& probe, const SystemView& view) const;

  Netlist& netlist_;
  NewtonOptions newtonOptions_;
  NewtonSolver newton_;
  std::vector<double> x_;
  bool stateValid_ = false;
};

}  // namespace fefet::spice
