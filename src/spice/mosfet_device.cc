#include "spice/mosfet_device.h"

#include "common/error.h"

namespace fefet::spice {

MosfetDevice::MosfetDevice(std::string name, NodeId drain, NodeId gate,
                           NodeId source, const xtor::MosParams& params,
                           double width, double gateLeak)
    : Device(std::move(name)),
      drain_(drain),
      gate_(gate),
      source_(source),
      model_(params, width),
      gateLeak_(gateLeak),
      overlapCap_(params.overlapCapPerWidth * width),
      junctionCap_(params.junctionCapPerWidth * width) {}

double MosfetDevice::channelCharge(const SystemView& view) const {
  const double vgs =
      view.nodeVoltage(gate_) - view.nodeVoltage(source_);
  return model_.gateArea() * model_.gateChargeDensity(vgs);
}

void MosfetDevice::stamp(const EvalContext& ctx) {
  const auto& view = ctx.view;
  const double vd = view.nodeVoltage(drain_);
  const double vg = view.nodeVoltage(gate_);
  const double vs = view.nodeVoltage(source_);
  const int rd = Stamper::rowOfNode(drain_);
  const int rg = Stamper::rowOfNode(gate_);
  const int rs = Stamper::rowOfNode(source_);

  // --- channel current -------------------------------------------------
  const auto op = model_.evaluate(vd, vg, vs);
  const double gms = -(op.gm + op.gds);
  ctx.addResidual(rd, op.ids);
  ctx.addResidual(rs, -op.ids);
  ctx.addJacobian(rd, rd, op.gds);
  ctx.addJacobian(rd, rg, op.gm);
  ctx.addJacobian(rd, rs, gms);
  ctx.addJacobian(rs, rd, -op.gds);
  ctx.addJacobian(rs, rg, -op.gm);
  ctx.addJacobian(rs, rs, -gms);

  // --- gate leakage (also provides a DC path for floating gates) -------
  if (gateLeak_ > 0.0) {
    const double il = gateLeak_ * (vg - vs);
    ctx.addResidual(rg, il);
    ctx.addResidual(rs, -il);
    ctx.addJacobian(rg, rg, gateLeak_);
    ctx.addJacobian(rg, rs, -gateLeak_);
    ctx.addJacobian(rs, rg, -gateLeak_);
    ctx.addJacobian(rs, rs, gateLeak_);
  }

  if (ctx.dc) return;

  // --- intrinsic gate-channel charge (nonlinear, lumped to source) -----
  {
    const double q = channelCharge(view);
    const auto [i, dIdQ] = chanCharge_.currentFor(q, ctx);
    const double cgg =
        model_.gateArea() * model_.gateCapacitanceDensity(vg - vs);
    const double g = dIdQ * cgg;
    ctx.addResidual(rg, i);
    ctx.addResidual(rs, -i);
    ctx.addJacobian(rg, rg, g);
    ctx.addJacobian(rg, rs, -g);
    ctx.addJacobian(rs, rg, -g);
    ctx.addJacobian(rs, rs, g);
  }
  // --- linear charge elements ------------------------------------------
  const auto stampLinearCap = [&](ChargeIntegrator& integ, NodeId a, NodeId b,
                                  double c) {
    if (c <= 0.0) return;
    const double v = view.nodeVoltage(a) - view.nodeVoltage(b);
    const auto [i, dIdQ] = integ.currentFor(c * v, ctx);
    const double g = dIdQ * c;
    const int ra = Stamper::rowOfNode(a);
    const int rb = Stamper::rowOfNode(b);
    ctx.addResidual(ra, i);
    ctx.addResidual(rb, -i);
    ctx.addJacobian(ra, ra, g);
    ctx.addJacobian(ra, rb, -g);
    ctx.addJacobian(rb, ra, -g);
    ctx.addJacobian(rb, rb, g);
  };
  stampLinearCap(ovlGd_, gate_, drain_, overlapCap_);
  stampLinearCap(ovlGs_, gate_, source_, overlapCap_);
  stampLinearCap(junD_, drain_, kGround, junctionCap_);
  stampLinearCap(junS_, source_, kGround, junctionCap_);
}

void MosfetDevice::initializeState(const SystemView& view) {
  const double vd = view.nodeVoltage(drain_);
  const double vg = view.nodeVoltage(gate_);
  const double vs = view.nodeVoltage(source_);
  chanCharge_.initialize(channelCharge(view));
  ovlGd_.initialize(overlapCap_ * (vg - vd));
  ovlGs_.initialize(overlapCap_ * (vg - vs));
  junD_.initialize(junctionCap_ * vd);
  junS_.initialize(junctionCap_ * vs);
}

void MosfetDevice::commitStep(const SystemView& view, double /*time*/,
                              double dt, IntegrationMethod method) {
  const double vd = view.nodeVoltage(drain_);
  const double vg = view.nodeVoltage(gate_);
  const double vs = view.nodeVoltage(source_);
  chanCharge_.commitFrom(channelCharge(view), dt, method);
  ovlGd_.commitFrom(overlapCap_ * (vg - vd), dt, method);
  ovlGs_.commitFrom(overlapCap_ * (vg - vs), dt, method);
  junD_.commitFrom(junctionCap_ * vd, dt, method);
  junS_.commitFrom(junctionCap_ * vs, dt, method);
}

double MosfetDevice::drainCurrent(const SystemView& view) const {
  return model_.idsAt(view.nodeVoltage(drain_), view.nodeVoltage(gate_),
                      view.nodeVoltage(source_));
}

std::vector<DeviceState> MosfetDevice::reportState(
    const SystemView& view) const {
  return {{"id", drainCurrent(view)},
          {"vgs", view.nodeVoltage(gate_) - view.nodeVoltage(source_)},
          {"vds", view.nodeVoltage(drain_) - view.nodeVoltage(source_)}};
}

}  // namespace fefet::spice
