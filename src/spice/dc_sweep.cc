#include "spice/dc_sweep.h"

#include "common/error.h"
#include "spice/sources.h"

namespace fefet::spice {

const std::vector<double>& DcSweepResult::probe(
    const std::string& label) const {
  const auto it = probes.find(label);
  FEFET_REQUIRE(it != probes.end(), "no such sweep probe: " + label);
  return it->second;
}

DcSweepResult dcSweep(Simulator& simulator, VoltageSource& source,
                      double from, double to, int steps,
                      const std::vector<Probe>& probes) {
  FEFET_REQUIRE(steps >= 1, "dcSweep: steps must be positive");
  DcSweepResult result;
  for (const auto& p : probes) result.probes[p.label] = {};
  for (int i = 0; i <= steps; ++i) {
    const double value = from + (to - from) * i / steps;
    source.setShape(shapes::dc(value));
    simulator.solveDc();
    result.sweepValues.push_back(value);
    for (const auto& p : probes) {
      result.probes[p.label].push_back(simulator.measure(p));
    }
  }
  return result;
}

}  // namespace fefet::spice
