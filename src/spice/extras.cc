#include "spice/extras.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace fefet::spice {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, Params params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode),
      params_(params) {
  FEFET_REQUIRE(params_.saturationCurrent > 0.0,
                "diode saturation current must be positive");
  FEFET_REQUIRE(params_.idealityFactor >= 1.0, "ideality factor >= 1");
}

double Diode::currentAt(double v) const {
  const double vt = constants::kBoltzmann * params_.temperature /
                    constants::kElementaryCharge * params_.idealityFactor;
  // Exponential with linear continuation above vMax to keep Newton stable.
  const double vMax = 40.0 * vt;
  if (v <= vMax) {
    return params_.saturationCurrent * (std::exp(v / vt) - 1.0);
  }
  const double iMax = params_.saturationCurrent * (std::exp(vMax / vt) - 1.0);
  const double gMax = params_.saturationCurrent * std::exp(vMax / vt) / vt;
  return iMax + gMax * (v - vMax);
}

void Diode::stamp(const EvalContext& ctx) {
  const double va = ctx.view.nodeVoltage(anode_);
  const double vb = ctx.view.nodeVoltage(cathode_);
  const double v = va - vb;
  const double vt = constants::kBoltzmann * params_.temperature /
                    constants::kElementaryCharge * params_.idealityFactor;
  const double i = currentAt(v);
  const double vMax = 40.0 * vt;
  const double g = (v <= vMax)
                       ? params_.saturationCurrent * std::exp(v / vt) / vt
                       : params_.saturationCurrent * std::exp(vMax / vt) / vt;
  const int ra = Stamper::rowOfNode(anode_);
  const int rb = Stamper::rowOfNode(cathode_);
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, ra, g);
  ctx.addJacobian(ra, rb, -g);
  ctx.addJacobian(rb, ra, -g);
  ctx.addJacobian(rb, rb, g);
}

std::vector<DeviceState> Diode::reportState(const SystemView& view) const {
  const double v =
      view.nodeVoltage(anode_) - view.nodeVoltage(cathode_);
  return {{"i", currentAt(v)}, {"v", v}};
}

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
  FEFET_REQUIRE(inductance_ > 0.0, "inductance must be positive");
}

void Inductor::setup(SetupContext& ctx) {
  auxRow_ = ctx.allocateAux("i(" + name() + ")");
}

void Inductor::stamp(const EvalContext& ctx) {
  const double va = ctx.view.nodeVoltage(a_);
  const double vb = ctx.view.nodeVoltage(b_);
  const double i = ctx.view.aux(auxRow_);
  const int ra = Stamper::rowOfNode(a_);
  const int rb = Stamper::rowOfNode(b_);

  // KCL contributions of the branch current (a -> b through the coil).
  ctx.addResidual(ra, i);
  ctx.addResidual(rb, -i);
  ctx.addJacobian(ra, auxRow_, 1.0);
  ctx.addJacobian(rb, auxRow_, -1.0);

  // Branch equation: v = L di/dt.  DC: v = 0 (short).
  if (ctx.dc || ctx.dt <= 0.0) {
    ctx.addResidual(auxRow_, va - vb);
    ctx.addJacobian(auxRow_, ra, 1.0);
    ctx.addJacobian(auxRow_, rb, -1.0);
    return;
  }
  if (ctx.method == IntegrationMethod::kBackwardEuler) {
    // v = L (i - iPrev) / dt.
    ctx.addResidual(auxRow_,
                            va - vb - inductance_ * (i - iPrev_) / ctx.dt);
    ctx.addJacobian(auxRow_, ra, 1.0);
    ctx.addJacobian(auxRow_, rb, -1.0);
    ctx.addJacobian(auxRow_, auxRow_, -inductance_ / ctx.dt);
  } else {
    // Trapezoidal: (v + vPrev)/2 = L (i - iPrev)/dt.
    ctx.addResidual(
        auxRow_, 0.5 * (va - vb + vPrev_) -
                     inductance_ * (i - iPrev_) / ctx.dt);
    ctx.addJacobian(auxRow_, ra, 0.5);
    ctx.addJacobian(auxRow_, rb, -0.5);
    ctx.addJacobian(auxRow_, auxRow_, -inductance_ / ctx.dt);
  }
}

void Inductor::initializeState(const SystemView& view) {
  iPrev_ = 0.0;
  vPrev_ = view.nodeVoltage(a_) - view.nodeVoltage(b_);
}

void Inductor::commitStep(const SystemView& view, double /*time*/,
                          double /*dt*/, IntegrationMethod /*method*/) {
  iPrev_ = view.aux(auxRow_);
  vPrev_ = view.nodeVoltage(a_) - view.nodeVoltage(b_);
}

std::vector<DeviceState> Inductor::reportState(const SystemView& view) const {
  return {{"i", view.aux(auxRow_)}};
}

Vcvs::Vcvs(std::string name, NodeId outPlus, NodeId outMinus, NodeId ctrlPlus,
           NodeId ctrlMinus, double gain)
    : Device(std::move(name)), op_(outPlus), om_(outMinus), cp_(ctrlPlus),
      cm_(ctrlMinus), gain_(gain) {}

void Vcvs::setup(SetupContext& ctx) {
  auxRow_ = ctx.allocateAux("i(" + name() + ")");
}

void Vcvs::stamp(const EvalContext& ctx) {
  const double i = ctx.view.aux(auxRow_);
  const int rop = Stamper::rowOfNode(op_);
  const int rom = Stamper::rowOfNode(om_);
  const int rcp = Stamper::rowOfNode(cp_);
  const int rcm = Stamper::rowOfNode(cm_);
  ctx.addResidual(rop, i);
  ctx.addResidual(rom, -i);
  ctx.addJacobian(rop, auxRow_, 1.0);
  ctx.addJacobian(rom, auxRow_, -1.0);
  // Branch: v(out) - gain * v(ctrl) = 0.
  const double vout =
      ctx.view.nodeVoltage(op_) - ctx.view.nodeVoltage(om_);
  const double vctrl =
      ctx.view.nodeVoltage(cp_) - ctx.view.nodeVoltage(cm_);
  ctx.addResidual(auxRow_, vout - gain_ * vctrl);
  ctx.addJacobian(auxRow_, rop, 1.0);
  ctx.addJacobian(auxRow_, rom, -1.0);
  ctx.addJacobian(auxRow_, rcp, -gain_);
  ctx.addJacobian(auxRow_, rcm, gain_);
}

Vccs::Vccs(std::string name, NodeId outPlus, NodeId outMinus, NodeId ctrlPlus,
           NodeId ctrlMinus, double transconductance)
    : Device(std::move(name)), op_(outPlus), om_(outMinus), cp_(ctrlPlus),
      cm_(ctrlMinus), gm_(transconductance) {}

void Vccs::stamp(const EvalContext& ctx) {
  const double vctrl =
      ctx.view.nodeVoltage(cp_) - ctx.view.nodeVoltage(cm_);
  const double i = gm_ * vctrl;
  const int rop = Stamper::rowOfNode(op_);
  const int rom = Stamper::rowOfNode(om_);
  const int rcp = Stamper::rowOfNode(cp_);
  const int rcm = Stamper::rowOfNode(cm_);
  // Current flows out of out+ into out- through the source.
  ctx.addResidual(rop, i);
  ctx.addResidual(rom, -i);
  ctx.addJacobian(rop, rcp, gm_);
  ctx.addJacobian(rop, rcm, -gm_);
  ctx.addJacobian(rom, rcp, -gm_);
  ctx.addJacobian(rom, rcm, gm_);
}

}  // namespace fefet::spice
