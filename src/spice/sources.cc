#include "spice/sources.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fefet::spice {

namespace shapes {

Shape dc(double value) {
  return [value](double) { return value; };
}

Shape pulse(double v0, double v1, double delay, double rise, double width,
            double fall, double period) {
  FEFET_REQUIRE(rise > 0.0 && fall > 0.0,
                "pulse: rise/fall must be positive (use small values for "
                "near-ideal edges)");
  return [=](double t) {
    double tl = t - delay;
    if (period > 0.0 && tl >= 0.0) tl = std::fmod(tl, period);
    if (tl < 0.0) return v0;
    if (tl < rise) return v0 + (v1 - v0) * tl / rise;
    if (tl < rise + width) return v1;
    if (tl < rise + width + fall) {
      return v1 + (v0 - v1) * (tl - rise - width) / fall;
    }
    return v0;
  };
}

Shape pwl(std::vector<std::pair<double, double>> points) {
  FEFET_REQUIRE(!points.empty(), "pwl: needs at least one point");
  for (std::size_t i = 1; i < points.size(); ++i) {
    FEFET_REQUIRE(points[i].first >= points[i - 1].first,
                  "pwl: points must be sorted by time");
  }
  return [pts = std::move(points)](double t) {
    if (t <= pts.front().first) return pts.front().second;
    if (t >= pts.back().first) return pts.back().second;
    const auto it = std::upper_bound(
        pts.begin(), pts.end(), t,
        [](double value, const auto& p) { return value < p.first; });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    if (hi.first == lo.first) return hi.second;
    const double f = (t - lo.first) / (hi.first - lo.first);
    return lo.second + f * (hi.second - lo.second);
  };
}

Shape sine(double offset, double amplitude, double frequency, double delay) {
  return [=](double t) {
    return offset + amplitude * std::sin(2.0 * M_PI * frequency * (t - delay));
  };
}

}  // namespace shapes

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             Shape shape)
    : Device(std::move(name)), plus_(plus), minus_(minus),
      shape_(std::move(shape)) {
  FEFET_REQUIRE(static_cast<bool>(shape_), "voltage source needs a shape");
}

void VoltageSource::setup(SetupContext& ctx) {
  auxRow_ = ctx.allocateAux("i(" + name() + ")");
}

void VoltageSource::stamp(const EvalContext& ctx) {
  const int rp = Stamper::rowOfNode(plus_);
  const int rm = Stamper::rowOfNode(minus_);
  const double i = ctx.view.aux(auxRow_);
  const double vp = ctx.view.nodeVoltage(plus_);
  const double vm = ctx.view.nodeVoltage(minus_);
  // KCL: branch current leaves the + node into the source.
  ctx.addResidual(rp, i);
  ctx.addResidual(rm, -i);
  ctx.addJacobian(rp, auxRow_, 1.0);
  ctx.addJacobian(rm, auxRow_, -1.0);
  // Branch equation: v+ - v- = shape(t).
  ctx.addResidual(auxRow_, vp - vm - shape_(ctx.time));
  ctx.addJacobian(auxRow_, rp, 1.0);
  ctx.addJacobian(auxRow_, rm, -1.0);
}

double VoltageSource::current(const SystemView& view) const {
  // Positive = delivered into the external circuit from the + terminal
  // (the aux unknown is the current absorbed into the source).
  return -view.aux(auxRow_);
}

void VoltageSource::commitStep(const SystemView& view, double time,
                               double dt, IntegrationMethod /*method*/) {
  energy_ += shape_(time) * current(view) * dt;
}

std::vector<DeviceState> VoltageSource::reportState(
    const SystemView& view) const {
  return {{"i", current(view)}, {"e", energy_}};
}

CurrentSource::CurrentSource(std::string name, NodeId from, NodeId to,
                             Shape shape)
    : Device(std::move(name)), from_(from), to_(to), shape_(std::move(shape)) {
  FEFET_REQUIRE(static_cast<bool>(shape_), "current source needs a shape");
}

void CurrentSource::stamp(const EvalContext& ctx) {
  const double i = shape_(ctx.time);
  ctx.addResidual(Stamper::rowOfNode(from_), i);
  ctx.addResidual(Stamper::rowOfNode(to_), -i);
}

}  // namespace fefet::spice
