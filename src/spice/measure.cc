#include "spice/measure.h"

#include <cmath>

#include "common/error.h"
#include "common/math.h"

namespace fefet::spice::measure {

double riseTime(const Waveform& waveform, const std::string& column,
                double low, double high) {
  FEFET_REQUIRE(high > low, "riseTime: high must exceed low");
  const double span = high - low;
  const double t10 =
      waveform.firstCrossing(column, low + 0.1 * span, /*rising=*/true);
  // The 90% crossing must come after the 10% one.
  const auto t = waveform.time();
  const auto y = waveform.column(column);
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (t[i] <= t10) continue;
    if (y[i - 1] < low + 0.9 * span && y[i] >= low + 0.9 * span) {
      const double f = (low + 0.9 * span - y[i - 1]) / (y[i] - y[i - 1]);
      return t[i - 1] + f * (t[i] - t[i - 1]) - t10;
    }
  }
  throw SimulationError("riseTime: waveform never reaches the 90% level");
}

double fallTime(const Waveform& waveform, const std::string& column,
                double high, double low) {
  FEFET_REQUIRE(high > low, "fallTime: high must exceed low");
  const double span = high - low;
  const double t90 =
      waveform.firstCrossing(column, high - 0.1 * span, /*rising=*/false);
  const auto t = waveform.time();
  const auto y = waveform.column(column);
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (t[i] <= t90) continue;
    if (y[i - 1] > low + 0.1 * span && y[i] <= low + 0.1 * span) {
      const double f = (y[i - 1] - (low + 0.1 * span)) / (y[i - 1] - y[i]);
      return t[i - 1] + f * (t[i] - t[i - 1]) - t90;
    }
  }
  throw SimulationError("fallTime: waveform never reaches the 10% level");
}

double delay(const Waveform& waveform, const std::string& fromColumn,
             double fromLevel, bool fromRising, const std::string& toColumn,
             double toLevel, bool toRising) {
  return waveform.firstCrossing(toColumn, toLevel, toRising) -
         waveform.firstCrossing(fromColumn, fromLevel, fromRising);
}

double settlingTime(const Waveform& waveform, const std::string& column,
                    double target, double tolerance) {
  FEFET_REQUIRE(tolerance > 0.0, "settlingTime: tolerance must be positive");
  const auto t = waveform.time();
  const auto y = waveform.column(column);
  FEFET_REQUIRE(!y.empty(), "settlingTime: empty waveform");
  // Walk backwards: the settle point is just after the last excursion.
  std::size_t lastOutside = 0;
  bool everOutside = false;
  for (std::size_t i = y.size(); i-- > 0;) {
    if (std::abs(y[i] - target) > tolerance) {
      lastOutside = i;
      everOutside = true;
      break;
    }
  }
  if (!everOutside) return t.front();
  FEFET_REQUIRE(std::abs(y.back() - target) <= tolerance,
                "settlingTime: waveform never settles");
  return t[lastOutside + 1];
}

double overshoot(const Waveform& waveform, const std::string& column,
                 double target) {
  const double peak = waveform.maximum(column);
  return peak > target ? peak - target : 0.0;
}

namespace {
std::pair<std::vector<double>, std::vector<double>> windowed(
    const Waveform& waveform, const std::string& column, double t0,
    double t1) {
  FEFET_REQUIRE(t1 > t0, "window: empty interval");
  const auto t = waveform.time();
  const auto y = waveform.column(column);
  std::vector<double> tw, yw;
  tw.push_back(t0);
  yw.push_back(waveform.valueAt(column, t0));
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] > t0 && t[i] < t1) {
      tw.push_back(t[i]);
      yw.push_back(y[i]);
    }
  }
  tw.push_back(t1);
  yw.push_back(waveform.valueAt(column, t1));
  return {tw, yw};
}
}  // namespace

double average(const Waveform& waveform, const std::string& column,
               double t0, double t1) {
  const auto [tw, yw] = windowed(waveform, column, t0, t1);
  return math::trapz(tw, yw) / (t1 - t0);
}

double rms(const Waveform& waveform, const std::string& column, double t0,
           double t1) {
  auto [tw, yw] = windowed(waveform, column, t0, t1);
  for (double& v : yw) v *= v;
  return std::sqrt(math::trapz(tw, yw) / (t1 - t0));
}

}  // namespace fefet::spice::measure
