// netlist.h — circuit container: named nodes plus owned devices.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "spice/device.h"

namespace fefet::spice {

/// A circuit under construction.  Nodes are created on first use by name;
/// devices are owned by the netlist.  After freeze() the unknown layout
/// (node rows followed by auxiliary rows) is fixed.
class StampPattern;
class DeviceBatches;

class Netlist {
 public:
  Netlist();
  ~Netlist();
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;

  /// Get-or-create a named node.
  NodeId node(const std::string& name);

  /// Ground node (always exists).
  NodeId ground() const { return kGround; }

  /// True if a node of this name already exists.
  bool hasNode(const std::string& name) const;

  /// Name of a node id (for diagnostics).
  const std::string& nodeName(NodeId id) const;

  /// Number of non-ground nodes.
  int nodeCount() const { return static_cast<int>(nodeNames_.size()) - 1; }

  /// Construct and register a device.  Returns a non-owning pointer valid
  /// for the netlist lifetime.
  template <typename T, typename... Args>
  T* add(Args&&... args) {
    FEFET_REQUIRE(!frozen_, "netlist is frozen; cannot add devices");
    auto device = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = device.get();
    FEFET_REQUIRE(deviceIndex_.find(raw->name()) == deviceIndex_.end(),
                  "duplicate device name: " + raw->name());
    deviceIndex_[raw->name()] = devices_.size();
    devices_.push_back(std::move(device));
    return raw;
  }

  /// Find a device by name (nullptr when absent).
  Device* find(const std::string& name) const;

  /// Find and downcast; throws InvalidArgumentError on missing/mismatch.
  template <typename T>
  T* get(const std::string& name) const {
    Device* d = find(name);
    FEFET_REQUIRE(d != nullptr, "no such device: " + name);
    T* t = dynamic_cast<T*>(d);
    FEFET_REQUIRE(t != nullptr, "device has unexpected type: " + name);
    return t;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Freeze the netlist: run device setup, assign auxiliary rows and
  /// record the compiled stamp pattern.  Idempotent.  Returns the total
  /// unknown count.
  int freeze();

  bool frozen() const { return frozen_; }
  int unknownCount() const;
  const std::vector<std::string>& auxLabels() const { return auxLabels_; }

  /// Symbolic stamp structure recorded at freeze() — the compiled
  /// pipeline's pattern (see stamp_pattern.h).  Requires frozen().
  const StampPattern& stampPattern() const;

  /// Structure-of-arrays device batches built at freeze() (see
  /// device_batch.h).  Mutable — stampAll writes into its preallocated
  /// scratch.  Requires frozen().
  DeviceBatches& deviceBatches() const;

 private:
  class AuxAllocator;

  std::map<std::string, NodeId> nodeIndex_;
  std::vector<std::string> nodeNames_{"0"};  // index 0 = ground
  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::string, std::size_t> deviceIndex_;
  std::vector<std::string> auxLabels_;
  std::unique_ptr<StampPattern> pattern_;
  std::unique_ptr<DeviceBatches> batches_;
  bool frozen_ = false;
};

}  // namespace fefet::spice
