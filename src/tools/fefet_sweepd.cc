// fefet-sweepd — crash-safe multi-process sweep daemon.
//
// Runs the paper's §3 thickness characterization as a sharded sweep: the
// point space is split into contiguous shards coordinated through an
// append-only lease board (sim/shard_lease.h), N worker processes lease
// and run disjoint ranges, and a supervisor (sim/shard_supervisor.h)
// restarts crashed workers under an exponential-backoff restart budget.
// Any process — worker or supervisor — can be SIGKILLed at any moment;
// rerunning the same command resumes from the journals and the merged
// results CRC is bit-identical to a single-process run.
//
//   fefet-sweepd --dir=/tmp/board --points=17 --shards=4 --workers=2
//   fefet-sweepd --dir=/tmp/board ... --chaos-kill-p=0.3   # kill storm
//
// The binary re-execs itself with --worker for each worker process; the
// {slot}-stable owner name keeps chaos streams reproducible across
// restarts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/design_space.h"
#include "core/materials.h"
#include "sim/shard_lease.h"
#include "sim/shard_supervisor.h"

using namespace fefet;

namespace {

constexpr double kVread = 0.40;
constexpr double kThicknessMin = 1.0e-9;
constexpr double kThicknessMax = 2.6e-9;

struct Cli {
  std::string dir = "sweepd-board";
  std::size_t points = 17;
  int shards = 4;
  int workers = 2;
  double leaseTtlSeconds = 5.0;
  double pollSeconds = 0.2;
  int restartBudget = 16;
  double deadlineSeconds = 0.0;  // 0 = unlimited
  double chaosKillP = 0.0;
  std::uint64_t chaosSeed = 0;
  std::uint64_t baseSeed = 1;
  bool worker = false;
  std::string owner;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir=PATH] [--points=N] [--shards=N] [--workers=N]\n"
      "          [--lease-ttl-s=S] [--poll-s=S] [--restart-budget=N]\n"
      "          [--deadline-seconds=S] [--chaos-kill-p=P] [--chaos-seed=N]\n"
      "          [--base-seed=N] [--worker --owner=NAME]\n",
      argv0);
}

bool parseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

Cli parseCli(int argc, char** argv) {
  Cli cli;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--worker") == 0) {
      cli.worker = true;
    } else if (parseFlag(arg, "--dir", &v)) {
      cli.dir = v;
    } else if (parseFlag(arg, "--points", &v)) {
      cli.points = static_cast<std::size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (parseFlag(arg, "--shards", &v)) {
      cli.shards = std::atoi(v.c_str());
    } else if (parseFlag(arg, "--workers", &v)) {
      cli.workers = std::atoi(v.c_str());
    } else if (parseFlag(arg, "--lease-ttl-s", &v)) {
      cli.leaseTtlSeconds = std::atof(v.c_str());
    } else if (parseFlag(arg, "--poll-s", &v)) {
      cli.pollSeconds = std::atof(v.c_str());
    } else if (parseFlag(arg, "--restart-budget", &v)) {
      cli.restartBudget = std::atoi(v.c_str());
    } else if (parseFlag(arg, "--deadline-seconds", &v)) {
      cli.deadlineSeconds = std::atof(v.c_str());
    } else if (parseFlag(arg, "--chaos-kill-p", &v)) {
      cli.chaosKillP = std::atof(v.c_str());
    } else if (parseFlag(arg, "--chaos-seed", &v)) {
      cli.chaosSeed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parseFlag(arg, "--base-seed", &v)) {
      cli.baseSeed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (parseFlag(arg, "--owner", &v)) {
      cli.owner = v;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "fefet-sweepd: unknown flag %s\n", arg);
      usage(argv[0]);
      std::exit(2);
    }
  }
  FEFET_REQUIRE(cli.points >= 1, "fefet-sweepd needs --points >= 1");
  FEFET_REQUIRE(cli.shards >= 1, "fefet-sweepd needs --shards >= 1");
  FEFET_REQUIRE(cli.workers >= 1, "fefet-sweepd needs --workers >= 1");
  return cli;
}

std::vector<double> thicknessGrid(std::size_t points) {
  std::vector<double> ts;
  ts.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double f =
        points > 1 ? static_cast<double>(i) / static_cast<double>(points - 1)
                   : 0.0;
    ts.push_back(kThicknessMin + f * (kThicknessMax - kThicknessMin));
  }
  return ts;
}

std::uint64_t configDigest(const std::vector<double>& thicknesses) {
  std::uint64_t h = stats::splitmix64(0x5EE9D000u);
  const auto fold = [&h](double x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    h = stats::splitmix64(h ^ bits);
  };
  fold(kVread);
  for (double t : thicknesses) fold(t);
  return h;
}

// Hexfloat payloads: bit-exact across re-runs, so duplicate points from
// reclaimed leases merge first-wins without ever differing.
std::string encodePoint(const core::DesignPoint& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%a,%d,%d,%a,%a,%a,%a,%a", p.feThickness,
                p.hysteretic ? 1 : 0, p.nonvolatile ? 1 : 0,
                p.upSwitchVoltage, p.downSwitchVoltage, p.windowWidth,
                p.onOffRatio, p.standaloneCoerciveVoltage);
  return std::string(buf);
}

sim::ShardBoardConfig boardConfig(const Cli& cli,
                                  const std::vector<double>& thicknesses) {
  sim::ShardBoardConfig board;
  board.dir = cli.dir;
  board.points = cli.points;
  board.shards = cli.shards;
  board.baseSeed = cli.baseSeed;
  board.configDigest = configDigest(thicknesses);
  return board;
}

int runWorker(const Cli& cli) {
  const auto thicknesses = thicknessGrid(cli.points);
  core::FefetParams base;
  base.lk = core::fefetMaterial();

  sim::ShardWorkerOptions options;
  options.board = boardConfig(cli, thicknesses);
  options.owner = cli.owner;
  options.leaseTtlSeconds = cli.leaseTtlSeconds;
  options.pollSeconds = cli.pollSeconds;
  options.chaosKillP = cli.chaosKillP;
  options.chaosSeed = cli.chaosSeed;
  if (cli.deadlineSeconds > 0.0) {
    options.deadline = Deadline::after(cli.deadlineSeconds);
  }

  const auto report = sim::runShardWorker(
      options, [&](std::size_t i, const sim::SweepContext&) {
        return encodePoint(
            core::characterizeThickness(base, thicknesses[i], kVread));
      });
  std::fprintf(stderr,
               "fefet-sweepd worker %s: ran=%zu skipped=%zu completed=%d "
               "acquired=%d stolen=%d\n",
               cli.owner.c_str(), report.pointsRun, report.pointsSkipped,
               report.shardsCompleted, report.leasesAcquired,
               report.leasesStolen);
  return 0;
}

int runSupervisor(const Cli& cli, const char* argv0) {
  const auto thicknesses = thicknessGrid(cli.points);

  sim::ShardSupervisorOptions options;
  options.board = boardConfig(cli, thicknesses);
  options.workers = cli.workers;
  options.restartBudget = cli.restartBudget;
  options.leaseTtlSeconds = cli.leaseTtlSeconds;
  if (cli.deadlineSeconds > 0.0) {
    options.deadline = Deadline::after(cli.deadlineSeconds);
  }

  char buf[64];
  std::vector<std::string> workerArgv;
  workerArgv.push_back(argv0);
  workerArgv.push_back("--worker");
  workerArgv.push_back("--owner=w{slot}");
  workerArgv.push_back("--dir=" + cli.dir);
  std::snprintf(buf, sizeof(buf), "--points=%zu", cli.points);
  workerArgv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--shards=%d", cli.shards);
  workerArgv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--base-seed=%llu",
                static_cast<unsigned long long>(cli.baseSeed));
  workerArgv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--lease-ttl-s=%g", cli.leaseTtlSeconds);
  workerArgv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "--poll-s=%g", cli.pollSeconds);
  workerArgv.push_back(buf);
  if (cli.chaosKillP > 0.0) {
    std::snprintf(buf, sizeof(buf), "--chaos-kill-p=%g", cli.chaosKillP);
    workerArgv.push_back(buf);
    std::snprintf(buf, sizeof(buf), "--chaos-seed=%llu",
                  static_cast<unsigned long long>(cli.chaosSeed));
    workerArgv.push_back(buf);
  }
  if (cli.deadlineSeconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "--deadline-seconds=%g",
                  cli.deadlineSeconds);
    workerArgv.push_back(buf);
  }

  sim::ShardSupervisor supervisor(options);
  const auto report = supervisor.run(workerArgv);

  // Per-shard tallies, then the machine-readable summary lines.
  std::printf("shard,points,duplicates,token,owner,complete\n");
  for (const auto& tally : report.merge.shards) {
    std::printf("%d,%zu,%zu,%llu,%s,%d\n", tally.shard, tally.points,
                tally.duplicates,
                static_cast<unsigned long long>(tally.token),
                tally.owner.c_str(), tally.complete ? 1 : 0);
  }
  std::printf(
      "PERF {\"bench\":\"fefet_sweepd\",\"v\":3,\"mode\":\"sharded\","
      "\"points\":%zu,\"shards\":%d,\"workers\":%d,\"ok\":%zu,"
      "\"missing\":%zu,\"duplicates\":%zu,\"spawns\":%d,\"restarts\":%d,"
      "\"crashes\":%d,\"stalls\":%d,\"complete\":%s,"
      "\"results_crc\":\"%08x\"}\n",
      cli.points, cli.shards, cli.workers, report.merge.records.size(),
      report.merge.missing, report.merge.duplicates, report.spawns,
      report.restarts, report.crashes, report.stalls,
      report.complete() ? "true" : "false", report.merge.resultsCrc);
  std::printf(
      "REPORT {\"tool\":\"fefet_sweepd\",\"complete\":%s,"
      "\"restart_budget_exhausted\":%s,\"deadline_expired\":%s}\n",
      report.complete() ? "true" : "false",
      report.restartBudgetExhausted ? "true" : "false",
      report.deadlineExpired ? "true" : "false");
  return report.complete() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli = parseCli(argc, argv);
    return cli.worker ? runWorker(cli) : runSupervisor(cli, argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fefet-sweepd: %s\n", e.what());
    return 1;
  }
}
