// sweep_engine.h — parallel execution of independent simulation points.
//
// Monte Carlo variability samples, design-space grid points, per-seed
// fault-resilience trials and retention/endurance sweeps all share one
// shape: N independent points, each running a self-contained (and
// internally single-threaded) simulation.  SweepEngine fans those points
// across a fixed-size ThreadPool with
//
//  * deterministic per-point seeding — pointSeed(baseSeed, index) is a
//    splitmix64 hash, so a point's random stream depends only on the base
//    seed and its index, never on thread count or completion order (the
//    same order-independence contract as core/fault_model);
//  * ordered result collection — run() returns results[i] for points[i]
//    regardless of which worker finished first;
//  * progress/cancellation hooks — a serialized progress callback and a
//    cooperative cancel() / cancel-predicate pair;
//  * exception capture — a throwing point never kills the process; all
//    failures are collected and rethrown after the sweep as one SweepError
//    listing each failed point index and message.
//
// The engine parallelizes *across* points only.  Everything below it —
// Netlist, Simulator, MnaSystem — stays single-threaded per simulation and
// must not be shared between concurrently running points.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "sim/thread_pool.h"

namespace fefet::sim {

/// Per-point execution context handed to the sweep function.
struct SweepContext {
  std::size_t index = 0;     ///< position of the point in the input vector
  std::uint64_t seed = 0;    ///< pointSeed(baseSeed, index)
  int thread = 0;            ///< worker slot running this point
};

struct SweepOptions {
  /// Worker count; 0 means defaultThreadCount() (FEFET_THREADS env or
  /// hardware concurrency).  The pool never exceeds the point count.
  int threads = 0;
  /// Base seed for the deterministic per-point seed derivation.
  std::uint64_t baseSeed = 1;
  /// Called after every completed point with (done, total).  Serialized:
  /// never invoked concurrently; may be slow without corrupting anything.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Polled before each point starts; returning true cancels the sweep
  /// (equivalent to calling cancel()).
  std::function<bool()> cancel;
};

/// One captured worker failure.
struct PointFailure {
  std::size_t index = 0;
  std::string message;
};

/// Thrown after a sweep in which one or more points threw.  The remaining
/// points still ran to completion; failures() lists every casualty.
class SweepError : public Error {
 public:
  SweepError(const std::string& what, std::vector<PointFailure> failures)
      : Error(what), failures_(std::move(failures)) {}
  const std::vector<PointFailure>& failures() const { return failures_; }

 private:
  std::vector<PointFailure> failures_;
};

/// Thrown when a sweep was cancelled before completing every point.
class SweepCancelled : public Error {
 public:
  SweepCancelled(const std::string& what, std::size_t completed)
      : Error(what), completed_(completed) {}
  /// Points that finished before the cancellation took effect.
  std::size_t completed() const { return completed_; }

 private:
  std::size_t completed_ = 0;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {})
      : options_(std::move(options)) {}

  /// Deterministic per-point seed: a splitmix64 hash of the base seed and
  /// the point index.  Pure function — identical for every thread count.
  static std::uint64_t pointSeed(std::uint64_t baseSeed, std::size_t index);

  /// Cooperative cancellation; takes effect before the next point starts.
  void cancel() { cancelRequested_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancelRequested_.load(std::memory_order_relaxed);
  }

  int threadCount() const;

  /// Run fn(point, context) for every point, in parallel, returning the
  /// results in input order.  fn is invoked concurrently from several
  /// threads and must be safe to call that way (independent points must
  /// not share mutable state).  Throws SweepError if any point threw,
  /// SweepCancelled if the sweep was cancelled first.
  template <typename Point, typename Fn>
  auto run(const std::vector<Point>& points, Fn&& fn)
      -> std::vector<std::decay_t<
          std::invoke_result_t<Fn&, const Point&, const SweepContext&>>> {
    using Result = std::decay_t<
        std::invoke_result_t<Fn&, const Point&, const SweepContext&>>;
    const std::size_t total = points.size();
    beginRun();
    std::vector<std::optional<Result>> slots(total);
    if (total > 0) {
      const int threads =
          static_cast<int>(std::min<std::size_t>(
              static_cast<std::size_t>(threadCount()), total));
      std::atomic<std::size_t> next{0};
      ThreadPool pool(threads);
      for (int t = 0; t < threads; ++t) {
        pool.submit([this, t, total, &next, &slots, &points, &fn] {
          Log::setThreadPrefix("sweep[" + std::to_string(t) + "] ");
          for (;;) {
            if (shouldStop()) break;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total) break;
            const SweepContext ctx{i, pointSeed(options_.baseSeed, i), t};
            try {
              slots[i].emplace(fn(points[i], ctx));
            } catch (const std::exception& e) {
              recordFailure(i, e.what());
            } catch (...) {
              recordFailure(i, "non-standard exception");
            }
            notePointDone(total);
          }
          Log::setThreadPrefix("");
        });
      }
      pool.wait();
    }
    finishRun(total);  // throws SweepError / SweepCancelled when warranted
    std::vector<Result> results;
    results.reserve(total);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

 private:
  void beginRun();
  bool shouldStop();
  void recordFailure(std::size_t index, const std::string& message);
  void notePointDone(std::size_t total);
  void finishRun(std::size_t total);

  SweepOptions options_;
  std::atomic<bool> cancelRequested_{false};
  std::mutex mutex_;                    ///< guards failures_/done_/progress
  std::vector<PointFailure> failures_;
  std::size_t done_ = 0;
};

}  // namespace fefet::sim
