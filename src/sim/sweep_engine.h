// sweep_engine.h — parallel, crash-safe execution of independent
// simulation points.
//
// Monte Carlo variability samples, design-space grid points, per-seed
// fault-resilience trials and retention/endurance sweeps all share one
// shape: N independent points, each running a self-contained (and
// internally single-threaded) simulation.  SweepEngine fans those points
// across a fixed-size ThreadPool with
//
//  * deterministic per-point seeding — pointSeed(baseSeed, index) is a
//    splitmix64 hash, so a point's random stream depends only on the base
//    seed and its index, never on thread count or completion order (the
//    same order-independence contract as core/fault_model);
//  * ordered result collection — run() returns results[i] for points[i]
//    regardless of which worker finished first;
//  * progress/cancellation hooks — a serialized progress callback and a
//    cooperative cancel() / cancel-predicate pair;
//  * exception capture — a throwing point never kills the process; under
//    the default kThrow policy the failures are rethrown after the sweep
//    as one SweepError, under kCollectAndContinue the sweep returns
//    partial results plus a per-point SweepOutcome record;
//  * wall-clock budgets — SweepOptions::deadline bounds the whole sweep
//    and every point receives a child Deadline in its SweepContext;
//    points exceeding softPointTimeoutSeconds are flagged as stragglers,
//    points exceeding hardPointTimeoutSeconds are cancelled through their
//    child deadline (a watchdog thread polls when threads > 1; on one
//    thread the progress path doubles as the monitor);
//  * crash-safe journaling — with SweepOptions::journal.path set (and a
//    SweepCodec to serialize results), every completed point is appended
//    to a checksummed JSONL journal (see sim/sweep_journal.h) and a
//    killed sweep resumes by replaying completed points bit-identically
//    instead of re-simulating them.
//
// The engine parallelizes *across* points only.  Everything below it —
// Netlist, Simulator, MnaSystem — stays single-threaded per simulation and
// must not be shared between concurrently running points.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/error.h"
#include "common/log.h"
#include "obs/trace.h"
#include "sim/sweep_journal.h"
#include "sim/thread_pool.h"

namespace fefet::sim {

/// Per-point execution context handed to the sweep function.
struct SweepContext {
  std::size_t index = 0;     ///< position of the point in the input vector
  std::uint64_t seed = 0;    ///< pointSeed(baseSeed, index)
  int thread = 0;            ///< worker slot running this point
  /// This point's share of the sweep budget: a child of
  /// SweepOptions::deadline clipped to hardPointTimeoutSeconds, carrying
  /// the watchdog's cancel token.  Long-running points should thread it
  /// into their TransientOptions (or poll expired()) so the watchdog can
  /// actually stop them.
  Deadline deadline;
};

/// What run() does when one or more points fail.
enum class SweepFailurePolicy {
  kThrow,               ///< finish every point, then throw SweepError
  kCollectAndContinue,  ///< never throw; report per-point SweepOutcomes
};

/// Terminal state of one sweep point.
enum class SweepPointStatus : std::uint8_t {
  kNotRun,       ///< never attempted (cancelled / budget exhausted)
  kOk,           ///< simulated to completion this run
  kFailed,       ///< the point function threw
  kTimedOut,     ///< aborted via its child deadline (watchdog / budget)
  kFromJournal,  ///< replayed from the resume journal, not re-simulated
};

const char* toString(SweepPointStatus status);

/// Per-point outcome record (parallel to the results vector).
struct SweepOutcome {
  SweepPointStatus status = SweepPointStatus::kNotRun;
  std::string message;   ///< failure/timeout diagnostic; empty when ok
  double seconds = 0.0;  ///< wall time spent simulating (0 for replays)
};

/// Outcome tally of one run().
struct SweepSummary {
  std::size_t ok = 0;           ///< simulated successfully this run
  std::size_t failed = 0;
  std::size_t timedOut = 0;
  std::size_t fromJournal = 0;  ///< replayed from the journal
  std::size_t notRun = 0;
  /// Points with a valid result: ok + fromJournal.
  std::size_t completed() const { return ok + fromJournal; }
};

SweepSummary summarize(const std::vector<SweepOutcome>& outcomes);

/// Result serializer for journaled sweeps: encode must be the exact
/// inverse of decode (replayed points are required to be bit-identical to
/// re-simulated ones).
template <typename Result>
struct SweepCodec {
  std::function<std::string(const Result&)> encode;
  std::function<Result(const std::string&)> decode;
};

struct SweepOptions {
  /// Worker count; 0 means defaultThreadCount() (FEFET_THREADS env or
  /// hardware concurrency).  The pool never exceeds the point count.
  int threads = 0;
  /// Base seed for the deterministic per-point seed derivation.
  std::uint64_t baseSeed = 1;
  /// Called after every simulated point with (done, total); `done` starts
  /// above zero on a resumed run (journal replays count as done).
  /// Serialized: never invoked concurrently; may be slow without
  /// corrupting anything.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Polled before each point starts; returning true cancels the sweep
  /// (equivalent to calling cancel()).
  std::function<bool()> cancel;
  /// Wall-clock budget for the whole sweep.  When it expires, no new
  /// points start: kThrow raises DeadlineExceeded, kCollectAndContinue
  /// returns partial results with the rest marked kNotRun.
  Deadline deadline;
  /// A point running longer than this is logged as a straggler (with its
  /// index and elapsed time); 0 disables the check.
  double softPointTimeoutSeconds = 0.0;
  /// A point running longer than this is cancelled through its child
  /// deadline; 0 disables.  Points that never poll their deadline cannot
  /// be interrupted mid-flight — they are reported late, on completion.
  double hardPointTimeoutSeconds = 0.0;
  SweepFailurePolicy failurePolicy = SweepFailurePolicy::kThrow;
  /// Crash-safe checkpoint/resume (requires the codec overload of run()).
  SweepJournalOptions journal;
};

/// One captured worker failure.
struct PointFailure {
  std::size_t index = 0;
  std::string message;
};

/// Thrown after a sweep in which one or more points threw.  The remaining
/// points still ran to completion; failures() lists every casualty.
class SweepError : public Error {
 public:
  SweepError(const std::string& what, std::vector<PointFailure> failures)
      : Error(what), failures_(std::move(failures)) {}
  const std::vector<PointFailure>& failures() const { return failures_; }

 private:
  std::vector<PointFailure> failures_;
};

/// Thrown when a sweep was cancelled before attempting every point.
/// completed() counts points with a valid result (simulated or replayed);
/// failed() counts points that threw before the cancellation took effect,
/// so "cancelled after K good points" and "failed at point K" are
/// distinguishable.
class SweepCancelled : public Error {
 public:
  SweepCancelled(const std::string& what, std::size_t completed,
                 std::size_t failed = 0)
      : Error(what), completed_(completed), failed_(failed) {}
  /// Points that produced a valid result before the cancellation.
  std::size_t completed() const { return completed_; }
  /// Points that failed before the cancellation.
  std::size_t failed() const { return failed_; }

 private:
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {})
      : options_(std::move(options)) {}

  /// Deterministic per-point seed: a splitmix64 hash of the base seed and
  /// the point index.  Pure function — identical for every thread count.
  static std::uint64_t pointSeed(std::uint64_t baseSeed, std::size_t index);

  /// Cooperative cancellation; takes effect before the next point starts.
  void cancel() { cancelRequested_.store(true, std::memory_order_relaxed); }
  bool cancelRequested() const {
    return cancelRequested_.load(std::memory_order_relaxed);
  }

  int threadCount() const;

  /// Per-point outcomes of the most recent run() (valid after run()
  /// returns or throws).  outcomes()[i] corresponds to points[i].
  const std::vector<SweepOutcome>& outcomes() const { return outcomes_; }
  /// Tally of outcomes().
  SweepSummary summary() const { return summarize(outcomes_); }

  /// Run fn(point, context) for every point, in parallel, returning the
  /// results in input order.  fn is invoked concurrently from several
  /// threads and must be safe to call that way (independent points must
  /// not share mutable state).  Under kThrow (default) throws SweepError
  /// if any point threw, SweepCancelled if the sweep was cancelled first
  /// and DeadlineExceeded if the sweep budget expired; under
  /// kCollectAndContinue never throws and leaves failed points
  /// default-constructed in the result vector (see outcomes()).
  template <typename Point, typename Fn>
  auto run(const std::vector<Point>& points, Fn&& fn)
      -> std::vector<std::decay_t<
          std::invoke_result_t<Fn&, const Point&, const SweepContext&>>> {
    using Result = std::decay_t<
        std::invoke_result_t<Fn&, const Point&, const SweepContext&>>;
    FEFET_REQUIRE(options_.journal.path.empty(),
                  "a journaled sweep needs the codec overload of run()");
    return runImpl(points, fn, static_cast<SweepCodec<Result>*>(nullptr));
  }

  /// run() with crash-safe journaling: every completed point is appended
  /// to SweepOptions::journal.path via codec.encode, and (with
  /// journal.resume) completed points of a previous run are replayed via
  /// codec.decode instead of re-simulated.  codec.decode(codec.encode(r))
  /// must reproduce r exactly for the resume bit-identity guarantee.
  template <typename Point, typename Fn>
  auto run(const std::vector<Point>& points, Fn&& fn,
           SweepCodec<std::decay_t<std::invoke_result_t<
               Fn&, const Point&, const SweepContext&>>> codec)
      -> std::vector<std::decay_t<
          std::invoke_result_t<Fn&, const Point&, const SweepContext&>>> {
    return runImpl(points, fn, &codec);
  }

  /// Batched variant of run(): points are grouped into contiguous batches
  /// of up to `batchSize` and
  ///   batchFn(std::span<const Point>, std::span<const SweepContext>)
  /// is invoked once per batch, returning one result per point (same
  /// order).  Useful when one evaluation pass amortizes across points —
  /// e.g. multi-RHS sweep solves assembling K operating points through a
  /// single factor-once blocked-substitution solve (linalg::solveMulti).
  ///
  /// Semantics vs run():
  ///  * per-point seeds are unchanged — contexts[k].seed is still
  ///    pointSeed(baseSeed, index), so results are independent of the
  ///    batch size;
  ///  * every context in a batch shares one child deadline (the batch is
  ///    one unit of cancellable work);
  ///  * failure granularity is the batch: a throwing batchFn marks every
  ///    point of that batch failed/timed-out;
  ///  * per-point outcome seconds are the batch wall time divided evenly;
  ///  * journaling is not supported (FEFET_REQUIREs an unset journal
  ///    path) — batched sweeps are for throughput, not crash-safety.
  template <typename Point, typename Fn>
  auto runBatched(const std::vector<Point>& points, std::size_t batchSize,
                  Fn&& fn)
      -> std::decay_t<std::invoke_result_t<Fn&, std::span<const Point>,
                                           std::span<const SweepContext>>> {
    using Batch = std::decay_t<std::invoke_result_t<
        Fn&, std::span<const Point>, std::span<const SweepContext>>>;
    using Result = typename Batch::value_type;
    static_assert(std::is_default_constructible_v<Result>,
                  "sweep results must be default-constructible (failed "
                  "points yield a default value under kCollectAndContinue)");
    FEFET_REQUIRE(batchSize > 0, "runBatched: batch size must be positive");
    FEFET_REQUIRE(options_.journal.path.empty(),
                  "runBatched does not support journaling; use run()");
    const std::size_t total = points.size();
    beginRun(total);
    std::vector<std::optional<Result>> slots(total);
    const std::size_t batches = (total + batchSize - 1) / batchSize;
    if (total > 0) {
      const int threads = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threadCount()), batches));
      startWatchdog(threads);
      std::atomic<std::size_t> nextBatch{0};
      {
        ThreadPool pool(threads);
        for (int t = 0; t < threads; ++t) {
          pool.submit([this, t, total, batchSize, batches, &nextBatch, &slots,
                       &points, &fn] {
            const ScopedThreadPrefix prefixGuard("sweep[" +
                                                 std::to_string(t) + "] ");
            std::vector<SweepContext> contexts;
            for (;;) {
              if (shouldStop()) break;
              const std::size_t bi =
                  nextBatch.fetch_add(1, std::memory_order_relaxed);
              if (bi >= batches) break;
              const std::size_t begin = bi * batchSize;
              const std::size_t count = std::min(batchSize, total - begin);
              const Deadline batchDeadline = beginPoint(begin, t);
              contexts.clear();
              contexts.reserve(count);
              for (std::size_t k = 0; k < count; ++k) {
                contexts.push_back(SweepContext{
                    begin + k, pointSeed(options_.baseSeed, begin + k), t,
                    batchDeadline});
              }
              const obs::Span batchSpan("sweep.batch",
                                        static_cast<std::uint64_t>(bi));
              const auto started = std::chrono::steady_clock::now();
              const auto elapsed = [&] {
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                    .count();
              };
              try {
                Batch results =
                    fn(std::span<const Point>(points.data() + begin, count),
                       std::span<const SweepContext>(contexts.data(), count));
                FEFET_REQUIRE(results.size() == count,
                              "runBatched: batch function returned " +
                                  std::to_string(results.size()) +
                                  " results for " + std::to_string(count) +
                                  " points");
                const double perPoint =
                    elapsed() / static_cast<double>(count);
                for (std::size_t k = 0; k < count; ++k) {
                  slots[begin + k].emplace(std::move(results[k]));
                  finishPointOk(begin + k, t, perPoint, nullptr);
                }
              } catch (const DeadlineExceeded& e) {
                const double perPoint =
                    elapsed() / static_cast<double>(count);
                for (std::size_t k = 0; k < count; ++k) {
                  finishPointFailed(begin + k, t, perPoint, e.what(),
                                    /*timedOut=*/true);
                }
              } catch (const std::exception& e) {
                const double perPoint =
                    elapsed() / static_cast<double>(count);
                for (std::size_t k = 0; k < count; ++k) {
                  finishPointFailed(begin + k, t, perPoint, e.what(),
                                    /*timedOut=*/false);
                }
              } catch (...) {
                const double perPoint =
                    elapsed() / static_cast<double>(count);
                for (std::size_t k = 0; k < count; ++k) {
                  finishPointFailed(begin + k, t, perPoint,
                                    "non-standard exception",
                                    /*timedOut=*/false);
                }
              }
            }
          });
        }
        pool.wait();
      }
      stopWatchdog();
    }
    finishRun(total);  // may throw under kThrow
    Batch results;
    results.reserve(total);
    for (auto& slot : slots) {
      results.push_back(slot ? std::move(*slot) : Result{});
    }
    return results;
  }

 private:
  template <typename Point, typename Fn, typename Result>
  std::vector<Result> runImpl(const std::vector<Point>& points, Fn& fn,
                              SweepCodec<Result>* codec) {
    static_assert(std::is_default_constructible_v<Result>,
                  "sweep results must be default-constructible (failed "
                  "points yield a default value under kCollectAndContinue)");
    const std::size_t total = points.size();
    beginRun(total);
    std::vector<std::optional<Result>> slots(total);
    std::vector<char> replayed(total, 0);

    const bool journaling = codec != nullptr && !options_.journal.path.empty();
    if (journaling) {
      FEFET_REQUIRE(codec->encode && codec->decode,
                    "sweep journal codec must provide encode and decode");
      SweepJournalLoad load;
      if (options_.journal.resume) {
        load = loadJournal(total);
        bool decodeOk = true;
        std::vector<std::pair<std::size_t, Result>> restored;
        restored.reserve(load.records.size());
        for (const auto& record : load.records) {
          try {
            restored.emplace_back(record.index, codec->decode(record.payload));
          } catch (const std::exception& e) {
            FEFET_WARN() << "sweep journal: cannot decode point "
                         << record.index << " (" << e.what()
                         << "); discarding the journal and starting fresh";
            decodeOk = false;
            break;
          }
        }
        if (!decodeOk) load = SweepJournalLoad{};
        if (load.usable) {
          for (auto& [index, result] : restored) {
            slots[index].emplace(std::move(result));
            replayed[index] = 1;
            markReplayed(index);
          }
        }
      }
      openJournal(total, load.usable ? &load : nullptr);
    }

    if (total > 0) {
      const int threads = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threadCount()), total));
      startWatchdog(threads);
      std::atomic<std::size_t> next{0};
      {
        ThreadPool pool(threads);
        for (int t = 0; t < threads; ++t) {
          pool.submit([this, t, total, &next, &slots, &replayed, &points, &fn,
                       codec] {
            // RAII prefix: pooled threads outlive this task, so the
            // prefix must be restored even if a point handler throws —
            // otherwise a stale "sweep[N] " leaks into the thread's next
            // job (see ScopedThreadPrefix in common/log.h).
            const ScopedThreadPrefix prefixGuard("sweep[" +
                                                 std::to_string(t) + "] ");
            for (;;) {
              if (shouldStop()) break;
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= total) break;
              if (replayed[i]) continue;
              const Deadline pointDeadline = beginPoint(i, t);
              const SweepContext ctx{i, pointSeed(options_.baseSeed, i), t,
                                     pointDeadline};
              const obs::Span pointSpan("sweep.point",
                                        static_cast<std::uint64_t>(i));
              const auto started = std::chrono::steady_clock::now();
              const auto elapsed = [&] {
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                    .count();
              };
              try {
                Result result = fn(points[i], ctx);
                const std::string payload =
                    codec != nullptr && !options_.journal.path.empty()
                        ? codec->encode(result)
                        : std::string();
                slots[i].emplace(std::move(result));
                finishPointOk(i, t, elapsed(),
                              codec != nullptr ? &payload : nullptr);
              } catch (const DeadlineExceeded& e) {
                finishPointFailed(i, t, elapsed(), e.what(),
                                  /*timedOut=*/true);
              } catch (const std::exception& e) {
                finishPointFailed(i, t, elapsed(), e.what(),
                                  /*timedOut=*/false);
              } catch (...) {
                finishPointFailed(i, t, elapsed(), "non-standard exception",
                                  /*timedOut=*/false);
              }
            }
          });
        }
        pool.wait();
      }
      stopWatchdog();
    }
    finishRun(total);  // may throw under kThrow; always closes the journal
    std::vector<Result> results;
    results.reserve(total);
    for (auto& slot : slots) {
      results.push_back(slot ? std::move(*slot) : Result{});
    }
    return results;
  }

  void beginRun(std::size_t total);
  SweepJournalLoad loadJournal(std::size_t total);
  void openJournal(std::size_t total, const SweepJournalLoad* resumeFrom);
  void markReplayed(std::size_t index);
  bool shouldStop();
  Deadline beginPoint(std::size_t index, int worker);
  void finishPointOk(std::size_t index, int worker, double seconds,
                     const std::string* payload);
  void finishPointFailed(std::size_t index, int worker, double seconds,
                         const std::string& message, bool timedOut);
  void checkStragglersLocked();
  void startWatchdog(int threads);
  void stopWatchdog();
  void finishRun(std::size_t total);

  /// One in-flight point, visible to the straggler watchdog.
  struct RunningPoint {
    bool active = false;
    std::size_t index = 0;
    std::chrono::steady_clock::time_point start{};
    CancelToken token;
    bool softFlagged = false;
    bool hardCancelled = false;
  };

  SweepOptions options_;
  std::atomic<bool> cancelRequested_{false};
  std::mutex mutex_;  ///< guards everything below + progress/journal writes
  std::vector<PointFailure> failures_;
  std::vector<SweepOutcome> outcomes_;
  std::vector<RunningPoint> running_;
  std::size_t done_ = 0;        ///< points with a terminal outcome
  std::size_t okCount_ = 0;     ///< ok + fromJournal
  std::size_t failedCount_ = 0;
  std::size_t timedOutCount_ = 0;
  bool sweepDeadlineExpired_ = false;
  std::unique_ptr<SweepJournal> journal_;

  std::thread watchdog_;
  std::condition_variable watchdogCv_;
  bool watchdogStop_ = false;
};

}  // namespace fefet::sim
