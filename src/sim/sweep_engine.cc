#include "sim/sweep_engine.h"

#include <sstream>

#include "common/stats.h"

namespace fefet::sim {

std::uint64_t SweepEngine::pointSeed(std::uint64_t baseSeed,
                                     std::size_t index) {
  // splitmix64(baseSeed) spreads correlated base seeds apart; adding the
  // raw index then finalizing again is exactly the splitmix64 sequence
  // construction, so neighboring indices land in uncorrelated streams.
  return stats::splitmix64(stats::splitmix64(baseSeed) +
                           static_cast<std::uint64_t>(index));
}

int SweepEngine::threadCount() const {
  return options_.threads >= 1 ? options_.threads : defaultThreadCount();
}

void SweepEngine::beginRun() {
  cancelRequested_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> guard(mutex_);
  failures_.clear();
  done_ = 0;
}

bool SweepEngine::shouldStop() {
  if (cancelRequested()) return true;
  if (options_.cancel) {
    // The predicate may be stateful; poll it under the engine mutex so it
    // is never invoked concurrently (same contract as progress).
    const std::lock_guard<std::mutex> guard(mutex_);
    if (options_.cancel()) {
      cancelRequested_.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void SweepEngine::recordFailure(std::size_t index,
                                const std::string& message) {
  const std::lock_guard<std::mutex> guard(mutex_);
  failures_.push_back({index, message});
}

void SweepEngine::notePointDone(std::size_t total) {
  const std::lock_guard<std::mutex> guard(mutex_);
  ++done_;
  if (options_.progress) options_.progress(done_, total);
}

void SweepEngine::finishRun(std::size_t total) {
  std::vector<PointFailure> failures;
  std::size_t done = 0;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    failures = failures_;
    done = done_;
  }
  // Failures were recorded in completion order; report them by point index
  // so the diagnostic is deterministic across thread schedules.
  std::sort(failures.begin(), failures.end(),
            [](const PointFailure& a, const PointFailure& b) {
              return a.index < b.index;
            });
  if (!failures.empty()) {
    std::ostringstream os;
    os << "sweep failed at " << failures.size() << " of " << total
       << " points:";
    const std::size_t shown = std::min<std::size_t>(failures.size(), 4);
    for (std::size_t i = 0; i < shown; ++i) {
      os << " [point " << failures[i].index << ": " << failures[i].message
         << "]";
    }
    if (failures.size() > shown) {
      os << " (+" << failures.size() - shown << " more)";
    }
    throw SweepError(os.str(), std::move(failures));
  }
  if (done < total) {
    std::ostringstream os;
    os << "sweep cancelled after " << done << " of " << total << " points";
    throw SweepCancelled(os.str(), done);
  }
}

}  // namespace fefet::sim
