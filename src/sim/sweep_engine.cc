#include "sim/sweep_engine.h"

#include <limits>
#include <sstream>

#include "common/stats.h"
#include "obs/metrics.h"

namespace fefet::sim {

namespace {

/// Sweep-level health telemetry under fefet.sweep.*.  The per-point wall
/// time histogram feeds capacity planning (where did the sweep budget
/// go); the replay/watchdog counters quantify how much work resume and
/// straggler cancellation actually saved or reclaimed.
struct SweepTelemetry {
  obs::Counter& pointsOk;
  obs::Counter& pointsFailed;
  obs::Counter& pointsTimedOut;
  obs::Counter& journalReplays;
  obs::Counter& stragglersFlagged;
  obs::Counter& watchdogCancels;
  obs::Histogram& pointSeconds;
};

SweepTelemetry& sweepTelemetry() {
  static constexpr double kSecondsEdges[] = {0.001, 0.003, 0.01, 0.03, 0.1,
                                             0.3,   1.0,   3.0,  10.0, 30.0,
                                             100.0, 300.0};
  static SweepTelemetry t{
      obs::Metrics::counter("fefet.sweep.points_ok"),
      obs::Metrics::counter("fefet.sweep.points_failed"),
      obs::Metrics::counter("fefet.sweep.points_timed_out"),
      obs::Metrics::counter("fefet.sweep.journal_replays"),
      obs::Metrics::counter("fefet.sweep.stragglers_flagged"),
      obs::Metrics::counter("fefet.sweep.watchdog_cancels"),
      obs::Metrics::histogram("fefet.sweep.point_seconds", kSecondsEdges)};
  return t;
}

}  // namespace

const char* toString(SweepPointStatus status) {
  switch (status) {
    case SweepPointStatus::kNotRun: return "not-run";
    case SweepPointStatus::kOk: return "ok";
    case SweepPointStatus::kFailed: return "failed";
    case SweepPointStatus::kTimedOut: return "timed-out";
    case SweepPointStatus::kFromJournal: return "from-journal";
  }
  return "unknown";
}

SweepSummary summarize(const std::vector<SweepOutcome>& outcomes) {
  SweepSummary s;
  for (const auto& outcome : outcomes) {
    switch (outcome.status) {
      case SweepPointStatus::kNotRun: ++s.notRun; break;
      case SweepPointStatus::kOk: ++s.ok; break;
      case SweepPointStatus::kFailed: ++s.failed; break;
      case SweepPointStatus::kTimedOut: ++s.timedOut; break;
      case SweepPointStatus::kFromJournal: ++s.fromJournal; break;
    }
  }
  return s;
}

std::uint64_t SweepEngine::pointSeed(std::uint64_t baseSeed,
                                     std::size_t index) {
  // splitmix64(baseSeed) spreads correlated base seeds apart; adding the
  // raw index then finalizing again is exactly the splitmix64 sequence
  // construction, so neighboring indices land in uncorrelated streams.
  return stats::splitmix64(stats::splitmix64(baseSeed) +
                           static_cast<std::uint64_t>(index));
}

int SweepEngine::threadCount() const {
  return options_.threads >= 1 ? options_.threads : defaultThreadCount();
}

void SweepEngine::beginRun(std::size_t total) {
  cancelRequested_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> guard(mutex_);
  failures_.clear();
  outcomes_.assign(total, SweepOutcome{});
  running_.clear();
  done_ = 0;
  okCount_ = 0;
  failedCount_ = 0;
  timedOutCount_ = 0;
  sweepDeadlineExpired_ = false;
  journal_.reset();
}

SweepJournalLoad SweepEngine::loadJournal(std::size_t total) {
  SweepJournalLoad load =
      SweepJournal::load(options_.journal.path, total, options_.baseSeed,
                         options_.journal.configDigest);
  if (!load.warning.empty()) {
    FEFET_WARN() << "sweep journal: " << load.warning;
  }
  if (load.usable && !load.records.empty()) {
    FEFET_INFO() << "sweep journal: resuming " << load.records.size()
                 << " of " << total << " points from "
                 << options_.journal.path;
  }
  return load;
}

void SweepEngine::openJournal(std::size_t total,
                              const SweepJournalLoad* resumeFrom) {
  const std::lock_guard<std::mutex> guard(mutex_);
  journal_ = std::make_unique<SweepJournal>(
      options_.journal.path, total, options_.baseSeed,
      options_.journal.configDigest, resumeFrom);
}

void SweepEngine::markReplayed(std::size_t index) {
  const std::lock_guard<std::mutex> guard(mutex_);
  outcomes_[index].status = SweepPointStatus::kFromJournal;
  ++done_;
  ++okCount_;
  if (obs::Metrics::enabled()) sweepTelemetry().journalReplays.increment();
}

bool SweepEngine::shouldStop() {
  if (cancelRequested()) return true;
  if (options_.deadline.expired()) {
    const std::lock_guard<std::mutex> guard(mutex_);
    sweepDeadlineExpired_ = true;
    return true;
  }
  if (options_.cancel) {
    // The predicate may be stateful; poll it under the engine mutex so it
    // is never invoked concurrently (same contract as progress).
    const std::lock_guard<std::mutex> guard(mutex_);
    if (options_.cancel()) {
      cancelRequested_.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

Deadline SweepEngine::beginPoint(std::size_t index, int worker) {
  const std::lock_guard<std::mutex> guard(mutex_);
  if (running_.size() <= static_cast<std::size_t>(worker)) {
    running_.resize(static_cast<std::size_t>(worker) + 1);
  }
  RunningPoint& slot = running_[static_cast<std::size_t>(worker)];
  slot = RunningPoint{};
  slot.active = true;
  slot.index = index;
  slot.start = std::chrono::steady_clock::now();
  const double hard = options_.hardPointTimeoutSeconds > 0.0
                          ? options_.hardPointTimeoutSeconds
                          : std::numeric_limits<double>::infinity();
  return options_.deadline.child(hard).withToken(slot.token);
}

void SweepEngine::finishPointOk(std::size_t index, int worker, double seconds,
                                const std::string* payload) {
  const std::lock_guard<std::mutex> guard(mutex_);
  running_[static_cast<std::size_t>(worker)].active = false;
  outcomes_[index].status = SweepPointStatus::kOk;
  outcomes_[index].seconds = seconds;
  ++done_;
  ++okCount_;
  if (obs::Metrics::enabled()) {
    SweepTelemetry& t = sweepTelemetry();
    t.pointsOk.increment();
    t.pointSeconds.observe(seconds);
  }
  if (journal_ && payload != nullptr) journal_->appendPoint(index, *payload);
  if (options_.progress) options_.progress(done_, outcomes_.size());
  checkStragglersLocked();
}

void SweepEngine::finishPointFailed(std::size_t index, int worker,
                                    double seconds, const std::string& message,
                                    bool timedOut) {
  const std::lock_guard<std::mutex> guard(mutex_);
  running_[static_cast<std::size_t>(worker)].active = false;
  outcomes_[index].status =
      timedOut ? SweepPointStatus::kTimedOut : SweepPointStatus::kFailed;
  outcomes_[index].message = message;
  outcomes_[index].seconds = seconds;
  ++done_;
  if (timedOut) ++timedOutCount_; else ++failedCount_;
  if (obs::Metrics::enabled()) {
    SweepTelemetry& t = sweepTelemetry();
    if (timedOut) t.pointsTimedOut.increment(); else t.pointsFailed.increment();
    t.pointSeconds.observe(seconds);
  }
  failures_.push_back({index, message});
  if (options_.progress) options_.progress(done_, outcomes_.size());
  checkStragglersLocked();
}

void SweepEngine::checkStragglersLocked() {
  const double soft = options_.softPointTimeoutSeconds;
  const double hard = options_.hardPointTimeoutSeconds;
  if (soft <= 0.0 && hard <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& slot : running_) {
    if (!slot.active) continue;
    const double elapsed =
        std::chrono::duration<double>(now - slot.start).count();
    if (soft > 0.0 && !slot.softFlagged && elapsed > soft) {
      slot.softFlagged = true;
      if (obs::Metrics::enabled()) {
        sweepTelemetry().stragglersFlagged.increment();
      }
      FEFET_WARN() << "sweep straggler: point " << slot.index
                   << " still running after " << elapsed << " s (soft limit "
                   << soft << " s)";
    }
    if (hard > 0.0 && !slot.hardCancelled && elapsed > hard) {
      slot.hardCancelled = true;
      slot.token.requestCancel();
      if (obs::Metrics::enabled()) {
        sweepTelemetry().watchdogCancels.increment();
      }
      FEFET_WARN() << "sweep watchdog: cancelling point " << slot.index
                   << " after " << elapsed << " s (hard limit " << hard
                   << " s)";
    }
  }
}

void SweepEngine::startWatchdog(int threads) {
  const double soft = options_.softPointTimeoutSeconds;
  const double hard = options_.hardPointTimeoutSeconds;
  if (threads <= 1 || (soft <= 0.0 && hard <= 0.0)) return;
  // Poll at a quarter of the tightest limit, clamped to [10, 250] ms: fine
  // enough to catch stragglers promptly, coarse enough to stay invisible
  // in profiles.
  double tightest = std::numeric_limits<double>::infinity();
  if (soft > 0.0) tightest = std::min(tightest, soft);
  if (hard > 0.0) tightest = std::min(tightest, hard);
  const auto interval = std::chrono::milliseconds(static_cast<long>(
      std::clamp(tightest / 4.0 * 1000.0, 10.0, 250.0)));
  watchdogStop_ = false;
  watchdog_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!watchdogStop_) {
      watchdogCv_.wait_for(lock, interval);
      if (watchdogStop_) break;
      checkStragglersLocked();
    }
  });
}

void SweepEngine::stopWatchdog() {
  if (!watchdog_.joinable()) return;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    watchdogStop_ = true;
  }
  watchdogCv_.notify_all();
  watchdog_.join();
}

void SweepEngine::finishRun(std::size_t total) {
  std::vector<PointFailure> failures;
  std::size_t done = 0, ok = 0, failed = 0;
  bool deadlineExpired = false;
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    journal_.reset();  // close + release the journal before any throw
    failures = failures_;
    done = done_;
    ok = okCount_;
    failed = failedCount_ + timedOutCount_;
    deadlineExpired = sweepDeadlineExpired_;
  }
  if (options_.failurePolicy == SweepFailurePolicy::kCollectAndContinue) {
    return;  // outcomes() carries the full story; partial results returned
  }
  // Failures were recorded in completion order; report them by point index
  // so the diagnostic is deterministic across thread schedules.
  std::sort(failures.begin(), failures.end(),
            [](const PointFailure& a, const PointFailure& b) {
              return a.index < b.index;
            });
  if (done < total) {
    // The sweep stopped early: budget exhaustion and cancellation trump
    // individual failures (the caller asked the run to stop).
    std::ostringstream os;
    if (deadlineExpired) {
      os << "sweep exceeded its wall-clock budget after " << done << " of "
         << total << " points (" << ok << " ok, " << failed << " failed)";
      throw DeadlineExceeded(os.str());
    }
    os << "sweep cancelled after " << done << " of " << total << " points ("
       << ok << " ok, " << failed << " failed)";
    throw SweepCancelled(os.str(), ok, failed);
  }
  if (!failures.empty()) {
    std::ostringstream os;
    os << "sweep failed at " << failures.size() << " of " << total
       << " points:";
    const std::size_t shown = std::min<std::size_t>(failures.size(), 4);
    for (std::size_t i = 0; i < shown; ++i) {
      os << " [point " << failures[i].index << ": " << failures[i].message
         << "]";
    }
    if (failures.size() > shown) {
      os << " (+" << failures.size() - shown << " more)";
    }
    throw SweepError(os.str(), std::move(failures));
  }
}

}  // namespace fefet::sim
