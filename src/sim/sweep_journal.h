// sweep_journal.h — crash-safe checkpoint journal for long sweeps.
//
// A sweep that runs for hours must survive a kill, an OOM or a power cut
// without discarding completed points.  The journal is the sweep-level
// sibling of nvp/CheckpointManager's double-banked backup: an append-only
// JSONL file where every line is an independently checksummed record,
//
//   {"crc":"<8 hex>","rec":{...}}
//
// with the CRC32 (IEEE 802.3) computed over the serialized `rec` body.
// The first record is a header binding the journal to one run shape —
// point count, base seed and a caller-supplied config digest — so a
// journal can never be replayed against a different sweep.  Each
// completed point appends one record carrying its caller-encoded result
// payload, flushed and fsync'd before the write returns (a record is
// either durable or absent, never half-trusted).
//
// Recovery rules (deliberately forgiving — a journal is an optimization,
// never a reason to crash):
//  * missing / zero-length / garbage file       -> fresh run, warning;
//  * header mismatch (shape or digest changed)  -> fresh run, warning;
//  * torn or corrupt tail record                -> truncate to the last
//    good record, keep the valid prefix, warning;
//  * duplicate index in the valid prefix        -> first wins, warning.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fefet::sim {

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the per-record
/// checksum.  crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Escape a string for embedding in a JSON string literal (adds no quotes).
std::string jsonEscape(std::string_view raw);

/// Journaling knobs carried inside sim::SweepOptions.
struct SweepJournalOptions {
  /// Journal file path; empty disables journaling.
  std::string path;
  /// Replay completed points from an existing journal at `path` instead of
  /// re-simulating them.  Without this flag an existing file is
  /// overwritten.
  bool resume = false;
  /// Caller-supplied digest of everything that shapes the per-point work
  /// (model parameters, sweep axes…).  A resumed journal must match it.
  std::uint64_t configDigest = 0;
};

/// One replayable point record.
struct SweepJournalRecord {
  std::size_t index = 0;
  std::string payload;  ///< caller-encoded result
};

/// Result of scanning an existing journal file.
struct SweepJournalLoad {
  /// Header present and matching the expected run shape; records are
  /// trustworthy and `validBytes` marks the append position.
  bool usable = false;
  /// Human-readable reason when not usable, or a non-fatal anomaly note
  /// (torn tail, duplicate record) when usable.  Empty = clean.
  std::string warning;
  std::vector<SweepJournalRecord> records;  ///< unique, CRC-verified
  std::uint64_t validBytes = 0;  ///< file offset after the last good record
};

class SweepJournal {
 public:
  /// Scan `path` and validate it against the expected run shape.  Never
  /// throws on bad content — every corruption mode degrades to
  /// `usable = false` (fresh run) or a truncated-tail prefix.
  static SweepJournalLoad load(const std::string& path,
                               std::size_t expectedPoints,
                               std::uint64_t baseSeed,
                               std::uint64_t configDigest);

  /// Open `path` for appending.  With a usable `resumeFrom`, the file is
  /// truncated to its validBytes (dropping any torn tail) and appended to;
  /// otherwise it is recreated with a fresh header record.  Throws
  /// SimulationError when the file cannot be opened/written.
  SweepJournal(const std::string& path, std::size_t points,
               std::uint64_t baseSeed, std::uint64_t configDigest,
               const SweepJournalLoad* resumeFrom = nullptr);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one completed-point record and fsync it.  Callers serialize
  /// (the sweep engine holds its progress lock while appending).
  void appendPoint(std::size_t index, std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  void appendLine(const std::string& body);

  std::string path_;
  int fd_ = -1;
};

}  // namespace fefet::sim
