// sweep_journal.h — crash-safe checkpoint journal for long sweeps.
//
// A sweep that runs for hours must survive a kill, an OOM or a power cut
// without discarding completed points.  The journal is the sweep-level
// sibling of nvp/CheckpointManager's double-banked backup: an append-only
// JSONL file where every line is an independently checksummed record,
//
//   {"crc":"<8 hex>","rec":{...}}
//
// with the CRC32 (IEEE 802.3) computed over the serialized `rec` body.
// The first record is a header binding the journal to one run shape —
// point count, base seed and a caller-supplied config digest — so a
// journal can never be replayed against a different sweep.  Each
// completed point appends one record carrying its caller-encoded result
// payload, flushed and fsync'd before the write returns (a record is
// either durable or absent, never half-trusted).
//
// Recovery rules (deliberately forgiving — a journal is an optimization,
// never a reason to crash):
//  * missing / zero-length / garbage file       -> fresh run, warning;
//  * header mismatch (shape or digest changed)  -> fresh run, warning;
//  * torn or corrupt tail record                -> truncate to the last
//    good record, keep the valid prefix, warning;
//  * duplicate index in the valid prefix        -> first wins, warning.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fefet::sim {

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the per-record
/// checksum.  crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Escape a string for embedding in a JSON string literal (adds no quotes).
std::string jsonEscape(std::string_view raw);

// ---- journal line primitives ------------------------------------------
// The CRC-framed line format is shared by every journal in sim/: the
// sweep checkpoint journal below and the shard lease journal
// (sim/shard_lease.h) both append renderJournalLine(body) records and
// recover with parseJournalLine, so one torn-tail/corruption policy
// covers the whole coordination substrate.

/// Frame `body` as one journal line: {"crc":"<8 hex>","rec":<body>}\n.
std::string renderJournalLine(const std::string& body);

/// Parse + CRC-verify one line (no trailing newline) into its rec body.
/// False on any damage: bad frame, bad hex, CRC mismatch.
bool parseJournalLine(const std::string& line, std::string* body);

/// Extract the unsigned integer following `"key":` in a record body.
bool parseJournalU64(const std::string& body, const char* key,
                     std::uint64_t* out);

/// Extract and unescape the string following `"key":"` in a record body.
bool parseJournalString(const std::string& body, const char* key,
                        std::string* out);

/// Header record body binding a journal to one run shape.
std::string journalHeaderBody(std::size_t points, std::uint64_t baseSeed,
                              std::uint64_t configDigest);

/// Completed-point record body carrying a caller-encoded payload.
std::string journalPointBody(std::size_t index, std::string_view payload);

/// fsync the directory containing `path`, so a freshly created file's
/// directory entry is durable (a journal whose records are fsynced but
/// whose name is not can vanish wholesale after power loss).  Failures
/// are ignored: some filesystems refuse directory fsync and the data
/// fsyncs still bound the loss to "file never existed".
void fsyncParentDir(const std::string& path);

/// Journaling knobs carried inside sim::SweepOptions.
struct SweepJournalOptions {
  /// Journal file path; empty disables journaling.
  std::string path;
  /// Replay completed points from an existing journal at `path` instead of
  /// re-simulating them.  Without this flag an existing file is
  /// overwritten.
  bool resume = false;
  /// Caller-supplied digest of everything that shapes the per-point work
  /// (model parameters, sweep axes…).  A resumed journal must match it.
  std::uint64_t configDigest = 0;
};

/// One replayable point record.
struct SweepJournalRecord {
  std::size_t index = 0;
  std::string payload;  ///< caller-encoded result
};

/// How load() treats a damaged record in the middle of the file.
enum class JournalLoadMode {
  /// Single-writer checkpoint journal: damage means everything after it
  /// is untrustworthy — truncate to the last good record.
  kStrict,
  /// Multi-epoch shard journal (several lease holders appended over
  /// time, each starting with a '\n' resync marker): skip damaged or
  /// empty lines and keep scanning — a torn tail left by a SIGKILLed
  /// predecessor must not hide a successor's good records.
  kLenient,
};

/// Result of scanning an existing journal file.
struct SweepJournalLoad {
  /// Header present and matching the expected run shape; records are
  /// trustworthy and `validBytes` marks the append position.
  bool usable = false;
  /// Human-readable reason when not usable, or a non-fatal anomaly note
  /// (torn tail, duplicate record) when usable.  Empty = clean.
  std::string warning;
  std::vector<SweepJournalRecord> records;  ///< unique, CRC-verified
  std::uint64_t validBytes = 0;  ///< file offset after the last good record
  std::size_t duplicates = 0;    ///< point records dropped first-wins
  std::size_t skippedLines = 0;  ///< damaged lines skipped (kLenient only)
};

class SweepJournal {
 public:
  /// Scan `path` and validate it against the expected run shape.  Never
  /// throws on bad content — every corruption mode degrades to
  /// `usable = false` (fresh run) or a truncated-tail prefix.
  static SweepJournalLoad load(const std::string& path,
                               std::size_t expectedPoints,
                               std::uint64_t baseSeed,
                               std::uint64_t configDigest,
                               JournalLoadMode mode = JournalLoadMode::kStrict);

  /// Open `path` for appending.  With a usable `resumeFrom`, the file is
  /// truncated to its validBytes (dropping any torn tail) and appended to;
  /// otherwise it is recreated with a fresh header record.  Throws
  /// SimulationError when the file cannot be opened/written.
  SweepJournal(const std::string& path, std::size_t points,
               std::uint64_t baseSeed, std::uint64_t configDigest,
               const SweepJournalLoad* resumeFrom = nullptr);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Append one completed-point record and fsync it.  Callers serialize
  /// (the sweep engine holds its progress lock while appending).
  void appendPoint(std::size_t index, std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  void appendLine(const std::string& body);

  std::string path_;
  int fd_ = -1;
};

}  // namespace fefet::sim
