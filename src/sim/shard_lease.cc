#include "sim/shard_lease.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace fefet::sim {
namespace {

/// Shard-layer health telemetry under fefet.shard.*: how often leases
/// change hands (and why), how much duplicate work reclaims cost, and how
/// long a heartbeat append takes (the renew path is what keeps a healthy
/// worker's lease alive — its tail latency bounds the usable ttl floor).
struct ShardTelemetry {
  obs::Counter& leasesAcquired;
  obs::Counter& leasesExpired;
  obs::Counter& leasesStolen;
  obs::Counter& pointsRun;
  obs::Counter& duplicateDrops;
  obs::Histogram& heartbeatSeconds;
};

ShardTelemetry& shardTelemetry() {
  static constexpr double kHeartbeatEdges[] = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3,
                                               3e-3, 1e-2, 3e-2, 0.1,  0.3,
                                               1.0};
  static ShardTelemetry t{
      obs::Metrics::counter("fefet.shard.leases_acquired"),
      obs::Metrics::counter("fefet.shard.leases_expired"),
      obs::Metrics::counter("fefet.shard.leases_stolen"),
      obs::Metrics::counter("fefet.shard.points_run"),
      obs::Metrics::counter("fefet.shard.duplicate_point_drops"),
      obs::Metrics::histogram("fefet.shard.heartbeat_seconds",
                              kHeartbeatEdges)};
  return t;
}

constexpr char kLeaseJournalName[] = "leases.journal";

std::string boardHeaderBody(const ShardBoardConfig& c) {
  std::ostringstream os;
  os << "{\"type\":\"shard-header\",\"version\":1,\"points\":" << c.points
     << ",\"shards\":" << c.shards << ",\"baseSeed\":" << c.baseSeed
     << ",\"configDigest\":" << c.configDigest << "}";
  return os.str();
}

std::string leaseBody(const char* type, int shard, std::uint64_t token,
                      const std::string& owner, std::uint64_t expiresAtNs) {
  std::ostringstream os;
  os << "{\"type\":\"" << type << "\",\"shard\":" << shard
     << ",\"token\":" << token << ",\"owner\":\"" << jsonEscape(owner)
     << "\"";
  if (expiresAtNs != 0) os << ",\"expires_ns\":" << expiresAtNs;
  os << "}";
  return os.str();
}

/// Parse the lease journal (lenient: damaged and empty lines skipped)
/// and fold every record into per-shard lease state, in file order.
/// Returns false when no matching header was found.
bool replayLeaseJournal(const std::string& path,
                        const ShardBoardConfig& expected,
                        ShardBoardState* state) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  state->shards.assign(static_cast<std::size_t>(expected.shards),
                       ShardLeaseState{});
  bool sawHeader = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string body;
    if (!parseJournalLine(line, &body)) continue;  // resync marker / damage
    std::string type;
    if (!parseJournalString(body, "type", &type)) continue;
    if (type == "shard-header") {
      std::uint64_t points = 0, shards = 0, seed = 0, digest = 0;
      if (parseJournalU64(body, "points", &points) &&
          parseJournalU64(body, "shards", &shards) &&
          parseJournalU64(body, "baseSeed", &seed) &&
          parseJournalU64(body, "configDigest", &digest) &&
          points == expected.points &&
          shards == static_cast<std::uint64_t>(expected.shards) &&
          seed == expected.baseSeed && digest == expected.configDigest) {
        sawHeader = true;
      } else if (!sawHeader) {
        return false;  // first header is bound to a different run
      }
      continue;
    }
    if (!sawHeader) continue;
    std::uint64_t shard = 0, token = 0;
    std::string owner;
    if (!parseJournalU64(body, "shard", &shard) ||
        !parseJournalU64(body, "token", &token) ||
        !parseJournalString(body, "owner", &owner) ||
        shard >= state->shards.size()) {
      continue;
    }
    ShardLeaseState& s = state->shards[shard];
    if (s.complete) continue;  // terminal: later records are zombies
    if (type == "acquire") {
      // A higher token opens a new ownership epoch; at equal tokens the
      // FIRST record in the file wins (the read-back confirmation rule).
      if (token > s.token) {
        std::uint64_t expires = 0;
        parseJournalU64(body, "expires_ns", &expires);
        s.token = token;
        s.owner = owner;
        s.expiresAtNs = expires;
        s.held = true;
      }
    } else if (type == "renew") {
      if (token == s.token && s.held) {
        std::uint64_t expires = 0;
        parseJournalU64(body, "expires_ns", &expires);
        if (expires > s.expiresAtNs) s.expiresAtNs = expires;
      }
    } else if (type == "release") {
      if (token == s.token) s.held = false;
    } else if (type == "complete") {
      if (token == s.token) {
        s.held = false;
        s.complete = true;
      }
    }
  }
  return sawHeader;
}

int openAppend(const std::string& path, bool* created) {
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    throw SimulationError("cannot open journal " + path + ": " +
                          std::strerror(errno));
  }
  if (created != nullptr) *created = !existed;
  if (!existed) fsyncParentDir(path);
  return fd;
}

void writeAllAndSync(int fd, const std::string& path, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written,
                              data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SimulationError("cannot append to journal " + path + ": " +
                            std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
}

}  // namespace

std::uint64_t shardClockNanos() {
  // CLOCK_BOOTTIME, not CLOCK_MONOTONIC: lease heartbeat deadlines must
  // keep counting across a system suspend.  CLOCK_MONOTONIC freezes while
  // the host sleeps, so a worker SIGKILLed just before a laptop lid close
  // would hold its lease for the entire suspended interval and stall every
  // survivor on wake.  BOOTTIME includes suspended time (same boot epoch,
  // still comparable across processes on one host).  Fall back to
  // MONOTONIC on kernels/filesystems where BOOTTIME is unavailable —
  // the clocks are identical on hosts that never suspend.
  timespec ts{};
#ifdef CLOCK_BOOTTIME
  if (::clock_gettime(CLOCK_BOOTTIME, &ts) != 0) {
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
  }
#else
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
#endif
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void ShardLeaseBoard::create(const ShardBoardConfig& config) {
  FEFET_REQUIRE(!config.dir.empty(), "shard board needs a directory");
  FEFET_REQUIRE(config.shards >= 1, "shard board needs >= 1 shards");
  FEFET_REQUIRE(config.points >= static_cast<std::size_t>(config.shards),
                "shard board needs points >= shards");
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  const std::string path = config.dir + "/" + kLeaseJournalName;
  if (std::filesystem::exists(path)) {
    ShardBoardState state;
    if (replayLeaseJournal(path, config, &state)) {
      return;  // matching board: resume it (supervisor restart)
    }
    FEFET_WARN() << "shard board at " << config.dir
                 << " was written by a different run configuration; "
                    "starting fresh";
    std::filesystem::remove(path, ec);
    for (int k = 0;; ++k) {
      const std::string shardPath =
          config.dir + "/shard-" + std::to_string(k) + ".journal";
      if (!std::filesystem::remove(shardPath, ec)) break;
    }
  }
  bool created = false;
  const int fd = openAppend(path, &created);
  writeAllAndSync(fd, path, renderJournalLine(boardHeaderBody(config)));
  ::close(fd);
}

ShardLeaseBoard::ShardLeaseBoard(const ShardBoardConfig& config)
    : config_(config) {
  FEFET_REQUIRE(config_.shards >= 1, "shard board needs >= 1 shards");
  const std::string path = leaseJournalPath();
  ShardBoardState state;
  if (!replayLeaseJournal(path, config_, &state)) {
    throw SimulationError("shard board at " + config_.dir +
                          " is missing or bound to a different run "
                          "configuration (create it with "
                          "ShardLeaseBoard::create)");
  }
  fd_ = openAppend(path, nullptr);
}

ShardLeaseBoard::~ShardLeaseBoard() {
  if (fd_ >= 0) ::close(fd_);
}

ShardRange ShardLeaseBoard::rangeOf(int shard) const {
  const auto p = config_.points;
  const auto s = static_cast<std::size_t>(config_.shards);
  const auto k = static_cast<std::size_t>(shard);
  return ShardRange{p * k / s, p * (k + 1) / s};
}

std::string ShardLeaseBoard::leaseJournalPath() const {
  return config_.dir + "/" + kLeaseJournalName;
}

std::string ShardLeaseBoard::shardJournalPath(int shard) const {
  return config_.dir + "/shard-" + std::to_string(shard) + ".journal";
}

ShardBoardState ShardLeaseBoard::state() const {
  ShardBoardState state;
  replayLeaseJournal(leaseJournalPath(), config_, &state);
  return state;
}

void ShardLeaseBoard::appendRecord(const std::string& body) {
  // The leading '\n' makes every record self-delimiting on the left: a
  // torn tail left by a crashed writer corrupts only itself, never the
  // next record (the lenient replay skips the damaged line).
  writeAllAndSync(fd_, leaseJournalPath(), "\n" + renderJournalLine(body));
}

std::optional<ShardLeaseBoard::Claim> ShardLeaseBoard::tryClaim(
    const std::string& owner, double ttlSeconds) {
  const ShardBoardState before = state();
  const std::uint64_t now = shardClockNanos();
  const auto ttlNs =
      static_cast<std::uint64_t>(ttlSeconds * 1e9);
  for (int shard = 0; shard < config_.shards; ++shard) {
    const ShardLeaseState& s = before.shards[static_cast<std::size_t>(shard)];
    if (s.complete) continue;
    const bool stolen = s.held && s.expiresAtNs <= now;
    if (s.held && !stolen) continue;  // live lease elsewhere
    if (stolen && obs::Metrics::enabled()) {
      shardTelemetry().leasesExpired.increment();
    }
    const std::uint64_t token = s.token + 1;
    appendRecord(leaseBody("acquire", shard, token, owner, now + ttlNs));
    // Read-back confirmation: the first acquire at the winning token is
    // the owner.  If a racer's record landed first, we lost this shard.
    const ShardBoardState after = state();
    const ShardLeaseState& a = after.shards[static_cast<std::size_t>(shard)];
    if (a.token == token && a.owner == owner && a.held) {
      if (obs::Metrics::enabled()) {
        ShardTelemetry& t = shardTelemetry();
        t.leasesAcquired.increment();
        if (stolen) t.leasesStolen.increment();
      }
      if (stolen) {
        FEFET_WARN() << "shard lease: " << owner << " reclaimed shard "
                     << shard << " from expired holder (token " << token
                     << ")";
      }
      return Claim{shard, token, rangeOf(shard), stolen};
    }
  }
  return std::nullopt;
}

bool ShardLeaseBoard::renew(const Claim& claim, const std::string& owner,
                            double ttlSeconds) {
  const auto started = std::chrono::steady_clock::now();
  const ShardBoardState current = state();
  const ShardLeaseState& s =
      current.shards[static_cast<std::size_t>(claim.shard)];
  if (s.complete || s.token != claim.token || s.owner != owner || !s.held) {
    return false;  // fenced out: a higher token superseded this epoch
  }
  const std::uint64_t now = shardClockNanos();
  appendRecord(leaseBody(
      "renew", claim.shard, claim.token, owner,
      now + static_cast<std::uint64_t>(ttlSeconds * 1e9)));
  if (obs::Metrics::enabled()) {
    shardTelemetry().heartbeatSeconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }
  return true;
}

void ShardLeaseBoard::release(const Claim& claim, const std::string& owner,
                              bool complete) {
  appendRecord(leaseBody(complete ? "complete" : "release", claim.shard,
                         claim.token, owner, 0));
}

ShardJournalWriter::ShardJournalWriter(const std::string& path,
                                       const ShardBoardConfig& config)
    : path_(path) {
  bool created = false;
  fd_ = openAppend(path, &created);
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size <= 0) {
    writeAllAndSync(fd_, path_,
                    renderJournalLine(journalHeaderBody(
                        config.points, config.baseSeed, config.configDigest)));
  }
}

ShardJournalWriter::~ShardJournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void ShardJournalWriter::appendPoint(std::size_t index,
                                     std::string_view payload) {
  // '\n'-prefixed for the same left-delimiting reason as lease records.
  writeAllAndSync(fd_, path_,
                  "\n" + renderJournalLine(journalPointBody(index, payload)));
}

namespace {

/// Chaos draw in [0,1): a pure function of (seed, owner, index) so a
/// kill-storm run is reproducible — a restarted worker deterministically
/// survives the points its predecessor completed (they are skipped) and
/// the stream stays fixed across pids.
double chaosUniform(std::uint64_t seed, const std::string& owner,
                    std::size_t index) {
  std::uint64_t h = stats::splitmix64(seed ^ 0xC4A05C4A05ull);
  for (const char c : owner) {
    h = stats::splitmix64(h ^ static_cast<unsigned char>(c));
  }
  h = stats::splitmix64(h ^ static_cast<std::uint64_t>(index));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

[[noreturn]] void selfSigkill() {
  ::kill(::getpid(), SIGKILL);
  ::_exit(137);  // unreachable; placates [[noreturn]]
}

}  // namespace

ShardWorkerReport runShardWorker(const ShardWorkerOptions& options,
                                 const ShardPointFn& fn) {
  FEFET_REQUIRE(fn != nullptr, "shard worker needs a point function");
  ShardWorkerOptions opt = options;
  if (opt.owner.empty()) {
    opt.owner = "pid" + std::to_string(::getpid());
  }
  ShardLeaseBoard board(opt.board);
  ShardWorkerReport report;
  std::size_t appends = 0;
  const auto ttlNsHalf =
      static_cast<std::uint64_t>(opt.leaseTtlSeconds * 0.5e9);

  while (true) {
    if (opt.deadline.expired()) {
      report.deadlineExpired = true;
      break;
    }
    const ShardBoardState state = board.state();
    if (state.allComplete()) {
      report.allComplete = true;
      break;
    }
    auto claim = board.tryClaim(opt.owner, opt.leaseTtlSeconds);
    if (!claim) {
      // Every open shard is held by a live peer (or we lost every race):
      // wait for completion or for a lease to expire.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opt.pollSeconds));
      continue;
    }
    ++report.leasesAcquired;
    if (claim->stolen) ++report.leasesStolen;

    // A predecessor (crashed or fenced) may have journaled part of this
    // range: skip its durable points, re-run only the gap (first-wins —
    // deterministic seeding makes any overlap bit-identical anyway).
    const SweepJournalLoad existing = SweepJournal::load(
        board.shardJournalPath(claim->shard), opt.board.points,
        opt.board.baseSeed, opt.board.configDigest, JournalLoadMode::kLenient);
    std::set<std::size_t> done;
    for (const auto& record : existing.records) {
      if (claim->range.contains(record.index)) done.insert(record.index);
    }
    report.pointsSkipped += done.size();
    ShardJournalWriter writer(board.shardJournalPath(claim->shard),
                              opt.board);

    std::uint64_t lastRenewNs = shardClockNanos();
    bool fencedOut = false;
    bool deadlineHit = false;
    for (std::size_t i = claim->range.begin; i < claim->range.end; ++i) {
      if (done.count(i) != 0) continue;
      if (opt.deadline.expired()) {
        deadlineHit = true;
        break;
      }
      if (shardClockNanos() - lastRenewNs > ttlNsHalf) {
        if (!board.renew(*claim, opt.owner, opt.leaseTtlSeconds)) {
          fencedOut = true;  // a survivor stole the lease: abandon range
          break;
        }
        lastRenewNs = shardClockNanos();
      }
      const SweepContext ctx{
          i, SweepEngine::pointSeed(opt.board.baseSeed, i), 0,
          opt.deadline.child(std::numeric_limits<double>::infinity())};
      std::string payload;
      try {
        payload = fn(i, ctx);
      } catch (const DeadlineExceeded&) {
        deadlineHit = true;
        break;
      }
      writer.appendPoint(i, payload);
      ++report.pointsRun;
      ++appends;
      if (obs::Metrics::enabled()) shardTelemetry().pointsRun.increment();
      // Chaos hooks AFTER the durable append: every incarnation makes
      // progress, so a kill storm converges instead of livelocking.
      if (opt.killAfterPoints >= 0 &&
          appends >= static_cast<std::size_t>(opt.killAfterPoints) &&
          !opt.killMarkerPath.empty()) {
        const int marker = ::open(opt.killMarkerPath.c_str(),
                                  O_WRONLY | O_CREAT | O_EXCL, 0644);
        if (marker >= 0) {
          ::close(marker);
          fsyncParentDir(opt.killMarkerPath);
          selfSigkill();
        }
      }
      if (opt.chaosKillP > 0.0 &&
          chaosUniform(opt.chaosSeed, opt.owner, i) < opt.chaosKillP) {
        selfSigkill();
      }
    }
    if (fencedOut) continue;  // no release: the thief owns the epoch now
    if (deadlineHit) {
      board.release(*claim, opt.owner, /*complete=*/false);
      report.deadlineExpired = true;
      break;
    }
    board.release(*claim, opt.owner, /*complete=*/true);
    ++report.shardsCompleted;
  }
  if (!report.allComplete && board.state().allComplete()) {
    report.allComplete = true;
  }
  return report;
}

ShardMergeResult mergeShardJournals(const ShardBoardConfig& config) {
  ShardMergeResult result;
  ShardBoardState leases;
  replayLeaseJournal(config.dir + "/" + kLeaseJournalName, config, &leases);
  std::vector<char> seen(config.points, 0);
  std::vector<SweepJournalRecord> merged;
  for (int shard = 0; shard < config.shards; ++shard) {
    ShardTally tally;
    tally.shard = shard;
    if (static_cast<std::size_t>(shard) < leases.shards.size()) {
      const ShardLeaseState& s =
          leases.shards[static_cast<std::size_t>(shard)];
      tally.token = s.token;
      tally.complete = s.complete;
      tally.owner = s.owner;
    }
    const std::string path =
        config.dir + "/shard-" + std::to_string(shard) + ".journal";
    SweepJournalLoad load =
        SweepJournal::load(path, config.points, config.baseSeed,
                           config.configDigest, JournalLoadMode::kLenient);
    tally.duplicates = load.duplicates;  // within-journal epochs overlap
    if (load.usable) {
      for (auto& record : load.records) {
        if (seen[record.index]) {
          ++tally.duplicates;  // cross-shard duplicate (first wins)
          continue;
        }
        seen[record.index] = 1;
        ++tally.points;
        merged.push_back(std::move(record));
      }
    }
    result.duplicates += tally.duplicates;
    result.shards.push_back(std::move(tally));
  }
  if (result.duplicates > 0 && obs::Metrics::enabled()) {
    shardTelemetry().duplicateDrops.add(result.duplicates);
  }
  std::sort(merged.begin(), merged.end(),
            [](const SweepJournalRecord& a, const SweepJournalRecord& b) {
              return a.index < b.index;
            });
  std::string all;
  for (const auto& record : merged) {
    all += record.payload;
    all += '\n';
  }
  result.resultsCrc = crc32(all);
  result.missing = config.points - merged.size();
  result.complete = result.missing == 0;
  result.records = std::move(merged);
  return result;
}

}  // namespace fefet::sim
