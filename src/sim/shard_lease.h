// shard_lease.h — crash-safe multi-process sweep sharding over the
// journal directory.
//
// The sweep engine parallelizes across threads inside one process; this
// module scales the same point space across N worker *processes* that
// coordinate exclusively through append-only journals in one shared
// directory (no sockets, no shared memory — kill -9 safe by
// construction):
//
//   DIR/leases.journal    lease coordination records (this module)
//   DIR/shard-<k>.journal completed-point records of shard k
//                         (sim/sweep_journal line format, lenient mode)
//
// The point space [0, points) is partitioned into `shards` contiguous
// ranges.  A worker acquires a shard by appending an `acquire` record
// carrying a monotonic *fencing token* and a heartbeat deadline
// (CLOCK_BOOTTIME nanoseconds — comparable across processes on one
// host, and still advancing across suspend), then owns the range until
// it releases it, marks it complete, or
// lets the lease expire.  Races are resolved without locks: after
// appending, the claimant re-reads the journal, and the FIRST acquire
// record at the winning token is the owner (O_APPEND gives a total file
// order; losers observe they lost and move on).  An expired lease is
// reclaimed by appending an acquire with a higher token — the SIGKILLed
// predecessor's half-finished range is re-run by the survivor, and the
// first-wins idempotent merge (deterministic per-point seeding makes
// duplicates bit-identical) drops the overlap.
//
// Fencing semantics: tokens order ownership epochs, not data validity.  A
// zombie holder that appends a point after losing its lease writes the
// same bytes the new holder would (payloads are pure functions of the
// point index and base seed), so stale writes are harmless duplicates;
// renew/release records with a superseded token are ignored at replay.
//
// Every record is CRC-framed (sim/sweep_journal line format) and
// '\n'-prefixed so a torn tail left by a crash can never merge into the
// next writer's record; recovery skips damaged lines and keeps scanning
// (JournalLoadMode::kLenient).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "sim/sweep_engine.h"
#include "sim/sweep_journal.h"

namespace fefet::sim {

/// CLOCK_BOOTTIME nanoseconds (CLOCK_MONOTONIC fallback where BOOTTIME
/// is unavailable): the shared lease clock.  Unlike
/// fefet::monotonicNanos() (process-start epoch), this epoch is the host
/// boot, so heartbeat deadlines written by one process are comparable in
/// another.  BOOTTIME keeps advancing while the host is suspended, so a
/// dead worker's lease expires on wall time rather than surviving a
/// suspend interval frozen (CLOCK_MONOTONIC stops during suspend).
std::uint64_t shardClockNanos();

/// One run shape, shared by the board header, every shard journal header
/// and the merge.  A board can never be replayed against a different
/// sweep (same contract as SweepJournalOptions::configDigest).
struct ShardBoardConfig {
  std::string dir;           ///< journal directory (created by create())
  std::size_t points = 0;    ///< total point count of the sweep
  int shards = 1;            ///< contiguous ranges the space is split into
  std::uint64_t baseSeed = 1;
  std::uint64_t configDigest = 0;
};

/// Half-open index range [begin, end) owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool contains(std::size_t i) const { return i >= begin && i < end; }
};

/// Replayed lease state of one shard (the winning ownership epoch).
struct ShardLeaseState {
  std::uint64_t token = 0;      ///< highest fencing token seen (0 = never)
  std::string owner;            ///< first-wins winner at that token
  std::uint64_t expiresAtNs = 0;  ///< latest heartbeat deadline at that token
  bool held = false;            ///< acquired and not released/completed
  bool complete = false;        ///< every point of the range is journaled
};

/// Replayed state of the whole board.
struct ShardBoardState {
  std::vector<ShardLeaseState> shards;
  bool allComplete() const {
    for (const auto& s : shards) {
      if (!s.complete) return false;
    }
    return !shards.empty();
  }
};

/// The lease coordination substrate.  Thread-compatible: guard each
/// instance externally or use one per thread/process (the journal itself
/// is the cross-process synchronization point).
class ShardLeaseBoard {
 public:
  /// Create (or resume) a board at config.dir: make the directory, and
  /// write the header record unless a journal with a MATCHING header
  /// already exists (crash-safe supervisor restart).  A mismatched
  /// header wipes the stale board (lease + shard journals) with a
  /// warning — same forgiving policy as SweepJournal.
  static void create(const ShardBoardConfig& config);

  /// Open an existing board and validate its header against `config`.
  /// Throws SimulationError when the board is missing or bound to a
  /// different run shape.
  explicit ShardLeaseBoard(const ShardBoardConfig& config);
  ~ShardLeaseBoard();

  ShardLeaseBoard(const ShardLeaseBoard&) = delete;
  ShardLeaseBoard& operator=(const ShardLeaseBoard&) = delete;

  const ShardBoardConfig& config() const { return config_; }

  /// Balanced contiguous partition: shard k covers
  /// [k*points/shards, (k+1)*points/shards).
  ShardRange rangeOf(int shard) const;

  std::string leaseJournalPath() const;
  std::string shardJournalPath(int shard) const;

  /// Replay the lease journal (lenient: damaged lines skipped).
  ShardBoardState state() const;

  /// A successfully acquired lease.
  struct Claim {
    int shard = -1;
    std::uint64_t token = 0;
    ShardRange range;
    bool stolen = false;  ///< reclaimed from an expired previous holder
  };

  /// Try to acquire any claimable shard (not complete, not validly held):
  /// append an acquire record with token = previous + 1 and deadline
  /// now + ttl, then re-read the journal to confirm the record won the
  /// race.  Returns std::nullopt when every shard is complete or held by
  /// a live (unexpired) lease, or when every race was lost.
  std::optional<Claim> tryClaim(const std::string& owner, double ttlSeconds);

  /// Heartbeat: extend the lease deadline to now + ttl.  Returns false —
  /// without writing — when the claim has been superseded (fenced out by
  /// a higher token) or the shard was completed by someone else; the
  /// caller must abandon the range.
  bool renew(const Claim& claim, const std::string& owner, double ttlSeconds);

  /// End the ownership epoch.  With complete=true the shard is marked
  /// done and never claimable again.
  void release(const Claim& claim, const std::string& owner, bool complete);

 private:
  void appendRecord(const std::string& body);

  ShardBoardConfig config_;
  int fd_ = -1;
};

/// Single-writer appender for one shard's point journal.  Opens
/// O_APPEND; writes the sweep-journal header when the file is new, a
/// '\n' resync marker otherwise, and '\n'-prefixes every record so a
/// predecessor's torn tail cannot swallow it.  appendPoint fsyncs —
/// a record is durable or absent, never half-trusted.
class ShardJournalWriter {
 public:
  ShardJournalWriter(const std::string& path, const ShardBoardConfig& config);
  ~ShardJournalWriter();

  ShardJournalWriter(const ShardJournalWriter&) = delete;
  ShardJournalWriter& operator=(const ShardJournalWriter&) = delete;

  void appendPoint(std::size_t index, std::string_view payload);

 private:
  std::string path_;
  int fd_ = -1;
};

/// Worker-side knobs.
struct ShardWorkerOptions {
  ShardBoardConfig board;      ///< must match an existing board's header
  std::string owner;           ///< unique worker identity ("" = "pid<N>")
  double leaseTtlSeconds = 5.0;   ///< heartbeat deadline per acquire/renew
  double pollSeconds = 0.2;    ///< wait between claim attempts when blocked
  Deadline deadline;           ///< whole-worker wall-clock budget
  // Chaos / test hooks (see bench --chaos-kill-p and the supervisor test):
  double chaosKillP = 0.0;     ///< P(self-SIGKILL after a durable append)
  std::uint64_t chaosSeed = 0; ///< chaos stream seed (mixed with owner)
  int killAfterPoints = -1;    ///< self-SIGKILL after this many appends…
  std::string killMarkerPath;  ///< …once: skipped when this file exists
};

/// What one worker process accomplished.
struct ShardWorkerReport {
  std::size_t pointsRun = 0;      ///< simulated + durably appended here
  std::size_t pointsSkipped = 0;  ///< found already journaled (predecessor)
  int shardsCompleted = 0;
  int leasesAcquired = 0;
  int leasesStolen = 0;
  bool allComplete = false;       ///< board fully complete on exit
  bool deadlineExpired = false;
};

/// Point evaluator handed to the worker: global point index + the same
/// SweepContext a SweepEngine point receives (index, deterministic
/// pointSeed, child deadline) -> journal payload.  Must be a pure
/// function of (index, seed) — the idempotent-merge guarantee rides on
/// re-runs being bit-identical.
using ShardPointFn =
    std::function<std::string(std::size_t index, const SweepContext& ctx)>;

/// Run the shard-lease worker loop: claim shards, run their missing
/// points, heartbeat between points, mark ranges complete; repeat until
/// the board is complete, the deadline expires, or every remaining shard
/// is held by a live peer and stays that way.  Point exceptions other
/// than DeadlineExceeded propagate (the process-level supervisor treats
/// a nonzero exit as a crash and applies its restart budget).
ShardWorkerReport runShardWorker(const ShardWorkerOptions& options,
                                 const ShardPointFn& fn);

/// Adapt a typed sweep (the SweepEngine::run(points, fn, codec) shape)
/// into a shard-lease worker — this is SweepEngine's `--shard-lease`
/// execution mode: same points, same per-point seeding, results encoded
/// through the same codec, but leased range-by-range against the board.
template <typename Point, typename Fn, typename Result>
ShardWorkerReport runShardedSweep(const ShardWorkerOptions& options,
                                  const std::vector<Point>& points, Fn&& fn,
                                  SweepCodec<Result> codec) {
  FEFET_REQUIRE(points.size() == options.board.points,
                "sharded sweep point count must match the board config");
  FEFET_REQUIRE(codec.encode != nullptr,
                "sharded sweep needs an encoding codec");
  return runShardWorker(options,
                        [&](std::size_t i, const SweepContext& ctx) {
                          return codec.encode(fn(points[i], ctx));
                        });
}

/// Per-shard outcome tally carried in the merged report.
struct ShardTally {
  int shard = 0;
  std::size_t points = 0;      ///< unique records its journal contributed
  std::size_t duplicates = 0;  ///< records dropped first-wins
  std::uint64_t token = 0;     ///< final fencing token (ownership epochs)
  bool complete = false;
  std::string owner;           ///< last owner per the lease journal
};

/// First-wins idempotent merge of every shard journal.
struct ShardMergeResult {
  bool complete = false;  ///< every index of [0, points) present
  std::vector<SweepJournalRecord> records;  ///< index-ascending, unique
  std::size_t missing = 0;
  std::size_t duplicates = 0;
  /// CRC32 over payload+'\n' in index order — for a complete run this is
  /// bit-identical to the single-process bench::resultsCrc32 fingerprint.
  std::uint32_t resultsCrc = 0;
  std::vector<ShardTally> shards;
};

ShardMergeResult mergeShardJournals(const ShardBoardConfig& config);

}  // namespace fefet::sim
